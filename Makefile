GO ?= go

.PHONY: build test test-shuffle test-race test-sweep race race-matrix bench bench-smoke bench-graph bench-faults bench-shard bench-sweep sweep-smoke serve-smoke bench-serve fleet-chaos bench-fleet fmt fmt-check vet docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite in randomized test order: order-dependent state leaks
# (a Runner not reset between runs, a package-level cache primed by an
# earlier test) surface here before they flake elsewhere. Wired into the
# main CI job.
test-shuffle:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Focused -race pass over the engine and algorithm layers the fault
# subsystem touches, plus the fleet coordinator (heartbeat watchdog,
# retry scheduler and result counters all run concurrently); much
# faster than the full `race` target and wired into CI as its own job
# so engine-level data races surface on their own.
test-race:
	$(GO) test -race ./internal/sim/... ./internal/core/... ./internal/fleet/...

# The sharded determinism matrix under the race detector: every
# algorithm × model × fault schedule at shard counts 1/2/4/8, plus the
# three-way engine differential and the harness shard×worker
# byte-identity matrix. This is the strongest signal on the tick-barrier
# protocol — a shard writing outside its node range is a data race here
# long before it is a wrong answer anywhere else. GOMAXPROCS is pinned
# above 1 because the engine skips the shard pool on a single-core
# host; the race detector must see the concurrent dispatch path even
# when the hardware would not take it.
race-matrix:
	GOMAXPROCS=4 $(GO) test -race -run 'TestSharded|TestShardMatrix|TestThreeWay|TestSweepByteIdentical|TestSweepCSVIdentical' ./internal/sim ./internal/core ./internal/harness

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration per benchmark: proves the bench harness still runs without
# paying for a full measurement sweep (-benchmem so the allocation columns
# the fast-path work watches are exercised too). Covers the root package
# experiment benchmarks and the topology benchmarks. Wired into CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' . ./internal/graph

# The topology fast-path measurement set (docs/PERFORMANCE.md): CSR
# construction + BFS/diameter benchmarks, the graph-construction
# allocation budgets, and the million-node wave delivery run. Used to
# regenerate BENCH_GRAPH_CSR.json.
bench-graph:
	$(GO) test -run 'TestAllocBudgetGraphConstruction' -v .
	$(GO) test -bench 'Graph' -benchtime 5x -benchmem -run='^$$' ./internal/graph
	$(GO) test -bench 'GraphMillionNodeWave|EngineWarm|EngineThroughput' -benchtime 5x -benchmem -run='^$$' .

# The allocation fast-path measurement set (docs/PERFORMANCE.md): engine
# benchmarks plus the AllocsPerRun budget tests. Used to regenerate
# BENCH_ALLOC_FASTPATH.json.
bench-alloc:
	$(GO) test -run 'TestAllocBudget' -v .
	$(GO) test -bench 'EngineSparse|EngineWarm|EngineAsync|EngineParallel|EngineThroughput' -benchtime 5x -benchmem -run='^$$' .

# The fault-adversary measurement set (docs/FAULTS.md): the fault-injected
# allocation budget plus the warm-path fault benchmarks. Used to
# regenerate BENCH_FAULTS.json.
bench-faults:
	$(GO) test -run 'TestAllocBudgetLeastelFaultyRing' -v .
	$(GO) test -bench 'EngineFaults' -benchtime 5x -benchmem -run='^$$' .

# The sharded-engine measurement set (docs/PERFORMANCE.md): the sharded
# allocation budget, the million-node ring wave at 1/2/4/8 shards, and
# the 10M-node run. Used to regenerate BENCH_SHARDED_ENGINE.json.
bench-shard:
	$(GO) test -run 'TestAllocBudgetLeastelSharded' -v .
	$(GO) test -bench 'EngineSharded$$' -benchtime 3x -benchmem -run='^$$' -timeout 30m .
	$(GO) test -bench 'EngineSharded10M' -benchtime 1x -benchmem -run='^$$' -timeout 30m .

# Focused sweep-pipeline gate (docs/PERFORMANCE.md § "Sweep pipeline"):
# the consumer allocation budget, the O(1)-aggregation guard, the
# kill-and-resume byte-identity matrix, and the CLI binary sweep /
# resume / export round trip. All of these also run inside the full
# suite; this target exists so CI surfaces a pipeline regression under
# its own label, the same way race-matrix labels the determinism matrix.
test-sweep:
	$(GO) test -run 'TestAllocBudgetSweepConsumer|TestConsumerMemoryFlatInTrialCount|TestBinaryKillAndResume' -v ./internal/harness
	$(GO) test -run 'TestSweepModeBinaryAndExport|TestSweepModeResumeExcludesTextEmitters' -v ./cmd/ule-experiments

# The sweep-pipeline measurement set (docs/PERFORMANCE.md): per-trial
# encoder benchmarks (append path vs the stdlib path the emitters used
# before), steady-state consumer throughput for the JSON/CSV/binary
# emitter sets vs the legacy consumer replica, the consumer allocation
# budget, and the kill-and-resume byte-identity test. Used to regenerate
# BENCH_SWEEP_PIPELINE.json.
bench-sweep:
	$(GO) test -run 'TestAllocBudgetSweepConsumer|TestConsumerMemoryFlatInTrialCount|TestBinaryKillAndResume' -v ./internal/harness
	$(GO) test -bench 'EmitTrial|SweepConsumer' -benchtime 3s -benchmem -run='^$$' ./internal/harness

# A tiny end-to-end sweep through the parallel harness: every registered
# algorithm on two graph families, JSON document discarded after parsing.
sweep-smoke:
	$(GO) run ./cmd/ule-experiments -sweep builtin:smoke -workers 4 -json - -progress=false > /dev/null

# Serving-layer smoke (docs/SERVICE.md): boot uled on an ephemeral port,
# run the uled-load correctness sequence against it (elections byte-
# identical across repeats and to the batch path, a streamed sweep
# byte-identical to a local harness run, the async job lifecycle, a
# guaranteed 400, goroutine flatness), then SIGTERM and require a clean
# drain. Wired into CI.
serve-smoke:
	$(GO) build -o bin/uled ./cmd/uled
	$(GO) run ./cmd/uled-load -spawn bin/uled -smoke

# The serving-layer measurement set (docs/PERFORMANCE.md § "Serving
# layer"): closed-loop load at three concurrency levels against a
# spawned server. Used to regenerate BENCH_SERVE.json.
bench-serve:
	$(GO) build -o bin/uled ./cmd/uled
	$(GO) run ./cmd/uled-load -spawn bin/uled -levels 4,16,64 -duration 3s -out BENCH_SERVE.json
	@cat BENCH_SERVE.json

# Distributed-sweep chaos gate (docs/DISTRIBUTED.md): run the gate sweep
# through exec'd worker processes at 1, 2 and 4 workers with two
# scheduled worker kills each, and fail unless every merged binary is
# byte-identical to a single-process run. Wired into CI.
fleet-chaos:
	$(GO) run ./cmd/ule-fleet -gate

# The distributed-sweep measurement set (docs/DISTRIBUTED.md): the
# none/kill/stall/corrupt/mixed fault matrix at 1/2/4 workers, byte
# identity asserted per cell. Used to regenerate BENCH_FLEET.json.
bench-fleet:
	$(GO) run ./cmd/ule-fleet -bench-out BENCH_FLEET.json
	@cat BENCH_FLEET.json

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Docs hygiene: every file under docs/ must be linked from README.md, and
# the runnable godoc examples must pass (gofmt/vet cover them via
# fmt-check and vet, which gate this target).
docs-check: fmt-check vet
	@missing=0; for f in docs/*.md; do \
		if ! grep -q "$$f" README.md; then \
			echo "README.md does not link $$f"; missing=1; \
		fi; \
	done; [ $$missing -eq 0 ]
	$(GO) test -run Example ./...

# Everything the CI pipeline runs, in the same order.
ci: fmt-check vet build test-shuffle race race-matrix test-sweep bench-smoke sweep-smoke serve-smoke fleet-chaos docs-check
