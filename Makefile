GO ?= go

.PHONY: build test test-race race bench bench-smoke bench-graph bench-faults sweep-smoke fmt fmt-check vet docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused -race pass over the engine and algorithm layers the fault
# subsystem touches; much faster than the full `race` target and wired
# into CI as its own job so engine-level data races surface on their own.
test-race:
	$(GO) test -race ./internal/sim/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration per benchmark: proves the bench harness still runs without
# paying for a full measurement sweep (-benchmem so the allocation columns
# the fast-path work watches are exercised too). Covers the root package
# experiment benchmarks and the topology benchmarks. Wired into CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' . ./internal/graph

# The topology fast-path measurement set (docs/PERFORMANCE.md): CSR
# construction + BFS/diameter benchmarks, the graph-construction
# allocation budgets, and the million-node wave delivery run. Used to
# regenerate BENCH_GRAPH_CSR.json.
bench-graph:
	$(GO) test -run 'TestAllocBudgetGraphConstruction' -v .
	$(GO) test -bench 'Graph' -benchtime 5x -benchmem -run='^$$' ./internal/graph
	$(GO) test -bench 'GraphMillionNodeWave|EngineWarm|EngineThroughput' -benchtime 5x -benchmem -run='^$$' .

# The allocation fast-path measurement set (docs/PERFORMANCE.md): engine
# benchmarks plus the AllocsPerRun budget tests. Used to regenerate
# BENCH_ALLOC_FASTPATH.json.
bench-alloc:
	$(GO) test -run 'TestAllocBudget' -v .
	$(GO) test -bench 'EngineSparse|EngineWarm|EngineAsync|EngineParallel|EngineThroughput' -benchtime 5x -benchmem -run='^$$' .

# The fault-adversary measurement set (docs/FAULTS.md): the fault-injected
# allocation budget plus the warm-path fault benchmarks. Used to
# regenerate BENCH_FAULTS.json.
bench-faults:
	$(GO) test -run 'TestAllocBudgetLeastelFaultyRing' -v .
	$(GO) test -bench 'EngineFaults' -benchtime 5x -benchmem -run='^$$' .

# A tiny end-to-end sweep through the parallel harness: every registered
# algorithm on two graph families, JSON document discarded after parsing.
sweep-smoke:
	$(GO) run ./cmd/ule-experiments -sweep builtin:smoke -workers 4 -json - -progress=false > /dev/null

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Docs hygiene: every file under docs/ must be linked from README.md, and
# the runnable godoc examples must pass (gofmt/vet cover them via
# fmt-check and vet, which gate this target).
docs-check: fmt-check vet
	@missing=0; for f in docs/*.md; do \
		if ! grep -q "$$f" README.md; then \
			echo "README.md does not link $$f"; missing=1; \
		fi; \
	done; [ $$missing -eq 0 ]
	$(GO) test -run Example ./...

# Everything the CI pipeline runs, in the same order.
ci: fmt-check vet build race bench-smoke sweep-smoke docs-check
