module ule

go 1.24
