package election_test

import (
	"fmt"

	"ule/election"
)

// The quickstart from the package comment: run one of the paper's
// algorithms on a built-in graph family and check the success condition.
func ExampleElect() {
	g := election.Ring(64)
	res, err := election.Elect(g, "leastel", election.Params{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("unique leader:", res.UniqueLeader())
	fmt.Println("messages ≤ 4·m·log n:", res.Messages <= 4*64*6)
	// Output:
	// unique leader: true
	// messages ≤ 4·m·log n: true
}

// Asynchronous executions draw per-message delays from a deterministic
// adversary schedule; the same seed always reproduces the same transcript.
func ExampleElect_async() {
	g := election.Ring(32)
	p := election.Params{Seed: 7, Async: true, Delay: "fifo:4"}
	a, err := election.Elect(g, "leastel", p)
	if err != nil {
		panic(err)
	}
	b, err := election.Elect(g, "leastel", p)
	if err != nil {
		panic(err)
	}
	fmt.Println("unique leader:", a.UniqueLeader())
	fmt.Println("reproducible:", a.Messages == b.Messages && a.Rounds == b.Rounds)
	// Output:
	// unique leader: true
	// reproducible: true
}

// Custom protocols implement Protocol/Process against the re-exported
// simulator types and run under the same engine, accounting and delay
// adversaries as the paper's algorithms.
func ExampleRun() {
	res, err := election.Run(election.Config{
		Graph: election.Ring(8),
		Seed:  1,
	}, echoProto{})
	if err != nil {
		panic(err)
	}
	// Every node pings both neighbors once: 2n messages.
	fmt.Println("messages:", res.Messages)
	// Output:
	// messages: 16
}

type echo struct{}

func (echo) Bits() int { return 1 }

type echoProto struct{}

func (echoProto) Name() string                                { return "echo" }
func (echoProto) New(info election.NodeInfo) election.Process { return &echoProc{} }

type echoProc struct{ sent bool }

func (p *echoProc) Start(c *election.Context) {}
func (p *echoProc) Round(c *election.Context, inbox []election.Message) {
	if !p.sent {
		p.sent = true
		c.Broadcast(echo{})
		return
	}
	c.Decide(election.NonLeader)
	c.Halt()
}
