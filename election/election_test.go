package election_test

import (
	"reflect"
	"strings"
	"testing"

	"ule/election"
)

func TestElectQuickstart(t *testing.T) {
	g := election.Ring(32)
	res, err := election.Elect(g, "leastel", election.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UniqueLeader() {
		t.Fatal("no unique leader")
	}
	if res.Leaders[0] < 0 || res.Leaders[0] >= g.N() {
		t.Fatal("leader index out of range")
	}
}

func TestAlgorithmsRegistryExposed(t *testing.T) {
	names := election.Algorithms()
	want := []string{"leastel", "dfs", "kingdom", "cluster", "spanner-le",
		"lasvegas", "leastel-estimate", "flood", "trivial"}
	have := strings.Join(names, " ")
	for _, w := range want {
		if !strings.Contains(have, w) {
			t.Errorf("registry missing %q (have %v)", w, names)
		}
	}
	for _, n := range names {
		if _, err := election.Describe(n); err != nil {
			t.Errorf("Describe(%q): %v", n, err)
		}
	}
}

func TestElectEveryRegisteredAlgorithm(t *testing.T) {
	g := election.Hypercube(4)
	for _, algo := range election.Algorithms() {
		ids := election.PermutationIDs(g.N(), election.NewRand(3))
		res, err := election.Elect(g, algo, election.Params{Seed: 3, IDs: ids, MaxRounds: 1 << 16})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if algo != "trivial" && res.LeaderCount() > 1 {
			t.Errorf("%s: %d leaders", algo, res.LeaderCount())
		}
	}
}

func TestLocalModeAndParallel(t *testing.T) {
	g := election.Torus(5, 5)
	a, err := election.Elect(g, "leastel", election.Params{Seed: 2, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := election.Elect(g, "leastel", election.Params{Seed: 2, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || !a.UniqueLeader() || !b.UniqueLeader() {
		t.Errorf("LOCAL/parallel runs diverge: %d vs %d msgs", a.Messages, b.Messages)
	}
}

// TestCustomProtocol verifies the simulator extension point: a user-defined
// protocol written purely against the public facade.
type pingPayload struct{}

func (pingPayload) Bits() int { return 1 }

type pingProto struct{}

func (pingProto) Name() string { return "ping" }
func (pingProto) New(info election.NodeInfo) election.Process {
	return &pingProc{}
}

type pingProc struct{ done bool }

func (p *pingProc) Start(c *election.Context) {}
func (p *pingProc) Round(c *election.Context, inbox []election.Message) {
	if !p.done {
		c.Broadcast(pingPayload{})
		c.Decide(election.NonLeader)
		p.done = true
		return
	}
	c.Halt()
}

func TestCustomProtocol(t *testing.T) {
	g := election.Ring(8)
	res, err := election.Run(election.Config{Graph: g, Seed: 1, MaxRounds: 10}, pingProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 16 {
		t.Errorf("messages = %d, want 16", res.Messages)
	}
}

// TestParamShimEquivalence pins the deprecated Local/Async/Delay shims to
// the Model spec strings they map onto: every legacy field combination
// must produce exactly the result of its Model equivalent.
func TestParamShimEquivalence(t *testing.T) {
	g := election.Ring(24)
	cases := []struct {
		legacy election.Params
		model  string
	}{
		{election.Params{}, "congest"},
		{election.Params{Local: true}, "local"},
		{election.Params{Async: true}, "async"},
		{election.Params{Async: true, Local: true}, "async"}, // Async wins
		{election.Params{Async: true, Delay: "random:4"}, "async+random:4"},
		{election.Params{Async: true, Delay: "fifo:3"}, "async+fifo:3"},
		{election.Params{Async: true, Delay: "unit"}, "async+unit"},
	}
	for _, c := range cases {
		for _, algo := range []string{"leastel", "flood"} {
			lp := c.legacy
			lp.Seed, lp.MaxRounds = 7, 1<<14
			old, err := election.Elect(g, algo, lp)
			if err != nil {
				t.Fatalf("%s legacy %+v: %v", algo, c.legacy, err)
			}
			np := election.Params{Seed: 7, MaxRounds: 1 << 14, Model: c.model}
			new_, err := election.Elect(g, algo, np)
			if err != nil {
				t.Fatalf("%s model %q: %v", algo, c.model, err)
			}
			if !reflect.DeepEqual(old, new_) {
				t.Errorf("%s: legacy %+v != model %q\nlegacy: %+v\nmodel:  %+v",
					algo, c.legacy, c.model, old, new_)
			}
		}
	}
	// A Model string beats the legacy fields when both are set.
	a, err := election.Elect(g, "flood", election.Params{Seed: 7, Model: "local", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := election.Elect(g, "flood", election.Params{Seed: 7, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Model must take precedence over the deprecated bools")
	}
}

// TestElectWithFaults drives the fault adversary through the public API.
func TestElectWithFaults(t *testing.T) {
	g := election.Ring(32)
	res, err := election.Elect(g, "leastel", election.Params{
		Seed: 1, Model: "crash:0.2", MaxRounds: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != g.N() {
		t.Fatalf("Crashed has %d entries, want %d", len(res.Crashed), g.N())
	}
	if res.Crashes == 0 {
		t.Skip("seed produced no crashes at p=0.2; statistical, not an API failure")
	}
	if !res.UniqueLiveLeader() && res.UniqueLeader() {
		t.Error("UniqueLeader true but UniqueLiveLeader false: predicate inconsistency")
	}
	bad, err := election.Elect(g, "leastel", election.Params{Seed: 1, Model: "crash:7"})
	if err == nil {
		t.Errorf("invalid fault spec accepted, got %v", bad)
	}
}
