package election_test

import (
	"strings"
	"testing"

	"ule/election"
)

func TestElectQuickstart(t *testing.T) {
	g := election.Ring(32)
	res, err := election.Elect(g, "leastel", election.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UniqueLeader() {
		t.Fatal("no unique leader")
	}
	if res.Leaders[0] < 0 || res.Leaders[0] >= g.N() {
		t.Fatal("leader index out of range")
	}
}

func TestAlgorithmsRegistryExposed(t *testing.T) {
	names := election.Algorithms()
	want := []string{"leastel", "dfs", "kingdom", "cluster", "spanner-le",
		"lasvegas", "leastel-estimate", "flood", "trivial"}
	have := strings.Join(names, " ")
	for _, w := range want {
		if !strings.Contains(have, w) {
			t.Errorf("registry missing %q (have %v)", w, names)
		}
	}
	for _, n := range names {
		if _, err := election.Describe(n); err != nil {
			t.Errorf("Describe(%q): %v", n, err)
		}
	}
}

func TestElectEveryRegisteredAlgorithm(t *testing.T) {
	g := election.Hypercube(4)
	for _, algo := range election.Algorithms() {
		ids := election.PermutationIDs(g.N(), election.NewRand(3))
		res, err := election.Elect(g, algo, election.Params{Seed: 3, IDs: ids, MaxRounds: 1 << 16})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if algo != "trivial" && res.LeaderCount() > 1 {
			t.Errorf("%s: %d leaders", algo, res.LeaderCount())
		}
	}
}

func TestLocalModeAndParallel(t *testing.T) {
	g := election.Torus(5, 5)
	a, err := election.Elect(g, "leastel", election.Params{Seed: 2, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := election.Elect(g, "leastel", election.Params{Seed: 2, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || !a.UniqueLeader() || !b.UniqueLeader() {
		t.Errorf("LOCAL/parallel runs diverge: %d vs %d msgs", a.Messages, b.Messages)
	}
}

// TestCustomProtocol verifies the simulator extension point: a user-defined
// protocol written purely against the public facade.
type pingPayload struct{}

func (pingPayload) Bits() int { return 1 }

type pingProto struct{}

func (pingProto) Name() string { return "ping" }
func (pingProto) New(info election.NodeInfo) election.Process {
	return &pingProc{}
}

type pingProc struct{ done bool }

func (p *pingProc) Start(c *election.Context) {}
func (p *pingProc) Round(c *election.Context, inbox []election.Message) {
	if !p.done {
		c.Broadcast(pingPayload{})
		c.Decide(election.NonLeader)
		p.done = true
		return
	}
	c.Halt()
}

func TestCustomProtocol(t *testing.T) {
	g := election.Ring(8)
	res, err := election.Run(election.Config{Graph: g, Seed: 1, MaxRounds: 10}, pingProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 16 {
		t.Errorf("messages = %d, want 16", res.Messages)
	}
}
