// Package election is the public API of the universal leader election
// library: a reproduction of "On the Complexity of Universal Leader
// Election" (Kutten, Pandurangan, Peleg, Robinson, Trehan; PODC 2013 /
// JACM 2015).
//
// It exposes the event-driven network simulator — the synchronous
// CONGEST/LOCAL models and the asynchronous model with deterministic
// delay adversaries — the paper's graph families (including the dumbbell
// and clique-cycle lower-bound constructions), and every algorithm of
// Table 1 behind a string registry:
//
//	g := election.Ring(64)
//	res, err := election.Elect(g, "leastel", election.Params{Seed: 1})
//	if res.UniqueLeader() { ... }
//
// The execution model — mode, asynchronous delay adversary, and the
// seed-deterministic fault adversary (crash-stop, crash-recovery, link
// drops, churn) — is one spec string on Params.Model:
//
//	res, _ := election.Elect(g, "leastel", election.Params{
//		Seed: 1, Model: "async+random:4+crash:0.2",
//	})
//	if res.UniqueLiveLeader() { ... }
//
// The same seed always reproduces the same transcript, faults included.
// Use Algorithms to list the registry and Describe for the paper result
// each name realizes. Custom protocols can be written against the
// simulator types re-exported here (Protocol, Process, Context) and run
// with Run; see the runnable examples.
package election

import (
	"math/rand"

	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/sim"
)

// Re-exported simulator types: everything needed to implement and run a
// custom synchronous message-passing protocol.
type (
	// Graph is a port-numbered undirected network.
	Graph = graph.Graph
	// Result summarizes a run (messages, rounds, statuses, instruments).
	Result = sim.Result
	// Status is a node's election output (Leader / NonLeader / Undecided).
	Status = sim.Status
	// Knowledge declares the a-priori known parameters of a run.
	Knowledge = sim.Knowledge
	// Config is the low-level simulator configuration for Run.
	Config = sim.Config
	// Protocol, Process, Context and Message are the extension points for
	// user-defined algorithms.
	Protocol = sim.Protocol
	Process  = sim.Process
	Context  = sim.Context
	Message  = sim.Message
	// NodeInfo is the static per-node information handed to Protocol.New.
	NodeInfo = sim.NodeInfo
	// Payload is the CONGEST-accounted message content interface.
	Payload = sim.Payload
	// Options tunes the paper's algorithms (candidate budgets, ε, k, …).
	Options = core.Options
)

// Statuses.
const (
	Undecided = sim.Undecided
	Leader    = sim.Leader
	NonLeader = sim.NonLeader
)

// Execution models: the synchronous CONGEST/LOCAL round models and the
// event-driven asynchronous model.
const (
	CONGEST = sim.CONGEST
	LOCAL   = sim.LOCAL
	ASYNC   = sim.ASYNC
)

// DelaySchedule is the asynchronous adversary: a deterministic per-message
// latency assignment used in ASYNC mode.
type DelaySchedule = sim.DelaySchedule

// ModelSpec is a parsed execution model: mode + delay schedule + fault
// schedule. It is the single source of truth for the model axes and
// their constraints; build one with ParseModel.
type ModelSpec = sim.ModelSpec

// FaultSchedule is the fault adversary's parsed, seed-deterministic
// schedule (crash-stop, crash-recovery, link drops, churn); build one
// with ParseFaults.
type FaultSchedule = sim.FaultSchedule

// Asynchronous delay schedules (ASYNC mode).
var (
	// UnitDelay delivers every message after exactly one tick.
	UnitDelay = sim.UnitDelay
	// RandomDelay draws each message's latency from [1, bound] (non-FIFO).
	RandomDelay = sim.RandomDelay
	// FIFODelay fixes a latency in [1, bound] per directed link (FIFO).
	FIFODelay = sim.FIFODelay
	// ParseDelay resolves "unit", "random:B" or "fifo:B" spec strings.
	ParseDelay = sim.ParseDelay
	// ParseModel resolves a full execution-model spec ("async+random:4",
	// "crash:0.2", ...) — the grammar every layer shares.
	ParseModel = sim.ParseModel
	// ParseFaults resolves a fault-schedule spec ("crash:0.2",
	// "crashrec:0.1:32:keep+drop:0.05", ...).
	ParseFaults = sim.ParseFaults
)

// WakeOnMessage marks a node that sleeps until the first message arrives.
const WakeOnMessage = sim.WakeOnMessage

// Graph family constructors (see internal/graph for details).
var (
	Path     = graph.Path
	Ring     = graph.Ring
	Star     = graph.Star
	Complete = graph.Complete
	Grid     = graph.Grid
	Torus    = graph.Torus
	// Hypercube builds the d-dimensional hypercube on 2^d nodes.
	Hypercube = graph.Hypercube
	// RandomConnected builds a connected graph with exactly n nodes and m
	// edges.
	RandomConnected = graph.RandomConnected
	// NewFromEdges builds a graph from an explicit edge list.
	NewFromEdges = graph.NewFromEdges
	// NewLollipop and NewDumbbell build the Theorem 3.1 lower-bound
	// family; NewCliqueCycle builds the Figure 1 construction.
	NewLollipop    = graph.NewLollipop
	NewDumbbell    = graph.NewDumbbell
	NewCliqueCycle = graph.NewCliqueCycle
)

// ID assignment helpers.
var (
	// RandomIDs draws n distinct identifiers from [1, n^4].
	RandomIDs = sim.RandomIDs
	// PermutationIDs assigns 1..n in random order.
	PermutationIDs = sim.PermutationIDs
	// SequentialIDs assigns base..base+n-1 in node order.
	SequentialIDs = sim.SequentialIDs
)

// Params configures one election run.
type Params struct {
	// Seed drives ID assignment and all node coins (default 0).
	Seed int64
	// IDs overrides the generated assignment; nil draws RandomIDs.
	IDs []int64
	// Anonymous removes identifiers (randomized algorithms only).
	Anonymous bool
	// D passes the known diameter (0 = compute exactly when required).
	D int
	// MaxRounds bounds the run (0 = simulator default).
	MaxRounds int
	// Model is the execution-model spec: mode, delay schedule and fault
	// schedule in one string — "local", "async+random:4", "crash:0.2",
	// "async+fifo:8+crashrec:0.1:32+drop:0.05", ... See sim.ParseModel
	// (re-exported as ParseModel) for the grammar and the axis
	// constraints; that doc is the single source of truth. Empty means
	// CONGEST, unless one of the deprecated fields below is set.
	Model string
	// Local switches to the LOCAL model (unbounded messages).
	//
	// Deprecated: use Model ("local"). Ignored when Model is non-empty;
	// otherwise equivalent by the pinned shim mapping (Async wins over
	// Local).
	Local bool
	// Async switches to the event-driven asynchronous model.
	//
	// Deprecated: use Model ("async"). Ignored when Model is non-empty.
	Async bool
	// Delay is the ASYNC message-delay schedule spec.
	//
	// Deprecated: use Model ("async+random:4", ...). Ignored when Model
	// is non-empty.
	Delay string
	// Parallel uses the multi-core engine.
	Parallel bool
	// Shards partitions the simulation into concurrently stepped node
	// shards. Any value produces byte-identical results; 0/1 runs
	// single-sharded and negative auto-sizes to the core count. See
	// sim.Config.Shards.
	Shards int
	// Wake is the wake-up schedule (nil = simultaneous round 1).
	Wake []int
	// Opt tunes algorithm parameters.
	Opt Options
}

// Elect runs the named algorithm (see Algorithms) on g.
func Elect(g *Graph, algorithm string, p Params) (*Result, error) {
	ro := core.RunOpts{
		Seed:      p.Seed,
		IDs:       p.IDs,
		Anonymous: p.Anonymous,
		D:         p.D,
		MaxRounds: p.MaxRounds,
		Parallel:  p.Parallel,
		Shards:    p.Shards,
		Wake:      p.Wake,
		Opt:       p.Opt,
	}
	if p.Model != "" {
		m, err := sim.ParseModel(p.Model)
		if err != nil {
			return nil, err
		}
		ro.Model = m
	} else {
		// Deprecated-shim mapping, pinned by TestParamShimEquivalence.
		switch {
		case p.Async:
			ro.Mode = sim.ASYNC
		case p.Local:
			ro.Mode = sim.LOCAL
		default:
			ro.Mode = sim.CONGEST
		}
		ro.Delay = p.Delay
	}
	return core.Run(g, algorithm, ro)
}

// Run executes an arbitrary protocol under the low-level simulator
// configuration; use it for custom protocols built on the re-exported
// simulator types.
func Run(cfg Config, proto Protocol) (*Result, error) {
	return sim.Run(cfg, proto)
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string { return core.Names() }

// Describe returns a one-line description (paper result + summary) of a
// registered algorithm.
func Describe(name string) (string, error) { return core.Describe(name) }

// NewRand returns a seeded rand.Rand for graph/ID generation, so that
// examples and downstream code reproduce exactly.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
