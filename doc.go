// Package ule is a from-scratch Go reproduction of "On the Complexity of
// Universal Leader Election" (Kutten, Pandurangan, Peleg, Robinson, Trehan;
// PODC 2013 / JACM 62(1), 2015): an event-driven network simulator covering
// the synchronous CONGEST/LOCAL models and the asynchronous model under
// deterministic delay adversaries, every algorithm of the paper's Table 1,
// both lower-bound graph constructions, and benchmark harnesses that
// regenerate each claimed complexity shape.
//
// Start with the public API in ule/election (its godoc carries runnable
// examples); the per-experiment benchmarks live in bench_test.go at this
// root. Experiment sweeps — many (algorithm, graph, seed, mode, wake
// schedule, delay schedule) configurations executed in parallel with
// machine-readable JSON/CSV output — run through ule/internal/harness (see
// docs/SWEEP_SCHEMA.md and cmd/ule-experiments -sweep). docs/ARCHITECTURE.md
// maps the packages and the event-driven engine; docs/PAPER_MAP.md maps the
// paper's results onto the code.
package ule
