// Benchmarks regenerating every table/figure of the paper (see DESIGN.md
// §5 for the experiment index E1–E15). Each benchmark reports the paper's
// claimed quantity as custom metrics (msgs/m, rounds/D, normalized by the
// claimed bound) so that `go test -bench=. -benchmem` reproduces Table 1's
// shape directly.
package ule

import (
	"fmt"
	"math/rand"
	"testing"

	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/lowerbound"
	"ule/internal/sim"
)

// benchElect runs one election per iteration and reports normalized
// message/time metrics.
func benchElect(b *testing.B, g *graph.Graph, algo string, d int, msgDenom, timeDenom float64, smallIDs bool, opt core.Options) {
	b.Helper()
	var msgs, rounds, succ float64
	for i := 0; i < b.N; i++ {
		seed := int64(i) + 1
		var ids []int64
		if smallIDs {
			ids = sim.PermutationIDs(g.N(), rand.New(rand.NewSource(seed)))
		}
		res, err := core.Run(g, algo, core.RunOpts{
			Seed: seed, IDs: ids, D: d, MaxRounds: 1 << 19, Opt: opt,
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
		rounds += float64(res.LastActive)
		if res.UniqueLeader() {
			succ++
		}
	}
	n := float64(b.N)
	b.ReportMetric(msgs/n/msgDenom, "msgs/bound")
	b.ReportMetric(rounds/n/timeDenom, "rounds/bound")
	b.ReportMetric(succ/n, "success")
}

func log2of(n int) float64 {
	l := 1.0
	for v := 2; v < n; v *= 2 {
		l++
	}
	return l
}

func mustRandom(b *testing.B, n, m int, seed int64) *graph.Graph {
	b.Helper()
	g, err := graph.RandomConnected(n, m, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- Lower bounds -----------------------------------------------------

// BenchmarkLB_MessagesDumbbell (E1, Theorem 3.1): msgs/m on dumbbells must
// stay >= a positive constant for every universal algorithm.
func BenchmarkLB_MessagesDumbbell(b *testing.B) {
	for _, algo := range []string{"leastel", "leastel-const", "flood", "kingdom"} {
		b.Run(algo, func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			var ratio float64
			for i := 0; i < b.N; i++ {
				db, kappa, err := lowerbound.DumbbellInstance(24, 200, rng)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(db.Graph, algo, core.RunOpts{
					Seed: int64(i), IDs: sim.PermutationIDs(db.N(), rng),
					D: 2*(24-kappa) + 1, MaxRounds: 1 << 19,
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio += float64(res.Messages) / float64(db.M())
			}
			b.ReportMetric(ratio/float64(b.N), "msgs/m")
		})
	}
}

// BenchmarkLB_BridgeCrossing (E2, Lemma 3.5): messages precede the first
// bridge crossing.
func BenchmarkLB_BridgeCrossing(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var before, cross float64
	for i := 0; i < b.N; i++ {
		db, kappa, err := lowerbound.DumbbellInstance(24, 200, rng)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(db.Graph, "leastel-const", core.RunOpts{
			Seed: int64(i), IDs: sim.RandomIDs(db.N(), rng),
			D: 2*(24-kappa) + 1, MaxRounds: 1 << 19, WatchEdges: db.Bridges[:],
		})
		if err != nil {
			b.Fatal(err)
		}
		before += float64(res.MessagesBeforeCrossing)
		for _, r := range res.FirstCrossing {
			cross += float64(r) / 2
		}
	}
	b.ReportMetric(before/float64(b.N), "msgsBeforeCross")
	b.ReportMetric(cross/float64(b.N), "crossRound")
}

// BenchmarkLB_TimeCliqueCycle (E3, Theorem 3.13 / Figure 1): rounds/D on
// the clique-cycle stays >= a positive constant.
func BenchmarkLB_TimeCliqueCycle(b *testing.B) {
	for _, algo := range []string{"leastel", "flood", "lasvegas"} {
		b.Run(algo, func(b *testing.B) {
			cc, err := graph.NewCliqueCycle(96, 24)
			if err != nil {
				b.Fatal(err)
			}
			d := cc.DiameterExact()
			benchElect(b, cc.Graph, algo, d, float64(cc.M()), float64(d), false, core.Options{})
		})
	}
}

// BenchmarkTrivialSuccess (E4, §1): zero messages, ~1/e success.
func BenchmarkTrivialSuccess(b *testing.B) {
	g := graph.Ring(256)
	var succ float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(g, "trivial", core.RunOpts{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.UniqueLeader() {
			succ++
		}
	}
	b.ReportMetric(succ/float64(b.N), "success")
}

// BenchmarkLB_Broadcast (E5, Corollary 3.12): flooding broadcast pays
// Θ(m) messages on dumbbells.
func BenchmarkLB_Broadcast(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	row, err := lowerbound.BroadcastLB(24, 200, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = row
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := lowerbound.BroadcastLB(24, 200, 1, rng.Int63())
		if err != nil {
			b.Fatal(err)
		}
		ratio += r.MsgsPerM.Mean
	}
	b.ReportMetric(ratio/float64(b.N), "msgs/m")
}

// --- Upper bounds (one per Table 1 row) -------------------------------

// BenchmarkThm41_DFS (E6): O(m) messages.
func BenchmarkThm41_DFS(b *testing.B) {
	g := mustRandom(b, 96, 400, 2)
	benchElect(b, g, "dfs", 0, float64(g.M()), 1, true, core.Options{})
}

// BenchmarkThm44_LeastEl (E7): O(m·min(log f, D)) messages, O(D) time.
func BenchmarkThm44_LeastEl(b *testing.B) {
	g := mustRandom(b, 256, 1500, 3)
	d := g.DiameterExact()
	benchElect(b, g, "leastel", d, float64(g.M())*log2of(g.N()), float64(d), false, core.Options{})
}

// BenchmarkThm44A (E8): O(m·log log n) messages.
func BenchmarkThm44A(b *testing.B) {
	g := mustRandom(b, 256, 1500, 3)
	d := g.DiameterExact()
	benchElect(b, g, "leastel-loglog", d, float64(g.M())*log2of(int(log2of(g.N()))), float64(d), false, core.Options{})
}

// BenchmarkThm44B (E9): O(m) messages, success >= 1-eps.
func BenchmarkThm44B(b *testing.B) {
	g := mustRandom(b, 256, 1500, 3)
	d := g.DiameterExact()
	benchElect(b, g, "leastel-const", d, float64(g.M()), float64(d), false, core.Options{Epsilon: 0.1})
}

// BenchmarkCor42_Spanner (E10): O(m) messages and O(D) time on dense
// graphs (m ≈ n^1.75 here).
func BenchmarkCor42_Spanner(b *testing.B) {
	n := 128
	g := mustRandom(b, n, n*(n-1)/4, 4)
	d := g.DiameterExact()
	benchElect(b, g, "spanner-le", d, float64(g.M()), float64(d), false, core.Options{SpannerK: 2})
}

// BenchmarkCor45_Estimate (E11): no knowledge of n, O(m·log n) messages.
func BenchmarkCor45_Estimate(b *testing.B) {
	g := mustRandom(b, 256, 1200, 5)
	d := g.DiameterExact()
	benchElect(b, g, "leastel-estimate", d, float64(g.M())*log2of(g.N()), float64(d), false, core.Options{})
}

// BenchmarkCor46_LasVegas (E12): expected O(m) messages and O(D) time.
func BenchmarkCor46_LasVegas(b *testing.B) {
	g := graph.Ring(128)
	benchElect(b, g, "lasvegas", 64, float64(g.M()), 64, false, core.Options{})
}

// BenchmarkThm47_Cluster (E13): O(m + n·log n) messages, O(D·log n) time.
func BenchmarkThm47_Cluster(b *testing.B) {
	g := mustRandom(b, 256, 1500, 6)
	d := g.DiameterExact()
	denom := float64(g.M()) + float64(g.N())*log2of(g.N())
	benchElect(b, g, "cluster", d, denom, float64(d)*log2of(g.N()), false, core.Options{})
}

// BenchmarkThm410_Kingdom (E14): O(m·log n) messages, O(D·log n) time,
// deterministic, no knowledge.
func BenchmarkThm410_Kingdom(b *testing.B) {
	g := mustRandom(b, 192, 800, 7)
	d := g.DiameterExact()
	benchElect(b, g, "kingdom", d, float64(g.M())*log2of(g.N()), float64(d)*log2of(g.N()), true, core.Options{})
}

// BenchmarkTable1 (E15): head-to-head on one graph; raw msgs/m and rounds.
func BenchmarkTable1(b *testing.B) {
	g := mustRandom(b, 128, 640, 8)
	d := g.DiameterExact()
	for _, algo := range core.Names() {
		b.Run(algo, func(b *testing.B) {
			benchElect(b, g, algo, d, float64(g.M()), float64(d), true, core.Options{})
		})
	}
}

// --- Ablations (DESIGN.md §6) ------------------------------------------

// BenchmarkAblation_CandidateSampling sweeps the success/message trade-off
// of f(n) — the paper's §5 open question about the precise trade-off.
func BenchmarkAblation_CandidateSampling(b *testing.B) {
	g := mustRandom(b, 256, 1024, 9)
	for _, fscale := range []float64{0.5, 1, 2, 4} {
		b.Run(fscaleName(fscale), func(b *testing.B) {
			benchElect(b, g, "leastel-const", 0, float64(g.M()), 1, false,
				core.Options{Epsilon: 0.1, FScale: fscale})
		})
	}
}

func fscaleName(f float64) string {
	switch {
	case f < 1:
		return "f-half"
	case f == 1:
		return "f-1x"
	case f == 2:
		return "f-2x"
	default:
		return "f-4x"
	}
}

// BenchmarkAblation_SpannerK sweeps the Baswana–Sen parameter: larger k
// means a sparser spanner but more construction rounds and stretch.
func BenchmarkAblation_SpannerK(b *testing.B) {
	n := 128
	g := mustRandom(b, n, n*(n-1)/4, 10)
	d := g.DiameterExact()
	for _, k := range []int{2, 3, 4} {
		b.Run(string(rune('0'+k)), func(b *testing.B) {
			benchElect(b, g, "spanner-le", d, float64(g.M()), float64(d), false, core.Options{SpannerK: k})
		})
	}
}

// --- Engine: event-driven scheduler vs legacy dense loop ----------------

// waveMsg/waveProto is the canonical sparse-activity workload: one node
// wakes spontaneously (adversarial wake-up), a one-shot wave crosses the
// graph, and every node halts right after forwarding it. At any moment
// only the wavefront is active, so the event-driven engine touches O(1)
// nodes per round while the dense loop scans all n.
type waveMsg struct{}

func (waveMsg) Bits() int { return 1 }

// waveTok is the singleton wave payload (field-less payloads are sent as
// package-level singletons; see docs/PERFORMANCE.md).
var waveTok sim.Payload = waveMsg{}

type waveProto struct{}

func (waveProto) Name() string                 { return "wave" }
func (waveProto) New(sim.NodeInfo) sim.Process { return &waveProc{} }

type waveProc struct{ done bool }

func (p *waveProc) Start(c *sim.Context) {
	if c.SpontaneousWake() {
		p.done = true
		c.Broadcast(waveTok)
		c.Decide(sim.NonLeader)
		c.Halt()
	}
}

func (p *waveProc) Round(c *sim.Context, inbox []sim.Message) {
	if !p.done {
		p.done = true
		c.BroadcastExcept(inbox[0].Port, waveTok)
		c.Decide(sim.NonLeader)
	}
	c.Halt()
}

// adversarialWake wakes only node 0; everyone else sleeps until a message
// arrives.
func adversarialWake(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = sim.WakeOnMessage
	}
	w[0] = 1
	return w
}

// BenchmarkEngineSparse_WaveRing4096 is the headline sparse-activity
// comparison: adversarial wake-up on ring:4096, event engine vs the seed's
// dense per-round loop (identical results, different wall-clock). Recorded
// in BENCH_EVENT_ENGINE.json.
func BenchmarkEngineSparse_WaveRing4096(b *testing.B) {
	g := graph.Ring(4096)
	wake := adversarialWake(g.N())
	for _, engine := range []string{"dense", "event"} {
		b.Run(engine, func(b *testing.B) {
			r, err := sim.NewRunner(g)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := r.Run(sim.Config{
					Seed: int64(i), Wake: wake, DenseLoop: engine == "dense",
				}, waveProto{})
				if err != nil {
					b.Fatal(err)
				}
				// Node 0 sends 2, every other node forwards once: n+1 total.
				if !res.Halted || res.Messages != int64(g.N()+1) {
					b.Fatalf("wave broken: halted=%v messages=%d", res.Halted, res.Messages)
				}
			}
		})
	}
}

// BenchmarkEngineSparse_LeastelAdversarial runs a registered algorithm
// under adversarial wake-up on ring:4096: the awake set grows gradually,
// so the event engine skips the still-sleeping half of the ring that the
// dense loop keeps scanning.
func BenchmarkEngineSparse_LeastelAdversarial(b *testing.B) {
	g := graph.Ring(4096)
	wake := adversarialWake(g.N())
	for _, engine := range []string{"dense", "event"} {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, "leastel", core.RunOpts{
					Seed: int64(i), Wake: wake, MaxRounds: 1 << 15,
					DenseLoop: engine == "dense",
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.UniqueLeader() {
					b.Fatal("election failed")
				}
			}
		})
	}
}

// BenchmarkEngineWarm_LeastelAdversarial is the steady-state variant of
// the sparse comparison: one Prepared — a warm sim.Runner plus a recycled
// Result — serves every iteration, so the per-op numbers are pure fast
// path (message arenas, pooled payloads, timing wheel) with no Runner or
// Result construction. Recorded in BENCH_ALLOC_FASTPATH.json.
func BenchmarkEngineWarm_LeastelAdversarial(b *testing.B) {
	g := graph.Ring(4096)
	wake := adversarialWake(g.N())
	prep, err := core.Prepare(g, "leastel")
	if err != nil {
		b.Fatal(err)
	}
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := prep.RunInto(core.RunOpts{Seed: int64(i), Wake: wake, MaxRounds: 1 << 15}, &res)
		if err != nil {
			b.Fatal(err)
		}
		if !res.UniqueLeader() {
			b.Fatal("election failed")
		}
	}
}

// BenchmarkEngineAsync measures the event engine in ASYNC mode under each
// delay adversary (there is no dense-loop equivalent to compare against).
func BenchmarkEngineAsync(b *testing.B) {
	g := mustRandom(b, 512, 2048, 12)
	for _, delay := range []string{"unit", "random:8", "fifo:8"} {
		b.Run(delay, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, "leastel-const", core.RunOpts{
					Seed: int64(i), Mode: sim.ASYNC, Delay: delay, MaxRounds: 1 << 18,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.LeaderCount() == 0 {
					b.Fatal("no leader under async adversary")
				}
			}
		})
	}
}

// BenchmarkEngineFaults measures the fault adversary's overhead on the
// warm fast path: one Prepared (recycled Runner, Result and faultState)
// across iterations, leastel on ring:4096 under each fault class. The
// "none" row is the fault-free baseline — its inner loop never touches
// the fault subsystem, so the delta is the real price of each adversary
// (see BENCH_FAULTS.json for the checked-in measurement).
func BenchmarkEngineFaults(b *testing.B) {
	g := graph.Ring(4096)
	wake := adversarialWake(g.N())
	for _, fault := range []string{"none", "crash:0.1", "crashrec:0.1:64", "drop:0.05", "churn:0.1:256"} {
		m, err := sim.ParseModel(fault)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fault, func(b *testing.B) {
			prep, err := core.Prepare(g, "leastel")
			if err != nil {
				b.Fatal(err)
			}
			var res sim.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := prep.RunInto(core.RunOpts{
					Seed: int64(i), Wake: wake, MaxRounds: 1 << 15, Model: m,
				}, &res)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds == 0 {
					b.Fatal("run executed no rounds")
				}
			}
		})
	}
}

// BenchmarkEngineParallel compares the sequential and goroutine engines on
// a large instance (identical results, different wall-clock).
func BenchmarkEngineParallel(b *testing.B) {
	g := mustRandom(b, 1024, 8192, 11)
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, "leastel", core.RunOpts{
					Seed: int64(i), Parallel: par, MaxRounds: 1 << 18,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.UniqueLeader() {
					b.Fatal("election failed")
				}
			}
		})
	}
}

// BenchmarkGraphMillionNodeWave is the scale probe the CSR topology core
// unlocks: build ring:1048576, stand up a Runner (O(n) now — the borrowed
// reverse-port table replaced the O(Σ deg²) PortTo scans), and push one
// wave across the million-node ring through the event engine. Recorded in
// BENCH_GRAPH_CSR.json.
func BenchmarkGraphMillionNodeWave(b *testing.B) {
	const n = 1 << 20
	g := graph.Ring(n)
	wake := adversarialWake(n)
	r, err := sim.NewRunner(g)
	if err != nil {
		b.Fatal(err)
	}
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RunInto(sim.Config{Seed: int64(i), Wake: wake, MaxRounds: n}, waveProto{}, &res); err != nil {
			b.Fatal(err)
		}
		if !res.Halted || res.Messages != int64(n+1) {
			b.Fatalf("wave broken: halted=%v messages=%d", res.Halted, res.Messages)
		}
	}
}

// BenchmarkEngineSharded is the sharded-engine scale probe: the
// million-node ring wave of BenchmarkGraphMillionNodeWave, split across
// 1/2/4/8 contiguous node shards. The transcript is byte-identical at
// every count (the determinism matrix pins that); what this measures is
// the wall-clock of the tick-barrier protocol — on a multi-core host the
// wave time drops roughly linearly with shards until the per-tick
// barrier dominates, and on a single-core host the single-shard inline
// path and the sharded path must cost the same (the engine skips the
// shard pool when GOMAXPROCS == 1). Recorded in BENCH_SHARDED_ENGINE.json
// via `make bench-shard`.
func BenchmarkEngineSharded(b *testing.B) {
	const n = 1 << 20
	g := graph.Ring(n)
	wake := adversarialWake(n)
	r, err := sim.NewRunner(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ring1M/shards=%d", shards), func(b *testing.B) {
			var res sim.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{Seed: int64(i), Wake: wake, MaxRounds: n, Shards: shards}
				if err := r.RunInto(cfg, waveProto{}, &res); err != nil {
					b.Fatal(err)
				}
				if !res.Halted || res.Messages != int64(n+1) {
					b.Fatalf("wave broken: halted=%v messages=%d", res.Halted, res.Messages)
				}
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "rounds/s")
		})
	}
}

// BenchmarkEngineSharded10M is the 10-million-node run: one wave over
// ring:10000000 through the sharded engine at 8 shards. It exists to
// prove the engine's O(n) setup and O(1)-per-tick scheduling hold an
// order of magnitude past the million-node probe; run with
// -benchtime=1x (the bench-shard target does).
func BenchmarkEngineSharded10M(b *testing.B) {
	const n = 10_000_000
	g := graph.Ring(n)
	wake := adversarialWake(n)
	r, err := sim.NewRunner(g)
	if err != nil {
		b.Fatal(err)
	}
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Seed: int64(i), Wake: wake, MaxRounds: n, Shards: 8}
		if err := r.RunInto(cfg, waveProto{}, &res); err != nil {
			b.Fatal(err)
		}
		if !res.Halted || res.Messages != int64(n+1) {
			b.Fatalf("wave broken: halted=%v messages=%d", res.Halted, res.Messages)
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "rounds/s")
}

// BenchmarkEngineThroughput measures raw simulator speed (node-rounds/s).
func BenchmarkEngineThroughput(b *testing.B) {
	g := graph.Torus(32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, "leastel-const", core.RunOpts{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
