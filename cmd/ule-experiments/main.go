// Command ule-experiments regenerates every table and figure of the
// paper's evaluation as markdown tables (the source of EXPERIMENTS.md):
//
//	E1  Theorem 3.1   Ω(m) messages on dumbbells (all algorithms)
//	E2  Lemma 3.5     bridge-crossing instrument
//	E3  Theorem 3.13  Ω(D) time on clique-cycles (Figure 1) + truncation
//	E4  §1            trivial 1/n algorithm success ≈ 1/e
//	E5  Cor 3.12      Ω(m) broadcast on dumbbells
//	E6–E14            one upper-bound sweep per Table 1 row
//	E15 Table 1       head-to-head synthesis on a common graph set
//
// Use -quick for a reduced sweep (CI-sized), -csv for machine output.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/lowerbound"
	"ule/internal/sim"
	"ule/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ule-experiments:", err)
		os.Exit(1)
	}
}

type harness struct {
	quick  bool
	seed   int64
	trials int
	csv    bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("ule-experiments", flag.ContinueOnError)
	var (
		quick = fs.Bool("quick", false, "reduced sweep sizes")
		seed  = fs.Int64("seed", 42, "base seed")
		csv   = fs.Bool("csv", false, "emit CSV instead of markdown")
		only  = fs.String("only", "", "run a single experiment id (e.g. E3)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	h := &harness{quick: *quick, seed: *seed, trials: 10, csv: *csv}
	if *quick {
		h.trials = 3
	}
	type exp struct {
		id  string
		fn  func() (*stats.Table, error)
		ann string
	}
	exps := []exp{
		{"E1", h.e1MessageLB, "Thm 3.1: every universal algorithm pays Ω(m) messages on dumbbells (msgs/m stays ≥ ~1 as m grows)"},
		{"E2", h.e2Bridge, "Lemma 3.5: elections must cross a bridge; messages precede the crossing"},
		{"E3", h.e3TimeLB, "Thm 3.13 / Fig. 1: rounds/D stays ≥ ~1 on clique-cycles; truncated budgets kill success"},
		{"E4", h.e4Trivial, "§1: the 1/n self-election succeeds w.p. ≈ 1/e at zero messages"},
		{"E5", h.e5Broadcast, "Cor 3.12: flooding broadcast costs Θ(m) (≈2 msgs/edge) on dumbbells"},
		{"E6", h.e6DFS, "Thm 4.1: msgs/m bounded by a constant; time grows exponentially with min ID"},
		{"E7", h.e7LeastElF, "Thm 4.4: messages scale with m·log f(n); success rises with f(n)"},
		{"E8", h.e8LogLog, "Thm 4.4.(A): msgs/(m·log log n) bounded, success whp"},
		{"E9", h.e9Const, "Thm 4.4.(B): msgs/m bounded; success ≥ 1−ε across ε"},
		{"E10", h.e10Spanner, "Cor 4.2: on dense graphs spanner+LE gets O(m) msgs and O(D) time"},
		{"E11", h.e11Estimate, "Cor 4.5: no knowledge of n; msgs/(m·log n) bounded; prob 1"},
		{"E12", h.e12LasVegas, "Cor 4.6: expected O(D) time / O(m) msgs with restarts"},
		{"E13", h.e13Cluster, "Thm 4.7: msgs/(m+n log n) bounded; time O(D log n)"},
		{"E14", h.e14Kingdom, "Thm 4.10: deterministic, msgs/(m log n) and rounds/(D log n) bounded"},
		{"E15", h.e15Table1, "Table 1 head-to-head on a common graph"},
	}
	for _, e := range exps {
		if *only != "" && e.id != *only {
			continue
		}
		t, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if h.csv {
			fmt.Printf("# %s\n%s\n", e.id, t.CSV())
		} else {
			fmt.Printf("%s\n*%s*\n\n", t.Markdown(), e.ann)
		}
	}
	return nil
}

func (h *harness) sizes(quickSizes, fullSizes []int) []int {
	if h.quick {
		return quickSizes
	}
	return fullSizes
}

// e1: Ω(m) message lower bound across algorithms and densities.
func (h *harness) e1MessageLB() (*stats.Table, error) {
	t := stats.NewTable("E1 — Thm 3.1: messages/m on dumbbell graphs",
		"algo", "n(total)", "m(total)", "D", "msgs/m min", "msgs/m mean", "success")
	algos := []string{"leastel", "leastel-const", "flood", "cluster", "kingdom", "lasvegas", "leastel-estimate"}
	type sz struct{ n, m int }
	var cfgs []sz
	if h.quick {
		cfgs = []sz{{16, 60}, {24, 140}}
	} else {
		cfgs = []sz{{16, 60}, {24, 140}, {32, 300}, {48, 700}, {64, 1200}}
	}
	for _, algo := range algos {
		for _, cfg := range cfgs {
			row, err := lowerbound.MessageLB(cfg.n, cfg.m, lowerbound.Sweep{
				Algo: algo, Trials: h.trials, Seed: h.seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, 2*cfg.n, 2*cfg.m, row.D, row.MsgsPerM.Min, row.MsgsPerM.Mean, row.SuccessRate)
		}
	}
	return t, nil
}

func (h *harness) e2Bridge() (*stats.Table, error) {
	t := stats.NewTable("E2 — Lemma 3.5: bridge crossing instrument (dumbbells)",
		"algo", "n(total)", "m(total)", "cross round mean", "msgs before cross mean", "success")
	for _, algo := range []string{"leastel", "leastel-const", "kingdom"} {
		for _, cfg := range [][2]int{{16, 100}, {32, 300}} {
			row, err := lowerbound.MessageLB(cfg[0], cfg[1], lowerbound.Sweep{
				Algo: algo, Trials: h.trials, Seed: h.seed + 1,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, 2*cfg[0], 2*cfg[1], row.CrossRound.Mean, row.BeforeCross.Mean, row.SuccessRate)
		}
	}
	return t, nil
}

func (h *harness) e3TimeLB() (*stats.Table, error) {
	t := stats.NewTable("E3 — Thm 3.13 / Figure 1: rounds/D on clique-cycles + truncated budgets",
		"algo", "n", "D", "rounds/D min", "rounds/D mean", "success", "succ@0.25D", "succ@0.5D")
	ds := h.sizes([]int{8, 16}, []int{8, 16, 32, 64})
	for _, algo := range []string{"leastel", "flood", "lasvegas", "kingdom-d"} {
		for _, d := range ds {
			row, err := lowerbound.TimeLB(4*d, d, lowerbound.Sweep{Algo: algo, Trials: h.trials, Seed: h.seed})
			if err != nil {
				return nil, err
			}
			t25, err := lowerbound.TruncatedSuccess(4*d, d, 0.25, lowerbound.Sweep{Algo: algo, Trials: h.trials, Seed: h.seed})
			if err != nil {
				return nil, err
			}
			t50, err := lowerbound.TruncatedSuccess(4*d, d, 0.5, lowerbound.Sweep{Algo: algo, Trials: h.trials, Seed: h.seed})
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, row.N, row.D, row.RoundsPerD.Min, row.RoundsPerD.Mean,
				row.SuccessRate, t25.SuccessRate, t50.SuccessRate)
		}
	}
	return t, nil
}

func (h *harness) e4Trivial() (*stats.Table, error) {
	t := stats.NewTable("E4 — §1: the zero-message 1/n self-election",
		"n", "trials", "success", "1/e", "messages")
	trials := 2000
	if h.quick {
		trials = 300
	}
	for _, n := range h.sizes([]int{64}, []int{32, 64, 128, 256, 512}) {
		row, err := lowerbound.TrivialSuccess(n, trials, h.seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, row.Trials, row.SuccessRate, 0.368, row.Messages)
	}
	return t, nil
}

func (h *harness) e5Broadcast() (*stats.Table, error) {
	t := stats.NewTable("E5 — Cor 3.12: flooding broadcast messages/m on dumbbells",
		"n(total)", "m(total)", "msgs/m mean", "majority ok", "rounds mean")
	type sz struct{ n, m int }
	var cfgs []sz
	if h.quick {
		cfgs = []sz{{16, 60}}
	} else {
		cfgs = []sz{{16, 60}, {24, 140}, {32, 300}, {64, 1200}}
	}
	for _, cfg := range cfgs {
		row, err := lowerbound.BroadcastLB(cfg.n, cfg.m, h.trials, h.seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.N, 2*cfg.m, row.MsgsPerM.Mean, row.MajorityOK, row.MeanRounds)
	}
	return t, nil
}

// sweepRow runs an algorithm over trials on one graph and returns the
// per-trial message and active-round summaries plus the success rate.
func (h *harness) sweepRow(g *graph.Graph, algo string, d int, opt core.Options, smallIDs bool) (stats.Summary, stats.Summary, float64, error) {
	var msgs, rounds []float64
	succ := 0
	for i := 0; i < h.trials; i++ {
		s := h.seed + int64(i)*7919
		var ids []int64
		if smallIDs {
			ids = sim.PermutationIDs(g.N(), rand.New(rand.NewSource(s))) //nolint:gosec
		}
		res, err := core.Run(g, algo, core.RunOpts{
			Seed: s, IDs: ids, D: d, MaxRounds: 1 << 18, Opt: opt,
		})
		if err != nil {
			return stats.Summary{}, stats.Summary{}, 0, err
		}
		msgs = append(msgs, float64(res.Messages))
		rounds = append(rounds, float64(res.LastActive))
		if res.UniqueLeader() {
			succ++
		}
	}
	return stats.Summarize(msgs), stats.Summarize(rounds), float64(succ) / float64(h.trials), nil
}

func log2f(n int) float64 {
	l := 1.0
	for v := 2; v < n; v *= 2 {
		l++
	}
	return l
}

func (h *harness) e6DFS() (*stats.Table, error) {
	t := stats.NewTable("E6 — Thm 4.1: DFS election messages/m and exponential time in min ID",
		"graph", "n", "m", "msgs/m mean", "rounds (minID=1)", "rounds (minID=3)", "rounds (minID=5)")
	rng := rand.New(rand.NewSource(h.seed))
	for _, n := range h.sizes([]int{24}, []int{24, 48, 96}) {
		g, err := graph.RandomConnected(n, 4*n, rng)
		if err != nil {
			return nil, err
		}
		ms, _, _, err := h.sweepRow(g, "dfs", 0, core.Options{}, true)
		if err != nil {
			return nil, err
		}
		var at [3]float64
		for i, minID := range []int64{1, 3, 5} {
			res, err := core.Run(g, "dfs", core.RunOpts{
				Seed: h.seed, IDs: sim.SequentialIDs(n, minID), MaxRounds: 1 << 19,
			})
			if err != nil {
				return nil, err
			}
			at[i] = float64(res.Rounds)
		}
		t.AddRow("random", n, g.M(), ms.Mean/float64(g.M()), at[0], at[1], at[2])
	}
	return t, nil
}

func (h *harness) e7LeastElF() (*stats.Table, error) {
	t := stats.NewTable("E7 — Thm 4.4: messages and success vs candidate budget f(n)",
		"f(n)", "n", "m", "msgs mean", "msgs/m", "rounds mean", "success")
	rng := rand.New(rand.NewSource(h.seed + 2))
	n := 256
	if h.quick {
		n = 96
	}
	g, err := graph.RandomConnected(n, 6*n, rng)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		label string
		algo  string
		opt   core.Options
	}{
		{"n (all)", "leastel", core.Options{}},
		{"log n", "leastel-loglog", core.Options{}},
		{"4ln(1/0.1)", "leastel-const", core.Options{Epsilon: 0.1}},
		{"4ln(1/0.5)", "leastel-const", core.Options{Epsilon: 0.5}},
	} {
		ms, rs, succ, err := h.sweepRow(g, row.algo, 0, row.opt, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.label, n, g.M(), ms.Mean, ms.Mean/float64(g.M()), rs.Mean, succ)
	}
	return t, nil
}

func (h *harness) e8LogLog() (*stats.Table, error) {
	t := stats.NewTable("E8 — Thm 4.4.(A): msgs/(m·log log n) with f(n)=log n",
		"n", "m", "msgs mean", "msgs/(m·loglog n)", "rounds/D", "success")
	rng := rand.New(rand.NewSource(h.seed + 3))
	for _, n := range h.sizes([]int{64, 128}, []int{64, 128, 256, 512}) {
		g, err := graph.RandomConnected(n, 5*n, rng)
		if err != nil {
			return nil, err
		}
		d := g.DiameterExact()
		ms, rs, succ, err := h.sweepRow(g, "leastel-loglog", d, core.Options{}, false)
		if err != nil {
			return nil, err
		}
		ll := log2f(int(log2f(n)))
		t.AddRow(n, g.M(), ms.Mean, ms.Mean/(float64(g.M())*ll), rs.Mean/float64(d), succ)
	}
	return t, nil
}

func (h *harness) e9Const() (*stats.Table, error) {
	t := stats.NewTable("E9 — Thm 4.4.(B): O(m) messages with success ≥ 1−ε",
		"epsilon", "n", "m", "msgs/m", "success", "target ≥")
	rng := rand.New(rand.NewSource(h.seed + 4))
	n := 256
	if h.quick {
		n = 96
	}
	g, err := graph.RandomConnected(n, 4*n, rng)
	if err != nil {
		return nil, err
	}
	for _, eps := range []float64{0.25, 0.1, 0.01} {
		ms, _, succ, err := h.sweepRow(g, "leastel-const", 0, core.Options{Epsilon: eps}, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(eps, n, g.M(), ms.Mean/float64(g.M()), succ, 1-eps)
	}
	return t, nil
}

func (h *harness) e10Spanner() (*stats.Table, error) {
	t := stats.NewTable("E10 — Cor 4.2: spanner+LE vs plain LE on dense graphs (m ≈ n^1.5)",
		"n", "m", "algo", "msgs/m", "rounds/D", "success")
	rng := rand.New(rand.NewSource(h.seed + 5))
	for _, n := range h.sizes([]int{64}, []int{64, 144, 256, 400}) {
		m := n * isqrt(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.RandomConnected(n, m, rng)
		if err != nil {
			return nil, err
		}
		d := g.DiameterExact()
		for _, algo := range []string{"spanner-le", "leastel"} {
			ms, rs, succ, err := h.sweepRow(g, algo, d, core.Options{Epsilon: 0.5}, false)
			if err != nil {
				return nil, err
			}
			t.AddRow(n, g.M(), algo, ms.Mean/float64(g.M()), rs.Mean/float64(d), succ)
		}
	}
	return t, nil
}

func isqrt(n int) int {
	r := 1
	for r*r <= n {
		r++
	}
	return r - 1
}

func (h *harness) e11Estimate() (*stats.Table, error) {
	t := stats.NewTable("E11 — Cor 4.5: no knowledge of n; msgs/(m·log n) bounded",
		"n", "m", "msgs/(m·log n)", "rounds/D", "success")
	rng := rand.New(rand.NewSource(h.seed + 6))
	for _, n := range h.sizes([]int{64, 128}, []int{64, 128, 256, 512}) {
		g, err := graph.RandomConnected(n, 4*n, rng)
		if err != nil {
			return nil, err
		}
		d := g.DiameterExact()
		ms, rs, succ, err := h.sweepRow(g, "leastel-estimate", d, core.Options{}, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, g.M(), ms.Mean/(float64(g.M())*log2f(n)), rs.Mean/float64(d), succ)
	}
	return t, nil
}

func (h *harness) e12LasVegas() (*stats.Table, error) {
	t := stats.NewTable("E12 — Cor 4.6: Las Vegas with knowledge of n and D",
		"graph", "n", "D", "msgs/m", "rounds/D", "success")
	for _, n := range h.sizes([]int{32}, []int{32, 64, 128, 256}) {
		g := graph.Ring(n)
		d := n / 2
		ms, rs, succ, err := h.sweepRow(g, "lasvegas", d, core.Options{}, false)
		if err != nil {
			return nil, err
		}
		t.AddRow("ring", n, d, ms.Mean/float64(g.M()), rs.Mean/float64(d), succ)
	}
	return t, nil
}

func (h *harness) e13Cluster() (*stats.Table, error) {
	t := stats.NewTable("E13 — Thm 4.7: clustering algorithm O(m+n log n) msgs, O(D log n) time",
		"n", "m", "msgs/(m+n·log n)", "rounds/(D·log n)", "success")
	rng := rand.New(rand.NewSource(h.seed + 7))
	for _, n := range h.sizes([]int{64, 128}, []int{64, 128, 256, 512}) {
		g, err := graph.RandomConnected(n, 6*n, rng)
		if err != nil {
			return nil, err
		}
		d := g.DiameterExact()
		ms, rs, succ, err := h.sweepRow(g, "cluster", d, core.Options{}, false)
		if err != nil {
			return nil, err
		}
		denom := float64(g.M()) + float64(n)*log2f(n)
		t.AddRow(n, g.M(), ms.Mean/denom, rs.Mean/(float64(d)*log2f(n)), succ)
	}
	return t, nil
}

func (h *harness) e14Kingdom() (*stats.Table, error) {
	t := stats.NewTable("E14 — Thm 4.10: growing kingdoms, deterministic, no knowledge",
		"variant", "n", "m", "msgs/(m·log n)", "rounds/(D·log n)", "success")
	rng := rand.New(rand.NewSource(h.seed + 8))
	for _, n := range h.sizes([]int{48}, []int{48, 96, 192, 384}) {
		g, err := graph.RandomConnected(n, 4*n, rng)
		if err != nil {
			return nil, err
		}
		d := g.DiameterExact()
		for _, algo := range []string{"kingdom", "kingdom-d"} {
			ms, rs, succ, err := h.sweepRow(g, algo, d, core.Options{}, true)
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, n, g.M(), ms.Mean/(float64(g.M())*log2f(n)),
				rs.Mean/(float64(d)*log2f(n)), succ)
		}
	}
	return t, nil
}

func (h *harness) e15Table1() (*stats.Table, error) {
	t := stats.NewTable("E15 — Table 1 head-to-head (random graph)",
		"algo", "paper row", "msgs mean", "msgs/m", "rounds mean", "success")
	rng := rand.New(rand.NewSource(h.seed + 9))
	n := 200
	if h.quick {
		n = 80
	}
	g, err := graph.RandomConnected(n, 5*n, rng)
	if err != nil {
		return nil, err
	}
	d := g.DiameterExact()
	for _, algo := range core.Names() {
		spec := core.MustGet(algo)
		ms, rs, succ, err := h.sweepRow(g, algo, d, core.Options{}, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(algo, spec.Result, ms.Mean, ms.Mean/float64(g.M()), rs.Mean, succ)
	}
	return t, nil
}
