// Command ule-experiments regenerates every table and figure of the
// paper's evaluation as markdown tables (the source of EXPERIMENTS.md):
//
//	E1  Theorem 3.1   Ω(m) messages on dumbbells (all algorithms)
//	E2  Lemma 3.5     bridge-crossing instrument
//	E3  Theorem 3.13  Ω(D) time on clique-cycles (Figure 1) + truncation
//	E4  §1            trivial 1/n algorithm success ≈ 1/e
//	E5  Cor 3.12      Ω(m) broadcast on dumbbells
//	E6–E14            one upper-bound sweep per Table 1 row
//	E15 Table 1       head-to-head synthesis on a common graph set
//	E16 §2 (JACM)     the asynchronous model: every algorithm under the
//	                  unit / bounded-random / FIFO-per-link adversaries
//	E17 fault model   survival under the seed-deterministic fault
//	                  adversaries (crash / crash-recovery / drop / churn)
//
// The lower-bound experiments (E1–E5) sample fresh adversarial instances
// per trial through internal/lowerbound; every upper-bound sweep (E6–E16)
// is a declarative internal/harness spec executed on the work-stealing
// pool, so -workers parallelizes them across cores.
//
// Use -quick for a reduced sweep (CI-sized), -csv for machine output.
//
// Ad-hoc sweeps bypass the experiment tables entirely:
//
//	ule-experiments -sweep spec.json -workers 8 -json out.json
//	ule-experiments -sweep builtin:smoke -csv-out trials.csv
//	ule-experiments -sweep spec.json -mode async -delays random:8,fifo:8
//	ule-experiments -sweep spec.json -faults crash:0.2,drop:0.1
//
// -mode, -delays and -faults override the spec's modes/delays/faults
// axes, so one spec file serves the synchronous, asynchronous and faulty
// scenario space. The sweep spec JSON schema (ule-sweep/v3) is
// documented in docs/SWEEP_SCHEMA.md.
//
// Million-trial sweeps use the compact checkpointed binary format
// (ule-sweepbin/v1, also in docs/SWEEP_SCHEMA.md) instead of JSON:
//
//	ule-experiments -sweep spec.json -bin out.ulsb
//	ule-experiments -sweep spec.json -resume out.ulsb   # after a crash/kill
//	ule-experiments -from-bin out.ulsb -json out.json   # export, no sweep
//
// A killed -bin sweep loses at most -checkpoint-every trials; -resume
// verifies the spec, replays the surviving prefix, and continues — the
// finished file is byte-identical to an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ule/internal/cmdutil"
	"ule/internal/core"
	"ule/internal/harness"
	"ule/internal/lowerbound"
	"ule/internal/sim"
	"ule/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ule-experiments:", err)
		os.Exit(1)
	}
}

// driver carries the experiment-wide settings into each table builder.
type driver struct {
	quick   bool
	seed    int64
	trials  int
	csv     bool
	workers int
}

func run(args []string) error {
	fs := flag.NewFlagSet("ule-experiments", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "reduced sweep sizes")
		seed      = fs.Int64("seed", 42, "base seed")
		csv       = fs.Bool("csv", false, "emit CSV instead of markdown")
		only      = fs.String("only", "", "run a single experiment id (e.g. E3)")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "sweep worker goroutines")
		sweep     = fs.String("sweep", "", "run a declarative sweep instead of the experiments: JSON spec file or builtin:smoke")
		jsonOut   = fs.String("json", "", "sweep mode: write the ule-sweep/v3 JSON document to this file (- for stdout)")
		csvOut    = fs.String("csv-out", "", "sweep mode: write per-trial CSV to this file (- for stdout)")
		binOut    = fs.String("bin", "", "sweep mode: write the compact checkpointed ule-sweepbin/v1 document to this file")
		resume    = fs.String("resume", "", "sweep mode: resume an interrupted ule-sweepbin/v1 sweep file in place (spec must expand to the same sweep; excludes -json/-csv-out/-bin)")
		ckptEvery = fs.Int("checkpoint-every", 0, "sweep mode: trials between durable checkpoints in the -bin document (0 = default)")
		fromBin   = fs.String("from-bin", "", "export an ule-sweepbin/v1 file as its byte-identical ule-sweep/v3 JSON document to -json (no sweep is run)")
		mode      = fs.String("mode", "", "sweep mode: override the spec's modes axis (comma-separated: congest,local,async)")
		delays    = fs.String("delays", "", "sweep mode: override the spec's async delay axis (comma-separated: unit,random:B,fifo:B)")
		faults    = fs.String("faults", "", "sweep mode: override the spec's fault axis (comma-separated: none,crash:P,crashrec:P:D,drop:P,churn:P:K)")
		diamEst   = fs.Bool("diam-estimate", false, "sweep mode: grant D-dependent algorithms graph.DiameterEstimate instead of the exact all-pairs diameter (for graphs too large for O(n·m))")
		shards    = fs.Int("shards", 0, "sweep mode: override the spec's engine shard count (0 = keep spec value, -1 auto-size; results identical at any count)")
		progress  = fs.Bool("progress", true, "sweep mode: report progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fromBin != "" {
		return exportBinary(*fromBin, *jsonOut)
	}
	if *sweep != "" {
		return runSweep(*sweep, sweepOpts{
			workers: *workers, jsonOut: *jsonOut, csvOut: *csvOut,
			binOut: *binOut, resume: *resume, ckptEvery: *ckptEvery,
			mode: *mode, delays: *delays, faults: *faults,
			diamEstimate: *diamEst, shards: *shards, progress: *progress,
		})
	}
	d := &driver{quick: *quick, seed: *seed, trials: 10, csv: *csv, workers: *workers}
	if *quick {
		d.trials = 3
	}
	type exp struct {
		id  string
		fn  func() (*stats.Table, error)
		ann string
	}
	exps := []exp{
		{"E1", d.e1MessageLB, "Thm 3.1: every universal algorithm pays Ω(m) messages on dumbbells (msgs/m stays ≥ ~1 as m grows)"},
		{"E2", d.e2Bridge, "Lemma 3.5: elections must cross a bridge; messages precede the crossing"},
		{"E3", d.e3TimeLB, "Thm 3.13 / Fig. 1: rounds/D stays ≥ ~1 on clique-cycles; truncated budgets kill success"},
		{"E4", d.e4Trivial, "§1: the 1/n self-election succeeds w.p. ≈ 1/e at zero messages"},
		{"E5", d.e5Broadcast, "Cor 3.12: flooding broadcast costs Θ(m) (≈2 msgs/edge) on dumbbells"},
		{"E6", d.e6DFS, "Thm 4.1: msgs/m bounded by a constant; time grows exponentially with min ID"},
		{"E7", d.e7LeastElF, "Thm 4.4: messages scale with m·log f(n); success rises with f(n)"},
		{"E8", d.e8LogLog, "Thm 4.4.(A): msgs/(m·log log n) bounded, success whp"},
		{"E9", d.e9Const, "Thm 4.4.(B): msgs/m bounded; success ≥ 1−ε across ε"},
		{"E10", d.e10Spanner, "Cor 4.2: on dense graphs spanner+LE gets O(m) msgs and O(D) time"},
		{"E11", d.e11Estimate, "Cor 4.5: no knowledge of n; msgs/(m·log n) bounded; prob 1"},
		{"E12", d.e12LasVegas, "Cor 4.6: expected O(D) time / O(m) msgs with restarts"},
		{"E13", d.e13Cluster, "Thm 4.7: msgs/(m+n log n) bounded; time O(D log n)"},
		{"E14", d.e14Kingdom, "Thm 4.10: deterministic, msgs/(m log n) and rounds/(D log n) bounded"},
		{"E15", d.e15Table1, "Table 1 head-to-head on a common graph"},
		{"E16", d.e16Async, "asynchronous model: success and cost under the unit / bounded-random / FIFO-per-link delay adversaries"},
		{"E17", d.e17Faults, "fault model: the paper's algorithms assume a fault-free network; survival (unique leader among live nodes) under seed-deterministic crash / crash-recovery / drop / churn adversaries"},
	}
	for _, e := range exps {
		if *only != "" && e.id != *only {
			continue
		}
		t, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if d.csv {
			fmt.Printf("# %s\n%s\n", e.id, t.CSV())
		} else {
			fmt.Printf("%s\n*%s*\n\n", t.Markdown(), e.ann)
		}
	}
	return nil
}

// sweepOpts carries the sweep-mode flag set into runSweep.
type sweepOpts struct {
	workers         int
	jsonOut, csvOut string
	binOut, resume  string
	ckptEvery       int
	mode            string
	delays, faults  string
	diamEstimate    bool
	shards          int
	progress        bool
}

// exportBinary streams a ule-sweepbin/v1 file out as the byte-identical
// ule-sweep/v3 JSON document.
func exportBinary(binPath, jsonOut string) error {
	in, err := os.Open(binPath)
	if err != nil {
		return err
	}
	defer in.Close()
	out := os.Stdout
	if jsonOut != "" && jsonOut != "-" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := harness.ExportJSON(in, out); err != nil {
		return err
	}
	if out != os.Stdout {
		return out.Close()
	}
	return nil
}

// runSweep executes one declarative sweep spec through the harness. Spec
// loading and the axis overrides live in internal/cmdutil, shared with
// cmd/ule and the uled serving layer.
func runSweep(specArg string, o sweepOpts) error {
	spec, err := cmdutil.LoadSpec(specArg)
	if err != nil {
		return err
	}
	cmdutil.SpecOverrides{
		Modes: o.mode, Delays: o.delays, Faults: o.faults,
		DiameterEstimate: o.diamEstimate, Shards: o.shards,
	}.Apply(&spec)
	rc := harness.RunConfig{Workers: o.workers}
	if o.resume != "" {
		// A resumed run appends to the binary file; the text emitters
		// cannot join mid-document (they would silently miss the completed
		// prefix) — export afterwards with -from-bin instead.
		if o.jsonOut != "" || o.csvOut != "" || o.binOut != "" {
			return fmt.Errorf("-resume cannot be combined with -json/-csv-out/-bin; export with -from-bin after the sweep")
		}
		ck, em, err := harness.ResumeBinary(o.resume)
		if err != nil {
			if errors.Is(err, harness.ErrSweepComplete) {
				fmt.Fprintf(os.Stderr, "sweep %s: %s already complete (%d trials)\n", spec.Name, o.resume, ck.Total)
				return nil
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep %s: resuming %s from trial %d/%d\n", spec.Name, o.resume, ck.Completed, ck.Total)
		rc.Resume = ck
		rc.Emitters = append(rc.Emitters, em)
	}
	// Close errors must fail the sweep: the final buffered write can
	// surface only at Close on some filesystems. The deferred pass covers
	// early error returns; the explicit pass below reports the error.
	var outFiles []*os.File
	defer func() {
		for _, f := range outFiles {
			f.Close()
		}
	}()
	openOut := func(path string) (*os.File, error) {
		if path == "-" {
			return os.Stdout, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		outFiles = append(outFiles, f)
		return f, nil
	}
	if o.jsonOut != "" {
		f, err := openOut(o.jsonOut)
		if err != nil {
			return err
		}
		rc.Emitters = append(rc.Emitters, harness.NewJSONEmitter(f))
	}
	if o.csvOut != "" {
		f, err := openOut(o.csvOut)
		if err != nil {
			return err
		}
		rc.Emitters = append(rc.Emitters, harness.NewCSVEmitter(f))
	}
	if o.binOut != "" {
		f, err := openOut(o.binOut)
		if err != nil {
			return err
		}
		rc.Emitters = append(rc.Emitters, harness.NewBinaryEmitter(f, harness.BinaryOptions{CheckpointEvery: o.ckptEvery}))
	}
	total := spec.NumTrials()
	if o.progress {
		every := total / 20
		if every < 1 {
			every = 1
		}
		rc.Progress = func(done, tot int) {
			if done%every == 0 || done == tot {
				fmt.Fprintf(os.Stderr, "\rsweep %s: %d/%d trials", spec.Name, done, tot)
				if done == tot {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	start := time.Now()
	rep, err := harness.Run(spec, rc)
	if err != nil {
		return err
	}
	files := outFiles
	outFiles = nil
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %d trials, %d groups, %d errors, %d workers, %v\n",
		spec.Name, rep.Total, len(rep.Groups), rep.Errors, rep.Workers, time.Since(start).Round(time.Millisecond))
	// Human-readable synthesis on stdout unless it would interleave with
	// a document already going there.
	if o.jsonOut != "-" && o.csvOut != "-" {
		t := stats.NewTable(fmt.Sprintf("sweep %s", spec.Name),
			"algo", "graph", "mode", "wake", "delay", "fault", "n", "m", "trials", "msgs mean", "rounds mean", "success", "survival", "errors")
		for _, g := range rep.Groups {
			delay, fault, survival := g.Delay, g.Fault, "-"
			if delay == "" {
				delay = "-"
			}
			if fault == "" {
				fault = "-"
			} else {
				survival = fmt.Sprintf("%.2f", g.Survival)
			}
			t.AddRow(g.Algo, g.Graph, g.Mode, g.Wake, delay, fault, g.N, g.M, g.Trials,
				g.Messages.Mean, g.Rounds.Mean, g.Success, survival, g.Errors)
		}
		fmt.Print(t.String())
	}
	return nil
}

// sweep expands and runs one harness spec with the driver's trial count,
// base seed and worker pool. Every upper-bound experiment funnels its
// election runs through here.
func (d *driver) sweep(spec harness.Spec) (*harness.Report, error) {
	if spec.Trials == 0 {
		spec.Trials = d.trials
	}
	if spec.Seed == 0 {
		spec.Seed = d.seed
	}
	return harness.Run(spec, harness.RunConfig{Workers: d.workers})
}

func (d *driver) sizes(quickSizes, fullSizes []int) []int {
	if d.quick {
		return quickSizes
	}
	return fullSizes
}

// ---- Lower-bound experiments (adversarial per-trial instances) ----

// e1: Ω(m) message lower bound across algorithms and densities.
func (d *driver) e1MessageLB() (*stats.Table, error) {
	t := stats.NewTable("E1 — Thm 3.1: messages/m on dumbbell graphs",
		"algo", "n(total)", "m(total)", "D", "msgs/m min", "msgs/m mean", "success")
	algos := []string{"leastel", "leastel-const", "flood", "cluster", "kingdom", "lasvegas", "leastel-estimate"}
	type sz struct{ n, m int }
	var cfgs []sz
	if d.quick {
		cfgs = []sz{{16, 60}, {24, 140}}
	} else {
		cfgs = []sz{{16, 60}, {24, 140}, {32, 300}, {48, 700}, {64, 1200}}
	}
	for _, algo := range algos {
		for _, cfg := range cfgs {
			row, err := lowerbound.MessageLB(cfg.n, cfg.m, lowerbound.Sweep{
				Algo: algo, Trials: d.trials, Seed: d.seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, 2*cfg.n, 2*cfg.m, row.D, row.MsgsPerM.Min, row.MsgsPerM.Mean, row.SuccessRate)
		}
	}
	return t, nil
}

func (d *driver) e2Bridge() (*stats.Table, error) {
	t := stats.NewTable("E2 — Lemma 3.5: bridge crossing instrument (dumbbells)",
		"algo", "n(total)", "m(total)", "cross round mean", "msgs before cross mean", "success")
	for _, algo := range []string{"leastel", "leastel-const", "kingdom"} {
		for _, cfg := range [][2]int{{16, 100}, {32, 300}} {
			row, err := lowerbound.MessageLB(cfg[0], cfg[1], lowerbound.Sweep{
				Algo: algo, Trials: d.trials, Seed: d.seed + 1,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, 2*cfg[0], 2*cfg[1], row.CrossRound.Mean, row.BeforeCross.Mean, row.SuccessRate)
		}
	}
	return t, nil
}

func (d *driver) e3TimeLB() (*stats.Table, error) {
	t := stats.NewTable("E3 — Thm 3.13 / Figure 1: rounds/D on clique-cycles + truncated budgets",
		"algo", "n", "D", "rounds/D min", "rounds/D mean", "success", "succ@0.25D", "succ@0.5D")
	ds := d.sizes([]int{8, 16}, []int{8, 16, 32, 64})
	for _, algo := range []string{"leastel", "flood", "lasvegas", "kingdom-d"} {
		for _, dd := range ds {
			row, err := lowerbound.TimeLB(4*dd, dd, lowerbound.Sweep{Algo: algo, Trials: d.trials, Seed: d.seed})
			if err != nil {
				return nil, err
			}
			t25, err := lowerbound.TruncatedSuccess(4*dd, dd, 0.25, lowerbound.Sweep{Algo: algo, Trials: d.trials, Seed: d.seed})
			if err != nil {
				return nil, err
			}
			t50, err := lowerbound.TruncatedSuccess(4*dd, dd, 0.5, lowerbound.Sweep{Algo: algo, Trials: d.trials, Seed: d.seed})
			if err != nil {
				return nil, err
			}
			t.AddRow(algo, row.N, row.D, row.RoundsPerD.Min, row.RoundsPerD.Mean,
				row.SuccessRate, t25.SuccessRate, t50.SuccessRate)
		}
	}
	return t, nil
}

func (d *driver) e4Trivial() (*stats.Table, error) {
	t := stats.NewTable("E4 — §1: the zero-message 1/n self-election",
		"n", "trials", "success", "1/e", "messages")
	trials := 2000
	if d.quick {
		trials = 300
	}
	for _, n := range d.sizes([]int{64}, []int{32, 64, 128, 256, 512}) {
		row, err := lowerbound.TrivialSuccess(n, trials, d.seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, row.Trials, row.SuccessRate, 0.368, row.Messages)
	}
	return t, nil
}

func (d *driver) e5Broadcast() (*stats.Table, error) {
	t := stats.NewTable("E5 — Cor 3.12: flooding broadcast messages/m on dumbbells",
		"n(total)", "m(total)", "msgs/m mean", "majority ok", "rounds mean")
	type sz struct{ n, m int }
	var cfgs []sz
	if d.quick {
		cfgs = []sz{{16, 60}}
	} else {
		cfgs = []sz{{16, 60}, {24, 140}, {32, 300}, {64, 1200}}
	}
	for _, cfg := range cfgs {
		row, err := lowerbound.BroadcastLB(cfg.n, cfg.m, d.trials, d.seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.N, 2*cfg.m, row.MsgsPerM.Mean, row.MajorityOK, row.MeanRounds)
	}
	return t, nil
}

// ---- Upper-bound sweeps (Table 1 rows), all driven by the harness ----

func log2f(n int) float64 {
	l := 1.0
	for v := 2; v < n; v *= 2 {
		l++
	}
	return l
}

func (d *driver) e6DFS() (*stats.Table, error) {
	t := stats.NewTable("E6 — Thm 4.1: DFS election messages/m and exponential time in min ID",
		"graph", "n", "m", "msgs/m mean", "rounds (minID=1)", "rounds (minID=3)", "rounds (minID=5)")
	spec := harness.Spec{Name: "e6-dfs", Algos: []string{"dfs"}, SmallIDs: true}
	for _, n := range d.sizes([]int{24}, []int{24, 48, 96}) {
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("random:%d:%d", n, 4*n))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	graphs := rep.Graphs()
	for gi, gs := range spec.Graphs {
		grp := rep.Group("dfs", gs, "congest", "sync")
		if grp == nil {
			return nil, fmt.Errorf("missing group for %s", gs)
		}
		g := graphs[gi]
		// The exponential-in-min-ID probes need controlled sequential ID
		// assignments, which is a per-run instrument rather than a sweep
		// axis; run them directly on the shared graph instances.
		var at [3]float64
		for i, minID := range []int64{1, 3, 5} {
			res, err := core.Run(g, "dfs", core.RunOpts{
				Seed: d.seed, IDs: sim.SequentialIDs(g.N(), minID), MaxRounds: 1 << 19,
			})
			if err != nil {
				return nil, err
			}
			at[i] = float64(res.Rounds)
		}
		t.AddRow("random", g.N(), g.M(), grp.Messages.Mean/float64(g.M()), at[0], at[1], at[2])
	}
	return t, nil
}

func (d *driver) e7LeastElF() (*stats.Table, error) {
	t := stats.NewTable("E7 — Thm 4.4: messages and success vs candidate budget f(n)",
		"f(n)", "n", "m", "msgs mean", "msgs/m", "rounds mean", "success")
	n := 256
	if d.quick {
		n = 96
	}
	gs := fmt.Sprintf("random:%d:%d", n, 6*n)
	for _, row := range []struct {
		label string
		algo  string
		opt   core.Options
	}{
		{"n (all)", "leastel", core.Options{}},
		{"log n", "leastel-loglog", core.Options{}},
		{"4ln(1/0.1)", "leastel-const", core.Options{Epsilon: 0.1}},
		{"4ln(1/0.5)", "leastel-const", core.Options{Epsilon: 0.5}},
	} {
		// One spec per row: Options vary per row, and the shared Seed
		// keeps the graph instance and per-rep coins identical across
		// rows (paired comparison).
		rep, err := d.sweep(harness.Spec{
			Name: "e7-" + row.label, Algos: []string{row.algo}, Graphs: []string{gs}, Opt: row.opt,
		})
		if err != nil {
			return nil, err
		}
		grp := rep.Group(row.algo, gs, "congest", "sync")
		t.AddRow(row.label, grp.N, grp.M, grp.Messages.Mean,
			grp.Messages.Mean/float64(grp.M), grp.Rounds.Mean, grp.Success)
	}
	return t, nil
}

func (d *driver) e8LogLog() (*stats.Table, error) {
	t := stats.NewTable("E8 — Thm 4.4.(A): msgs/(m·log log n) with f(n)=log n",
		"n", "m", "msgs mean", "msgs/(m·loglog n)", "rounds/D", "success")
	spec := harness.Spec{Name: "e8-loglog", Algos: []string{"leastel-loglog"}}
	for _, n := range d.sizes([]int{64, 128}, []int{64, 128, 256, 512}) {
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("random:%d:%d", n, 5*n))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	graphs := rep.Graphs()
	for gi, gs := range spec.Graphs {
		grp := rep.Group("leastel-loglog", gs, "congest", "sync")
		g := graphs[gi]
		diam := float64(g.DiameterExact())
		ll := log2f(int(log2f(g.N())))
		t.AddRow(g.N(), g.M(), grp.Messages.Mean,
			grp.Messages.Mean/(float64(g.M())*ll), grp.Rounds.Mean/diam, grp.Success)
	}
	return t, nil
}

func (d *driver) e9Const() (*stats.Table, error) {
	t := stats.NewTable("E9 — Thm 4.4.(B): O(m) messages with success ≥ 1−ε",
		"epsilon", "n", "m", "msgs/m", "success", "target ≥")
	n := 256
	if d.quick {
		n = 96
	}
	gs := fmt.Sprintf("random:%d:%d", n, 4*n)
	for _, eps := range []float64{0.25, 0.1, 0.01} {
		rep, err := d.sweep(harness.Spec{
			Name:  fmt.Sprintf("e9-eps%v", eps),
			Algos: []string{"leastel-const"}, Graphs: []string{gs},
			Opt: core.Options{Epsilon: eps},
		})
		if err != nil {
			return nil, err
		}
		grp := rep.Group("leastel-const", gs, "congest", "sync")
		t.AddRow(eps, grp.N, grp.M, grp.Messages.Mean/float64(grp.M), grp.Success, 1-eps)
	}
	return t, nil
}

func (d *driver) e10Spanner() (*stats.Table, error) {
	t := stats.NewTable("E10 — Cor 4.2: spanner+LE vs plain LE on dense graphs (m ≈ n^1.5)",
		"n", "m", "algo", "msgs/m", "rounds/D", "success")
	spec := harness.Spec{
		Name:  "e10-spanner",
		Algos: []string{"spanner-le", "leastel"},
		Opt:   core.Options{Epsilon: 0.5},
	}
	for _, n := range d.sizes([]int{64}, []int{64, 144, 256, 400}) {
		m := n * isqrt(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("random:%d:%d", n, m))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	graphs := rep.Graphs()
	for gi, gs := range spec.Graphs {
		g := graphs[gi]
		diam := float64(g.DiameterExact())
		for _, algo := range spec.Algos {
			grp := rep.Group(algo, gs, "congest", "sync")
			t.AddRow(g.N(), g.M(), algo, grp.Messages.Mean/float64(g.M()),
				grp.Rounds.Mean/diam, grp.Success)
		}
	}
	return t, nil
}

func isqrt(n int) int {
	r := 1
	for r*r <= n {
		r++
	}
	return r - 1
}

func (d *driver) e11Estimate() (*stats.Table, error) {
	t := stats.NewTable("E11 — Cor 4.5: no knowledge of n; msgs/(m·log n) bounded",
		"n", "m", "msgs/(m·log n)", "rounds/D", "success")
	spec := harness.Spec{Name: "e11-estimate", Algos: []string{"leastel-estimate"}}
	for _, n := range d.sizes([]int{64, 128}, []int{64, 128, 256, 512}) {
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("random:%d:%d", n, 4*n))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	graphs := rep.Graphs()
	for gi, gs := range spec.Graphs {
		grp := rep.Group("leastel-estimate", gs, "congest", "sync")
		g := graphs[gi]
		diam := float64(g.DiameterExact())
		t.AddRow(g.N(), g.M(), grp.Messages.Mean/(float64(g.M())*log2f(g.N())),
			grp.Rounds.Mean/diam, grp.Success)
	}
	return t, nil
}

func (d *driver) e12LasVegas() (*stats.Table, error) {
	t := stats.NewTable("E12 — Cor 4.6: Las Vegas with knowledge of n and D",
		"graph", "n", "D", "msgs/m", "rounds/D", "success")
	spec := harness.Spec{Name: "e12-lasvegas", Algos: []string{"lasvegas"}}
	for _, n := range d.sizes([]int{32}, []int{32, 64, 128, 256}) {
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("ring:%d", n))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	for _, gs := range spec.Graphs {
		grp := rep.Group("lasvegas", gs, "congest", "sync")
		// lasvegas knows D, so the harness recorded the exact diameter.
		t.AddRow("ring", grp.N, grp.D, grp.Messages.Mean/float64(grp.M),
			grp.Rounds.Mean/float64(grp.D), grp.Success)
	}
	return t, nil
}

func (d *driver) e13Cluster() (*stats.Table, error) {
	t := stats.NewTable("E13 — Thm 4.7: clustering algorithm O(m+n log n) msgs, O(D log n) time",
		"n", "m", "msgs/(m+n·log n)", "rounds/(D·log n)", "success")
	spec := harness.Spec{Name: "e13-cluster", Algos: []string{"cluster"}}
	for _, n := range d.sizes([]int{64, 128}, []int{64, 128, 256, 512}) {
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("random:%d:%d", n, 6*n))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	graphs := rep.Graphs()
	for gi, gs := range spec.Graphs {
		grp := rep.Group("cluster", gs, "congest", "sync")
		g := graphs[gi]
		diam := float64(g.DiameterExact())
		denom := float64(g.M()) + float64(g.N())*log2f(g.N())
		t.AddRow(g.N(), g.M(), grp.Messages.Mean/denom,
			grp.Rounds.Mean/(diam*log2f(g.N())), grp.Success)
	}
	return t, nil
}

func (d *driver) e14Kingdom() (*stats.Table, error) {
	t := stats.NewTable("E14 — Thm 4.10: growing kingdoms, deterministic, no knowledge",
		"variant", "n", "m", "msgs/(m·log n)", "rounds/(D·log n)", "success")
	spec := harness.Spec{
		Name:     "e14-kingdom",
		Algos:    []string{"kingdom", "kingdom-d"},
		SmallIDs: true,
	}
	for _, n := range d.sizes([]int{48}, []int{48, 96, 192, 384}) {
		spec.Graphs = append(spec.Graphs, fmt.Sprintf("random:%d:%d", n, 4*n))
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	graphs := rep.Graphs()
	for gi, gs := range spec.Graphs {
		g := graphs[gi]
		diam := float64(g.DiameterExact())
		for _, algo := range spec.Algos {
			grp := rep.Group(algo, gs, "congest", "sync")
			t.AddRow(algo, g.N(), g.M(), grp.Messages.Mean/(float64(g.M())*log2f(g.N())),
				grp.Rounds.Mean/(diam*log2f(g.N())), grp.Success)
		}
	}
	return t, nil
}

func (d *driver) e15Table1() (*stats.Table, error) {
	t := stats.NewTable("E15 — Table 1 head-to-head (random graph)",
		"algo", "paper row", "msgs mean", "msgs/m", "rounds mean", "success")
	n := 200
	if d.quick {
		n = 80
	}
	gs := fmt.Sprintf("random:%d:%d", n, 5*n)
	spec := harness.Spec{
		Name:     "e15-table1",
		Algos:    core.Names(),
		Graphs:   []string{gs},
		SmallIDs: true,
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	for _, algo := range spec.Algos {
		cspec := core.MustGet(algo)
		grp := rep.Group(algo, gs, "congest", "sync")
		t.AddRow(algo, cspec.Result, grp.Messages.Mean,
			grp.Messages.Mean/float64(grp.M), grp.Rounds.Mean, grp.Success)
	}
	return t, nil
}

// e16: the asynchronous scenario axis. Message-driven algorithms keep
// electing under every delay adversary; protocols that count silent
// rounds (flood's D-round wait, dfs budgets, lasvegas epochs) stall and
// quiesce undecided — exactly the synchronous/asynchronous split the
// paper's model section draws.
func (d *driver) e16Async() (*stats.Table, error) {
	t := stats.NewTable("E16 — asynchronous model: sync vs delay adversaries",
		"algo", "delay", "msgs mean", "ticks mean", "success")
	n := 128
	if d.quick {
		n = 48
	}
	gs := fmt.Sprintf("random:%d:%d", n, 4*n)
	delays := []string{"unit", "random:8", "fifo:8"}
	spec := harness.Spec{
		Name:     "e16-async",
		Algos:    core.Names(),
		Graphs:   []string{gs},
		Modes:    []string{"congest", "async"},
		Delays:   delays,
		SmallIDs: true,
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	for _, algo := range spec.Algos {
		sync := rep.Group(algo, gs, "congest", "sync")
		t.AddRow(algo, "sync", sync.Messages.Mean, sync.Rounds.Mean, sync.Success)
		for _, delay := range delays {
			grp := rep.Group(algo, gs, "async", "sync", delay)
			if grp == nil {
				return nil, fmt.Errorf("missing async group %s/%s", algo, delay)
			}
			t.AddRow(algo, delay, grp.Messages.Mean, grp.Rounds.Mean, grp.Success)
		}
	}
	return t, nil
}

// e17: the fault scenario axis. The paper's model is fault-free, so no
// algorithm is *designed* to survive the adversaries; the table measures
// which failure patterns each algorithm tolerates anyway. "success" is
// the paper's unique-leader predicate; "survival" relaxes it to the live
// nodes (crashed nodes are excused). Message-redundant floods survive
// drops, anything survives crashes of non-winners, and crash-recovery
// with kept state survives where reset state re-floods or stalls.
func (d *driver) e17Faults() (*stats.Table, error) {
	t := stats.NewTable("E17 — fault model: survival under crash / recovery / drop / churn",
		"algo", "fault", "msgs mean", "rounds mean", "success", "survival")
	n := 96
	if d.quick {
		n = 32
	}
	gs := fmt.Sprintf("random:%d:%d", n, 4*n)
	faultAxis := []string{"none", "crash:0.2", "crashrec:0.2:32", "drop:0.1", "churn:0.15:48"}
	spec := harness.Spec{
		Name:      "e17-faults",
		Algos:     []string{"leastel", "leastel-const", "flood", "cluster", "kingdom"},
		Graphs:    []string{gs},
		Faults:    faultAxis,
		MaxRounds: 4096,
		SmallIDs:  true,
	}
	rep, err := d.sweep(spec)
	if err != nil {
		return nil, err
	}
	for _, algo := range spec.Algos {
		for _, fault := range faultAxis {
			key := fault
			if fault == "none" {
				key = "" // the harness canonicalizes the fault-free cell
			}
			grp := rep.Group(algo, gs, "congest", "sync", "", key)
			if grp == nil {
				return nil, fmt.Errorf("missing fault group %s/%s", algo, fault)
			}
			survival := "-"
			if key != "" {
				survival = fmt.Sprintf("%.2f", grp.Survival)
			}
			t.AddRow(algo, fault, grp.Messages.Mean, grp.Rounds.Mean, grp.Success, survival)
		}
	}
	return t, nil
}
