package main

import (
	"os"
	"path/filepath"
	"testing"

	"ule/internal/harness"
)

func TestSweepModeEmitsConsumableJSON(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	jsonPath := filepath.Join(dir, "out.json")
	csvPath := filepath.Join(dir, "out.csv")
	spec := `{"name":"cli-test","algos":["leastel","kingdom"],"graphs":["ring:12","random:16:40"],"trials":3,"seed":5,"small_ids":true}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", specPath, "-workers", "3", "-json", jsonPath, "-csv-out", csvPath, "-progress=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := harness.ParseDocument(data)
	if err != nil {
		t.Fatalf("sweep JSON not consumable: %v", err)
	}
	if want := 2 * 2 * 3; doc.TotalTrials != want {
		t.Fatalf("sweep ran %d trials, want %d", doc.TotalTrials, want)
	}
	if len(doc.Groups) != 4 {
		t.Fatalf("sweep produced %d groups, want 4", len(doc.Groups))
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV output")
	}
}

func TestQuickExperimentThroughHarness(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E12", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinSmokeSpec(t *testing.T) {
	if err := run([]string{"-sweep", "builtin:smoke", "-progress=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepModeAsyncOverride(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	jsonPath := filepath.Join(dir, "out.json")
	spec := `{"name":"cli-async","algos":["leastel"],"graphs":["ring:12"],"trials":2,"seed":5}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", specPath, "-mode", "async", "-delays", "unit,random:4,fifo:4",
		"-json", jsonPath, "-progress=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := harness.ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2; doc.TotalTrials != want {
		t.Fatalf("override sweep ran %d trials, want %d", doc.TotalTrials, want)
	}
	seen := map[string]bool{}
	for _, tr := range doc.Trials {
		if tr.Mode != "async" {
			t.Fatalf("trial %d mode %q, want async", tr.Index, tr.Mode)
		}
		seen[tr.Delay] = true
	}
	for _, d := range []string{"unit", "random:4", "fifo:4"} {
		if !seen[d] {
			t.Errorf("delay model %q missing from trials", d)
		}
	}
}
