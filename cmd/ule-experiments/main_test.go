package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ule/internal/harness"
)

func TestSweepModeEmitsConsumableJSON(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	jsonPath := filepath.Join(dir, "out.json")
	csvPath := filepath.Join(dir, "out.csv")
	spec := `{"name":"cli-test","algos":["leastel","kingdom"],"graphs":["ring:12","random:16:40"],"trials":3,"seed":5,"small_ids":true}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", specPath, "-workers", "3", "-json", jsonPath, "-csv-out", csvPath, "-progress=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := harness.ParseDocument(data)
	if err != nil {
		t.Fatalf("sweep JSON not consumable: %v", err)
	}
	if want := 2 * 2 * 3; doc.TotalTrials != want {
		t.Fatalf("sweep ran %d trials, want %d", doc.TotalTrials, want)
	}
	if len(doc.Groups) != 4 {
		t.Fatalf("sweep produced %d groups, want 4", len(doc.Groups))
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV output")
	}
}

func TestQuickExperimentThroughHarness(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E12", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinSmokeSpec(t *testing.T) {
	if err := run([]string{"-sweep", "builtin:smoke", "-progress=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepModeAsyncOverride(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	jsonPath := filepath.Join(dir, "out.json")
	spec := `{"name":"cli-async","algos":["leastel"],"graphs":["ring:12"],"trials":2,"seed":5}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", specPath, "-mode", "async", "-delays", "unit,random:4,fifo:4",
		"-json", jsonPath, "-progress=false"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := harness.ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2; doc.TotalTrials != want {
		t.Fatalf("override sweep ran %d trials, want %d", doc.TotalTrials, want)
	}
	seen := map[string]bool{}
	for _, tr := range doc.Trials {
		if tr.Mode != "async" {
			t.Fatalf("trial %d mode %q, want async", tr.Index, tr.Mode)
		}
		seen[tr.Delay] = true
	}
	for _, d := range []string{"unit", "random:4", "fifo:4"} {
		if !seen[d] {
			t.Errorf("delay model %q missing from trials", d)
		}
	}
}

// TestSweepModeBinaryAndExport drives the full binary pipeline through
// the CLI: -bin sweep, kill (simulated by truncation), -resume, then
// -from-bin export byte-identical to a straight -json run.
func TestSweepModeBinaryAndExport(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	jsonPath := filepath.Join(dir, "out.json")
	binPath := filepath.Join(dir, "out.ulsb")
	spec := `{"name":"cli-bin","algos":["leastel","kingdom"],"graphs":["ring:12","random:16:40"],"faults":["none","crash:0.2"],"trials":3,"seed":5,"small_ids":true}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", specPath, "-workers", "3",
		"-json", jsonPath, "-bin", binPath, "-checkpoint-every", "8", "-progress=false"}); err != nil {
		t.Fatal(err)
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the sweep two-thirds through and resume it via the CLI.
	if err := os.WriteFile(binPath, full[:len(full)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", specPath, "-workers", "2", "-resume", binPath, "-progress=false"}); err != nil {
		t.Fatalf("-resume: %v", err)
	}
	resumed, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, full) {
		t.Fatalf("resumed binary differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(full))
	}

	// Resuming a complete file is a no-op, not an error.
	if err := run([]string{"-sweep", specPath, "-resume", binPath, "-progress=false"}); err != nil {
		t.Fatalf("-resume on complete file: %v", err)
	}

	// -from-bin export reproduces the -json document byte for byte.
	exportPath := filepath.Join(dir, "export.json")
	if err := run([]string{"-from-bin", binPath, "-json", exportPath}); err != nil {
		t.Fatalf("-from-bin: %v", err)
	}
	gotJSON, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("-from-bin export differs from live -json document (%d vs %d bytes)", len(gotJSON), len(wantJSON))
	}
}

func TestSweepModeResumeExcludesTextEmitters(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"name":"x","algos":["leastel"],"graphs":["ring:8"],"trials":1,"seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-sweep", specPath, "-resume", filepath.Join(dir, "missing.ulsb"),
		"-json", filepath.Join(dir, "out.json"), "-progress=false"})
	if err == nil {
		t.Fatal("-resume with -json succeeded, want error")
	}
}
