// Command uled serves universal leader election over HTTP: submit single
// elections or whole sweep specs, stream results back as NDJSON, and run
// thousands of elections concurrently on a bounded pool of reusable
// engine slots (internal/serve).
//
// Usage:
//
//	uled -addr :8080
//	uled -addr 127.0.0.1:0 -addr-file /tmp/uled.addr   # ephemeral port
//	uled -slots 8 -sweep-workers 2 -job-ttl 5m -pprof
//
// Endpoints (contract in docs/SERVICE.md):
//
//	POST   /v1/elections   {"graph":"ring:64","algo":"leastel","seed":7}
//	POST   /v1/sweeps      a ule-sweep/v3 spec; response is NDJSON
//	GET    /v1/jobs/{id}   async job status/result; DELETE cancels
//	GET    /healthz        liveness
//	GET    /debug/vars     expvar counters (uled_* series)
//
// SIGINT/SIGTERM shut down gracefully: admission stops, in-flight jobs
// drain (up to -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ule/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uled:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("uled", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		addrFile     = fs.String("addr-file", "", "write the resolved listen address to this file (for ephemeral ports)")
		slots        = fs.Int("slots", 0, "concurrent worker slots (0 = GOMAXPROCS)")
		sweepWorkers = fs.Int("sweep-workers", 0, "max harness workers per sweep request (0 = 1)")
		maxJobs      = fs.Int("max-jobs", 0, "retained async jobs (0 = 256)")
		jobTTL       = fs.Duration("job-ttl", 0, "finished-job retention before GC (0 = 10m)")
		maxRounds    = fs.Int("max-rounds-cap", 0, "reject requests asking for more rounds than this (0 = 1<<20)")
		maxTrials    = fs.Int("max-trials-cap", 0, "reject sweeps expanding past this many trials (0 = 1<<20)")
		drain        = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		withPprof    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := serve.NewManager(serve.Config{
		Slots: *slots, SweepWorkers: *sweepWorkers,
		MaxJobs: *maxJobs, JobTTL: *jobTTL,
		MaxRounds: *maxRounds, MaxTrials: *maxTrials,
	})
	srv := &http.Server{
		Handler:           serve.NewHandler(m, serve.HandlerConfig{Pprof: *withPprof}),
		ReadHeaderTimeout: 10 * time.Second,
		// Reap parked keep-alive connections so sustained load does not
		// accumulate per-connection goroutines.
		IdleTimeout: 30 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		// Write-then-rename so a polling parent never reads a torn file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(resolved), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	fmt.Printf("uled: listening on %s (slots=%d, sweep-workers=%d)\n",
		resolved, m.Config().Slots, m.Config().SweepWorkers)

	// Serve until a signal arrives, then drain: the HTTP server stops
	// accepting and waits for in-flight requests (streaming sweeps
	// included); the manager waits for async jobs, cancelling whatever
	// outlives the drain budget.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("uled: %v — draining (budget %v)\n", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	if err := m.Shutdown(ctx); err != nil && shutdownErr == nil {
		shutdownErr = err
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	if shutdownErr != nil {
		fmt.Println("uled: drain budget exceeded; in-flight jobs cancelled")
	} else {
		fmt.Println("uled: drained cleanly")
	}
	return nil
}
