// Command uled-load is the closed-loop load harness for the uled server:
// it drives POST /v1/elections and POST /v1/sweeps at configurable
// concurrency and request mix, records p50/p95/p99 latency and
// elections/sec per level, checks goroutine flatness and byte-identity
// against the batch path, and writes the measurement document consumed
// by BENCH_SERVE.json.
//
// Usage:
//
//	uled-load -addr http://127.0.0.1:8080 -levels 4,16,64 -duration 3s
//	uled-load -spawn bin/uled -levels 4,16,64 -out BENCH_SERVE.json
//	uled-load -spawn bin/uled -smoke        # CI boot check (make serve-smoke)
//
// -spawn boots its own uled on an ephemeral port (via -addr-file), sends
// SIGTERM when done, and fails unless the server drains and exits 0 — so
// one invocation exercises boot, load and graceful shutdown end to end.
//
// -smoke runs the correctness sequence instead of a load sweep: healthz,
// a deterministic election (served twice, byte-identical, and equal to
// the locally computed batch result), a streamed sweep verified
// byte-for-byte against a local harness run, an async job lifecycle
// (submit, poll, fetch, delete), a guaranteed-400 model error, and a
// goroutine-flatness check via /debug/vars.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ule/internal/cmdutil"
	"ule/internal/harness"
	"ule/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uled-load:", err)
		os.Exit(1)
	}
}

type options struct {
	addr       string
	levels     []int
	duration   time.Duration
	warmup     time.Duration
	sweepEvery int
	graph      string
	algo       string
	model      string
	seed       int64
	out        string
	verify     bool
	sweepSpec  harness.Spec
}

func run(args []string) error {
	fs := flag.NewFlagSet("uled-load", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "", "server base URL (e.g. http://127.0.0.1:8080); empty with -spawn")
		spawn      = fs.String("spawn", "", "path to a uled binary to boot on an ephemeral port and shut down after the run")
		spawnArgs  = fs.String("spawn-args", "", "extra uled flags for -spawn (space-separated)")
		smoke      = fs.Bool("smoke", false, "run the boot/correctness sequence instead of a load sweep")
		levels     = fs.String("levels", "4,16,64", "comma-separated closed-loop concurrency levels")
		duration   = fs.Duration("duration", 3*time.Second, "measured time per level")
		warmup     = fs.Duration("warmup", 500*time.Millisecond, "per-level warmup (not measured)")
		sweepEvery = fs.Int("sweep-every", 16, "every Nth request per worker is a sweep (0 = elections only)")
		graphSpec  = fs.String("graph", "ring:64", "election request graph spec")
		algo       = fs.String("algo", "leastel", "election request algorithm")
		model      = fs.String("model", "", "election request execution model")
		seed       = fs.Int64("seed", 1, "base seed; each request increments it")
		sweepFile  = fs.String("sweep-spec", "", "sweep-mix spec: JSON file or builtin:smoke (default: a small built-in mix)")
		out        = fs.String("out", "", "write the measurement JSON here (default stdout)")
		verify     = fs.Bool("verify", true, "verify server sweep stream byte-identical to a local harness run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := options{
		addr: *addr, duration: *duration, warmup: *warmup,
		sweepEvery: *sweepEvery, graph: *graphSpec, algo: *algo,
		model: *model, seed: *seed, out: *out, verify: *verify,
	}
	for _, s := range strings.Split(*levels, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -levels entry %q", s)
		}
		o.levels = append(o.levels, v)
	}
	if *sweepFile != "" {
		spec, err := cmdutil.LoadSpec(*sweepFile)
		if err != nil {
			return err
		}
		o.sweepSpec = spec
	} else {
		o.sweepSpec = harness.Spec{
			Name:     "serve-mix",
			Algos:    []string{"leastel", "flood"},
			Graphs:   []string{"ring:32"},
			Trials:   2,
			Seed:     7,
			SmallIDs: true,
		}
	}

	if *spawn != "" {
		sp, err := spawnServer(*spawn, strings.Fields(*spawnArgs))
		if err != nil {
			return err
		}
		o.addr = "http://" + sp.addr
		runErr := dispatch(o, *smoke)
		stopErr := sp.stop()
		if runErr != nil {
			return runErr
		}
		return stopErr
	}
	if o.addr == "" {
		return fmt.Errorf("need -addr or -spawn")
	}
	if !strings.HasPrefix(o.addr, "http") {
		o.addr = "http://" + o.addr
	}
	return dispatch(o, *smoke)
}

func dispatch(o options, smoke bool) error {
	if smoke {
		return runSmoke(o)
	}
	return runBench(o)
}

// ---- server spawning ----

type spawned struct {
	cmd  *exec.Cmd
	addr string
}

// spawnServer boots a uled binary on an ephemeral port and waits for its
// -addr-file to appear.
func spawnServer(bin string, extra []string) (*spawned, error) {
	dir, err := os.MkdirTemp("", "uled-load")
	if err != nil {
		return nil, err
	}
	addrFile := filepath.Join(dir, "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn %s: %w", bin, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	bo := cmdutil.Backoff{Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond}
	for attempt := 0; ; attempt++ {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return &spawned{cmd: cmd, addr: string(data)}, nil
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			cmd.Process.Kill()
			return nil, fmt.Errorf("spawned server did not come up within 10s")
		}
		time.Sleep(bo.Delay(attempt))
	}
}

// stop sends SIGTERM and requires a clean (exit 0) drain within 30s —
// the graceful-shutdown assertion of `make serve-smoke`.
func (s *spawned) stop() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal server: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(30 * time.Second):
		s.cmd.Process.Kill()
		return fmt.Errorf("server did not drain within 30s of SIGTERM")
	}
}

// ---- HTTP helpers ----

func newClient(concurrency int) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        2 * concurrency,
			MaxIdleConnsPerHost: 2 * concurrency,
		},
		Timeout: 60 * time.Second,
	}
}

func postJSON(c *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// goroutines reads the uled_goroutines expvar.
func goroutines(c *http.Client, base string) (int, error) {
	var vars struct {
		Goroutines int `json:"uled_goroutines"`
	}
	if err := getJSON(c, base+"/debug/vars", &vars); err != nil {
		return 0, err
	}
	return vars.Goroutines, nil
}

func (o options) electionBody(seed int64) []byte {
	req := serve.ElectionRequest{
		Graph: o.graph, Algo: o.algo, Model: o.model, Seed: seed,
	}
	b, _ := json.Marshal(req)
	return b
}

// countTrialLines counts the trial records of an NDJSON sweep stream
// (every line except the header and the groups trailer).
func countTrialLines(body []byte) int {
	n := 0
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		n++
	}
	if n < 2 {
		return 0
	}
	return n - 2
}

// localSweepNDJSON renders the batch-path NDJSON document for spec.
func localSweepNDJSON(spec harness.Spec) ([]byte, error) {
	var buf bytes.Buffer
	_, err := harness.Run(spec, harness.RunConfig{
		Workers:  1,
		Emitters: []harness.Emitter{harness.NewNDJSONEmitter(&buf)},
	})
	return buf.Bytes(), err
}

// ---- smoke mode ----

func runSmoke(o options) error {
	c := newClient(4)
	base := o.addr
	step := func(name string, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "uled-load: smoke %-28s ok\n", name)
		return nil
	}

	// healthz.
	var health struct {
		Status string `json:"status"`
	}
	if err := step("healthz", getJSON(c, base+"/healthz", &health)); err != nil {
		return err
	}
	g0, err := goroutines(c, base)
	if err := step("debug/vars", err); err != nil {
		return err
	}

	// One election, served twice: byte-identical responses, and equal to
	// the locally computed batch-path result.
	body := o.electionBody(o.seed)
	code, first, err := postJSON(c, base+"/v1/elections", body)
	if err == nil && code != http.StatusOK {
		err = fmt.Errorf("status %d: %s", code, first)
	}
	if err := step("election", err); err != nil {
		return err
	}
	_, second, err := postJSON(c, base+"/v1/elections", body)
	if err == nil && !bytes.Equal(first, second) {
		err = fmt.Errorf("same seed, different responses")
	}
	if err := step("election determinism", err); err != nil {
		return err
	}
	local := serve.NewManager(serve.Config{Slots: 1})
	var req serve.ElectionRequest
	json.Unmarshal(body, &req)
	want, err := localElectionJSON(local, req)
	if err == nil && !bytes.Equal(bytes.TrimRight(first, "\n"), want) {
		err = fmt.Errorf("served result differs from the batch path:\n  served %s\n  batch  %s", first, want)
	}
	if err := step("election vs batch", err); err != nil {
		return err
	}

	// A guaranteed 400 carrying the offending token.
	bad := []byte(`{"graph":"ring:8","algo":"leastel","model":"bogusmodel"}`)
	code, resp, err := postJSON(c, base+"/v1/elections", bad)
	if err == nil {
		if code != http.StatusBadRequest {
			err = fmt.Errorf("want 400, got %d", code)
		} else if !bytes.Contains(resp, []byte("bogusmodel")) {
			err = fmt.Errorf("400 body does not name the offending token: %s", resp)
		}
	}
	if err := step("model error -> 400", err); err != nil {
		return err
	}

	// A streamed sweep, byte-identical to the local batch run.
	specJSON, _ := json.Marshal(o.sweepSpec)
	code, stream, err := postJSON(c, base+"/v1/sweeps", specJSON)
	if err == nil && code != http.StatusOK {
		err = fmt.Errorf("status %d: %s", code, stream)
	}
	if err := step("sweep stream", err); err != nil {
		return err
	}
	want, err = localSweepNDJSON(o.sweepSpec)
	if err == nil && !bytes.Equal(stream, want) {
		err = fmt.Errorf("served NDJSON differs from the batch path (%d vs %d bytes)", len(stream), len(want))
	}
	if err := step("sweep vs batch", err); err != nil {
		return err
	}

	// Async job lifecycle: submit, poll to done, fetch result, delete.
	code, acc, err := postJSON(c, base+"/v1/sweeps?async=1", specJSON)
	if err == nil && code != http.StatusAccepted {
		err = fmt.Errorf("status %d: %s", code, acc)
	}
	if err := step("async submit", err); err != nil {
		return err
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(acc, &job); err != nil {
		return fmt.Errorf("async submit: %w", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	pollBo := cmdutil.Backoff{Base: 10 * time.Millisecond, Cap: 200 * time.Millisecond}
	for attempt := 0; ; attempt++ {
		if err := getJSON(c, base+"/v1/jobs/"+job.ID, &job); err != nil {
			return fmt.Errorf("job poll: %w", err)
		}
		if job.State == "done" || job.State == "failed" || job.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not finish within 30s", job.ID)
		}
		time.Sleep(pollBo.Delay(attempt))
	}
	var jobErr error
	if job.State != "done" {
		jobErr = fmt.Errorf("job ended %s: %s", job.State, job.Error)
	}
	if err := step("async done", jobErr); err != nil {
		return err
	}
	delReq, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+job.ID, nil)
	resp2, err := c.Do(delReq)
	if err == nil {
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusOK {
			err = fmt.Errorf("delete status %d", resp2.StatusCode)
		}
	}
	if err := step("job delete", err); err != nil {
		return err
	}

	// Goroutine flatness after everything settled.
	var g1 int
	flatErr := waitFlat(func() (bool, error) {
		var err error
		g1, err = goroutines(c, base)
		return err == nil && g1 <= g0+8, err
	}, 5*time.Second)
	if flatErr != nil {
		flatErr = fmt.Errorf("goroutines grew %d -> %d: %w", g0, g1, flatErr)
	}
	return step(fmt.Sprintf("goroutines flat (%d -> %d)", g0, g1), flatErr)
}

// localElectionJSON computes the batch-path election result document.
func localElectionJSON(m *serve.Manager, req serve.ElectionRequest) ([]byte, error) {
	res, err := m.RunElection(noCancel{}, req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// noCancel is a never-done context (the local verification runs have no
// request lifetime to inherit).
type noCancel struct{}

func (noCancel) Deadline() (time.Time, bool) { return time.Time{}, false }
func (noCancel) Done() <-chan struct{}       { return nil }
func (noCancel) Err() error                  { return nil }
func (noCancel) Value(any) any               { return nil }

func waitFlat(check func() (bool, error), budget time.Duration) error {
	deadline := time.Now().Add(budget)
	bo := cmdutil.Backoff{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond}
	var lastErr error
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		ok, err := check()
		lastErr = err
		if ok {
			return nil
		}
		time.Sleep(bo.Delay(attempt))
	}
	if lastErr != nil {
		return lastErr
	}
	return fmt.Errorf("still above the flatness bound after %v", budget)
}

// ---- bench mode ----

// levelResult is one concurrency level's measurement.
type levelResult struct {
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Elections   int64   `json:"elections"`
	Sweeps      int64   `json:"sweeps"`
	// Trials counts sweep trial records; each is one served election, so
	// ElectionsPerSec = (Elections + Trials) / DurationSec.
	Trials          int64      `json:"trials"`
	ElectionsPerSec float64    `json:"elections_per_sec"`
	LatencyMS       latencySet `json:"latency_ms"`
	GoroutinesAfter int        `json:"goroutines_after"`
}

type latencySet struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// benchDoc is the BENCH_SERVE.json document.
type benchDoc struct {
	Bench      string `json:"bench"`
	Server     string `json:"server"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Method describes how the numbers were measured (docs/PERFORMANCE.md
	// § "Serving layer" records the full protocol).
	Method    string        `json:"method"`
	Election  string        `json:"election_request"`
	SweepMix  string        `json:"sweep_mix"`
	Levels    []levelResult `json:"levels"`
	Sustained struct {
		GoroutinesStart int  `json:"goroutines_start"`
		GoroutinesEnd   int  `json:"goroutines_end"`
		Flat            bool `json:"flat"`
	} `json:"sustained"`
	VerifiedByteIdentical bool `json:"verified_byte_identical"`
}

func runBench(o options) error {
	base := o.addr
	probe := newClient(4)
	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(probe, base+"/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	g0, err := goroutines(probe, base)
	if err != nil {
		return fmt.Errorf("debug/vars: %w", err)
	}

	doc := benchDoc{
		Bench:      "uled-load",
		Server:     "cmd/uled",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Method: fmt.Sprintf("closed loop, %v per level after %v warmup; every %dth request per worker is a sweep; latency percentiles over election requests",
			o.duration, o.warmup, o.sweepEvery),
		Election: fmt.Sprintf("{graph:%s, algo:%s, model:%q, seed:base+i}", o.graph, o.algo, o.model),
		SweepMix: fmt.Sprintf("%s (%d trials)", o.sweepSpec.Name, o.sweepSpec.NumTrials()),
	}

	if o.verify {
		specJSON, _ := json.Marshal(o.sweepSpec)
		code, stream, err := postJSON(probe, base+"/v1/sweeps", specJSON)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("verify sweep: status %d err %v", code, err)
		}
		want, err := localSweepNDJSON(o.sweepSpec)
		if err != nil {
			return fmt.Errorf("verify local run: %w", err)
		}
		if !bytes.Equal(stream, want) {
			return fmt.Errorf("served NDJSON differs from the batch path (%d vs %d bytes)", len(stream), len(want))
		}
		doc.VerifiedByteIdentical = true
		fmt.Fprintln(os.Stderr, "uled-load: sweep stream verified byte-identical to the batch path")
	}

	seedCtr := o.seed
	for _, conc := range o.levels {
		lv, err := o.runLevel(base, conc, &seedCtr)
		if err != nil {
			return fmt.Errorf("level %d: %w", conc, err)
		}
		doc.Levels = append(doc.Levels, *lv)
		fmt.Fprintf(os.Stderr, "uled-load: c=%-4d %8.0f elections/s  p50=%.2fms p95=%.2fms p99=%.2fms  errors=%d\n",
			conc, lv.ElectionsPerSec, lv.LatencyMS.P50, lv.LatencyMS.P95, lv.LatencyMS.P99, lv.Errors)
	}

	g1, err := goroutines(probe, base)
	if err != nil {
		return err
	}
	// Give the server a beat to reap per-connection goroutines, then
	// judge flatness against the pre-load baseline.
	flat := g1 <= g0+8
	if !flat {
		if waitFlat(func() (bool, error) {
			var err error
			g1, err = goroutines(probe, base)
			return err == nil && g1 <= g0+8, err
		}, 5*time.Second) == nil {
			flat = true
		}
	}
	doc.Sustained.GoroutinesStart = g0
	doc.Sustained.GoroutinesEnd = g1
	doc.Sustained.Flat = flat
	if !flat {
		fmt.Fprintf(os.Stderr, "uled-load: WARNING goroutines grew %d -> %d\n", g0, g1)
	}

	enc, _ := json.MarshalIndent(doc, "", "  ")
	enc = append(enc, '\n')
	if o.out == "" || o.out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(o.out, enc, 0o644)
}

// runLevel drives one closed-loop concurrency level.
func (o options) runLevel(base string, conc int, seedCtr *int64) (*levelResult, error) {
	client := newClient(conc)
	electionURL := base + "/v1/elections"
	sweepURL := base + "/v1/sweeps"
	sweepJSON, _ := json.Marshal(o.sweepSpec)

	var (
		stop      atomic.Bool
		measuring atomic.Bool
		requests  atomic.Int64
		errs      atomic.Int64
		elections atomic.Int64
		sweeps    atomic.Int64
		trials    atomic.Int64
	)
	lats := make([][]float64, conc) // per-worker election latencies (ms)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				isSweep := o.sweepEvery > 0 && i%o.sweepEvery == o.sweepEvery-1
				start := time.Now()
				var (
					code int
					body []byte
					err  error
				)
				if isSweep {
					code, body, err = postJSON(client, sweepURL, sweepJSON)
				} else {
					seed := atomic.AddInt64(seedCtr, 1)
					code, body, err = postJSON(client, electionURL, o.electionBody(seed))
				}
				if !measuring.Load() {
					continue // warmup or drain
				}
				requests.Add(1)
				if err != nil || code != http.StatusOK {
					errs.Add(1)
					continue
				}
				if isSweep {
					sweeps.Add(1)
					trials.Add(int64(countTrialLines(body)))
				} else {
					elections.Add(1)
					lats[w] = append(lats[w], float64(time.Since(start).Microseconds())/1000)
				}
			}
		}(w)
	}

	time.Sleep(o.warmup)
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(o.duration)
	measuring.Store(false)
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no successful election requests (errors=%d)", errs.Load())
	}
	sort.Float64s(all)
	lv := &levelResult{
		Concurrency: conc,
		DurationSec: elapsed.Seconds(),
		Requests:    requests.Load(),
		Errors:      errs.Load(),
		Elections:   elections.Load(),
		Sweeps:      sweeps.Load(),
		Trials:      trials.Load(),
		LatencyMS: latencySet{
			P50:  percentile(all, 0.50),
			P95:  percentile(all, 0.95),
			P99:  percentile(all, 0.99),
			Mean: mean(all),
			Max:  all[len(all)-1],
		},
	}
	lv.ElectionsPerSec = float64(lv.Elections+lv.Trials) / elapsed.Seconds()
	// Return this level's keep-alive connections before sampling, so the
	// goroutine figure reflects the server, not the client's idle pool.
	client.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	if g, err := goroutines(client, base); err == nil {
		lv.GoroutinesAfter = g
	}
	client.CloseIdleConnections()
	return lv, nil
}

// percentile returns the q-quantile of sorted xs (nearest-rank with
// linear interpolation between the surrounding order statistics).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
