// Command ule-fleet runs a sweep across a fleet of worker processes and
// merges their shards into one ule-sweepbin document that is
// byte-identical to a single-process run — surviving worker crashes,
// hangs and shard corruption along the way (internal/fleet; protocol in
// docs/DISTRIBUTED.md).
//
// Usage:
//
//	ule-fleet -spec sweep.json -out sweep.ulsb -workers 4
//	ule-fleet -spec sweep.json -out sweep.ulsb -chaos kill:0.3,stall:0.2 -chaos-seed 7
//	ule-fleet -gate                  # CI chaos smoke (make fleet-chaos)
//	ule-fleet -bench-out BENCH_FLEET.json
//	ule-fleet -worker …              # internal: one shard attempt (exec'd)
//
// On quarantined units the merged file is withheld and the exit status is
// nonzero; -report writes the machine-readable outcome (retries, fault
// counters, and the exact missing trial ranges) either way.
//
// -gate runs a small sweep at 1, 2 and 4 workers with two scheduled
// worker kills each and fails unless every merged document is
// byte-identical to the in-process reference. -bench-out additionally
// sweeps the fault matrix (none/kill/stall/corrupt/mixed) and writes the
// measurement document behind BENCH_FLEET.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ule/internal/fleet"
	"ule/internal/harness"
)

func main() {
	// The worker mode must not see the coordinator flag set: dispatch on
	// the first argument before any parsing.
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		os.Exit(fleet.RunWorker(os.Args[2:]))
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ule-fleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ule-fleet", flag.ExitOnError)
	var (
		specPath  = fs.String("spec", "", "sweep spec JSON file")
		out       = fs.String("out", "", "merged ule-sweepbin output path")
		jsonOut   = fs.String("json", "", "also export merged sweep JSON to this path")
		report    = fs.String("report", "", "write the machine-readable run result (JSON) to this path")
		workers   = fs.Int("workers", 2, "concurrent worker processes")
		unit      = fs.Int("unit-trials", 0, "trials per work unit (0 = auto)")
		ckEvery   = fs.Int("checkpoint-every", 0, "shard checkpoint cadence (0 = default)")
		heartbeat = fs.Duration("heartbeat", 10*time.Second, "heartbeat deadline before a lease is revoked")
		maxAtt    = fs.Int("max-attempts", 4, "attempts before a unit is quarantined")
		dir       = fs.String("dir", "", "shard directory (default: temp dir)")
		chaos     = fs.String("chaos", "", "fault injection, e.g. kill:0.3,stall:0.2,corrupt:0.1")
		chaosSeed = fs.Uint64("chaos-seed", 1, "chaos schedule seed")
		chaosMax  = fs.Int("chaos-max", 0, "cap on injected faults (0 = none)")
		gate      = fs.Bool("gate", false, "run the CI chaos gate and exit")
		benchOut  = fs.String("bench-out", "", "run the fault×workers bench matrix, write JSON here")
		verbose   = fs.Bool("v", false, "log coordinator progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *gate || *benchOut != "" {
		return gateAndBench(*specPath, *benchOut, *verbose)
	}

	if *specPath == "" || *out == "" {
		return fmt.Errorf("need -spec and -out (or -gate / -bench-out)")
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	plan, err := parseChaos(*chaos, *chaosSeed, *chaosMax)
	if err != nil {
		return err
	}
	cfg := fleet.Config{
		Spec:             spec,
		Workers:          *workers,
		UnitTrials:       *unit,
		CheckpointEvery:  *ckEvery,
		HeartbeatTimeout: *heartbeat,
		MaxAttempts:      *maxAtt,
		Dir:              *dir,
		Out:              *out,
		JSONOut:          *jsonOut,
		Chaos:            plan,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	res, runErr := fleet.Run(cfg)
	if res != nil {
		if *report != "" {
			if err := writeJSONFile(*report, res); err != nil {
				return err
			}
		}
		fmt.Printf("fleet: %d trials in %d units, %d workers: retries=%d reassignments=%d kills=%d stalls=%d corruptions=%d (%d ms)\n",
			res.Total, res.Units, res.Workers, res.Retries, res.Reassignments,
			res.Kills, res.Stalls, res.Corruptions, res.ElapsedMS)
		if len(res.Incomplete) > 0 {
			mr, _ := json.Marshal(res.Incomplete)
			fmt.Printf("fleet: INCOMPLETE, missing ranges: %s\n", mr)
		}
	}
	return runErr
}

func loadSpec(path string) (harness.Spec, error) {
	var spec harness.Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

// parseChaos parses "kill:P,stall:P,corrupt:P" into a ChaosPlan.
func parseChaos(s string, seed uint64, max int) (*fleet.ChaosPlan, error) {
	if s == "" {
		return nil, nil
	}
	plan := &fleet.ChaosPlan{Seed: seed, MaxActions: max}
	for _, part := range strings.Split(s, ",") {
		kind, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("chaos %q: want kind:prob", part)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("chaos %q: bad probability %q", part, val)
		}
		switch kind {
		case "kill":
			plan.Kill = p
		case "stall":
			plan.Stall = p
		case "corrupt":
			plan.Corrupt = p
		default:
			return nil, fmt.Errorf("chaos %q: unknown fault kind (kill|stall|corrupt)", part)
		}
	}
	if plan.Kill+plan.Stall+plan.Corrupt > 1 {
		return nil, fmt.Errorf("chaos probabilities sum to more than 1")
	}
	return plan, nil
}

// gateSpec is the chaos-gate sweep: 96 trials across algorithms, graph
// families, execution models and fault schedules — big enough that every
// worker holds several units, small enough for CI.
func gateSpec() harness.Spec {
	return harness.Spec{
		Name:     "fleet-gate",
		Algos:    []string{"leastel", "flood"},
		Graphs:   []string{"ring:16", "random:24:60"},
		Modes:    []string{"congest", "async"},
		Faults:   []string{"", "crash:0.2"},
		Trials:   6,
		Seed:     5,
		SmallIDs: true,
	}
}

// benchScenario is one row of the chaos matrix.
type benchScenario struct {
	Name string
	Plan *fleet.ChaosPlan
}

func benchScenarios() []benchScenario {
	return []benchScenario{
		{"none", nil},
		{"kill", &fleet.ChaosPlan{Seed: 42, Kill: 1, MaxActions: 2}},
		{"stall", &fleet.ChaosPlan{Seed: 7, Stall: 1, MaxActions: 1}},
		{"corrupt", &fleet.ChaosPlan{Seed: 3, Corrupt: 1, MaxActions: 1}},
		{"mixed", &fleet.ChaosPlan{Seed: 11, Kill: 0.4, Stall: 0.3, Corrupt: 0.3, MaxActions: 4}},
	}
}

// benchCell is one measured (scenario, workers) run.
type benchCell struct {
	Scenario      string `json:"scenario"`
	Workers       int    `json:"workers"`
	Units         int    `json:"units"`
	WallMS        int64  `json:"wall_ms"`
	Retries       int    `json:"retries"`
	Reassignments int    `json:"reassignments"`
	Kills         int    `json:"kills"`
	Stalls        int    `json:"stalls"`
	Corruptions   int    `json:"corruptions"`
	ByteIdentical bool   `json:"byte_identical"`
}

// gateAndBench runs the chaos gate (kill chaos at 1, 2 and 4 workers,
// byte-identity required) and, when benchPath is set, the full
// fault×workers matrix, writing the measurement document.
func gateAndBench(specPath, benchPath string, verbose bool) error {
	spec := gateSpec()
	if specPath != "" {
		s, err := loadSpec(specPath)
		if err != nil {
			return err
		}
		spec = s
	}
	const cadence = 4

	// The single-process reference both modes compare against.
	var refBuf bytes.Buffer
	opt := harness.BinaryOptions{CheckpointEvery: cadence}
	if _, err := harness.Run(spec, harness.RunConfig{
		Emitters: []harness.Emitter{harness.NewBinaryEmitter(&refBuf, opt)},
	}); err != nil {
		return err
	}
	ref := refBuf.Bytes()

	scenarios := benchScenarios()
	if benchPath == "" {
		scenarios = scenarios[1:2] // gate mode: the kill scenario only
	}

	var cells []benchCell
	for _, sc := range scenarios {
		for _, workers := range []int{1, 2, 4} {
			cell, err := runCell(spec, sc, workers, cadence, ref, verbose)
			if err != nil {
				return err
			}
			fmt.Printf("fleet %-8s workers=%d: %4d ms, retries=%d reassignments=%d kills=%d stalls=%d corruptions=%d byte_identical=%v\n",
				sc.Name, workers, cell.WallMS, cell.Retries, cell.Reassignments,
				cell.Kills, cell.Stalls, cell.Corruptions, cell.ByteIdentical)
			if !cell.ByteIdentical {
				return fmt.Errorf("scenario %s at %d workers: merged output NOT byte-identical to single-process run", sc.Name, workers)
			}
			cells = append(cells, cell)
		}
	}

	if benchPath != "" {
		doc := struct {
			Bench  string      `json:"bench"`
			Spec   string      `json:"spec"`
			Trials int         `json:"trials"`
			Method string      `json:"method"`
			Cells  []benchCell `json:"cells"`
		}{
			Bench:  "ule-fleet",
			Spec:   spec.Name,
			Trials: mustTotal(spec),
			Method: "each cell runs the gate sweep through exec'd workers under the named fault plan and compares the merged binary byte-for-byte against one in-process run; wall_ms includes worker exec, retry backoff and the merge",
			Cells:  cells,
		}
		if err := writeJSONFile(benchPath, doc); err != nil {
			return err
		}
		fmt.Printf("fleet: wrote %d cells to %s\n", len(cells), benchPath)
	}
	fmt.Println("fleet: chaos gate OK (byte-identical at every worker count and fault plan)")
	return nil
}

func runCell(spec harness.Spec, sc benchScenario, workers, cadence int, ref []byte, verbose bool) (benchCell, error) {
	dir, err := os.MkdirTemp("", "ule-fleet-gate-*")
	if err != nil {
		return benchCell{}, err
	}
	defer os.RemoveAll(dir)
	cfg := fleet.Config{
		Spec:             spec,
		Workers:          workers,
		UnitTrials:       8,
		CheckpointEvery:  cadence,
		HeartbeatTimeout: 5 * time.Second,
		Dir:              dir,
		Out:              filepath.Join(dir, "merged.ulsb"),
		Chaos:            sc.Plan,
	}
	if verbose {
		cfg.Log = os.Stderr
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		return benchCell{}, fmt.Errorf("scenario %s workers=%d: %w", sc.Name, workers, err)
	}
	got, err := os.ReadFile(cfg.Out)
	if err != nil {
		return benchCell{}, err
	}
	return benchCell{
		Scenario:      sc.Name,
		Workers:       workers,
		Units:         res.Units,
		WallMS:        res.ElapsedMS,
		Retries:       res.Retries,
		Reassignments: res.Reassignments,
		Kills:         res.Kills,
		Stalls:        res.Stalls,
		Corruptions:   res.Corruptions,
		ByteIdentical: bytes.Equal(got, ref),
	}, nil
}

func mustTotal(spec harness.Spec) int {
	n, err := spec.Validate()
	if err != nil {
		return -1
	}
	return n
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
