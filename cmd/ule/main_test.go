package main

import "testing"

func TestBuildGraphSpecs(t *testing.T) {
	tests := []struct {
		spec string
		n, m int
	}{
		{"path:5", 5, 4},
		{"ring:8", 8, 8},
		{"star:6", 6, 5},
		{"complete:5", 5, 10},
		{"hypercube:3", 8, 12},
		{"grid:3x4", 12, 17},
		{"torus:4x4", 16, 32},
		{"random:20:40", 20, 40},
		{"cliquecycle:24:8", 24, 0}, // m depends on γ; checked below
	}
	for _, tt := range tests {
		g, err := buildGraph(tt.spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", tt.spec, err)
		}
		if g.N() != tt.n {
			t.Errorf("%s: N=%d want %d", tt.spec, g.N(), tt.n)
		}
		if tt.m > 0 && g.M() != tt.m {
			t.Errorf("%s: M=%d want %d", tt.spec, g.M(), tt.m)
		}
		if !g.Connected() {
			t.Errorf("%s: disconnected", tt.spec)
		}
	}
	// Lollipop/dumbbell shapes.
	if g, err := buildGraph("lollipop:16:60", 1); err != nil || g.N() != 16 {
		t.Errorf("lollipop: %v", err)
	}
	if g, err := buildGraph("dumbbell:16:60", 1); err != nil || g.N() != 32 {
		t.Errorf("dumbbell: %v", err)
	}
}

func TestBuildGraphRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"nope:5", "grid:5", "grid:ax4", "random:5", "ring", "ring:x"} {
		if _, err := buildGraph(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestRunListAndElection(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", "ring:16", "-algo", "leastel", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-graph", "ring:16", "-algo", "leastel", "-mode", "async", "-delay", "random:4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-algo", "no-such"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-mode", "quantum"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mode", "async", "-delay", "gauss:2"}); err == nil {
		t.Error("unknown delay schedule accepted")
	}
}
