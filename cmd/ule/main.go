// Command ule runs one universal leader election algorithm on one graph and
// prints the measured complexity.
//
// Usage:
//
//	ule -graph ring:64 -algo leastel -trials 5 -seed 1
//	ule -graph ring:64 -algo leastel -mode async -delay random:8
//	ule -graph ring:64 -algo leastel -model async+random:8+crash:0.2
//	ule -graph ring:64 -algo leastel -faults crashrec:0.2:32
//	ule -graph ring:4096 -algo leastel -trials 20 -cpuprofile cpu.out -memprofile mem.out
//	ule -list
//
// Graph specs: path:N ring:N star:N complete:N grid:RxC torus:RxC
// bipartite:AxB hypercube:DIM random:N:M regular:N:D caterpillar:SPINE:LEGS
// lollipop:N:M dumbbell:N:M cliquecycle:N:D
//
// Modes: congest (default), local, async. In async mode -delay selects the
// message-delay schedule (unit, random:B, fifo:B). -faults injects the
// seed-deterministic fault adversary (crash:P, crashrec:P:DOWN, drop:P,
// churn:P:K — see docs/FAULTS.md); -model sets the full execution-model
// spec in one string and overrides -mode/-delay.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ule/election"
	"ule/internal/cmdutil"
	"ule/internal/sim"
	"ule/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ule:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ule", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "ring:32", "graph family spec (see -help)")
		algo      = fs.String("algo", "leastel", "algorithm name (see -list)")
		trials    = fs.Int("trials", 1, "independent trials (fresh IDs/coins)")
		seed      = fs.Int64("seed", 1, "base seed")
		mode      = fs.String("mode", "congest", "execution model: congest, local, async")
		delay     = fs.String("delay", "", "async delay schedule: unit, random:B, fifo:B")
		model     = fs.String("model", "", "full execution-model spec (overrides -mode/-delay), e.g. async+random:4+crash:0.2")
		faults    = fs.String("faults", "", "fault schedule: crash:P[:W], crashrec:P:DOWN[:keep], drop:P, churn:P:K")
		local     = fs.Bool("local", false, "LOCAL model instead of CONGEST (alias for -mode local)")
		anonymous = fs.Bool("anonymous", false, "run without node identifiers")
		smallIDs  = fs.Bool("small-ids", false, "permutation IDs 1..n (needed for dfs)")
		maxRounds = fs.Int("max-rounds", 1<<18, "round cap")
		shards    = fs.Int("shards", 0, "engine shards (0/1 single, -1 auto-size to cores; results identical)")
		list      = fs.Bool("list", false, "list algorithms and exit")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the trials to this file")
		memProf   = fs.String("memprofile", "", "write an allocation profile to this file after the trials")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			// A final GC makes the heap profile reflect live data, while
			// alloc_space/alloc_objects still cover everything the trials
			// allocated — the view the fast-path regression work uses.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ule: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *list {
		for _, name := range election.Algorithms() {
			desc, _ := election.Describe(name)
			fmt.Println(desc)
		}
		return nil
	}
	// Resolve the execution model: -model wins; otherwise the legacy
	// -mode/-delay flags are composed into the same spec grammar, and
	// -faults appends the fault adversary either way (shared helper, also
	// used by ule-experiments and the uled serving layer).
	em, err := cmdutil.ResolveModel(*model, *mode, *delay, *faults, *local)
	if err != nil {
		return err
	}
	g, err := buildGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	if em.Mode == sim.ASYNC {
		ds := "unit"
		if em.Delay != nil {
			ds = em.Delay.Name()
		}
		fmt.Printf("graph %s: n=%d m=%d  (async, delay %s)\n", *graphSpec, g.N(), g.M(), ds)
	} else {
		fmt.Printf("graph %s: n=%d m=%d\n", *graphSpec, g.N(), g.M())
	}
	withFaults := em.Faults != nil
	if withFaults {
		fmt.Printf("faults: %s\n", em.Faults.Name())
	}
	var table *stats.Table
	if withFaults {
		table = stats.NewTable("", "trial", "rounds", "messages", "bits", "leaders", "unique", "crashes", "recov", "dropped", "live-unique")
	} else {
		table = stats.NewTable("", "trial", "rounds", "messages", "bits", "leaders", "unique")
	}
	var msgs, rounds []float64
	for i := 0; i < *trials; i++ {
		s := *seed + int64(i)
		var ids []int64
		if *smallIDs {
			ids = election.PermutationIDs(g.N(), election.NewRand(s))
		}
		res, err := election.Elect(g, *algo, election.Params{
			Seed: s, IDs: ids, Anonymous: *anonymous,
			Model:     em.String(),
			MaxRounds: *maxRounds,
			Shards:    *shards,
		})
		if err != nil {
			return err
		}
		if withFaults {
			table.AddRow(i, res.Rounds, res.Messages, res.Bits, res.LeaderCount(), res.UniqueLeader(),
				res.Crashes, res.Recoveries, res.Dropped, res.UniqueLiveLeader())
		} else {
			table.AddRow(i, res.Rounds, res.Messages, res.Bits, res.LeaderCount(), res.UniqueLeader())
		}
		msgs = append(msgs, float64(res.Messages))
		rounds = append(rounds, float64(res.Rounds))
	}
	fmt.Print(table.String())
	ms, rs := stats.Summarize(msgs), stats.Summarize(rounds)
	fmt.Printf("messages: mean=%.1f (±%.1f)  msgs/m=%.2f\n", ms.Mean, ms.Std, ms.Mean/float64(g.M()))
	fmt.Printf("rounds:   mean=%.1f (±%.1f)\n", rs.Mean, rs.Std)
	return nil
}

// buildGraph parses the -graph family spec through the shared helper in
// internal/cmdutil (the same grammar the sweep harness and uled accept).
func buildGraph(spec string, seed int64) (*election.Graph, error) {
	return cmdutil.BuildGraph(spec, seed)
}
