// Sensornet: the paper's motivating scenario — energy-constrained sensor
// grids where every transmitted message costs battery. Compares the message
// bill of the Table 1 algorithms on a 2D sensor grid and shows why the
// Theorem 4.4.(B) sampler (O(m) messages) is the right choice when radios
// dominate the energy budget.
package main

import (
	"fmt"
	"log"

	"ule/election"
)

// joulesPerMessage is a toy radio cost model: ~50 µJ per short packet.
const joulesPerMessage = 50e-6

func main() {
	// A 24x24 sensor field with wraparound links (torus keeps the diameter
	// small, as in a deployment with long-range corner relays).
	g := election.Torus(24, 24)
	fmt.Printf("sensor field: %d motes, %d radio links, diameter %d\n\n",
		g.N(), g.M(), g.DiameterExact())

	fmt.Printf("%-18s %10s %10s %12s %9s\n", "algorithm", "messages", "rounds", "energy (J)", "elected")
	for _, algo := range []string{"flood", "leastel", "leastel-loglog", "leastel-const", "cluster"} {
		var msgs, rounds float64
		elected := 0
		const trials = 5
		for s := int64(0); s < trials; s++ {
			res, err := election.Elect(g, algo, election.Params{Seed: s})
			if err != nil {
				log.Fatal(err)
			}
			msgs += float64(res.Messages) / trials
			rounds += float64(res.Rounds) / trials
			if res.UniqueLeader() {
				elected++
			}
		}
		fmt.Printf("%-18s %10.0f %10.0f %12.4f %6d/%d\n",
			algo, msgs, rounds, msgs*joulesPerMessage, elected, trials)
	}

	fmt.Println("\nThe Ω(m) lower bound (Theorem 3.1) says no protocol can beat ~1")
	fmt.Println("message per link; leastel-const gets within a small constant of it.")
}
