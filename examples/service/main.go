// Service: drive a running uled server from Go — one election, a
// streamed sweep consumed line by line, and an async job polled to
// completion.
//
// Start a server first:
//
//	go run ./cmd/uled -addr 127.0.0.1:8080
//
// then:
//
//	go run ./examples/service -addr 127.0.0.1:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ule/internal/cmdutil"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "uled server address")
	flag.Parse()
	base := "http://" + strings.TrimPrefix(*addr, "http://")

	// One election: POST a request, read the result document.
	election := map[string]any{
		"graph": "random:100:300", "algo": "leastel",
		"seed": 7, "small_ids": true,
	}
	var result struct {
		N        int   `json:"n"`
		Rounds   int   `json:"rounds"`
		Messages int64 `json:"messages"`
		Leader   int   `json:"leader"`
		Unique   bool  `json:"unique"`
	}
	if err := post(base+"/v1/elections", election, &result); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("election: leader %d on n=%d (unique=%v) in %d rounds, %d messages\n",
		result.Leader, result.N, result.Unique, result.Rounds, result.Messages)

	// A streamed sweep: the response is NDJSON — header, one line per
	// trial, trailer with the group aggregates.
	sweep := map[string]any{
		"name": "example", "algos": []string{"leastel", "flood"},
		"graphs": []string{"ring:64"}, "trials": 3, "seed": 11, "small_ids": true,
	}
	body, _ := json.Marshal(sweep)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var trial struct {
			Algo   string `json:"algo"`
			Rounds int    `json:"rounds"`
			Unique bool   `json:"unique"`
			Groups []any  `json:"groups"`
		}
		json.Unmarshal(sc.Bytes(), &trial)
		switch {
		case lines == 0:
			fmt.Println("sweep: streaming…")
		case trial.Groups != nil:
			fmt.Printf("sweep: done, %d group(s)\n", len(trial.Groups))
		default:
			fmt.Printf("  trial %-8s rounds=%-4d unique=%v\n", trial.Algo, trial.Rounds, trial.Unique)
		}
		lines++
	}

	// An async job: submit with ?async=1, poll /v1/jobs/{id} until done.
	var job struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := post(base+"/v1/sweeps?async=1", sweep, &job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: submitted\n", job.ID)
	for job.State != "done" && job.State != "failed" && job.State != "cancelled" {
		time.Sleep(50 * time.Millisecond)
		if err := get(base+"/v1/jobs/"+job.ID, &job); err != nil {
			log.Fatal(err)
		}
	}
	if job.State != "done" {
		log.Fatalf("job %s ended %s: %s", job.ID, job.State, job.Error)
	}
	var summary struct {
		TotalTrials int `json:"total_trials"`
	}
	json.Unmarshal(job.Result, &summary)
	fmt.Printf("job %s: done, %d trials\n", job.ID, summary.TotalTrials)
}

// post retries 503s (full job table, draining server) with capped
// backoff, honoring the server's Retry-After hint when present instead of
// hot-looping on a saturated server.
func post(url string, req, res any) error {
	const maxAttempts = 5
	bo := cmdutil.Backoff{Base: 200 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.2}
	body, _ := json.Marshal(req)
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < maxAttempts-1 {
			delay := bo.Delay(attempt)
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
				if hinted := time.Duration(secs) * time.Second; hinted < delay {
					delay = hinted
				}
			}
			resp.Body.Close()
			fmt.Printf("server busy (503), retrying in %v…\n", delay.Round(time.Millisecond))
			time.Sleep(delay)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			var eb struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&eb)
			return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, eb.Error)
		}
		return json.NewDecoder(resp.Body).Decode(res)
	}
}

func get(url string, res any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(res)
}
