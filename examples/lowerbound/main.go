// Lowerbound: a live demonstration of both lower bounds.
//
// Theorem 3.1 (Ω(m) messages): on dumbbell graphs, every algorithm —
// regardless of how clever — pays at least ~1 message per edge, because
// until a message crosses one of the two bridges, the two halves cannot
// know the other exists, and finding the (adversarially placed) bridges
// costs Ω(m) expected probes.
//
// Theorem 3.13 (Ω(D) time): on the Figure 1 clique-cycle, opposite arcs
// are Ω(D) hops apart, so any run shorter than that risks electing one
// leader in each arc.
package main

import (
	"fmt"
	"log"

	"ule/election"
	"ule/internal/lowerbound"
)

func main() {
	fmt.Println("=== Theorem 3.1: Ω(m) messages on dumbbells ===")
	fmt.Printf("%-14s %8s %8s %12s %12s\n", "algo", "m(total)", "msgs/m", "crossRound", "beforeCross")
	for _, algo := range []string{"leastel-const", "leastel", "kingdom"} {
		for _, m := range []int{100, 300, 900} {
			row, err := lowerbound.MessageLB(24, m, lowerbound.Sweep{Algo: algo, Trials: 5, Seed: 9})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %8d %8.2f %12.1f %12.0f\n",
				algo, 2*m, row.MsgsPerM.Mean, row.CrossRound.Mean, row.BeforeCross.Mean)
		}
	}
	fmt.Println("\nmsgs/m never drops below ~1: the bound is tight (dfs achieves O(m)).")

	fmt.Println("\n=== Theorem 3.13: Ω(D) time on the clique-cycle (Figure 1) ===")
	fmt.Printf("%-10s %6s %10s %14s %14s\n", "algo", "D", "rounds/D", "success@0.25D", "success@full")
	for _, d := range []int{8, 16, 32} {
		row, err := lowerbound.TimeLB(4*d, d, lowerbound.Sweep{Algo: "leastel", Trials: 5, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := lowerbound.TruncatedSuccess(4*d, d, 0.25, lowerbound.Sweep{Algo: "leastel", Trials: 5, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %10.2f %14.2f %14.2f\n",
			"leastel", row.D, row.RoundsPerD.Mean, tr.SuccessRate, row.SuccessRate)
	}

	fmt.Println("\n=== §1: why \"suitably large\" success probability matters ===")
	row, err := lowerbound.TrivialSuccess(256, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the 1/n self-election: 0 messages, 1 round, success %.3f (1/e ≈ 0.368)\n", row.SuccessRate)
	fmt.Println("constant-but-small success is free; the lower bounds kick in above it.")

	// The tightness witness: Theorem 4.1 achieves O(m) on the same family.
	db, _, err := lowerbound.DumbbellInstance(24, 300, election.NewRand(2))
	if err != nil {
		log.Fatal(err)
	}
	ids := election.PermutationIDs(db.N(), election.NewRand(3))
	res, err := election.Elect(db.Graph, "dfs", election.Params{Seed: 4, IDs: ids})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4.1 on the same dumbbell: %d messages = %.2f per edge (tight!)\n",
		res.Messages, float64(res.Messages)/float64(db.M()))
}
