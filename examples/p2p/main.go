// P2P: leader election in a dense peer-to-peer overlay. Dense graphs
// (m > n^(1+ε)) are exactly where Corollary 4.2 matches both lower bounds
// simultaneously: the Baswana–Sen spanner cuts the overlay to ~n^(1+ε/2)
// edges, then the least-element election runs on the spanner for O(m)
// total messages in O(D) time. The example also exercises the anonymous
// setting: the randomized algorithms need no node identifiers.
package main

import (
	"fmt"
	"log"

	"ule/election"
)

func main() {
	// A dense unstructured overlay: 200 peers, each connected to half the
	// network — the m ≫ n^1.5 regime where Corollary 4.2 matches both
	// lower bounds at once.
	n := 200
	g, err := election.RandomConnected(n, n*(n-1)/4, election.NewRand(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d peers, %d connections (m ≈ n^%.2f), diameter %d\n\n",
		g.N(), g.M(), logRatio(g.M(), n), g.DiameterExact())

	for _, algo := range []string{"leastel", "spanner-le"} {
		// k=2 gives a 3-spanner with ~n^1.5 edges — dense overlays (m well
		// above n^1.5) see the full Corollary 4.2 effect.
		res, err := election.Elect(g, algo, election.Params{Seed: 3, Opt: election.Options{SpannerK: 2}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s messages=%7d (%.2f/edge)  rounds=%3d  unique=%v\n",
			algo, res.Messages, float64(res.Messages)/float64(g.M()), res.Rounds, res.UniqueLeader())
	}

	// Anonymous overlay (no peer IDs): the least-element election still
	// works — candidates use random ranks and random tiebreak tokens.
	res, err := election.Elect(g, "leastel", election.Params{Seed: 5, Anonymous: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanonymous leastel: unique leader = %v (rank collisions ~ 2^-62)\n", res.UniqueLeader())
}

// logRatio returns log_n(m): the density exponent 1+ε.
func logRatio(m, n int) float64 {
	lm, ln := 0.0, 0.0
	for v := 1; v < m; v *= 2 {
		lm++
	}
	for v := 1; v < n; v *= 2 {
		ln++
	}
	return lm / ln
}
