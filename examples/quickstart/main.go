// Quickstart: elect a leader on a random connected network with the
// least-element-list algorithm (Theorem 4.4 family) and print what it cost.
package main

import (
	"fmt"
	"log"

	"ule/election"
)

func main() {
	// A random connected network: 100 nodes, 300 links.
	g, err := election.RandomConnected(100, 300, election.NewRand(7))
	if err != nil {
		log.Fatal(err)
	}

	res, err := election.Elect(g, "leastel", election.Params{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	if !res.UniqueLeader() {
		log.Fatal("election failed (astronomically unlikely for leastel)")
	}
	fmt.Printf("network: n=%d nodes, m=%d edges\n", g.N(), g.M())
	fmt.Printf("leader:  node %d\n", res.Leaders[0])
	fmt.Printf("cost:    %d messages (%.1f per edge), %d rounds, %d payload bits\n",
		res.Messages, float64(res.Messages)/float64(g.M()), res.Rounds, res.Bits)

	// Compare against the message-optimal deterministic algorithm of
	// Theorem 4.1 (same graph, small IDs so its exponential clock is tame).
	ids := election.PermutationIDs(g.N(), election.NewRand(2))
	dfs, err := election.Elect(g, "dfs", election.Params{Seed: 1, IDs: ids})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4.1 on the same graph: %d messages (%.1f per edge) but %d rounds\n",
		dfs.Messages, float64(dfs.Messages)/float64(g.M()), dfs.Rounds)
	fmt.Println("— the message/time trade-off the paper proves is inherent.")
}
