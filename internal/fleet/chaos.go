// Package fleet is the multi-process leg of the distributed sweep
// (ROADMAP item 5): a coordinator that partitions a sweep spec into
// contiguous trial-range work units, leases each unit to an exec'd worker
// process writing a ule-sweepbin shard, and survives worker crashes,
// hangs, and shard corruption — revoking the lease, resuming from the
// worker's last fsynced checkpoint, and reassigning with capped
// exponential backoff. Duplicate trial records from re-run prefixes are
// deduplicated by absolute trial index at merge time, so the merged
// binary and its JSON export are byte-for-byte identical to a
// single-process run at any worker count and any crash schedule. See
// docs/DISTRIBUTED.md for the protocol and the determinism argument.
package fleet

import (
	"ule/internal/harness"
)

// ChaosPlan injects seed-deterministic faults into a fleet run: for each
// work unit an independent deterministic draw (splitmix64 over Seed and
// the unit index) selects at most one fault, applied only to the unit's
// first attempt so retries always converge. The same seed and unit
// layout reproduce the exact fault schedule — the chaos gate in CI
// depends on this.
type ChaosPlan struct {
	// Seed selects the deterministic fault schedule.
	Seed uint64 `json:"seed"`
	// Kill, Stall and Corrupt are per-unit probabilities (summing to at
	// most 1) of, respectively: SIGKILL the worker after K trials (K=0 is
	// a unit boundary, mid-unit otherwise), hang the worker past the
	// heartbeat deadline, and corrupt the shard tail after a clean exit.
	Kill    float64 `json:"kill,omitempty"`
	Stall   float64 `json:"stall,omitempty"`
	Corrupt float64 `json:"corrupt,omitempty"`
	// MaxActions caps the total injected faults across the run (first
	// units win, in unit order); 0 means no cap.
	MaxActions int `json:"max_actions,omitempty"`
}

type chaosKind int

const (
	chaosNone chaosKind = iota
	chaosKill
	chaosStall
	chaosCorrupt
)

func (k chaosKind) String() string {
	switch k {
	case chaosKill:
		return "kill"
	case chaosStall:
		return "stall"
	case chaosCorrupt:
		return "corrupt"
	}
	return "none"
}

// chaosAction is one scheduled fault: kind, and the number of unit-local
// trials after which it triggers (meaningful for kill and stall).
type chaosAction struct {
	kind  chaosKind
	after int
}

// actions precomputes the fault schedule for a unit layout. The draw for
// unit i depends only on (Seed, i, count), so the schedule is stable
// across worker counts and retry interleavings.
func (p *ChaosPlan) actions(units []harness.TrialRange) map[int]chaosAction {
	out := make(map[int]chaosAction)
	if p == nil {
		return out
	}
	budget := p.MaxActions
	for i, r := range units {
		if p.MaxActions > 0 && budget == 0 {
			break
		}
		a := p.decide(i, r.Count)
		if a.kind == chaosNone {
			continue
		}
		out[i] = a
		if p.MaxActions > 0 {
			budget--
		}
	}
	return out
}

// decide draws the fault (if any) for one unit.
func (p *ChaosPlan) decide(unit, count int) chaosAction {
	u1 := splitmix64(p.Seed ^ (uint64(unit+1) * 0x9E3779B97F4A7C15))
	frac := float64(u1>>11) / float64(1<<53)
	u2 := splitmix64(u1)
	switch {
	case frac < p.Kill:
		// K in [0, count]: 0 kills at the unit boundary before any trial,
		// count kills after the last trial but before the shard end record.
		return chaosAction{kind: chaosKill, after: int(u2 % uint64(count+1))}
	case frac < p.Kill+p.Stall:
		return chaosAction{kind: chaosStall, after: int(u2 % uint64(count))}
	case frac < p.Kill+p.Stall+p.Corrupt:
		return chaosAction{kind: chaosCorrupt}
	}
	return chaosAction{kind: chaosNone}
}

// splitmix64 is the SplitMix64 mixing function (stateless 64→64 hash).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
