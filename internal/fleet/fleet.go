package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ule/internal/cmdutil"
	"ule/internal/harness"
)

// Config drives one fleet run. Zero values pick conservative defaults;
// only Spec and Out are required.
type Config struct {
	// Spec is the sweep to run. It is written verbatim to Dir/spec.json
	// and handed to every worker, so both sides compile the identical
	// spec and every shard carries the same spec hash.
	Spec harness.Spec

	// Workers is the number of concurrent worker processes (default 2).
	Workers int

	// UnitTrials is the work-unit size in trials. Default: enough units
	// for ~4 leases per worker, at least 1 trial each.
	UnitTrials int

	// CheckpointEvery is the shard checkpoint cadence handed to workers
	// and used for the merged output (0 = the harness default). Byte
	// identity with a single-process run requires the same cadence on
	// both sides.
	CheckpointEvery int

	// HeartbeatTimeout revokes a worker's lease when its stdout has been
	// silent this long (default 10s). Workers emit one "hb" line per
	// completed trial.
	HeartbeatTimeout time.Duration

	// MaxAttempts quarantines a unit after this many failed attempts
	// (default 4). A quarantined unit's completed prefix still merges;
	// the rest is reported in Result.Incomplete.
	MaxAttempts int

	// Backoff paces retries of a failed unit (zero value: 10ms base,
	// 300ms cap, no jitter — see cmdutil.Backoff).
	Backoff cmdutil.Backoff

	// Dir holds the spec file and shard files (default: a fresh temp
	// directory, left on disk for post-mortems).
	Dir string

	// Out is the merged ule-sweepbin output path (required).
	Out string

	// JSONOut, when set, additionally exports the merged document as
	// canonical sweep JSON.
	JSONOut string

	// WorkerArgv is the worker command prefix; the coordinator appends
	// -spec/-start/-count/-shard/-checkpoint-every and chaos flags.
	// Default: this executable with a -worker flag (the cmd/ule-fleet
	// layout). Tests point it at the test binary re-exec hook.
	WorkerArgv []string

	// WorkerEnv is appended to the inherited environment of every worker.
	WorkerEnv []string

	// Chaos, when non-nil, injects seed-deterministic faults (first
	// attempts only) — the chaos gate proving crash-safety.
	Chaos *ChaosPlan

	// Log receives human-readable progress lines and worker stderr
	// (default: discarded).
	Log io.Writer
}

// Result is the machine-readable outcome of a fleet run. On partial
// failure (quarantined units) Run returns it alongside a non-nil error
// with Incomplete listing exactly the trial ranges missing from Out.
type Result struct {
	Report        *harness.Report      `json:"-"`
	MergedPath    string               `json:"merged_path,omitempty"`
	Total         int                  `json:"total_trials"`
	Units         int                  `json:"units"`
	Workers       int                  `json:"workers"`
	Retries       int                  `json:"retries"`
	Reassignments int                  `json:"reassignments"`
	Kills         int                  `json:"kills"`
	Stalls        int                  `json:"stalls"`
	Corruptions   int                  `json:"corruptions"`
	Quarantined   []int                `json:"quarantined,omitempty"`
	Incomplete    []harness.TrialRange `json:"incomplete,omitempty"`
	ElapsedMS     int64                `json:"elapsed_ms"`
}

// ErrIncomplete is wrapped by Run when quarantined units left holes in
// the sweep; Result.Incomplete carries the exact missing ranges.
var ErrIncomplete = errors.New("fleet: sweep incomplete")

// unit is one leased trial range. files accumulates every shard that
// holds valid trials for the range (reassignment after a stall keeps the
// stalled worker's partial shard, creating genuine overlap for the
// merge's duplicate detection).
type unit struct {
	id      int
	r       harness.TrialRange
	attempt int
	file    string
	files   []string
}

type coordinator struct {
	cfg      Config
	spec     harness.Spec
	specPath string
	actions  map[int]chaosAction
	units    []*unit

	ready     chan *unit
	remaining atomic.Int64

	mu  sync.Mutex
	res Result
}

// Run executes the sweep across cfg.Workers exec'd worker processes and
// merges their shards into a single ule-sweepbin document at cfg.Out
// that is byte-identical to a single-process run. Worker crashes, hangs
// and shard corruption are retried with capped backoff; units that keep
// failing are quarantined and reported via Result.Incomplete together
// with an ErrIncomplete-wrapped error.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	c, err := newCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	for _, u := range c.units {
		c.ready <- u
	}
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range c.ready {
				c.runUnit(u)
			}
		}()
	}
	wg.Wait()

	err = c.merge()
	c.res.ElapsedMS = time.Since(start).Milliseconds()
	return &c.res, err
}

func newCoordinator(cfg Config) (*coordinator, error) {
	if cfg.Out == "" {
		return nil, fmt.Errorf("fleet: Config.Out is required")
	}
	total, err := cfg.Spec.Validate()
	if err != nil {
		return nil, fmt.Errorf("fleet: spec: %w", err)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.UnitTrials <= 0 {
		cfg.UnitTrials = total / (4 * cfg.Workers)
		if cfg.UnitTrials < 1 {
			cfg.UnitTrials = 1
		}
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "ule-fleet-*")
		if err != nil {
			return nil, err
		}
		cfg.Dir = dir
	}
	if len(cfg.WorkerArgv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("fleet: no WorkerArgv and no executable path: %w", err)
		}
		cfg.WorkerArgv = []string{exe, "-worker"}
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}

	specJSON, err := json.Marshal(cfg.Spec)
	if err != nil {
		return nil, err
	}
	specPath := filepath.Join(cfg.Dir, "spec.json")
	if err := os.WriteFile(specPath, specJSON, 0o644); err != nil {
		return nil, err
	}

	ranges := partition(total, cfg.UnitTrials)
	c := &coordinator{
		cfg:      cfg,
		spec:     cfg.Spec,
		specPath: specPath,
		actions:  cfg.Chaos.actions(ranges),
		ready:    make(chan *unit, len(ranges)),
	}
	for i, r := range ranges {
		c.units = append(c.units, &unit{
			id:   i,
			r:    r,
			file: filepath.Join(cfg.Dir, fmt.Sprintf("unit-%03d.ulss", i)),
		})
	}
	c.remaining.Store(int64(len(c.units)))
	c.res.Total = total
	c.res.Units = len(c.units)
	c.res.Workers = cfg.Workers
	return c, nil
}

// partition splits total trials into contiguous units of at most size
// trials each.
func partition(total, size int) []harness.TrialRange {
	var out []harness.TrialRange
	for at := 0; at < total; at += size {
		n := size
		if at+n > total {
			n = total - at
		}
		out = append(out, harness.TrialRange{Start: at, Count: n})
	}
	return out
}

// runUnit runs one attempt of a unit and routes the outcome: success →
// terminal, failure → backoff-and-retry, too many failures → quarantine.
func (c *coordinator) runUnit(u *unit) {
	act, stalled := c.attempt(u)

	if c.validShard(u.file, u.r, true) == nil {
		u.files = append(u.files, u.file)
		c.logf("unit %d: done (attempt %d)", u.id, u.attempt)
		c.finish(u)
		return
	}

	u.attempt++
	if stalled {
		c.mu.Lock()
		c.res.Reassignments++
		c.mu.Unlock()
	}

	if u.attempt >= c.cfg.MaxAttempts {
		c.logf("unit %d: quarantined after %d attempts", u.id, u.attempt)
		c.mu.Lock()
		c.res.Quarantined = append(c.res.Quarantined, u.id)
		c.mu.Unlock()
		c.finish(u)
		return
	}

	if stalled {
		// The stalled worker may have made durable progress; keep its
		// shard for the merge (the fresh re-run will overlap it — the
		// merge dedups by absolute trial index) and reassign the lease to
		// a new file so the retry never contends with a zombie writer.
		if c.validShard(u.file, u.r, false) == nil {
			u.files = append(u.files, u.file)
		}
		u.file = filepath.Join(c.cfg.Dir, fmt.Sprintf("unit-%03d.r%d.ulss", u.id, u.attempt))
	}

	c.mu.Lock()
	c.res.Retries++
	c.mu.Unlock()
	c.logf("unit %d: attempt %d failed (chaos=%s), retrying in %v",
		u.id, u.attempt-1, act.kind, c.cfg.Backoff.Delay(u.attempt-1))
	go func() {
		c.cfg.Backoff.Sleep(u.attempt-1, nil)
		c.ready <- u
	}()
}

// finish marks a unit terminal (done or quarantined) and closes the
// queue once every unit is terminal. Safe against pending retry sends: a
// unit sleeping toward a retry is non-terminal, so remaining stays
// positive until that send has been received and resolved.
func (c *coordinator) finish(u *unit) {
	if c.remaining.Add(-1) == 0 {
		close(c.ready)
	}
}

// attempt execs one worker for the unit, feeding it the unit's chaos
// action on the first attempt, and enforces the heartbeat deadline.
// It returns the injected action (for logging) and whether the watchdog
// revoked the lease.
func (c *coordinator) attempt(u *unit) (chaosAction, bool) {
	act := chaosAction{}
	if a, ok := c.actions[u.id]; ok && u.attempt == 0 {
		act = a
	}

	argv := append([]string(nil), c.cfg.WorkerArgv...)
	argv = append(argv,
		"-spec", c.specPath,
		"-start", strconv.Itoa(u.r.Start),
		"-count", strconv.Itoa(u.r.Count),
		"-shard", u.file,
		"-checkpoint-every", strconv.Itoa(c.cfg.CheckpointEvery),
	)
	c.mu.Lock()
	switch act.kind {
	case chaosKill:
		argv = append(argv, "-kill-after", strconv.Itoa(act.after))
		c.res.Kills++
	case chaosStall:
		argv = append(argv, "-stall-after", strconv.Itoa(act.after))
		c.res.Stalls++
	}
	c.mu.Unlock()

	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), c.cfg.WorkerEnv...)
	cmd.Stderr = c.cfg.Log
	stdout, err := cmd.StdoutPipe()
	if err == nil {
		err = cmd.Start()
	}
	if err != nil {
		c.logf("unit %d: exec: %v", u.id, err)
		return act, false
	}

	// The lease: every stdout line refreshes the deadline; a worker
	// silent past HeartbeatTimeout is declared hung and SIGKILLed.
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	var stalled atomic.Bool
	watchdogDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(c.cfg.HeartbeatTimeout / 4)
		defer tick.Stop()
		for {
			select {
			case <-watchdogDone:
				return
			case <-tick.C:
				silent := time.Since(time.Unix(0, lastBeat.Load()))
				if silent > c.cfg.HeartbeatTimeout {
					stalled.Store(true)
					cmd.Process.Kill()
					return
				}
			}
		}
	}()

	// Drain stdout to EOF (required before Wait) while refreshing the
	// heartbeat on every line.
	buf := make([]byte, 4096)
	for {
		n, rerr := stdout.Read(buf)
		if n > 0 {
			lastBeat.Store(time.Now().UnixNano())
		}
		if rerr != nil {
			break
		}
	}
	waitErr := cmd.Wait()
	close(watchdogDone)

	// The corruption fault is injected by the coordinator after a clean
	// exit: flip the shard's last 8 bytes, tearing the end record the way
	// a dying disk would. Validation below rejects it and the retry
	// resumes from the last intact checkpoint.
	if act.kind == chaosCorrupt && waitErr == nil {
		if err := corruptTail(u.file); err == nil {
			c.mu.Lock()
			c.res.Corruptions++
			c.mu.Unlock()
		}
	}
	return act, stalled.Load()
}

// validShard checks that a shard file is intact, covers exactly the
// unit's range, matches the sweep spec hash, and (when needDone) ran to
// completion. A nil error means the file is safe to merge.
func (c *coordinator) validShard(path string, r harness.TrialRange, needDone bool) error {
	ck, err := harness.InspectShard(path)
	if err != nil {
		return err
	}
	if ck.Start != r.Start || ck.Count != r.Count {
		return fmt.Errorf("shard %s covers [%d,+%d), want [%d,+%d)", path, ck.Start, ck.Count, r.Start, r.Count)
	}
	if err := ck.CheckSpec(c.spec); err != nil {
		return err
	}
	if needDone && !ck.Done {
		return fmt.Errorf("shard %s incomplete: %d/%d", path, ck.Completed, ck.Count)
	}
	if !needDone && ck.Completed == 0 {
		return fmt.Errorf("shard %s has no durable trials", path)
	}
	return nil
}

// merge assembles every valid shard into the final document. Shards from
// quarantined units contribute their completed prefix; remaining holes
// surface as Result.Incomplete plus an ErrIncomplete error, produced
// before a single output byte is written.
func (c *coordinator) merge() error {
	var paths []string
	for _, u := range c.units {
		paths = append(paths, u.files...)
		// A quarantined unit's last shard never passed full validation,
		// but a durable prefix is still worth merging.
		if len(u.files) == 0 || u.files[len(u.files)-1] != u.file {
			if c.validShard(u.file, u.r, false) == nil {
				paths = append(paths, u.file)
			}
		}
	}

	out, err := os.Create(c.cfg.Out)
	if err != nil {
		return err
	}
	opt := harness.BinaryOptions{CheckpointEvery: c.cfg.CheckpointEvery}
	rep, err := harness.MergeShards(c.spec, paths, harness.MergeConfig{
		Emitters: []harness.Emitter{harness.NewBinaryEmitter(out, opt)},
	})
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(c.cfg.Out)
		var ie *harness.IncompleteError
		if errors.As(err, &ie) {
			c.res.Incomplete = ie.Missing
			return fmt.Errorf("%w: %v", ErrIncomplete, err)
		}
		return err
	}
	c.res.Report = rep
	c.res.MergedPath = c.cfg.Out

	if c.cfg.JSONOut != "" {
		if err := exportJSONFile(c.cfg.Out, c.cfg.JSONOut); err != nil {
			return err
		}
	}
	return nil
}

// exportJSONFile converts a merged binary document to canonical sweep
// JSON on disk.
func exportJSONFile(binPath, jsonPath string) error {
	in, err := os.Open(binPath)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := harness.ExportJSON(in, out); err != nil {
		out.Close()
		os.Remove(jsonPath)
		return err
	}
	return out.Close()
}

// corruptTail flips the last 8 bytes of a file in place.
func corruptTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < 8 {
		return fmt.Errorf("file too small to corrupt")
	}
	tail := make([]byte, 8)
	if _, err := f.ReadAt(tail, st.Size()-8); err != nil {
		return err
	}
	for i := range tail {
		tail[i] ^= 0xFF
	}
	_, err = f.WriteAt(tail, st.Size()-8)
	return err
}

func (c *coordinator) logf(format string, args ...any) {
	fmt.Fprintf(c.cfg.Log, "fleet: "+format+"\n", args...)
}
