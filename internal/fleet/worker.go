package fleet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"syscall"
	"time"

	"ule/internal/harness"
)

// RunWorker is the exec-worker entry point: it runs one contiguous trial
// range of a sweep spec into a shard file and exits. cmd/ule-fleet
// dispatches here under -worker, and the fleet tests re-exec the test
// binary into it. The returned value is the process exit code.
//
// Protocol (see docs/DISTRIBUTED.md):
//   - flags: -spec FILE -start N -count N -shard FILE -checkpoint-every N
//     [-workers N] [-kill-after K] [-stall-after K] [-stall-for DUR]
//   - stdout: one "hb <done> <count>" line per completed trial — the
//     coordinator's heartbeat; silence past the deadline is a hang.
//   - an existing shard file is resumed from its last fsynced checkpoint
//     (harness.ResumeShard); an unresumable file is recreated from
//     scratch. Either way the finished shard is byte-identical.
//   - -kill-after K raises SIGKILL on this process after K unit-local
//     trials (0 = before any trial); -stall-after K sleeps -stall-for at
//     that point instead. Both model the chaos modes; the coordinator
//     schedules them on first attempts only.
func RunWorker(args []string) int {
	fs := flag.NewFlagSet("ule-fleet-worker", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "sweep spec JSON file")
		start      = fs.Int("start", 0, "first trial index of the unit")
		count      = fs.Int("count", 0, "trial count of the unit")
		shardPath  = fs.String("shard", "", "shard output file")
		ckEvery    = fs.Int("checkpoint-every", 0, "checkpoint cadence (trials)")
		workers    = fs.Int("workers", 1, "in-process pool size")
		killAfter  = fs.Int("kill-after", -1, "SIGKILL self after this many unit-local trials (-1 = never)")
		stallAfter = fs.Int("stall-after", -1, "hang after this many unit-local trials (-1 = never)")
		stallFor   = fs.Duration("stall-for", 10*time.Minute, "hang duration for -stall-after")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := runWorker(*specPath, *shardPath, *start, *count, *ckEvery, *workers, *killAfter, *stallAfter, *stallFor); err != nil {
		fmt.Fprintln(os.Stderr, "ule-fleet worker:", err)
		return 1
	}
	return 0
}

func runWorker(specPath, shardPath string, start, count, ckEvery, workers, killAfter, stallAfter int, stallFor time.Duration) error {
	if killAfter == 0 {
		// A unit-boundary kill: die before touching the shard at all.
		killSelf()
	}
	if specPath == "" || shardPath == "" || count <= 0 {
		return fmt.Errorf("need -spec, -shard and a positive -count")
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var spec harness.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("spec %s: %w", specPath, err)
	}

	r := harness.TrialRange{Start: start, Count: count}
	opt := harness.BinaryOptions{CheckpointEvery: ckEvery}

	// Resume an interrupted shard in place when possible; a missing,
	// empty, or unresumable file starts fresh (the re-run reproduces the
	// same bytes, so nothing is lost but time).
	var (
		ck *harness.SweepCheckpoint
		em harness.Emitter
	)
	if st, err := os.Stat(shardPath); err == nil && st.Size() > 0 {
		c, e, err := harness.ResumeShard(shardPath)
		switch {
		case err == harness.ErrSweepComplete:
			// A previous attempt finished after its lease was revoked.
			fmt.Printf("hb %d %d\n", count, count)
			return nil
		case err == nil && c.Start == start && c.Count == count:
			ck, em = c, e
		}
	}
	if em == nil {
		f, err := os.Create(shardPath)
		if err != nil {
			return err
		}
		em = harness.NewShardEmitter(f, start, count, opt)
	}

	// First heartbeat before the sweep starts: spec compilation and graph
	// instantiation take real time, and the coordinator must not mistake
	// a slow start for a hang.
	fmt.Printf("hb 0 %d\n", count)

	chaos := &chaosEmitter{killAfter: killAfter, stallAfter: stallAfter, stallFor: stallFor}
	_, err = harness.Run(spec, harness.RunConfig{
		Workers:  workers,
		Emitters: []harness.Emitter{em, chaos},
		Range:    &r,
		Resume:   ck,
		Progress: func(done, total int) {
			// The heartbeat: any stdout line proves liveness; done/total let
			// the coordinator log progress.
			fmt.Printf("hb %d %d\n", done, total)
		},
	})
	return err
}

// chaosEmitter counts the attempt-local trials the shard emitter has
// already written and fires the scheduled fault at its trigger point. It
// runs after the shard emitter in the emitter list, so a kill at trial K
// leaves K durable-or-torn trials in the file — exactly what a real
// mid-write crash leaves.
type chaosEmitter struct {
	killAfter  int
	stallAfter int
	stallFor   time.Duration
	seen       int
}

func (c *chaosEmitter) Begin(harness.Spec, int) error { return nil }

func (c *chaosEmitter) Trial(harness.TrialResult) error {
	c.seen++
	if c.seen == c.killAfter {
		killSelf()
	}
	if c.seen-1 == c.stallAfter {
		time.Sleep(c.stallFor)
	}
	return nil
}

func (c *chaosEmitter) End(*harness.Report) error { return nil }

// killSelf raises SIGKILL on this process — not os.Exit, so no deferred
// cleanup runs and the shard file is torn exactly as a machine crash
// would leave it.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be caught
}
