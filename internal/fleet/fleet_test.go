package fleet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ule/internal/cmdutil"
	"ule/internal/harness"
)

// TestMain doubles as the worker executable: the coordinator re-execs
// this test binary with ULE_FLEET_WORKER=1 and worker flags, exercising
// the real exec/heartbeat/crash path rather than an in-process fake.
func TestMain(m *testing.M) {
	if os.Getenv("ULE_FLEET_WORKER") == "1" {
		os.Exit(RunWorker(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// fleetSpec is small enough for process-per-unit tests but crosses
// graphs, execution models and fault schedules: 24 trials.
func fleetSpec() harness.Spec {
	return harness.Spec{
		Name:     "fleet-test",
		Algos:    []string{"leastel"},
		Graphs:   []string{"ring:12", "random:16:40"},
		Modes:    []string{"congest", "async"},
		Faults:   []string{"", "crash:0.2"},
		Trials:   3,
		Seed:     9,
		SmallIDs: true,
	}
}

const testCadence = 4

func fleetConfig(t *testing.T, spec harness.Spec) Config {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	return Config{
		Spec:            spec,
		Workers:         3,
		UnitTrials:      5,
		CheckpointEvery: testCadence,
		Backoff:         cmdutil.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1},
		Dir:             dir,
		Out:             filepath.Join(dir, "merged.ulsb"),
		WorkerArgv:      []string{exe},
		WorkerEnv:       []string{"ULE_FLEET_WORKER=1"},
	}
}

// refRun produces the single-process reference document every fleet run
// must reproduce byte for byte.
func refRun(t *testing.T, spec harness.Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	opt := harness.BinaryOptions{CheckpointEvery: testCadence}
	_, err := harness.Run(spec, harness.RunConfig{
		Emitters: []harness.Emitter{harness.NewBinaryEmitter(&buf, opt)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkMerged(t *testing.T, cfg Config, want []byte) {
	t.Helper()
	got, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged binary differs from single-process run: %d vs %d bytes", len(got), len(want))
	}
}

func TestFleetByteIdentical(t *testing.T) {
	spec := fleetSpec()
	cfg := fleetConfig(t, spec)
	cfg.JSONOut = filepath.Join(cfg.Dir, "merged.json")

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := refRun(t, spec)
	checkMerged(t, cfg, want)

	if res.Retries != 0 || res.Reassignments != 0 {
		t.Fatalf("chaos-free run reported retries=%d reassignments=%d", res.Retries, res.Reassignments)
	}
	if res.Units != 5 || res.Total != 24 {
		t.Fatalf("units=%d total=%d, want 5 units over 24 trials", res.Units, res.Total)
	}
	if res.Report == nil || res.Report.Total != 24 {
		t.Fatalf("missing or wrong merged report: %+v", res.Report)
	}

	var wantJSON bytes.Buffer
	if err := harness.ExportJSON(bytes.NewReader(want), &wantJSON); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := os.ReadFile(cfg.JSONOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON.Bytes()) {
		t.Fatal("merged JSON export differs from single-process export")
	}
}

func TestFleetWorkerCountInvariance(t *testing.T) {
	spec := fleetSpec()
	want := refRun(t, spec)
	for _, workers := range []int{1, 2, 4} {
		cfg := fleetConfig(t, spec)
		cfg.Workers = workers
		if _, err := Run(cfg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkMerged(t, cfg, want)
	}
}

func TestFleetKillChaos(t *testing.T) {
	spec := fleetSpec()
	cfg := fleetConfig(t, spec)
	cfg.Chaos = &ChaosPlan{Seed: 42, Kill: 1, MaxActions: 2}

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Kills != 2 {
		t.Fatalf("kills = %d, want 2", res.Kills)
	}
	if res.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2 (one per killed worker)", res.Retries)
	}
	checkMerged(t, cfg, refRun(t, spec))
}

func TestFleetStallChaos(t *testing.T) {
	spec := fleetSpec()
	cfg := fleetConfig(t, spec)
	cfg.Chaos = &ChaosPlan{Seed: 7, Stall: 1, MaxActions: 1}
	cfg.HeartbeatTimeout = 2 * time.Second

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", res.Stalls)
	}
	if res.Reassignments != 1 {
		t.Fatalf("reassignments = %d, want 1 (watchdog must revoke the hung lease)", res.Reassignments)
	}
	checkMerged(t, cfg, refRun(t, spec))
}

func TestFleetCorruptChaos(t *testing.T) {
	spec := fleetSpec()
	cfg := fleetConfig(t, spec)
	cfg.Chaos = &ChaosPlan{Seed: 3, Corrupt: 1, MaxActions: 1}

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", res.Corruptions)
	}
	if res.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (corrupt shard must be rejected and redone)", res.Retries)
	}
	checkMerged(t, cfg, refRun(t, spec))
}

// TestFleetMixedChaos drives every fault kind in one run (probabilities
// sum to 1, so every unit draws a fault) and still demands byte
// identity; it also pins the schedule's seed-determinism.
func TestFleetMixedChaos(t *testing.T) {
	spec := fleetSpec()
	plan := &ChaosPlan{Seed: 11, Kill: 0.4, Stall: 0.3, Corrupt: 0.3}

	units := partition(24, 5)
	if a, b := plan.actions(units), plan.actions(units); !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos schedule not deterministic: %v vs %v", a, b)
	}

	cfg := fleetConfig(t, spec)
	cfg.Chaos = plan
	cfg.HeartbeatTimeout = 2 * time.Second

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.Kills + res.Stalls + res.Corruptions; got != res.Units {
		t.Fatalf("injected %d faults across %d units, want one per unit", got, res.Units)
	}
	checkMerged(t, cfg, refRun(t, spec))
}

// TestFleetQuarantine wedges every worker (an unconditional boundary
// kill baked into WorkerArgv) and checks graceful degradation: all units
// quarantined, no merged output, and a machine-readable report of
// exactly the missing ranges.
func TestFleetQuarantine(t *testing.T) {
	spec := fleetSpec()
	cfg := fleetConfig(t, spec)
	cfg.WorkerArgv = append(cfg.WorkerArgv, "-kill-after", "0")
	cfg.MaxAttempts = 2

	res, err := Run(cfg)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	if len(res.Quarantined) != res.Units {
		t.Fatalf("quarantined %d of %d units", len(res.Quarantined), res.Units)
	}
	wantMissing := []harness.TrialRange{{Start: 0, Count: 24}}
	if !reflect.DeepEqual(res.Incomplete, wantMissing) {
		t.Fatalf("incomplete = %+v, want %+v", res.Incomplete, wantMissing)
	}
	if res.Retries != res.Units*(cfg.MaxAttempts-1) {
		t.Fatalf("retries = %d, want %d (MaxAttempts-1 per unit)", res.Retries, res.Units*(cfg.MaxAttempts-1))
	}
	if _, err := os.Stat(cfg.Out); !os.IsNotExist(err) {
		t.Fatalf("incomplete run must not leave a merged file (stat err=%v)", err)
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ total, size, units int }{
		{24, 5, 5}, {24, 24, 1}, {24, 25, 1}, {1, 1, 1}, {10, 3, 4},
	} {
		rs := partition(tc.total, tc.size)
		if len(rs) != tc.units {
			t.Fatalf("partition(%d,%d) = %d units, want %d", tc.total, tc.size, len(rs), tc.units)
		}
		at := 0
		for _, r := range rs {
			if r.Start != at || r.Count <= 0 || r.Count > tc.size {
				t.Fatalf("partition(%d,%d): bad range %+v at %d", tc.total, tc.size, r, at)
			}
			at += r.Count
		}
		if at != tc.total {
			t.Fatalf("partition(%d,%d) covers %d trials", tc.total, tc.size, at)
		}
	}
}
