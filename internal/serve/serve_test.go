package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ule/internal/harness"
)

// newTestServer boots a handler over a fresh Manager and tears both down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return ts, m
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

// captureEmitter records the trial stream of a local harness run.
type captureEmitter struct{ trials []harness.TrialResult }

func (c *captureEmitter) Begin(harness.Spec, int) error { return nil }
func (c *captureEmitter) Trial(tr harness.TrialResult) error {
	c.trials = append(c.trials, tr)
	return nil
}
func (c *captureEmitter) End(*harness.Report) error { return nil }

// smallSpec is the sweep used throughout: 2 algos x 1 graph x 2 reps.
func smallSpec() harness.Spec {
	return harness.Spec{
		Name:     "serve-test",
		Algos:    []string{"leastel", "flood"},
		Graphs:   []string{"ring:32"},
		Trials:   2,
		Seed:     7,
		SmallIDs: true,
	}
}

// TestElectionMatchesBatchTrial pins the served election reduction to the
// batch harness: the same (graph, algo, seed, wake) run through
// POST /v1/elections and through harness.Run agree on every measurement.
func TestElectionMatchesBatchTrial(t *testing.T) {
	spec := harness.Spec{
		Algos:    []string{"leastel"},
		Graphs:   []string{"ring:24"},
		Trials:   1,
		Seed:     5,
		SmallIDs: true,
	}
	cap := &captureEmitter{}
	if _, err := harness.Run(spec, harness.RunConfig{Workers: 1, Emitters: []harness.Emitter{cap}}); err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	if len(cap.trials) != 1 {
		t.Fatalf("got %d trials, want 1", len(cap.trials))
	}
	tr := cap.trials[0]

	ts, _ := newTestServer(t, Config{Slots: 1})
	body := fmt.Sprintf(`{"graph":"ring:24","algo":"leastel","seed":%d,"model":%q,"wake":%q,"small_ids":true}`,
		tr.Seed, tr.Mode, tr.Wake)
	code, data := postJSON(t, ts.URL+"/v1/elections", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var res ElectionResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad result JSON: %v", err)
	}
	if res.N != tr.N || res.M != tr.M || res.D != tr.D ||
		res.Rounds != tr.Rounds || res.LastActive != tr.LastActive ||
		res.Messages != tr.Messages || res.Bits != tr.Bits ||
		res.Leaders != tr.Leaders || res.Unique != tr.Unique ||
		res.Halted != tr.Halted {
		t.Fatalf("served election diverges from the batch trial:\n  served %+v\n  batch  %+v", res, tr)
	}
}

// TestElectionDeterminism: the same request is byte-identical across
// repeats and across independent server instances (so slot-cache state
// never leaks into results).
func TestElectionDeterminism(t *testing.T) {
	body := `{"graph":"random:48:144","algo":"flood","seed":42,"model":"async+random:4","small_ids":true}`
	ts1, _ := newTestServer(t, Config{Slots: 2})
	ts2, _ := newTestServer(t, Config{Slots: 2})

	_, first := postJSON(t, ts1.URL+"/v1/elections", body)
	_, again := postJSON(t, ts1.URL+"/v1/elections", body)
	_, other := postJSON(t, ts2.URL+"/v1/elections", body)
	if !bytes.Equal(first, again) {
		t.Fatalf("same server, same request, different bytes:\n  %s\n  %s", first, again)
	}
	if !bytes.Equal(first, other) {
		t.Fatalf("fresh server diverges on the same request:\n  %s\n  %s", first, other)
	}
}

// TestBadRequests: every malformed request maps to the right status and
// the body names the offending token.
func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Config{Slots: 1})
	cases := []struct {
		name  string
		path  string
		body  string
		code  int
		token string
	}{
		{"malformed JSON", "/v1/elections", `{"graph":`, 400, "body"},
		{"unknown field", "/v1/elections", `{"graph":"ring:8","algo":"leastel","bogus":1}`, 400, "bogus"},
		{"missing graph", "/v1/elections", `{"algo":"leastel"}`, 400, "graph"},
		{"missing algo", "/v1/elections", `{"graph":"ring:8"}`, 400, "algo"},
		{"bad graph family", "/v1/elections", `{"graph":"blob:9","algo":"leastel"}`, 400, "blob"},
		{"bad algo", "/v1/elections", `{"graph":"ring:8","algo":"zeus"}`, 400, "zeus"},
		{"bad model", "/v1/elections", `{"graph":"ring:8","algo":"leastel","model":"warp"}`, 400, "warp"},
		{"bad wake", "/v1/elections", `{"graph":"ring:8","algo":"leastel","wake":"sometimes"}`, 400, "sometimes"},
		{"rounds above cap", "/v1/elections", `{"graph":"ring:8","algo":"leastel","max_rounds":4194304}`, 400, "max_rounds"},
		{"sweep bad algo", "/v1/sweeps", `{"algos":["zeus"],"graphs":["ring:8"]}`, 400, "zeus"},
		{"sweep bad graph", "/v1/sweeps", `{"algos":["leastel"],"graphs":["blob:9"]}`, 400, "blob"},
		{"sweep unknown field", "/v1/sweeps", `{"algos":["leastel"],"graphs":["ring:8"],"bogus":1}`, 400, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := postJSON(t, ts.URL+tc.path, tc.body)
			if code != tc.code {
				t.Fatalf("status %d, want %d (%s)", code, tc.code, data)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body is not the JSON envelope: %s", data)
			}
			if !strings.Contains(eb.Error, tc.token) {
				t.Fatalf("error %q does not name the offending token %q", eb.Error, tc.token)
			}
		})
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job GET: status %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job DELETE: status %d, want 404", resp.StatusCode)
	}
}

// TestSweepStreamByteIdentical pins the served NDJSON stream to the batch
// path: POST /v1/sweeps returns exactly the bytes a local harness.Run
// with the NDJSON emitter produces, at any worker count.
func TestSweepStreamByteIdentical(t *testing.T) {
	spec := smallSpec()
	var want bytes.Buffer
	if _, err := harness.Run(spec, harness.RunConfig{
		Workers:  1,
		Emitters: []harness.Emitter{harness.NewNDJSONEmitter(&want)},
	}); err != nil {
		t.Fatalf("local run: %v", err)
	}

	ts, _ := newTestServer(t, Config{Slots: 2, SweepWorkers: 4})
	specJSON, _ := json.Marshal(spec)

	for _, workers := range []int{0, 4} {
		body := specJSON
		if workers > 0 {
			body = []byte(fmt.Sprintf(`{"algos":["leastel","flood"],"graphs":["ring:32"],"trials":2,"seed":7,"small_ids":true,"name":"serve-test","workers":%d}`, workers))
		}
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, resp.StatusCode, got)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("workers=%d: served NDJSON differs from the batch path (%d vs %d bytes)\nserved: %.200s\nbatch:  %.200s",
				workers, len(got), want.Len(), got, want.Bytes())
		}
	}
}

// TestAsyncJobLifecycle drives a job end to end over HTTP: 202 on submit,
// pending/running to done, result document attached, delete removes it.
func TestAsyncJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Config{Slots: 1})
	specJSON, _ := json.Marshal(smallSpec())

	code, data := postJSON(t, ts.URL+"/v1/sweeps?async=1", string(specJSON))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, data)
	}
	var job struct {
		ID     string          `json:"id"`
		Kind   string          `json:"kind"`
		State  JobState        `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("bad 202 body: %v", err)
	}
	if job.Kind != "sweep" || job.ID == "" {
		t.Fatalf("bad job snapshot: %s", data)
	}

	deadline := time.Now().Add(30 * time.Second)
	for job.State != JobDone {
		if job.State.terminal() {
			t.Fatalf("job ended %s: %s", job.State, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job)
	}
	var summary SweepSummary
	if err := json.Unmarshal(job.Result, &summary); err != nil {
		t.Fatalf("job result is not a SweepSummary: %v (%s)", err, job.Result)
	}
	if summary.TotalTrials != 4 || len(summary.Groups) != 2 {
		t.Fatalf("summary = %d trials / %d groups, want 4 / 2", summary.TotalTrials, len(summary.Groups))
	}

	var table struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &table)
	if len(table.Jobs) != 1 || table.Jobs[0].ID != job.ID {
		t.Fatalf("job table = %+v, want the one finished job", table.Jobs)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, nil); code != http.StatusNotFound {
		t.Fatalf("deleted job still visible: status %d", code)
	}
}

// TestCancelMidSweep cancels a long sweep over HTTP and checks the job
// lands in cancelled without leaking its goroutines.
func TestCancelMidSweep(t *testing.T) {
	base := runtime.NumGoroutine()
	ts, _ := newTestServer(t, Config{Slots: 1})

	big := harness.Spec{
		Algos:    []string{"flood"},
		Graphs:   []string{"ring:256"},
		Trials:   5000,
		Seed:     3,
		SmallIDs: true,
	}
	specJSON, _ := json.Marshal(big)
	code, data := postJSON(t, ts.URL+"/v1/sweeps?async=1", string(specJSON))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, data)
	}
	var job struct {
		ID    string   `json:"id"`
		State JobState `json:"state"`
	}
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job)
		if job.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != JobCancelled {
		t.Fatalf("job state %s, want cancelled", job.State)
	}

	// The worker goroutine and the harness pool behind it must unwind.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	flatBy := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+4 {
			break
		}
		if time.Now().After(flatBy) {
			t.Fatalf("goroutines leaked: %d at start, %d after cancel", base, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestShutdownDrains: Shutdown waits for in-flight async jobs, then new
// work and health checks are refused.
func TestShutdownDrains(t *testing.T) {
	m := NewManager(Config{Slots: 1})
	ts := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	defer ts.Close()

	j, err := m.SubmitSweep(SweepRequest{Spec: smallSpec()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := j.Snapshot(); st.State != JobDone {
		t.Fatalf("in-flight job ended %s (%s), want done", st.State, st.Error)
	}

	if _, err := m.RunElection(context.Background(), ElectionRequest{Graph: "ring:8", Algo: "leastel"}); err != ErrShutdown {
		t.Fatalf("post-shutdown RunElection err = %v, want ErrShutdown", err)
	}
	if _, err := m.SubmitElection(ElectionRequest{Graph: "ring:8", Algo: "leastel"}); err != ErrShutdown {
		t.Fatalf("post-shutdown SubmitElection err = %v, want ErrShutdown", err)
	}
	code, data := postJSON(t, ts.URL+"/v1/elections", `{"graph":"ring:8","algo":"leastel"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown election status %d: %s", code, data)
	}
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("post-shutdown healthz = %d %q, want 503 draining", code, health.Status)
	}
}

// TestJobGC: finished jobs expire after the TTL and the table never holds
// more than MaxJobs finished entries.
func TestJobGC(t *testing.T) {
	m := NewManager(Config{Slots: 1, MaxJobs: 2, JobTTL: 50 * time.Millisecond})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})

	var ids []string
	for i := 0; i < 2; i++ {
		j, err := m.SubmitElection(ElectionRequest{Graph: "ring:8", Algo: "leastel", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := 0
		for _, id := range ids {
			if j, err := m.Job(id); err == nil {
				if st := j.Snapshot(); st.State == JobDone {
					done++
				}
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// TTL expiry: the GC loop (50ms period here) removes them.
	expireBy := time.Now().Add(10 * time.Second)
	for {
		m.mu.Lock()
		left := len(m.jobs)
		m.mu.Unlock()
		if left == 0 {
			break
		}
		if time.Now().After(expireBy) {
			t.Fatalf("%d finished jobs survived the TTL", left)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestExpvarEndpoint: /debug/vars serves the uled_* series.
func TestExpvarEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{Slots: 1})
	postJSON(t, ts.URL+"/v1/elections", `{"graph":"ring:8","algo":"leastel","seed":9}`)

	var vars struct {
		Elections  int64 `json:"uled_elections_total"`
		Goroutines int   `json:"uled_goroutines"`
	}
	if code := getJSON(t, ts.URL+"/debug/vars", &vars); code != http.StatusOK {
		t.Fatalf("debug/vars status %d", code)
	}
	if vars.Elections < 1 || vars.Goroutines < 1 {
		t.Fatalf("counters not live: %+v", vars)
	}
}

// TestArenaReuse: repeated requests for the same (graph, algo) hit the
// slot caches instead of rebuilding state.
func TestArenaReuse(t *testing.T) {
	m := NewManager(Config{Slots: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	req := ElectionRequest{Graph: "ring:64", Algo: "leastel", SmallIDs: true}
	h0, m0 := statPrepHits.Value(), statPrepMisses.Value()
	for seed := int64(1); seed <= 8; seed++ {
		req.Seed = seed
		if _, err := m.RunElection(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := statPrepHits.Value()-h0, statPrepMisses.Value()-m0
	if misses != 1 || hits != 7 {
		t.Fatalf("prepared cache: %d hits / %d misses over 8 identical requests, want 7 / 1", hits, misses)
	}
}

// TestRetryAfterOn503: every 503 (busy job table, draining server,
// draining healthz) carries a Retry-After header so clients back off
// instead of hot-looping; non-503 errors carry none.
func TestRetryAfterOn503(t *testing.T) {
	// The two writeError 503 sources, pinned directly.
	for _, err := range []error{ErrBusy, ErrShutdown} {
		rec := httptest.NewRecorder()
		writeError(rec, err)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("writeError(%v) status = %d, want 503", err, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != fmt.Sprint(RetryAfterSeconds) {
			t.Fatalf("writeError(%v) Retry-After = %q, want %d", err, got, RetryAfterSeconds)
		}
	}
	rec := httptest.NewRecorder()
	writeError(rec, badRequest("nope"))
	if rec.Header().Get("Retry-After") != "" {
		t.Fatalf("400 response carries Retry-After %q", rec.Header().Get("Retry-After"))
	}

	// End to end: a draining server 503s with the header on both the API
	// and healthz paths.
	m := NewManager(Config{Slots: 1})
	ts := httptest.NewServer(NewHandler(m, HandlerConfig{}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/elections", "application/json", strings.NewReader(`{"graph":"ring:8","algo":"leastel"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining election: status %d Retry-After %q, want 503 with header", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining healthz: status %d Retry-After %q, want 503 with header", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}
