// Package serve is the election-as-a-service subsystem behind cmd/uled:
// a job manager executing single elections and whole sweeps on a bounded
// pool of reusable worker slots, with an HTTP front end (http.go) that
// streams sweep results as NDJSON.
//
// Slots are the request-scoped reuse unit. Each slot owns a graph cache
// (instantiated families plus their memoized diameters), a core.Prepared
// cache — the engine-arena/Runner recycling the batch harness uses per
// worker — and one recycled sim.Result, so a warm election request runs
// the same near-alloc-free fast path as a batch trial. The slot pool also
// bounds concurrency: at most Config.Slots requests execute at once, the
// rest queue on slot acquisition (and give up when their context ends).
//
// Async requests become jobs with a lifecycle (pending → running →
// done / failed / cancelled), cooperative cancellation (sweeps abort at
// the next trial boundary through an emitter hook) and TTL-based GC of
// finished jobs. Shutdown stops admission and drains in-flight jobs.
//
// Determinism: a request with a given seed produces byte-identical
// results to the batch path — elections reduce the same sim.Result the
// same way, sweeps run the same harness with the same trial expansion —
// pinned by serve_test.go and by `uled-load -smoke`.
package serve

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"ule/internal/cmdutil"
	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/harness"
	"ule/internal/sim"
)

// Service-wide expvar counters (exposed at /debug/vars). Registered once
// at package init; multiple Managers in one process (tests) share them.
var (
	statJobsInFlight = expvar.NewInt("uled_jobs_inflight")
	statElections    = expvar.NewInt("uled_elections_total")
	statSweeps       = expvar.NewInt("uled_sweeps_total")
	statTrials       = expvar.NewInt("uled_sweep_trials_total")
	statPrepHits     = expvar.NewInt("uled_prepared_reuse_hits")
	statPrepMisses   = expvar.NewInt("uled_prepared_reuse_misses")
	statGraphHits    = expvar.NewInt("uled_graph_reuse_hits")
	statGraphMisses  = expvar.NewInt("uled_graph_reuse_misses")

	serveStart = time.Now()
)

func init() {
	expvar.Publish("uled_goroutines", expvar.Func(func() any {
		return runtime.NumGoroutine()
	}))
	expvar.Publish("uled_uptime_seconds", expvar.Func(func() any {
		return time.Since(serveStart).Seconds()
	}))
	// Cumulative election throughput since process start; per-interval
	// rates are the scraper's job (delta of uled_elections_total).
	expvar.Publish("uled_elections_per_sec", expvar.Func(func() any {
		up := time.Since(serveStart).Seconds()
		if up <= 0 {
			return 0.0
		}
		return float64(statElections.Value()) / up
	}))
}

// Config tunes a Manager. Zero values select the documented defaults.
type Config struct {
	// Slots is the number of concurrent worker slots — the service's
	// admission bound (default GOMAXPROCS).
	Slots int
	// SweepWorkers caps the harness worker pool a single sweep request
	// may use (default 1: within one slot a sweep runs single-worker, and
	// service concurrency comes from the slot pool; per-trial parallelism
	// is still available through the spec's shards field).
	SweepWorkers int
	// MaxJobs bounds the retained async jobs, finished included (default
	// 256). Admission fails with ErrBusy when the table is full of
	// unfinished jobs.
	MaxJobs int
	// JobTTL is the retention of finished jobs (default 10m); the GC
	// goroutine prunes older ones.
	JobTTL time.Duration
	// MaxRounds caps a request's max_rounds (default 1 << 20); requests
	// above it are rejected rather than silently clamped.
	MaxRounds int
	// MaxTrials caps a sweep request's expanded trial count (default
	// 1 << 20).
	MaxTrials int
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1 << 20
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 1 << 20
	}
	return c
}

// RequestError marks a client-side error (invalid spec, unknown
// algorithm, malformed model string); the HTTP layer maps it to 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// ErrShutdown is returned for work submitted after Shutdown began.
var ErrShutdown = errors.New("serve: shutting down")

// ErrBusy is returned when the job table is full of unfinished jobs.
var ErrBusy = errors.New("serve: job table full")

// ErrNotFound is returned for an unknown job ID.
var ErrNotFound = errors.New("serve: no such job")

// slotCacheCap bounds each slot's graph/Prepared caches; when an insert
// would exceed it the caches are dropped wholesale (a service hammered
// with distinct specs degrades to the uncached path instead of growing).
const slotCacheCap = 128

// slot is one worker's private, reusable election machinery. Slots are
// owned exclusively while a request runs, so no locking.
type slot struct {
	graphs map[graphKey]*graph.Graph
	preps  map[prepKey]*core.Prepared
	res    sim.Result
}

type graphKey struct {
	spec string
	seed int64
}

type prepKey struct {
	graphKey
	algo string
}

// graph returns the slot's cached instance of (spec, seed), building and
// caching it on a miss. Cached instances keep their memoized diameters,
// so repeated D-dependent elections pay the all-pairs BFS once.
func (s *slot) graph(spec string, seed int64) (*graph.Graph, error) {
	key := graphKey{spec, seed}
	if g, ok := s.graphs[key]; ok {
		statGraphHits.Add(1)
		return g, nil
	}
	g, err := cmdutil.BuildGraph(spec, seed)
	if err != nil {
		return nil, badRequest("graph: %v", err)
	}
	statGraphMisses.Add(1)
	if len(s.graphs) >= slotCacheCap {
		s.graphs = make(map[graphKey]*graph.Graph)
		s.preps = make(map[prepKey]*core.Prepared)
	}
	s.graphs[key] = g
	return g, nil
}

// prepared returns the slot's cached core.Prepared for (graph, algo); a
// hit reuses the engine arenas and Runner buffers of every earlier
// request on the same cell (the expvar "arena reuse" signal).
func (s *slot) prepared(key graphKey, g *graph.Graph, algo string) (*core.Prepared, error) {
	pk := prepKey{key, algo}
	if p, ok := s.preps[pk]; ok {
		statPrepHits.Add(1)
		return p, nil
	}
	p, err := core.Prepare(g, algo)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	statPrepMisses.Add(1)
	if len(s.preps) >= slotCacheCap {
		s.preps = make(map[prepKey]*core.Prepared)
	}
	s.preps[pk] = p
	return p, nil
}

// Manager owns the slot pool and the job table.
type Manager struct {
	cfg   Config
	slots chan *slot

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool

	wg     sync.WaitGroup // in-flight async jobs
	stopGC chan struct{}
	gcDone chan struct{}
}

// NewManager builds a Manager and starts its GC goroutine; pair with
// Shutdown.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:    cfg,
		slots:  make(chan *slot, cfg.Slots),
		jobs:   make(map[string]*Job),
		stopGC: make(chan struct{}),
		gcDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Slots; i++ {
		m.slots <- &slot{
			graphs: make(map[graphKey]*graph.Graph),
			preps:  make(map[prepKey]*core.Prepared),
		}
	}
	go m.gcLoop()
	return m
}

// Config returns the resolved configuration.
func (m *Manager) Config() Config { return m.cfg }

// acquire takes a worker slot, waiting until one frees up or ctx ends.
func (m *Manager) acquire(ctx context.Context) (*slot, error) {
	select {
	case s := <-m.slots:
		return s, nil
	default:
	}
	select {
	case s := <-m.slots:
		return s, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (m *Manager) release(s *slot) { m.slots <- s }

// gcLoop prunes finished jobs past their TTL.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	period := m.cfg.JobTTL / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	if period > time.Minute {
		period = time.Minute
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.stopGC:
			return
		case <-t.C:
			m.gc(time.Now())
		}
	}
}

// gc removes finished jobs older than the TTL, plus — oldest first — any
// finished jobs beyond MaxJobs.
func (m *Manager) gc(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var finished []*Job
	for id, j := range m.jobs {
		j.mu.Lock()
		done := j.state.terminal()
		age := now.Sub(j.Finished)
		j.mu.Unlock()
		if !done {
			continue
		}
		if age > m.cfg.JobTTL {
			delete(m.jobs, id)
			continue
		}
		finished = append(finished, j)
	}
	if excess := len(m.jobs) - m.cfg.MaxJobs; excess > 0 {
		sort.Slice(finished, func(i, k int) bool {
			return finished[i].Finished.Before(finished[k].Finished)
		})
		for i := 0; i < excess && i < len(finished); i++ {
			delete(m.jobs, finished[i].ID)
		}
	}
}

// Shutdown stops admission, waits for in-flight async jobs to drain, and
// stops the GC goroutine. If ctx expires first, every unfinished job is
// cancelled and Shutdown waits for the cancellations to take effect
// before returning ctx's error. Sync (HTTP-request-scoped) work is the
// HTTP server's to drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	already := m.closed
	m.closed = true
	m.mu.Unlock()
	if !already {
		close(m.stopGC)
	}
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		<-drained
	}
	<-m.gcDone
	return err
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is one async request. Mutable fields are guarded by mu; the HTTP
// layer reads them through Snapshot.
type Job struct {
	ID      string
	Kind    string // "election" | "sweep"
	Created time.Time

	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	err      string
	result   []byte // JSON: ElectionResult or SweepSummary
	Started  time.Time
	Finished time.Time
}

// JobStatus is the wire form of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	Created  string   `json:"created"`
	Started  string   `json:"started,omitempty"`
	Finished string   `json:"finished,omitempty"`
	// ElapsedMS is the run time of a finished job in milliseconds.
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Snapshot returns the job's current wire status.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Kind: j.Kind, State: j.state, Error: j.err,
		Created: j.Created.UTC().Format(time.RFC3339Nano),
	}
	if !j.Started.IsZero() {
		st.Started = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		st.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
		st.ElapsedMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	return st
}

// Result returns the finished job's result document ("" until done).
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobPending {
		return false
	}
	j.state = JobRunning
	j.Started = time.Now()
	return true
}

func (j *Job) finish(result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.Finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
	case errors.Is(err, context.Canceled):
		j.state = JobCancelled
		j.err = "cancelled"
	default:
		j.state = JobFailed
		j.err = err.Error()
	}
}

func (j *Job) markCancelled() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = JobCancelled
	j.err = "cancelled"
	j.Finished = time.Now()
}

// newJob registers a pending job, enforcing admission limits. cancel is
// installed under the lock so Shutdown never observes a job without one.
func (m *Manager) newJob(kind string, cancel context.CancelFunc) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShutdown
	}
	unfinished := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			unfinished++
		}
		j.mu.Unlock()
	}
	if unfinished >= m.cfg.MaxJobs {
		return nil, ErrBusy
	}
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", m.seq),
		Kind:    kind,
		Created: time.Now(),
		state:   JobPending,
		cancel:  cancel,
	}
	m.jobs[j.ID] = j
	return j, nil
}

// Job looks up a job by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns a snapshot of every retained job, newest first.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	all := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	m.mu.Unlock()
	sort.Slice(all, func(i, k int) bool { return all[i].ID > all[k].ID })
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel cancels a pending/running job (its goroutine observes the
// context and finishes as cancelled) or deletes a finished one.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	j.mu.Lock()
	terminal := j.state.terminal()
	j.mu.Unlock()
	if terminal {
		delete(m.jobs, id)
		m.mu.Unlock()
		return j.Snapshot(), nil
	}
	m.mu.Unlock()
	j.cancel() // the job goroutine transitions the state
	return j.Snapshot(), nil
}

// checkOpen rejects new work after Shutdown began.
func (m *Manager) checkOpen() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrShutdown
	}
	return nil
}

// ---- Elections ----

// ElectionRequest is the wire form of POST /v1/elections.
type ElectionRequest struct {
	// Graph is a family spec in the shared grammar ("ring:64",
	// "random:128:640", ...); GraphSeed seeds randomized families
	// (default 1 — deliberately NOT the run seed, so sweeping the run
	// seed under load reuses one cached instance per spec).
	Graph     string `json:"graph"`
	GraphSeed int64  `json:"graph_seed,omitempty"`
	// Algo is an algorithm registry name (election.Algorithms).
	Algo string `json:"algo"`
	// Seed drives IDs and coins; equal seeds give byte-identical results.
	Seed int64 `json:"seed,omitempty"`
	// Model is the execution-model spec string ("", "local",
	// "async+random:4+crash:0.2", ... — sim.ParseModel grammar).
	Model string `json:"model,omitempty"`
	// Wake is a wake-schedule spec ("", "sync", "random:R", "stagger:K",
	// "adversarial" — the harness grammar, derived from Seed).
	Wake string `json:"wake,omitempty"`
	// SmallIDs assigns permutation IDs 1..n exactly as the harness does
	// (sim.NodeSeed(Seed, -2) stream); required for "dfs".
	SmallIDs bool `json:"small_ids,omitempty"`
	// Anonymous removes identifiers (randomized algorithms only).
	Anonymous bool `json:"anonymous,omitempty"`
	// MaxRounds bounds the run (default 1 << 18, capped by Config.MaxRounds).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Shards partitions the engine (0/1 single, -1 auto; results
	// identical at any count).
	Shards int `json:"shards,omitempty"`
	// DiameterEstimate grants D-dependent algorithms the double-sweep
	// bound instead of the exact diameter.
	DiameterEstimate bool `json:"diameter_estimate,omitempty"`
	// Async turns the request into a job (also ?async=1).
	Async bool `json:"async,omitempty"`
}

// ElectionResult is the wire form of an election outcome. Field reduction
// matches the batch harness TrialResult reduction, so a served election
// and a batch trial with the same seed agree on every field.
type ElectionResult struct {
	Graph string `json:"graph"`
	Algo  string `json:"algo"`
	Seed  int64  `json:"seed"`
	Model string `json:"model,omitempty"`
	Wake  string `json:"wake,omitempty"`

	N          int   `json:"n"`
	M          int   `json:"m"`
	D          int   `json:"d,omitempty"`
	Rounds     int   `json:"rounds"`
	LastActive int   `json:"last_active"`
	Messages   int64 `json:"messages"`
	Bits       int64 `json:"bits"`
	Leaders    int   `json:"leaders"`
	// Leader is the elected node's index when the election is unique.
	Leader      int  `json:"leader,omitempty"`
	Unique      bool `json:"unique"`
	Halted      bool `json:"halted"`
	HitRoundCap bool `json:"hit_round_cap,omitempty"`

	Crashes    int   `json:"crashes,omitempty"`
	Recoveries int   `json:"recoveries,omitempty"`
	Dropped    int64 `json:"dropped,omitempty"`
	LiveUnique bool  `json:"live_unique,omitempty"`
}

// runElection validates and executes one election on a slot.
func (m *Manager) runElection(req ElectionRequest, s *slot) (*ElectionResult, error) {
	if req.Graph == "" {
		return nil, badRequest("missing field: graph")
	}
	if req.Algo == "" {
		return nil, badRequest("missing field: algo")
	}
	if req.MaxRounds > m.cfg.MaxRounds {
		return nil, badRequest("max_rounds %d above the server cap %d", req.MaxRounds, m.cfg.MaxRounds)
	}
	model, err := sim.ParseModel(req.Model)
	if err != nil {
		return nil, badRequest("model: %v", err)
	}
	gseed := req.GraphSeed
	if gseed == 0 {
		gseed = 1
	}
	g, err := s.graph(req.Graph, gseed)
	if err != nil {
		return nil, err
	}
	wake, err := harness.WakeSchedule(req.Wake, g.N(), req.Seed)
	if err != nil {
		return nil, badRequest("wake: %v", err)
	}
	key := graphKey{req.Graph, gseed}
	prep, err := s.prepared(key, g, req.Algo)
	if err != nil {
		return nil, err
	}
	maxRounds := req.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 18
	}
	var ids []int64
	if req.SmallIDs {
		ids = sim.PermutationIDs(g.N(), rand.New(rand.NewSource(sim.NodeSeed(req.Seed, -2))))
	}
	ro := core.RunOpts{
		Seed:      req.Seed,
		IDs:       ids,
		Anonymous: req.Anonymous,
		MaxRounds: maxRounds,
		Model:     model,
		Wake:      wake,
		Shards:    req.Shards,
	}
	out := &ElectionResult{
		Graph: req.Graph, Algo: req.Algo, Seed: req.Seed,
		Model: req.Model, Wake: req.Wake,
		N: g.N(), M: g.M(),
	}
	if prep.Spec().NeedsD {
		if req.DiameterEstimate {
			ro.D = g.DiameterEstimate()
		} else {
			ro.D = g.DiameterExact()
		}
		out.D = ro.D
	}
	if err := prep.RunInto(ro, &s.res); err != nil {
		// Anonymous-vs-IDs and engine misconfigurations are request
		// errors; model violations during the run are server-side.
		return nil, badRequest("%v", err)
	}
	res := &s.res
	out.Rounds = res.Rounds
	out.LastActive = res.LastActive
	out.Messages = res.Messages
	out.Bits = res.Bits
	out.Leaders = res.LeaderCount()
	out.Unique = res.UniqueLeader()
	if out.Unique {
		out.Leader = res.Leaders[0]
	}
	out.Halted = res.Halted
	out.HitRoundCap = res.HitRoundCap
	if model.Faults != nil {
		out.Crashes = res.Crashes
		out.Recoveries = res.Recoveries
		out.Dropped = res.Dropped
		out.LiveUnique = core.Correct(model, res)
	}
	statElections.Add(1)
	return out, nil
}

// RunElection executes one election request synchronously on a pooled
// slot. It is the sync HTTP path and the verification entry point of
// uled-load and the tests.
func (m *Manager) RunElection(ctx context.Context, req ElectionRequest) (*ElectionResult, error) {
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	s, err := m.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer m.release(s)
	statJobsInFlight.Add(1)
	defer statJobsInFlight.Add(-1)
	return m.runElection(req, s)
}

// ---- Sweeps ----

// SweepRequest is the wire form of POST /v1/sweeps: a ule-sweep/v3 spec
// (docs/SWEEP_SCHEMA.md) plus service fields. The same JSON file used
// with `ule-experiments -sweep` is a valid request body.
type SweepRequest struct {
	harness.Spec
	// Workers asks for a harness worker pool of this size, clamped to
	// [1, Config.SweepWorkers]. Results are byte-identical at any value.
	Workers int `json:"workers,omitempty"`
	// Async turns the request into a job (also ?async=1); the stored
	// result is the SweepSummary (trial records are not retained).
	Async bool `json:"async,omitempty"`
}

// SweepSummary is the stored result of an async sweep job: the report
// without the trial stream.
type SweepSummary struct {
	Spec        harness.Spec         `json:"spec"`
	TotalTrials int                  `json:"total_trials"`
	Errors      int                  `json:"errors"`
	Groups      []harness.GroupStats `json:"groups"`
}

// validateSweep pre-flights a sweep request: spec compiles, trial count
// within bounds. Returns the expanded trial count.
func (m *Manager) validateSweep(req *SweepRequest) (int, error) {
	if req.MaxRounds > m.cfg.MaxRounds {
		return 0, badRequest("max_rounds %d above the server cap %d", req.MaxRounds, m.cfg.MaxRounds)
	}
	total, err := req.Spec.Validate()
	if err != nil {
		return 0, badRequest("spec: %v", err)
	}
	if total > m.cfg.MaxTrials {
		return 0, badRequest("spec expands to %d trials, above the server cap %d", total, m.cfg.MaxTrials)
	}
	return total, nil
}

// sweepWorkers resolves a request's worker ask against the config cap.
func (m *Manager) sweepWorkers(ask int) int {
	w := ask
	if w <= 0 {
		w = 1
	}
	if w > m.cfg.SweepWorkers {
		w = m.cfg.SweepWorkers
	}
	return w
}

// cancelEmitter aborts a sweep at the next trial boundary once ctx ends;
// harness.Run returns the context error. It must precede the output
// emitters in the chain so a cancelled sweep stops emitting immediately.
type cancelEmitter struct{ ctx context.Context }

func (e cancelEmitter) Begin(harness.Spec, int) error { return e.ctx.Err() }
func (e cancelEmitter) Trial(harness.TrialResult) error {
	return e.ctx.Err()
}
func (e cancelEmitter) End(*harness.Report) error { return e.ctx.Err() }

// countEmitter feeds the service trial counter.
type countEmitter struct{}

func (countEmitter) Begin(harness.Spec, int) error { return nil }
func (countEmitter) Trial(harness.TrialResult) error {
	statTrials.Add(1)
	statElections.Add(1) // every trial is one served election
	return nil
}
func (countEmitter) End(*harness.Report) error { return nil }

// RunSweep executes a sweep request synchronously, streaming through the
// given emitters (typically the NDJSON emitter over the HTTP response).
// The request must have been validated with validateSweep; cancellation
// arrives through ctx at trial granularity.
func (m *Manager) RunSweep(ctx context.Context, req SweepRequest, emitters ...harness.Emitter) (*harness.Report, error) {
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	if _, err := m.validateSweep(&req); err != nil {
		return nil, err
	}
	s, err := m.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer m.release(s)
	statJobsInFlight.Add(1)
	defer statJobsInFlight.Add(-1)
	rc := harness.RunConfig{
		Workers:  m.sweepWorkers(req.Workers),
		Emitters: append([]harness.Emitter{cancelEmitter{ctx}, countEmitter{}}, emitters...),
	}
	rep, err := m.runSweepInner(req.Spec, rc)
	if err != nil {
		return nil, err
	}
	statSweeps.Add(1)
	return rep, nil
}

func (m *Manager) runSweepInner(spec harness.Spec, rc harness.RunConfig) (*harness.Report, error) {
	return harness.Run(spec, rc)
}

// ---- Async jobs ----

// SubmitElection registers and starts an async election job.
func (m *Manager) SubmitElection(req ElectionRequest) (*Job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j, err := m.newJob("election", cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		statJobsInFlight.Add(1)
		defer statJobsInFlight.Add(-1)
		s, err := m.acquire(ctx)
		if err != nil {
			j.markCancelled()
			return
		}
		defer m.release(s)
		if !j.setRunning() {
			return
		}
		res, err := m.runElection(req, s)
		if err != nil {
			j.finish(nil, err)
			return
		}
		if ctx.Err() != nil {
			j.markCancelled()
			return
		}
		j.finish(marshalJSON(res), nil)
	}()
	return j, nil
}

// SubmitSweep validates, registers and starts an async sweep job. The
// job result is the SweepSummary; trial records are not retained.
func (m *Manager) SubmitSweep(req SweepRequest) (*Job, error) {
	if _, err := m.validateSweep(&req); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j, err := m.newJob("sweep", cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		statJobsInFlight.Add(1)
		defer statJobsInFlight.Add(-1)
		s, err := m.acquire(ctx)
		if err != nil {
			j.markCancelled()
			return
		}
		defer m.release(s)
		if !j.setRunning() {
			return
		}
		rc := harness.RunConfig{
			Workers:  m.sweepWorkers(req.Workers),
			Emitters: []harness.Emitter{cancelEmitter{ctx}, countEmitter{}},
		}
		rep, err := m.runSweepInner(req.Spec, rc)
		if err != nil {
			j.finish(nil, err)
			return
		}
		statSweeps.Add(1)
		j.finish(marshalJSON(SweepSummary{
			Spec: rep.Spec, TotalTrials: rep.Total, Errors: rep.Errors, Groups: rep.Groups,
		}), nil)
	}()
	return j, nil
}
