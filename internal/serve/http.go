package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"ule/internal/harness"
)

// maxBodyBytes caps request bodies; a sweep spec is a few hundred bytes,
// so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// HandlerConfig tunes NewHandler.
type HandlerConfig struct {
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// NewHandler builds the uled HTTP API over a Manager:
//
//	POST   /v1/elections   one election; JSON result (async=1 → job)
//	POST   /v1/sweeps      one sweep; NDJSON stream (async=1 → job)
//	GET    /v1/jobs        job table snapshot
//	GET    /v1/jobs/{id}   job status + result when done
//	DELETE /v1/jobs/{id}   cancel a running job / delete a finished one
//	GET    /healthz        liveness
//	GET    /debug/vars     expvar counters (uled_* series)
//
// See docs/SERVICE.md for the endpoint contract.
func NewHandler(m *Manager, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/elections", m.handleElection)
	mux.HandleFunc("POST /v1/sweeps", m.handleSweep)
	mux.HandleFunc("GET /v1/jobs", m.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleJobDelete)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if hc.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(marshalJSON(v), '\n'))
}

func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Wire structs marshal by construction; a failure is a bug.
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return b
}

// RetryAfterSeconds is the Retry-After hint attached to every 503: long
// enough that a full job table has likely made progress, short enough
// that a drained slot is picked up quickly. Well-behaved clients (the
// examples/service client, the fleet coordinator) back off at least this
// long instead of hot-looping on a saturated server.
const RetryAfterSeconds = 1

// writeError maps a service error to its HTTP status: RequestError → 400,
// ErrNotFound → 404, ErrShutdown/ErrBusy → 503, anything else → 500. The
// error text carries the offending token (parsers quote it), so a client
// sees exactly which part of the request was rejected. 503s carry a
// Retry-After header so clients back off instead of hot-looping.
func writeError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	code := http.StatusInternalServerError
	switch {
	case errors.As(err, &reqErr):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrShutdown), errors.Is(err, ErrBusy):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// decodeBody decodes a bounded JSON request body into v, rejecting
// unknown fields so typos surface as 400s instead of silent defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("body: %v", err)
	}
	return nil
}

// wantAsync reports whether the request selects job mode via query.
func wantAsync(r *http.Request) bool {
	v := strings.ToLower(r.URL.Query().Get("async"))
	return v == "1" || v == "true"
}

func (m *Manager) handleElection(w http.ResponseWriter, r *http.Request) {
	var req ElectionRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Async || wantAsync(r) {
		j, err := m.SubmitElection(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	res, err := m.RunElection(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// flushWriter forwards every Write to the client immediately, so NDJSON
// consumers observe trial records as they complete.
type flushWriter struct {
	w     http.ResponseWriter
	f     http.Flusher
	wrote bool
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	fw.wrote = true
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

func (m *Manager) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Async || wantAsync(r) {
		j, err := m.SubmitSweep(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Snapshot())
		return
	}
	// Pre-flight before committing to a 200: validation failures must
	// arrive as a 400, not as a broken stream.
	if err := m.checkOpen(); err != nil {
		writeError(w, err)
		return
	}
	if _, err := m.validateSweep(&req); err != nil {
		writeError(w, err)
		return
	}
	f, _ := w.(http.Flusher)
	fw := &flushWriter{w: w, f: f}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if _, err := m.RunSweep(r.Context(), req, harness.NewNDJSONEmitter(fw)); err != nil {
		if !fw.wrote {
			writeError(w, err)
			return
		}
		// Mid-stream failure (client gone, cancelled): append a terminal
		// error line; the consumer sees a line without "groups" and knows
		// the stream is truncated.
		fmt.Fprintf(fw, "{\"error\":%q}\n", err.Error())
	}
}

func (m *Manager) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{m.Jobs()})
}

// jobResponse is the GET /v1/jobs/{id} document: the status plus, once
// done, the result document.
type jobResponse struct {
	JobStatus
	Result json.RawMessage `json:"result,omitempty"`
}

func (m *Manager) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{JobStatus: j.Snapshot(), Result: j.Result()})
}

func (m *Manager) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	st, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := m.checkOpen(); err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}
