package cmdutil

import (
	"os"
	"path/filepath"
	"testing"

	"ule/internal/harness"
	"ule/internal/sim"
)

func TestBuildGraph(t *testing.T) {
	g, err := BuildGraph("ring:16", 1)
	if err != nil {
		t.Fatalf("ring:16: %v", err)
	}
	if g.N() != 16 {
		t.Fatalf("ring:16 has n=%d", g.N())
	}
	if _, err := BuildGraph("blob:9", 1); err == nil {
		t.Fatal("bad family accepted")
	}
}

func TestResolveModel(t *testing.T) {
	cases := []struct {
		name   string
		model  string
		mode   string
		delay  string
		faults string
		local  bool
		want   sim.Mode
		faulty bool
		err    bool
	}{
		{name: "model wins", model: "async+random:4", mode: "congest", want: sim.ASYNC},
		{name: "legacy congest", mode: "congest", want: sim.CONGEST},
		{name: "legacy async with delay", mode: "async", delay: "random:4", want: sim.ASYNC},
		{name: "local overrides mode", mode: "congest", local: true, want: sim.LOCAL},
		{name: "faults appended", mode: "congest", faults: "crash:0.1", want: sim.CONGEST, faulty: true},
		{name: "bad mode", mode: "warp", err: true},
		{name: "bad model", model: "warp", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ResolveModel(tc.model, tc.mode, tc.delay, tc.faults, tc.local)
			if tc.err {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got.Mode != tc.want {
				t.Fatalf("mode = %v, want %v", got.Mode, tc.want)
			}
			if (got.Faults != nil) != tc.faulty {
				t.Fatalf("faults = %v, want faulty=%v", got.Faults, tc.faulty)
			}
		})
	}
}

func TestLoadSpec(t *testing.T) {
	if _, err := LoadSpec("builtin:smoke"); err != nil {
		t.Fatalf("builtin:smoke: %v", err)
	}

	path := filepath.Join(t.TempDir(), "spec.json")
	os.WriteFile(path, []byte(`{"name":"x","algos":["leastel"],"graphs":["ring:8"],"trials":3}`), 0o644)
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "x" || spec.Trials != 3 {
		t.Fatalf("loaded %+v", spec)
	}

	os.WriteFile(path, []byte(`{"algos":`), 0o644)
	if _, err := LoadSpec(path); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpecOverrides(t *testing.T) {
	spec := harness.Spec{Algos: []string{"leastel"}, Graphs: []string{"ring:8"}}
	SpecOverrides{Modes: "async", Delays: "unit,random:4", Faults: "crash:0.2", DiameterEstimate: true, Shards: 4}.Apply(&spec)
	if len(spec.Modes) != 1 || spec.Modes[0] != "async" {
		t.Fatalf("modes = %v", spec.Modes)
	}
	if len(spec.Delays) != 2 || spec.Delays[1] != "random:4" {
		t.Fatalf("delays = %v", spec.Delays)
	}
	if len(spec.Faults) != 1 || !spec.DiameterEstimate || spec.Shards != 4 {
		t.Fatalf("overrides not applied: %+v", spec)
	}

	// Zero overrides leave the spec untouched.
	before := spec
	SpecOverrides{}.Apply(&spec)
	if spec.Shards != before.Shards || len(spec.Modes) != 1 {
		t.Fatalf("zero overrides mutated the spec: %+v", spec)
	}
}
