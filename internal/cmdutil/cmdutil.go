// Package cmdutil holds the small request/flag-resolution helpers shared
// by the command-line front ends (cmd/ule, cmd/ule-experiments) and the
// serving layer (cmd/uled via internal/serve): graph-spec construction,
// execution-model composition from the legacy flag split, sweep-spec
// loading and the CLI axis overrides. Each helper used to be copied
// between the commands; this package is the single home.
package cmdutil

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ule/internal/graph"
	"ule/internal/harness"
	"ule/internal/sim"
)

// BuildGraph parses a graph family spec through the shared parser in
// internal/graph — the same grammar the sweep harness and the serving
// layer accept.
func BuildGraph(spec string, seed int64) (*graph.Graph, error) {
	return graph.FromSpec(spec, seed)
}

// ResolveModel composes the execution-model flag set into one validated
// sim.ModelSpec. model ("async+random:4+crash:0.2", ...) wins when
// non-empty; otherwise the legacy mode/delay/local flags are folded into
// the same spec grammar (local overrides mode, a delay term is appended
// when set). faults appends the fault adversary either way.
func ResolveModel(model, mode, delay, faults string, local bool) (sim.ModelSpec, error) {
	spec := model
	if spec == "" {
		m, err := sim.ParseMode(mode)
		if err != nil {
			return sim.ModelSpec{}, err
		}
		if local {
			m = sim.LOCAL
		}
		switch m {
		case sim.LOCAL:
			spec = "local"
		case sim.ASYNC:
			spec = "async"
		default:
			spec = "congest"
		}
		if delay != "" {
			spec += "+" + delay
		}
	}
	if faults != "" {
		spec += "+" + faults
	}
	return sim.ParseModel(spec)
}

// LoadSpec reads a harness sweep spec: the literal "builtin:smoke" or a
// JSON file path (ule-sweep/v3 spec schema, docs/SWEEP_SCHEMA.md).
func LoadSpec(arg string) (harness.Spec, error) {
	if arg == "builtin:smoke" {
		return harness.Smoke(), nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return harness.Spec{}, err
	}
	var spec harness.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return harness.Spec{}, fmt.Errorf("sweep spec %s: %w", arg, err)
	}
	return spec, nil
}

// SpecOverrides carries the CLI axis overrides applied on top of a loaded
// sweep spec, so one spec file serves the synchronous, asynchronous and
// faulty scenario space. Zero values leave the spec untouched.
type SpecOverrides struct {
	// Modes, Delays and Faults are comma-separated axis replacements.
	Modes, Delays, Faults string
	// DiameterEstimate switches D-dependent cells to graph.DiameterEstimate.
	DiameterEstimate bool
	// Shards overrides the engine shard count (0 keeps the spec value).
	Shards int
}

// Apply rewrites spec in place with the non-zero overrides.
func (o SpecOverrides) Apply(spec *harness.Spec) {
	if o.Modes != "" {
		spec.Modes = strings.Split(o.Modes, ",")
	}
	if o.Delays != "" {
		spec.Delays = strings.Split(o.Delays, ",")
	}
	if o.Faults != "" {
		spec.Faults = strings.Split(o.Faults, ",")
	}
	if o.DiameterEstimate {
		spec.DiameterEstimate = true
	}
	if o.Shards != 0 {
		spec.Shards = o.Shards
	}
}
