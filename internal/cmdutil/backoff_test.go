package cmdutil

import (
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		160 * time.Millisecond,
		160 * time.Millisecond, // capped
		160 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, Seed: 42}
	same := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, Seed: 42}
	other := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, Seed: 43}
	noJitter := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2}

	differs := false
	for i := 0; i < 12; i++ {
		d := b.Delay(i)
		full := noJitter.Delay(i)
		if d > full || d < full/2 {
			t.Fatalf("Delay(%d) = %v outside jitter window [%v, %v]", i, d, full/2, full)
		}
		if got := same.Delay(i); got != d {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, got, d)
		}
		if other.Delay(i) != d {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical 12-delay sequences")
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if d := b.Delay(0); d != 10*time.Millisecond {
		t.Fatalf("zero-value Delay(0) = %v, want 10ms", d)
	}
	if d := b.Delay(100); d != 300*time.Millisecond {
		t.Fatalf("zero-value Delay(100) = %v, want the 30·Base cap", d)
	}
	if d := b.Delay(-3); d != b.Delay(0) {
		t.Fatalf("negative attempt = %v, want Delay(0)", d)
	}
}

func TestBackoffConcurrentUse(t *testing.T) {
	// Value semantics: no locks, so concurrent Delay calls must agree.
	b := Backoff{Base: time.Millisecond, Jitter: 0.3, Seed: 7}
	want := make([]time.Duration, 32)
	for i := range want {
		want[i] = b.Delay(i)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range want {
				if b.Delay(i) != want[i] {
					t.Errorf("concurrent Delay(%d) diverged", i)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestBackoffSleepInterruptible(t *testing.T) {
	b := Backoff{Base: 10 * time.Second}
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if b.Sleep(0, done) {
		t.Fatal("Sleep returned true despite closed done channel")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on closed done channel")
	}
	quick := Backoff{Base: time.Millisecond}
	if !quick.Sleep(0, nil) {
		t.Fatal("Sleep with nil done returned false")
	}
}
