package cmdutil

import (
	"time"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter. It is a pure value: Delay(attempt) depends only on the
// configuration and the attempt index, so concurrent goroutines share one
// Backoff without locks, and a fixed Seed reproduces the exact delay
// sequence — the property the fleet coordinator's seed-deterministic
// chaos tests rely on.
type Backoff struct {
	// Base is the attempt-0 delay. Zero selects 10ms.
	Base time.Duration
	// Cap bounds the grown (pre-jitter) delay. Zero selects 30·Base.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier. Values below 1 select 2.
	Factor float64
	// Jitter is the randomized fraction of each delay: the returned delay
	// is uniform in [d·(1-Jitter), d]. Zero means no jitter; values are
	// clamped to [0, 1].
	Jitter float64
	// Seed selects the deterministic jitter stream. Two Backoffs with the
	// same configuration and seed produce identical sequences.
	Seed uint64
}

// Delay returns the delay before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 30 * base
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	if attempt < 0 {
		attempt = 0
	}
	d := float64(base)
	limit := float64(cap)
	for i := 0; i < attempt && d < limit; i++ {
		d *= factor
	}
	if d > limit {
		d = limit
	}
	jitter := b.Jitter
	if jitter < 0 {
		jitter = 0
	} else if jitter > 1 {
		jitter = 1
	}
	if jitter > 0 {
		// splitmix64 of (seed, attempt) → uniform fraction in [0, 1).
		u := splitmix64(b.Seed + uint64(attempt)*0x9E3779B97F4A7C15)
		frac := float64(u>>11) / float64(1<<53)
		d *= 1 - jitter*frac
	}
	return time.Duration(d)
}

// Sleep sleeps for Delay(attempt), returning early with false if done is
// closed first. A nil done never interrupts.
func (b Backoff) Sleep(attempt int, done <-chan struct{}) bool {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// splitmix64 is the SplitMix64 mixing function — a high-quality
// stateless hash from 64 bits to 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
