package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFromEdgesValidation(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		want  error
	}{
		{"self loop", 3, [][2]int{{1, 1}}, ErrSelfLoop},
		{"duplicate", 3, [][2]int{{0, 1}, {1, 0}}, ErrDuplicateEdge},
		{"out of range", 3, [][2]int{{0, 3}}, ErrBadEndpoint},
		{"negative", 3, [][2]int{{-1, 0}}, ErrBadEndpoint},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewFromEdges(tt.n, tt.edges); err == nil {
				t.Fatalf("want error %v, got nil", tt.want)
			}
		})
	}
	g, err := NewFromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestFamilies(t *testing.T) {
	tests := []struct {
		name     string
		g        *Graph
		n, m     int
		diameter int
	}{
		{"path", Path(5), 5, 4, 4},
		{"ring even", Ring(8), 8, 8, 4},
		{"ring odd", Ring(7), 7, 7, 3},
		{"star", Star(6), 6, 5, 2},
		{"complete", Complete(5), 5, 10, 1},
		{"grid", Grid(3, 4), 12, 17, 5},
		{"torus", Torus(4, 4), 16, 32, 4},
		{"hypercube", Hypercube(4), 16, 32, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.N(); got != tt.n {
				t.Errorf("N = %d, want %d", got, tt.n)
			}
			if got := tt.g.M(); got != tt.m {
				t.Errorf("M = %d, want %d", got, tt.m)
			}
			if !tt.g.Connected() {
				t.Error("not connected")
			}
			if got := tt.g.DiameterExact(); got != tt.diameter {
				t.Errorf("diameter = %d, want %d", got, tt.diameter)
			}
			if tt.g.DegreeSum() != 2*tt.g.M() {
				t.Errorf("degree sum %d != 2m=%d", tt.g.DegreeSum(), 2*tt.g.M())
			}
		})
	}
}

func TestPortSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RandomConnected(40, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.ShufflePorts(rng)
	for u := 0; u < g.N(); u++ {
		for p := 0; p < g.Degree(u); p++ {
			v := g.Neighbor(u, p)
			back := g.PortTo(v, u)
			if back < 0 {
				t.Fatalf("missing back edge for (%d,%d)", u, v)
			}
			if g.Neighbor(v, back) != u {
				t.Fatalf("asymmetric ports at (%d,%d)", u, v)
			}
		}
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(nSeed, mSeed uint8) bool {
		n := 2 + int(nSeed)%60
		maxM := n * (n - 1) / 2
		m := n - 1 + int(mSeed)%(maxM-n+2)
		if m > maxM {
			m = maxM
		}
		g, err := RandomConnected(n, m, rng)
		if err != nil {
			return false
		}
		return g.N() == n && g.M() == m && g.Connected() && g.DegreeSum() == 2*m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomConnectedRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomConnected(5, 3, rng); err == nil {
		t.Error("m < n-1 accepted")
	}
	if _, err := RandomConnected(5, 11, rng); err == nil {
		t.Error("m > n(n-1)/2 accepted")
	}
	if _, err := RandomConnected(0, 0, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomConnected(25, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges len %d != m %d", len(edges), g.M())
	}
	g2, err := NewFromEdges(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != g2.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Ring(6)
	c := g.Clone()
	c.ShufflePorts(rand.New(rand.NewSource(99)))
	// Original must still satisfy ring structure 0-1.
	if g.Neighbor(0, 0) != 1 && g.Neighbor(0, 1) != 1 {
		t.Error("clone mutation leaked into original")
	}
	if c.N() != g.N() || c.M() != g.M() {
		t.Error("clone shape mismatch")
	}
}

func TestDiameterTwoSweepLowerBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		n := 5 + rng.Intn(40)
		m := n - 1 + rng.Intn(n)
		g, err := RandomConnected(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		ts, ex := g.DiameterTwoSweep(), g.DiameterExact()
		if ts > ex {
			t.Fatalf("two-sweep %d > exact %d", ts, ex)
		}
		if ts*2 < ex {
			t.Fatalf("two-sweep %d < half of exact %d", ts, ex)
		}
	}
}
