package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph on n nodes: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	return mustFromStream(n, "path", func(yield func(u, v int)) {
		for i := 0; i+1 < n; i++ {
			yield(i, i+1)
		}
	})
}

// Ring returns the cycle graph on n nodes (n >= 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	return mustFromStream(n, "ring", func(yield func(u, v int)) {
		for i := 0; i < n; i++ {
			yield(i, (i+1)%n)
		}
	})
}

// Star returns the star graph: node 0 is the hub connected to 1..n-1.
func Star(n int) *Graph {
	return mustFromStream(n, "star", func(yield func(u, v int)) {
		for i := 1; i < n; i++ {
			yield(0, i)
		}
	})
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	return mustFromStream(n, "complete", func(yield func(u, v int)) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				yield(u, v)
			}
		}
	})
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	idx := func(r, c int) int { return r*cols + c }
	return mustFromStream(rows*cols, "grid", func(yield func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					yield(idx(r, c), idx(r, c+1))
				}
				if r+1 < rows {
					yield(idx(r, c), idx(r+1, c))
				}
			}
		}
	})
}

// Torus returns the rows×cols torus (grid with wraparound); rows, cols >= 3.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	idx := func(r, c int) int { return r*cols + c }
	return mustFromStream(rows*cols, "torus", func(yield func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				yield(idx(r, c), idx(r, (c+1)%cols))
				yield(idx(r, c), idx((r+1)%rows, c))
			}
		}
	})
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	return mustFromStream(n, "hypercube", func(yield func(u, v int)) {
		for u := 0; u < n; u++ {
			for b := 0; b < d; b++ {
				if v := u ^ (1 << b); u < v {
					yield(u, v)
				}
			}
		}
	})
}

// normEdge orders an edge's endpoints (low, high).
func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// edgeSet is the online dedup behind the randomized builders, whose
// rejection sampling needs membership answers mid-stream (a sort-based
// dedup cannot answer those). Small node counts use a flat n×n bit
// matrix — O(1) per probe, no hashing, no per-insert allocation — and
// large ones fall back to a hash set; both give identical answers, so the
// RNG consumption of a seeded build is representation-independent.
type edgeSet struct {
	n    int
	bits []uint64        // n*n bit matrix, nil when falling back
	m    map[[2]int]bool // fallback for large n
}

// bitsetMaxN caps the dense representation at n²/8 = 8 MiB.
const bitsetMaxN = 8192

func newEdgeSet(n, sizeHint int) *edgeSet {
	s := &edgeSet{n: n}
	if n <= bitsetMaxN {
		s.bits = make([]uint64, (n*n+63)/64)
	} else {
		s.m = make(map[[2]int]bool, sizeHint)
	}
	return s
}

// insert adds the normalized edge (u,v) and reports whether it was new.
func (s *edgeSet) insert(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if s.bits != nil {
		k := u*s.n + v
		w, b := k/64, uint64(1)<<(k%64)
		if s.bits[w]&b != 0 {
			return false
		}
		s.bits[w] |= b
		return true
	}
	k := [2]int{u, v}
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

// RandomConnected returns a uniformly-wired connected graph with n nodes and
// exactly m edges (n-1 <= m <= n(n-1)/2): a random spanning tree plus m-n+1
// additional distinct random edges. The RNG is consumed in a fixed order
// independent of the storage representation, so seeded graphs are stable
// across refactors.
func RandomConnected(n, m int, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: RandomConnected needs n >= 1, got %d", n)
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		return nil, fmt.Errorf("graph: RandomConnected needs n-1 <= m <= n(n-1)/2, got n=%d m=%d", n, m)
	}
	perm := rng.Perm(n)
	used := newEdgeSet(n, m)
	edges := make([][2]int, 0, m)
	// Random spanning tree: attach each node (in random order) to a random
	// earlier node. This is not uniform over all trees but gives well-mixed
	// connected topologies, which is all the experiments need.
	for i := 1; i < n; i++ {
		k := normEdge(perm[i], perm[rng.Intn(i)])
		used.insert(k[0], k[1])
		edges = append(edges, k)
	}
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if !used.insert(u, v) {
			continue
		}
		edges = append(edges, normEdge(u, v))
	}
	g := fromStream(n, "random", func(yield func(u, v int)) {
		for _, e := range edges {
			yield(e[0], e[1])
		}
	})
	return g, nil
}
