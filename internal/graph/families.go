package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph on n nodes: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return mustFromEdges(n, edges, "path")
}

// Ring returns the cycle graph on n nodes (n >= 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return mustFromEdges(n, edges, "ring")
}

// Star returns the star graph: node 0 is the hub connected to 1..n-1.
func Star(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return mustFromEdges(n, edges, "star")
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	edges := make([][2]int, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return mustFromEdges(n, edges, "complete")
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	idx := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{idx(r, c), idx(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{idx(r, c), idx(r+1, c)})
			}
		}
	}
	return mustFromEdges(rows*cols, edges, "grid")
}

// Torus returns the rows×cols torus (grid with wraparound); rows, cols >= 3.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	idx := func(r, c int) int { return r*cols + c }
	var edges [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, [2]int{idx(r, c), idx(r, (c+1)%cols)})
			edges = append(edges, [2]int{idx(r, c), idx((r+1)%rows, c)})
		}
	}
	return mustFromEdges(rows*cols, edges, "torus")
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	var edges [][2]int
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return mustFromEdges(n, edges, "hypercube")
}

// RandomConnected returns a uniformly-wired connected graph with n nodes and
// exactly m edges (n-1 <= m <= n(n-1)/2): a random spanning tree plus m-n+1
// additional distinct random edges.
func RandomConnected(n, m int, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: RandomConnected needs n >= 1, got %d", n)
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		return nil, fmt.Errorf("graph: RandomConnected needs n-1 <= m <= n(n-1)/2, got n=%d m=%d", n, m)
	}
	perm := rng.Perm(n)
	used := make(map[[2]int]bool, m)
	edges := make([][2]int, 0, m)
	// Random spanning tree: attach each node (in random order) to a random
	// earlier node. This is not uniform over all trees but gives well-mixed
	// connected topologies, which is all the experiments need.
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[rng.Intn(i)]
		k := normEdge(u, v)
		used[k] = true
		edges = append(edges, k)
	}
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		k := normEdge(u, v)
		if used[k] {
			continue
		}
		used[k] = true
		edges = append(edges, k)
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	g.name = "random"
	return g, nil
}
