package graph

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// FromSpec builds a graph from a compact textual family spec. It is the
// single parser behind the ule CLI's -graph flag and the sweep harness's
// graph axis, so both accept the same grammar:
//
//	path:N ring:N star:N complete:N hypercube:DIM
//	grid:RxC torus:RxC bipartite:AxB
//	random:N:M regular:N:D caterpillar:SPINE:LEGS
//	lollipop:N:M dumbbell:N:M cliquecycle:N:D
//
// Randomized families (random, regular, dumbbell) are deterministic given
// (spec, seed); deterministic families ignore the seed.
func FromSpec(spec string, seed int64) (*Graph, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	wantParts := func(k int, usage string) error {
		if len(parts) != k {
			return fmt.Errorf("graph spec %q: want %s", spec, usage)
		}
		return nil
	}
	num := func(i int) (int, error) {
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, fmt.Errorf("graph spec %q: bad parameter %q", spec, parts[i])
		}
		return v, nil
	}
	pair := func(i int) (int, int, error) {
		dims := strings.Split(parts[i], "x")
		if len(dims) != 2 {
			return 0, 0, fmt.Errorf("graph spec %q: want AxB, got %q", spec, parts[i])
		}
		a, err := strconv.Atoi(dims[0])
		if err != nil {
			return 0, 0, fmt.Errorf("graph spec %q: bad parameter %q", spec, dims[0])
		}
		b, err := strconv.Atoi(dims[1])
		if err != nil {
			return 0, 0, fmt.Errorf("graph spec %q: bad parameter %q", spec, dims[1])
		}
		return a, b, nil
	}

	// atLeast turns a family's documented minimum into a parse error, so
	// the shared grammar is total: the constructors reserve panics for
	// programmatic misuse, but a spec string is user input.
	atLeast := func(v, min int, what string) error {
		if v < min {
			return fmt.Errorf("graph spec %q: %s must be >= %d", spec, what, min)
		}
		return nil
	}

	switch kind {
	case "path", "ring", "star", "complete", "hypercube":
		if err := wantParts(2, kind+":N"); err != nil {
			return nil, err
		}
		n, err := num(1)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "path":
			if err := atLeast(n, 1, "N"); err != nil {
				return nil, err
			}
			return Path(n), nil
		case "ring":
			if err := atLeast(n, 3, "N"); err != nil {
				return nil, err
			}
			return Ring(n), nil
		case "star":
			if err := atLeast(n, 1, "N"); err != nil {
				return nil, err
			}
			return Star(n), nil
		case "complete":
			if err := atLeast(n, 1, "N"); err != nil {
				return nil, err
			}
			return Complete(n), nil
		default:
			// 2^DIM nodes: reject dimensions whose node count cannot even
			// be represented, before the shift wraps or the alloc explodes.
			if n < 0 || n > 30 {
				return nil, fmt.Errorf("graph spec %q: hypercube dimension out of range [0, 30]", spec)
			}
			return Hypercube(n), nil
		}
	case "grid", "torus", "bipartite":
		if err := wantParts(2, kind+":AxB"); err != nil {
			return nil, err
		}
		a, b, err := pair(1)
		if err != nil {
			return nil, err
		}
		min := 1
		if kind == "torus" {
			min = 3
		}
		if err := atLeast(a, min, "A"); err != nil {
			return nil, err
		}
		if err := atLeast(b, min, "B"); err != nil {
			return nil, err
		}
		switch kind {
		case "grid":
			return Grid(a, b), nil
		case "torus":
			return Torus(a, b), nil
		default:
			return CompleteBipartite(a, b), nil
		}
	case "random", "regular", "caterpillar", "lollipop", "dumbbell", "cliquecycle":
		if err := wantParts(3, kind+":A:B"); err != nil {
			return nil, err
		}
		a, err := num(1)
		if err != nil {
			return nil, err
		}
		b, err := num(2)
		if err != nil {
			return nil, err
		}
		if err := atLeast(a, 0, "A"); err != nil {
			return nil, err
		}
		if err := atLeast(b, 0, "B"); err != nil {
			return nil, err
		}
		switch kind {
		case "random":
			return RandomConnected(a, b, rand.New(rand.NewSource(seed)))
		case "regular":
			return RandomRegular(a, b, rand.New(rand.NewSource(seed)))
		case "caterpillar":
			if err := atLeast(a, 1, "SPINE"); err != nil {
				return nil, err
			}
			return Caterpillar(a, b), nil
		case "lollipop":
			l, err := NewLollipop(a, b)
			if err != nil {
				return nil, err
			}
			return l.Graph, nil
		case "dumbbell":
			d, _, err := RandomDumbbell(a, b, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			return d.Graph, nil
		default:
			cc, err := NewCliqueCycle(a, b)
			if err != nil {
				return nil, err
			}
			return cc.Graph, nil
		}
	default:
		return nil, fmt.Errorf("unknown graph family %q in spec %q", kind, spec)
	}
}

// RandomDumbbell samples a Theorem 3.1 dumbbell with per-side node budget n
// and edge budget m: a lollipop base graph, two port-shuffled copies (the
// adversarial port-mapping choice, applied to the closed graphs so the
// bridge rewiring reuses the freed port slots), joined at two uniformly
// chosen clique edges. It also returns the lollipop clique size κ, which
// determines the invariant diameter 2(n−κ)+1.
func RandomDumbbell(n, m int, rng *rand.Rand) (*Dumbbell, int, error) {
	base, err := NewLollipop(n, m)
	if err != nil {
		return nil, 0, err
	}
	left := base.Graph.Clone()
	right := base.Graph.Clone()
	left.ShufflePorts(rng)
	right.ShufflePorts(rng)
	clique := base.CliqueEdges()
	e1 := clique[rng.Intn(len(clique))]
	e2 := clique[rng.Intn(len(clique))]
	d, err := NewDumbbell(left, right, e1, e2)
	if err != nil {
		return nil, 0, err
	}
	return d, base.Kappa, nil
}
