package graph

import (
	"math/rand"
	"testing"
)

func TestFromSpecFamilies(t *testing.T) {
	cases := []struct {
		spec      string
		n         int
		connected bool
	}{
		{"path:8", 8, true},
		{"ring:8", 8, true},
		{"star:8", 8, true},
		{"complete:6", 6, true},
		{"hypercube:3", 8, true},
		{"grid:3x4", 12, true},
		{"torus:3x4", 12, true},
		{"bipartite:3x4", 7, true},
		{"random:16:30", 16, true},
		{"regular:16:4", 16, true},
		{"caterpillar:5:2", 15, true},
		{"lollipop:12:24", 12, true},
		{"dumbbell:12:24", 24, true},
		{"cliquecycle:32:8", 32, true},
	}
	for _, c := range cases {
		g, err := FromSpec(c.spec, 1)
		if err != nil {
			t.Errorf("FromSpec(%q): %v", c.spec, err)
			continue
		}
		if g.N() != c.n {
			t.Errorf("FromSpec(%q): n=%d want %d", c.spec, g.N(), c.n)
		}
		if c.connected && !g.Connected() {
			t.Errorf("FromSpec(%q): not connected", c.spec)
		}
	}
}

func TestFromSpecDeterministic(t *testing.T) {
	for _, spec := range []string{"random:16:30", "regular:16:4", "dumbbell:12:24"} {
		a, err := FromSpec(spec, 7)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		b, err := FromSpec(spec, 7)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", spec, err)
		}
		ae, be := a.Edges(), b.Edges()
		if len(ae) != len(be) {
			t.Fatalf("FromSpec(%q): edge counts differ: %d vs %d", spec, len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("FromSpec(%q): edge %d differs: %v vs %v", spec, i, ae[i], be[i])
			}
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	for _, spec := range []string{"nosuch:8", "ring", "grid:3", "random:16", "ring:x", "grid:axb"} {
		if _, err := FromSpec(spec, 1); err == nil {
			t.Errorf("FromSpec(%q): want error, got nil", spec)
		}
	}
}

func TestDiameterExactMemoized(t *testing.T) {
	g := Ring(10)
	if d := g.DiameterExact(); d != 5 {
		t.Fatalf("ring:10 diameter = %d, want 5", d)
	}
	// Cached value survives port shuffles (distances are port-independent).
	g.ShufflePorts(rand.New(rand.NewSource(3)))
	if d := g.DiameterExact(); d != 5 {
		t.Fatalf("ring:10 diameter after shuffle = %d, want 5", d)
	}
	// Concurrent readers race only on the sync.Once.
	done := make(chan int, 8)
	h := Grid(6, 7)
	for i := 0; i < 8; i++ {
		go func() { done <- h.DiameterExact() }()
	}
	for i := 0; i < 8; i++ {
		if d := <-done; d != 11 {
			t.Fatalf("grid:6x7 diameter = %d, want 11", d)
		}
	}
}
