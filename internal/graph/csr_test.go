package graph

// Differential and compatibility tests for the CSR topology core:
//
//   - every family builder is pinned against a reference rebuild through
//     NewFromEdges from its own Edges() output plus a direct port-order
//     replay, so the two-pass CSR fill and the old append-per-edge
//     adjacency lists agree on Degree/Neighbor/PortTo/Edges;
//   - seeded ShufflePorts / RandomConnected / FromSpec adjacency is pinned
//     to FNV hashes captured from the pre-CSR [][]int implementation —
//     seeded graphs, and therefore every seeded run and sweep, are
//     byte-identical across the representation change;
//   - the reverse-port table (PortBack) is checked as an invariant through
//     construction, cloning, shuffling and dumbbell rewiring;
//   - DiameterEstimate is bounded against DiameterExact on every family.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// adjHash folds n, m and every (degree, neighbor...) row into an FNV-1a
// hash. The golden values below were produced by this exact function
// running against the pre-CSR adjacency-list implementation.
func adjHash(g *Graph) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v int) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	put(g.N())
	put(g.M())
	for u := 0; u < g.N(); u++ {
		put(g.Degree(u))
		for p := 0; p < g.Degree(u); p++ {
			put(g.Neighbor(u, p))
		}
	}
	return h.Sum64()
}

// testFamilies returns one instance of every family, including both
// lower-bound constructions, keyed by a label.
func testFamilies(t testing.TB) map[string]*Graph {
	t.Helper()
	lp, err := NewLollipop(24, 120)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCliqueCycle(96, 24)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := RandomDumbbell(24, 200, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RandomConnected(48, 140, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RandomRegular(32, 4, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"path":        Path(17),
		"ring":        Ring(16),
		"star":        Star(12),
		"complete":    Complete(11),
		"grid":        Grid(4, 7),
		"torus":       Torus(4, 5),
		"hypercube":   Hypercube(4),
		"bipartite":   CompleteBipartite(5, 8),
		"caterpillar": Caterpillar(6, 3),
		"lollipop":    lp.Graph,
		"cliquecycle": cc.Graph,
		"dumbbell":    db.Graph,
		"random":      rc,
		"regular":     rr,
	}
}

// TestCSRMatchesEdgeListRebuild rebuilds every family from its own edge
// list through NewFromEdges and checks that ports, degrees and edges all
// agree — the CSR two-pass fill assigns ports in edge-stream order, which
// is exactly the append order NewFromEdges uses.
func TestCSRMatchesEdgeListRebuild(t *testing.T) {
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			edges := g.Edges()
			if len(edges) != g.M() {
				t.Fatalf("Edges len %d != m %d", len(edges), g.M())
			}
			ref, err := NewFromEdges(g.N(), edges)
			if err != nil {
				t.Fatal(err)
			}
			if ref.N() != g.N() || ref.M() != g.M() {
				t.Fatalf("rebuild shape (%d,%d) != (%d,%d)", ref.N(), ref.M(), g.N(), g.M())
			}
			for u := 0; u < g.N(); u++ {
				if ref.Degree(u) != g.Degree(u) {
					t.Fatalf("degree mismatch at %d: %d vs %d", u, ref.Degree(u), g.Degree(u))
				}
				for p := 0; p < g.Degree(u); p++ {
					v := g.Neighbor(u, p)
					// PortTo answers must agree in both directions even
					// though port numberings differ between g and ref.
					if ref.PortTo(u, v) < 0 {
						t.Fatalf("edge (%d,%d) of %s missing in rebuild", u, v, name)
					}
					if got := g.Neighbor(v, g.PortTo(v, u)); got != u {
						t.Fatalf("PortTo asymmetry at (%d,%d)", u, v)
					}
				}
			}
			refEdges := ref.Edges()
			for i := range edges {
				if edges[i] != refEdges[i] {
					t.Fatalf("edge list mismatch at %d: %v vs %v", i, edges[i], refEdges[i])
				}
			}
		})
	}
}

// TestPortBackInvariant checks the O(1) reverse-port table against the
// defining property Neighbor(Neighbor(u,p), PortBack(u,p)) == u on every
// family, after cloning, and after seeded port shuffles.
func TestPortBackInvariant(t *testing.T) {
	check := func(t *testing.T, g *Graph) {
		t.Helper()
		for u := 0; u < g.N(); u++ {
			for p := 0; p < g.Degree(u); p++ {
				v := g.Neighbor(u, p)
				q := g.PortBack(u, p)
				if q < 0 || q >= g.Degree(v) || g.Neighbor(v, q) != u {
					t.Fatalf("PortBack(%d,%d)=%d broken (neighbor %d)", u, p, q, v)
				}
				if want := g.PortTo(v, u); q != want {
					t.Fatalf("PortBack(%d,%d)=%d != PortTo(%d,%d)=%d", u, p, q, v, u, want)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(31))
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			check(t, g)
			c := g.Clone()
			c.ShufflePorts(rng)
			check(t, c)
			c.ShufflePorts(rng) // second shuffle re-translates the table
			check(t, c)
		})
	}
}

// Golden adjacency hashes captured from the pre-CSR implementation: the
// seeded builders and ShufflePorts must keep consuming the RNG in exactly
// the same order, so every seeded run and sweep stays byte-identical
// across the refactor.
func TestSeededGraphsByteIdentical(t *testing.T) {
	t.Run("RandomConnected", func(t *testing.T) {
		for _, c := range []struct {
			n, m int
			seed int64
			want uint64
		}{
			{40, 100, 7, 0xf2b64ec79ed4021a},
			{128, 640, 11, 0x4692bda9ae6555eb},
			{24, 24, 3, 0x07d017dacca7f4a9},
		} {
			g, err := RandomConnected(c.n, c.m, rand.New(rand.NewSource(c.seed)))
			if err != nil {
				t.Fatal(err)
			}
			if got := adjHash(g); got != c.want {
				t.Errorf("RandomConnected(%d,%d,seed=%d) hash %#x, want %#x", c.n, c.m, c.seed, got, c.want)
			}
		}
	})
	t.Run("ShufflePorts", func(t *testing.T) {
		for _, c := range []struct {
			name string
			g    *Graph
			seed int64
			want uint64
		}{
			{"ring32", Ring(32), 5, 0x63b5a286fa3b8de5},
			{"complete16", Complete(16), 9, 0x2727fb1a38d12cad},
			{"grid5x7", Grid(5, 7), 13, 0xb5f94f91f1a873da},
			{"hypercube5", Hypercube(5), 21, 0xc0eb9d7ead68e755},
		} {
			c.g.ShufflePorts(rand.New(rand.NewSource(c.seed)))
			if got := adjHash(c.g); got != c.want {
				t.Errorf("ShufflePorts(%s,seed=%d) hash %#x, want %#x", c.name, c.seed, got, c.want)
			}
		}
	})
	t.Run("FromSpec", func(t *testing.T) {
		for _, c := range []struct {
			spec string
			want uint64
		}{
			{"dumbbell:24:200", 0xb96d68237929e416},
			{"regular:32:4", 0x116eb479963f0965},
			{"random:64:128", 0x8f257fe115a99a99},
		} {
			g, err := FromSpec(c.spec, 42)
			if err != nil {
				t.Fatal(err)
			}
			if got := adjHash(g); got != c.want {
				t.Errorf("FromSpec(%s,seed=42) hash %#x, want %#x", c.spec, got, c.want)
			}
		}
	})
	t.Run("DoubleShuffle", func(t *testing.T) {
		// Two shuffles from one stream: the RNG must advance identically
		// between calls.
		g := Ring(64)
		rng := rand.New(rand.NewSource(77))
		g.ShufflePorts(rng)
		g.ShufflePorts(rng)
		if got, want := adjHash(g), uint64(0xd0034d0c85cfdba5); got != want {
			t.Errorf("double ShufflePorts hash %#x, want %#x", got, want)
		}
	})
}

// TestEdgeSetRepresentationsAgree drives the bitset and map dedup paths
// with identical insert sequences; RandomConnected's RNG stream depends on
// the answers, so the representations must be indistinguishable.
func TestEdgeSetRepresentationsAgree(t *testing.T) {
	n := 64
	bitset := newEdgeSet(n, 0)
	if bitset.bits == nil {
		t.Fatal("expected bitset representation for small n")
	}
	hashed := &edgeSet{n: n, m: make(map[[2]int]bool)}
	rng := rand.New(rand.NewSource(131))
	for i := 0; i < 4000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if bitset.insert(u, v) != hashed.insert(u, v) {
			t.Fatalf("representations disagree on (%d,%d) at step %d", u, v, i)
		}
	}
}

// TestDiameterEstimateBounds checks exact-vs-estimate on every family:
// the estimate is a real eccentricity, so exact/2 <= estimate <= exact.
func TestDiameterEstimateBounds(t *testing.T) {
	for name, g := range testFamilies(t) {
		t.Run(name, func(t *testing.T) {
			exact := g.DiameterExact()
			est := g.DiameterEstimate()
			if est > exact {
				t.Fatalf("estimate %d > exact %d", est, exact)
			}
			if 2*est < exact {
				t.Fatalf("estimate %d below half of exact %d", est, exact)
			}
		})
	}
	// Families where the double sweep lands exactly.
	for _, g := range []*Graph{Ring(101), Path(64), Grid(9, 13), Caterpillar(12, 4), Star(33)} {
		if est, exact := g.DiameterEstimate(), g.DiameterExact(); est != exact {
			t.Errorf("%s: estimate %d != exact %d", g.Name(), est, exact)
		}
	}
}

// TestDiameterExactParallelMatchesSerial runs the worker-pool all-pairs
// computation against a serial recomputation on a shape large enough to
// actually shard.
func TestDiameterExactParallelMatchesSerial(t *testing.T) {
	g, err := RandomConnected(600, 1800, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	serial := 0
	for u := 0; u < g.N(); u++ {
		if e := g.Eccentricity(u); e > serial {
			serial = e
		}
	}
	if got := g.DiameterExact(); got != serial {
		t.Fatalf("parallel diameter %d != serial %d", got, serial)
	}
}

// TestDiameterExactDisconnected pins the -1 contract on the pooled path.
func TestDiameterExactDisconnected(t *testing.T) {
	// Two rings, no connection: 600 nodes so the parallel path engages.
	edges := make([][2]int, 0, 600)
	for i := 0; i < 300; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 300})
		edges = append(edges, [2]int{300 + i, 300 + (i+1)%300})
	}
	g, err := NewFromEdges(600, edges)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.DiameterExact(); d != -1 {
		t.Fatalf("disconnected diameter %d, want -1", d)
	}
	if d := g.DiameterEstimate(); d != -1 {
		t.Fatalf("disconnected estimate %d, want -1", d)
	}
}

// TestCSRAccessors checks the borrowed-array contracts.
func TestCSRAccessors(t *testing.T) {
	g := Torus(5, 6)
	off, nbr := g.CSR()
	back := g.PortBacks()
	if len(off) != g.N()+1 || len(nbr) != 2*g.M() || len(back) != len(nbr) {
		t.Fatalf("CSR shapes: off=%d nbr=%d back=%d (n=%d m=%d)", len(off), len(nbr), len(back), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if int(off[u+1]-off[u]) != g.Degree(u) {
			t.Fatalf("off row %d inconsistent with Degree", u)
		}
		for p := 0; p < g.Degree(u); p++ {
			if int(nbr[int(off[u])+p]) != g.Neighbor(u, p) {
				t.Fatalf("nbr[off[%d]+%d] != Neighbor", u, p)
			}
			if int(back[int(off[u])+p]) != g.PortBack(u, p) {
				t.Fatalf("back[off[%d]+%d] != PortBack", u, p)
			}
		}
	}
}

func ExampleGraph_CSR() {
	g := Ring(4)
	off, nbr := g.CSR()
	fmt.Println("off:", off)
	fmt.Println("nbr:", nbr)
	// Output:
	// off: [0 2 4 6 8]
	// nbr: [1 3 0 2 1 3 2 0]
}
