package graph

import "fmt"

// Lollipop is the base graph G0 used by the proof of Theorem 3.1 for
// algorithms that know the diameter: a κ-clique (nodes 0..κ-1) joined to a
// path of n-κ nodes (nodes κ..n-1), where node κ (the path head b1) is
// connected to every clique node. κ is the largest integer with
// κ(κ-1)/2 + κ <= m, so the graph has Θ(m) edges and Θ(n) nodes.
type Lollipop struct {
	*Graph
	// Kappa is the clique size κ.
	Kappa int
}

// NewLollipop builds the Theorem 3.1 base graph for the requested node and
// edge budget. Requires n >= 4 and n <= m.
func NewLollipop(n, m int) (*Lollipop, error) {
	if n < 4 {
		return nil, fmt.Errorf("graph: lollipop needs n >= 4, got %d", n)
	}
	if m < n {
		return nil, fmt.Errorf("graph: lollipop needs m >= n, got n=%d m=%d", n, m)
	}
	kappa := 2
	for (kappa+1)*kappa/2+kappa+1 <= m {
		kappa++
	}
	if kappa > n-2 {
		kappa = n - 2 // keep at least a 2-node path so a dumbbell has positive bridge distance
	}
	g := mustFromStream(n, "lollipop", func(yield func(u, v int)) {
		for u := 0; u < kappa; u++ {
			for v := u + 1; v < kappa; v++ {
				yield(u, v)
			}
		}
		b1 := kappa
		for u := 0; u < kappa; u++ {
			yield(u, b1)
		}
		for i := kappa; i+1 < n; i++ {
			yield(i, i+1)
		}
	})
	return &Lollipop{Graph: g, Kappa: kappa}, nil
}

// CliqueEdges returns the edges of the κ-clique part; these are the edges
// the Theorem 3.1 construction is allowed to open when forming dumbbells
// (opening a clique edge keeps the dumbbell diameter independent of which
// edge was opened).
func (l *Lollipop) CliqueEdges() [][2]int {
	edges := make([][2]int, 0, l.Kappa*(l.Kappa-1)/2)
	for u := 0; u < l.Kappa; u++ {
		for v := u + 1; v < l.Kappa; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// PathTail returns the node at the far end of the path (b_{n-κ}); the
// dumbbell diameter is realized between the two tails.
func (l *Lollipop) PathTail() int { return l.N() - 1 }

// Dumbbell combines two "open graphs" G'[e'] and G”[e”] into the
// Dumbbell(G'[e'], G”[e”]) graph of Theorem 3.1: edge e1 is removed from
// g1, edge e2 from the (index-shifted) copy of g2, and two bridge edges are
// added connecting the freed port slots pairwise: (e1[0], e2[0]+off) and
// (e1[1], e2[1]+off).
//
// The freed port positions are reused for the bridges, so every non-bridge
// port mapping is identical to the one in the underlying closed graphs —
// exactly the indistinguishability the lower-bound proof relies on.
type Dumbbell struct {
	*Graph
	// Bridges are the two bridge edges, endpoints ordered (left, right).
	Bridges [2][2]int
	// Off is the index offset of the right copy (== g1.N()).
	Off int
}

// NewDumbbell builds the dumbbell; e1 must be an edge of g1 and e2 an edge
// of g2 (right-copy indices are pre-offset, i.e. pass g2's own indices).
// The freed port slots are located through the closed graphs' O(1)
// reverse-port tables; no adjacency scans.
func NewDumbbell(g1, g2 *Graph, e1, e2 [2]int) (*Dumbbell, error) {
	p1 := g1.PortTo(e1[0], e1[1])
	if p1 < 0 {
		return nil, fmt.Errorf("graph: dumbbell: e1=(%d,%d) not an edge of g1", e1[0], e1[1])
	}
	p2 := g2.PortTo(e2[0], e2[1])
	if p2 < 0 {
		return nil, fmt.Errorf("graph: dumbbell: e2=(%d,%d) not an edge of g2", e2[0], e2[1])
	}
	// The four freed slots: (node, port) of each opened edge's endpoints,
	// the far-end ports read from the reverse-port tables.
	ports1 := [2]int{p1, g1.PortBack(e1[0], p1)}
	ports2 := [2]int{p2, g2.PortBack(e2[0], p2)}

	off := g1.N()
	n1, n2 := g1.N(), g2.N()
	n := n1 + n2
	g := &Graph{
		off:  make([]int32, n+1),
		nbr:  make([]int32, len(g1.nbr)+len(g2.nbr)),
		back: make([]int32, len(g1.back)+len(g2.back)),
		m:    g1.m + g2.m,
		name: "dumbbell",
	}
	copy(g.off, g1.off)
	shift := g1.off[n1]
	for u := 0; u <= n2; u++ {
		g.off[n1+u] = shift + g2.off[u]
	}
	copy(g.nbr, g1.nbr)
	for i, v := range g2.nbr {
		g.nbr[int(shift)+i] = v + int32(off)
	}
	copy(g.back, g1.back)
	copy(g.back[shift:], g2.back)
	// Rewire the freed slots pairwise: e1[i]'s freed port now leads to
	// e2[i]+off, and vice versa; each side's back entry is the far side's
	// freed port.
	for i := 0; i < 2; i++ {
		li := int(g.off[e1[i]]) + ports1[i]
		ri := int(g.off[e2[i]+off]) + ports2[i]
		g.nbr[li] = int32(e2[i] + off)
		g.back[li] = int32(ports2[i])
		g.nbr[ri] = int32(e1[i])
		g.back[ri] = int32(ports1[i])
	}
	return &Dumbbell{
		Graph:   g,
		Bridges: [2][2]int{{e1[0], e2[0] + off}, {e1[1], e2[1] + off}},
		Off:     off,
	}, nil
}

// CliqueCycle is the Figure 1 / Theorem 3.13 lower-bound construction: D'
// cliques of γ nodes each, arranged in a cycle and partitioned into four
// arcs C0..C3. Consecutive cliques are connected by a single edge, so any
// causal influence between opposite arcs needs Ω(D') rounds.
type CliqueCycle struct {
	*Graph
	// DPrime is the number of cliques D' = 4⌈D/4⌉.
	DPrime int
	// Gamma is the clique size γ (smallest with γ·D' >= n).
	Gamma int
}

// NewCliqueCycle builds the construction for target size n and diameter
// parameter d (2 < d < n). The resulting graph has γ·D' = Θ(n) nodes and
// diameter Θ(d).
func NewCliqueCycle(n, d int) (*CliqueCycle, error) {
	if d <= 2 || d >= n {
		return nil, fmt.Errorf("graph: clique-cycle needs 2 < d < n, got n=%d d=%d", n, d)
	}
	dp := 4 * ((d + 3) / 4)
	gamma := (n + dp - 1) / dp
	if gamma < 1 {
		gamma = 1
	}
	total := gamma * dp
	node := func(clique, k int) int { return clique*gamma + k }
	g := mustFromStream(total, "clique-cycle", func(yield func(u, v int)) {
		for c := 0; c < dp; c++ {
			for a := 0; a < gamma; a++ {
				for b := a + 1; b < gamma; b++ {
					yield(node(c, a), node(c, b))
				}
			}
			// Single connecting edge: last node of clique c to first node of
			// clique c+1 (mod D').
			yield(node(c, gamma-1), node((c+1)%dp, 0))
		}
	})
	return &CliqueCycle{Graph: g, DPrime: dp, Gamma: gamma}, nil
}

// Arc returns the arc index (0..3) of node u.
func (cc *CliqueCycle) Arc(u int) int {
	clique := u / cc.Gamma
	return clique / (cc.DPrime / 4)
}
