// Package graph provides the network-topology substrate for the universal
// leader election reproduction: port-numbered undirected graphs, the standard
// families used by the paper's experiments (rings, cliques, random connected
// graphs, grids, hypercubes), and the two lower-bound constructions — the
// "lollipop" base graph G0 with its dumbbell combinations (Theorem 3.1) and
// the clique-cycle of Figure 1 (Theorem 3.13).
//
// Nodes are identified by dense indices 0..n-1. Every node sees its incident
// edges only through local port numbers 0..deg-1, exactly as in the paper's
// model: algorithms never observe neighbor indices, only ports.
package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Graph is an undirected, simple, port-numbered graph.
//
// The port order of a node is the order in which its incident edges were
// added; use ShufflePorts to randomize port mappings (the adversarial choice
// in the paper's lower-bound constructions).
type Graph struct {
	adj  [][]int
	m    int
	name string

	// diamOnce guards the memoized exact diameter. The cache survives
	// ShufflePorts (port renumbering never changes distances) and is safe
	// for concurrent readers, so sweeps sharing one graph across many
	// trials pay the O(n·m) all-pairs BFS exactly once.
	diamOnce sync.Once
	diam     int
}

// Errors returned by NewFromEdges.
var (
	ErrSelfLoop      = errors.New("graph: self loop")
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	ErrBadEndpoint   = errors.New("graph: endpoint out of range")
)

// NewFromEdges builds a graph with n nodes from an undirected edge list.
// Edges are validated: endpoints must lie in [0,n), self loops and duplicate
// edges are rejected.
func NewFromEdges(n int, edges [][2]int) (*Graph, error) {
	g := &Graph{adj: make([][]int, n)}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrBadEndpoint, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: node %d", ErrSelfLoop, u)
		}
		k := normEdge(u, v)
		if seen[k] {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
		}
		seen[k] = true
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
		g.m++
	}
	return g, nil
}

// mustFromEdges is used by the family builders, whose edge lists are
// correct by construction.
func mustFromEdges(n int, edges [][2]int, name string) *Graph {
	g, err := NewFromEdges(n, edges)
	if err != nil {
		panic("graph: internal builder bug: " + err.Error())
	}
	g.name = name
	return g
}

func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Name returns the family name assigned by the builder ("" for ad-hoc graphs).
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbor returns the node reached from u through port p.
func (g *Graph) Neighbor(u, p int) int { return g.adj[u][p] }

// PortTo returns the port of u leading to v, or -1 if (u,v) is not an edge.
func (g *Graph) PortTo(u, v int) int {
	for p, w := range g.adj[u] {
		if w == v {
			return p
		}
	}
	return -1
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool { return g.PortTo(u, v) >= 0 }

// Edges returns all undirected edges with endpoints ordered (low, high),
// sorted lexicographically. The slice is freshly allocated.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), m: g.m, name: g.name}
	for u := range g.adj {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	return c
}

// ShufflePorts permutes every node's port numbering uniformly at random.
// This realizes the adversarial port-mapping choice of the paper's model.
func (g *Graph) ShufflePorts(rng *rand.Rand) {
	for u := range g.adj {
		rng.Shuffle(len(g.adj[u]), func(i, j int) {
			g.adj[u][i], g.adj[u][j] = g.adj[u][j], g.adj[u][i]
		})
	}
}

// BFS returns the distance from src to every node (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for n==0, n==1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the largest BFS distance from u, or -1 if the graph
// is disconnected from u.
func (g *Graph) Eccentricity(u int) int {
	ecc := 0
	for _, d := range g.BFS(u) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// DiameterExact returns the exact diameter, computed by all-pairs BFS on
// first use and memoized thereafter (concurrency-safe). The first call
// costs O(n·m) time; repeated calls — e.g. a sweep running many trials on
// one shared graph — are free.
func (g *Graph) DiameterExact() int {
	g.diamOnce.Do(func() { g.diam = g.diameterExact() })
	return g.diam
}

// diameterExact is the uncached all-pairs BFS computation.
func (g *Graph) diameterExact() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		e := g.Eccentricity(u)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterTwoSweep returns a lower bound on the diameter computed with the
// classic double-sweep heuristic (exact on trees, a good estimate on the
// families used here). Cost: two BFS traversals.
func (g *Graph) DiameterTwoSweep() int {
	if g.N() == 0 {
		return 0
	}
	dist := g.BFS(0)
	far := 0
	for v, d := range dist {
		if d > dist[far] {
			far = v
		}
	}
	ecc := g.Eccentricity(far)
	return ecc
}

// DegreeSum returns the sum of all degrees (2m); useful as a sanity check.
func (g *Graph) DegreeSum() int {
	s := 0
	for _, a := range g.adj {
		s += len(a)
	}
	return s
}
