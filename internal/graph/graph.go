// Package graph provides the network-topology substrate for the universal
// leader election reproduction: port-numbered undirected graphs, the standard
// families used by the paper's experiments (rings, cliques, random connected
// graphs, grids, hypercubes), and the two lower-bound constructions — the
// "lollipop" base graph G0 with its dumbbell combinations (Theorem 3.1) and
// the clique-cycle of Figure 1 (Theorem 3.13).
//
// Nodes are identified by dense indices 0..n-1. Every node sees its incident
// edges only through local port numbers 0..deg-1, exactly as in the paper's
// model: algorithms never observe neighbor indices, only ports.
//
// Topology is stored in compressed-sparse-row form: flat off/nbr arrays
// (Neighbor(u,p) is a single load at nbr[off[u]+p]) plus a parallel
// reverse-port table built during construction, so the simulation engine
// borrows the arrays directly (CSR, PortBacks) and neither it nor the
// dumbbell builders ever pay an O(deg) port scan. See csr.go for the
// builder and docs/PERFORMANCE.md ("Topology fast path") for the numbers.
package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
)

// Graph is an undirected, simple, port-numbered graph in CSR layout.
//
// The port order of a node is the order in which its incident edges were
// added; use ShufflePorts to randomize port mappings (the adversarial choice
// in the paper's lower-bound constructions).
type Graph struct {
	// off[u] is the first slot of node u in nbr/back; off[n] == 2m.
	off []int32
	// nbr[off[u]+p] is the node reached from u through port p.
	nbr []int32
	// back[off[u]+p] is the port of Neighbor(u,p) leading back to u — the
	// O(1) reverse-port table maintained by every builder and by
	// ShufflePorts.
	back []int32

	m    int
	name string

	// diamOnce / estOnce guard the memoized diameter metrics. The caches
	// survive ShufflePorts (port renumbering never changes distances) and
	// are safe for concurrent readers, so sweeps sharing one graph across
	// many trials pay each computation exactly once.
	diamOnce sync.Once
	diam     int
	estOnce  sync.Once
	est      int
}

// Errors returned by NewFromEdges.
var (
	ErrSelfLoop      = errors.New("graph: self loop")
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	ErrBadEndpoint   = errors.New("graph: endpoint out of range")
)

// NewFromEdges builds a graph with n nodes from an undirected edge list.
// Edges are validated: endpoints must lie in [0,n), self loops and duplicate
// edges are rejected (by a sort over packed edge keys rather than a hash
// set, so validation allocates one flat array and no map).
func NewFromEdges(n int, edges [][2]int) (*Graph, error) {
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrBadEndpoint, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: node %d", ErrSelfLoop, u)
		}
		keys[i] = packEdge(u, v)
	}
	slices.Sort(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			u, v := unpackEdge(keys[i])
			return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
		}
	}
	return fromStream(n, "", func(yield func(u, v int)) {
		for _, e := range edges {
			yield(e[0], e[1])
		}
	}), nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Name returns the family name assigned by the builder ("" for ad-hoc graphs).
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// Neighbor returns the node reached from u through port p.
func (g *Graph) Neighbor(u, p int) int { return int(g.nbr[int(g.off[u])+p]) }

// PortBack returns the port of Neighbor(u,p) leading back to u, in O(1)
// from the reverse-port table.
func (g *Graph) PortBack(u, p int) int { return int(g.back[int(g.off[u])+p]) }

// CSR returns the graph's flat compressed-sparse-row arrays: off (length
// n+1) and nbr (length 2m), with Neighbor(u,p) == nbr[off[u]+p]. The
// arrays are the graph's own storage, shared so the simulation engine can
// resolve neighbors without an interface hop — callers must not modify
// them, and must not call ShufflePorts while using a borrowed view.
func (g *Graph) CSR() (off, nbr []int32) { return g.off, g.nbr }

// PortBacks returns the flat reverse-port table parallel to CSR's nbr:
// PortBacks()[off[u]+p] is the port at Neighbor(u,p) leading back to u.
// Shared storage, same aliasing rules as CSR.
func (g *Graph) PortBacks() []int32 { return g.back }

// PortTo returns the port of u leading to v, or -1 if (u,v) is not an edge.
func (g *Graph) PortTo(u, v int) int {
	lo, hi := g.off[u], g.off[u+1]
	for i := lo; i < hi; i++ {
		if int(g.nbr[i]) == v {
			return int(i - lo)
		}
	}
	return -1
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool { return g.PortTo(u, v) >= 0 }

// Edges returns all undirected edges with endpoints ordered (low, high),
// sorted lexicographically. The slice is freshly allocated.
func (g *Graph) Edges() [][2]int {
	keys := make([]uint64, 0, g.m)
	for u := 0; u < g.N(); u++ {
		for i := g.off[u]; i < g.off[u+1]; i++ {
			if v := int(g.nbr[i]); u < v {
				keys = append(keys, packEdge(u, v))
			}
		}
	}
	slices.Sort(keys)
	edges := make([][2]int, len(keys))
	for i, k := range keys {
		edges[i][0], edges[i][1] = unpackEdge(k)
	}
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	return &Graph{
		off:  slices.Clone(g.off),
		nbr:  slices.Clone(g.nbr),
		back: slices.Clone(g.back),
		m:    g.m,
		name: g.name,
	}
}

// ShufflePorts permutes every node's port numbering uniformly at random.
// This realizes the adversarial port-mapping choice of the paper's model.
// The randomness is drawn exactly as one rng.Shuffle per node in node
// order, so seeded graphs are identical across representations.
//
// Borrowed CSR/PortBacks views are invalidated (their contents change in
// place); sim Runners bound to the graph must be rebuilt.
func (g *Graph) ShufflePorts(rng *rand.Rand) {
	n := g.N()
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	// Pass 1: shuffle each row in place, nbr and back moving together, and
	// record where every old port went: pos[off[u]+oldPort] = newPort.
	pos := make([]int32, len(g.nbr))
	orig := make([]int32, maxDeg)
	for u := 0; u < n; u++ {
		base := int(g.off[u])
		deg := g.Degree(u)
		row := g.nbr[base : base+deg]
		bk := g.back[base : base+deg]
		for p := range orig[:deg] {
			orig[p] = int32(p)
		}
		rng.Shuffle(deg, func(i, j int) {
			row[i], row[j] = row[j], row[i]
			bk[i], bk[j] = bk[j], bk[i]
			orig[i], orig[j] = orig[j], orig[i]
		})
		for p := 0; p < deg; p++ {
			pos[base+int(orig[p])] = int32(p)
		}
	}
	// Pass 2: every back entry still names the neighbor's pre-shuffle
	// port; translate it through the neighbor's recorded permutation.
	for i := range g.back {
		v := g.nbr[i]
		g.back[i] = pos[g.off[v]+g.back[i]]
	}
}

// DegreeSum returns the sum of all degrees (2m); useful as a sanity check.
func (g *Graph) DegreeSum() int { return int(g.off[g.N()]) }
