package graph

import (
	"math/rand"
	"testing"
)

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tt := range []struct{ n, d int }{{10, 3}, {16, 4}, {30, 6}, {64, 8}} {
		g, err := RandomRegular(tt.n, tt.d, rng)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tt.n, tt.d, err)
		}
		if g.N() != tt.n || g.M() != tt.n*tt.d/2 {
			t.Errorf("n=%d d=%d: got N=%d M=%d", tt.n, tt.d, g.N(), g.M())
		}
		for u := 0; u < g.N(); u++ {
			if g.Degree(u) != tt.d {
				t.Fatalf("node %d degree %d, want %d", u, g.Degree(u), tt.d)
			}
		}
		if !g.Connected() {
			t.Error("disconnected")
		}
		// Expander check (weak): diameter should be O(log n) for d >= 3.
		if d := g.DiameterExact(); d > 4*bitsLen(tt.n) {
			t.Errorf("n=%d d=%d: diameter %d too large for an expander", tt.n, tt.d, d)
		}
	}
}

func bitsLen(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}

func TestRandomRegularRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRegular(10, 0, rng); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := RandomRegular(10, 10, rng); err == nil {
		t.Error("d=n accepted")
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n·d accepted")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4): N=%d M=%d", g.N(), g.M())
	}
	if g.DiameterExact() != 2 {
		t.Error("K(3,4) diameter should be 2")
	}
	// No intra-part edges.
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			if g.HasEdge(u, v) {
				t.Errorf("intra-part edge (%d,%d)", u, v)
			}
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || g.M() != 19 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("disconnected")
	}
	// Tree: m = n-1; diameter = spine-1 + 2 legs.
	if d := g.DiameterExact(); d != 6 {
		t.Errorf("diameter %d, want 6", d)
	}
}
