package graph

import (
	"strconv"
	"strings"
	"testing"
)

// fuzzSpecTooLarge bounds the graphs a fuzz iteration may build: any
// numeric parameter above this is skipped (not rejected — large specs
// are valid, just too expensive to construct millions of times).
const fuzzSpecTooLarge = 512

// FuzzFromSpec asserts the graph-spec grammar is total: any input either
// errors cleanly or builds a structurally consistent graph — never a
// panic, whatever sizes, separators or junk the spec carries.
func FuzzFromSpec(f *testing.F) {
	for _, seed := range []string{
		"path:8",
		"ring:64",
		"star:12",
		"complete:16",
		"hypercube:6",
		"grid:4x5",
		"torus:3x3",
		"bipartite:3x4",
		"random:24:72",
		"regular:16:4",
		"caterpillar:6:3",
		"lollipop:16:40",
		"dumbbell:16:40",
		"cliquecycle:32:8",
		"",
		"ring",
		"ring:2",
		"ring:-5",
		"ring:junk",
		"grid:4",
		"grid:4x",
		"grid:x5",
		"grid:-1x-1",
		"torus:2x9",
		"hypercube:40",
		"hypercube:-1",
		"random:5:99",
		"random:0:0",
		"regular:5:5",
		"nosuch:3",
		"path:3:4",
		"ring:064",
		"ring:+3",
		"complete:1",
	} {
		f.Add(seed, int64(1))
	}
	f.Fuzz(func(t *testing.T, spec string, seed int64) {
		// Skip (don't reject) oversized parameters: building the graph
		// would be valid but too slow/large for a fuzz iteration. The
		// scan mirrors the parser's number extraction over both ':' and
		// 'x' separators.
		for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ':' || r == 'x' }) {
			if v, err := strconv.Atoi(part); err == nil && (v > fuzzSpecTooLarge || v < -fuzzSpecTooLarge) {
				t.Skip("parameter out of fuzz budget")
			}
		}
		g, err := FromSpec(spec, seed)
		if err != nil {
			if g != nil {
				t.Fatalf("FromSpec(%q) returned both a graph and error %v", spec, err)
			}
			return
		}
		if g == nil {
			t.Fatalf("FromSpec(%q) returned nil graph and nil error", spec)
		}
		// Structural consistency of the CSR form: degree sum is twice the
		// edge count, and every port is a valid reciprocal link.
		degSum := 0
		for u := 0; u < g.N(); u++ {
			deg := g.Degree(u)
			degSum += deg
			for p := 0; p < deg; p++ {
				v := g.Neighbor(u, p)
				if v < 0 || v >= g.N() || v == u {
					t.Fatalf("FromSpec(%q): node %d port %d points at %d (n=%d)", spec, u, p, v, g.N())
				}
				if back := g.PortBack(u, p); g.Neighbor(v, back) != u {
					t.Fatalf("FromSpec(%q): reverse port of (%d,%d) broken", spec, u, p)
				}
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("FromSpec(%q): degree sum %d != 2m = %d", spec, degSum, 2*g.M())
		}
	})
}
