package graph

import (
	"fmt"
	"math/rand"
)

// RandomRegular returns a random d-regular graph on n nodes (n·d even,
// d < n), built by the pairing model with restarts: d-regular random
// graphs are expanders with high probability, the graph class for which
// [14] showed the Ω(n) message bound fails (context for the paper's
// introduction). Rejection-samples until simple and connected.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular needs 1 <= d < n, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n·d even, got n=%d d=%d", n, d)
	}
	for attempt := 0; attempt < 200; attempt++ {
		stubs := make([]int, 0, n*d)
		for u := 0; u < n; u++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, u)
			}
		}
		used := newEdgeSet(n, n*d/2)
		edges := make([][2]int, 0, n*d/2)
		ok := true
		// Steger–Wormald style incremental pairing: draw random valid stub
		// pairs; give up on this attempt if the tail gets stuck.
		for len(stubs) > 0 && ok {
			found := false
			for try := 0; try < 50; try++ {
				i := rng.Intn(len(stubs))
				j := rng.Intn(len(stubs))
				if i == j || stubs[i] == stubs[j] {
					continue
				}
				if !used.insert(stubs[i], stubs[j]) {
					continue
				}
				edges = append(edges, normEdge(stubs[i], stubs[j]))
				if i < j {
					i, j = j, i
				}
				stubs[i] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				found = true
				break
			}
			if !found {
				ok = false
			}
		}
		if !ok {
			continue
		}
		g := fromStream(n, "regular", func(yield func(u, v int)) {
			for _, e := range edges {
				yield(e[0], e[1])
			}
		})
		if !g.Connected() {
			continue
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d): no simple connected pairing in 200 attempts", n, d)
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	return mustFromStream(a+b, "bipartite", func(yield func(u, v int)) {
		for u := 0; u < a; u++ {
			for v := a; v < a+b; v++ {
				yield(u, v)
			}
		}
	})
}

// Caterpillar returns a path of spine nodes each with legs leaf nodes —
// a tree with diameter Θ(spine) and n = spine·(legs+1) nodes; a worst
// case for candidate placement (most nodes are leaves).
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic("graph: Caterpillar needs spine >= 1 and legs >= 0")
	}
	n := spine * (legs + 1)
	return mustFromStream(n, "caterpillar", func(yield func(u, v int)) {
		for s := 0; s+1 < spine; s++ {
			yield(s, s+1)
		}
		leaf := spine
		for s := 0; s < spine; s++ {
			for l := 0; l < legs; l++ {
				yield(s, leaf)
				leaf++
			}
		}
	})
}
