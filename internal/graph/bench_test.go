package graph

// Topology benchmarks behind `make bench-graph` (docs/PERFORMANCE.md
// "Topology fast path"): CSR construction across densities, scratch BFS,
// and the exact/estimated diameter. Regenerates BENCH_GRAPH_CSR.json.

import (
	"math/rand"
	"testing"
)

func BenchmarkGraphBuildComplete2048(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g := Complete(2048); g.M() != 2048*2047/2 {
			b.Fatal("bad m")
		}
	}
}

func BenchmarkGraphBuildRing1M(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g := Ring(1 << 20); g.N() != 1<<20 {
			b.Fatal("bad n")
		}
	}
}

func BenchmarkGraphBuildRandom4096(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RandomConnected(4096, 65536, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphBuildCliqueCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCliqueCycle(2048, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphShufflePorts(b *testing.B) {
	g := Complete(1024)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShufflePorts(rng)
	}
}

func BenchmarkGraphBFSTorus64(b *testing.B) {
	g := Torus(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := g.BFS(0); d[len(d)-1] < 0 {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkGraphDiameterExactTorus64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Rebuild per iteration: DiameterExact memoizes, and the all-pairs
		// fan-out is what is being measured.
		if d := Torus(64, 64).DiameterExact(); d != 64 {
			b.Fatalf("diameter %d", d)
		}
	}
}

func BenchmarkGraphDiameterEstimateRing1M(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := Ring(1 << 20).DiameterEstimate(); d != 1<<19 {
			b.Fatalf("estimate %d", d)
		}
	}
}
