package graph

import (
	"testing"
	"testing/quick"
)

func TestLollipopShape(t *testing.T) {
	tests := []struct{ n, m int }{
		{10, 20}, {16, 16}, {32, 200}, {64, 500}, {100, 1000},
	}
	for _, tt := range tests {
		l, err := NewLollipop(tt.n, tt.m)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tt.n, tt.m, err)
		}
		if l.N() != tt.n {
			t.Errorf("n=%d m=%d: N=%d", tt.n, tt.m, l.N())
		}
		// Θ(m): at least m/4 and at most m+n edges.
		if l.M() < tt.m/4 || l.M() > tt.m+tt.n {
			t.Errorf("n=%d m=%d: M=%d not Θ(m)", tt.n, tt.m, l.M())
		}
		if !l.Connected() {
			t.Errorf("n=%d m=%d: disconnected", tt.n, tt.m)
		}
		// Clique must be complete on κ nodes.
		for u := 0; u < l.Kappa; u++ {
			for v := u + 1; v < l.Kappa; v++ {
				if !l.HasEdge(u, v) {
					t.Fatalf("missing clique edge (%d,%d)", u, v)
				}
			}
		}
		if got, want := len(l.CliqueEdges()), l.Kappa*(l.Kappa-1)/2; got != want {
			t.Errorf("clique edges %d want %d", got, want)
		}
	}
}

func TestLollipopRejectsBadArgs(t *testing.T) {
	if _, err := NewLollipop(3, 10); err == nil {
		t.Error("n<4 accepted")
	}
	if _, err := NewLollipop(10, 5); err == nil {
		t.Error("m<n accepted")
	}
}

// TestDumbbellDiameterFormula checks the key geometric fact of the
// Theorem 3.1 refinement: the dumbbell diameter 2(n-κ)+1 does not depend
// on which clique edges were opened.
func TestDumbbellDiameterFormula(t *testing.T) {
	l, err := NewLollipop(12, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := -1
	for _, e1 := range l.CliqueEdges() {
		for _, e2 := range l.CliqueEdges() {
			db, err := NewDumbbell(l.Graph, l.Graph, e1, e2)
			if err != nil {
				t.Fatal(err)
			}
			if !db.Connected() {
				t.Fatalf("dumbbell(%v,%v) disconnected", e1, e2)
			}
			d := db.DiameterExact()
			if want < 0 {
				want = d
			}
			if d != want {
				t.Fatalf("dumbbell(%v,%v) diameter %d, want invariant %d", e1, e2, d, want)
			}
			// The diameter is realized between the two path tails.
			tails := db.BFS(l.PathTail())
			if got := tails[l.PathTail()+db.Off]; got != want {
				t.Fatalf("tail-to-tail distance %d != diameter %d", got, want)
			}
		}
	}
	if formula := 2*(l.N()-l.Kappa) + 1; want != formula {
		t.Errorf("diameter %d, formula 2(n-κ)+1 = %d", want, formula)
	}
}

func TestDumbbellStructure(t *testing.T) {
	l, _ := NewLollipop(10, 24)
	e := l.CliqueEdges()[0]
	db, err := NewDumbbell(l.Graph, l.Graph, e, e)
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 2*l.N() {
		t.Errorf("N=%d want %d", db.N(), 2*l.N())
	}
	if db.M() != 2*l.M() {
		t.Errorf("M=%d want %d (opened 2, bridged 2)", db.M(), 2*l.M())
	}
	// The opened edges must be gone; the bridges must exist.
	if db.HasEdge(e[0], e[1]) {
		t.Error("opened edge still present on the left")
	}
	if db.HasEdge(e[0]+db.Off, e[1]+db.Off) {
		t.Error("opened edge still present on the right")
	}
	for _, b := range db.Bridges {
		if !db.HasEdge(b[0], b[1]) {
			t.Errorf("missing bridge %v", b)
		}
	}
	// Every path between the halves crosses a bridge: removing both
	// bridges must disconnect.
	edges := db.Edges()
	var kept [][2]int
	for _, ed := range edges {
		if ed == normEdge(db.Bridges[0][0], db.Bridges[0][1]) ||
			ed == normEdge(db.Bridges[1][0], db.Bridges[1][1]) {
			continue
		}
		kept = append(kept, ed)
	}
	cut, err := NewFromEdges(db.N(), kept)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Connected() {
		t.Error("dumbbell remains connected without its bridges")
	}
}

func TestDumbbellRejectsNonEdges(t *testing.T) {
	l, _ := NewLollipop(10, 24)
	if _, err := NewDumbbell(l.Graph, l.Graph, [2]int{0, l.N() - 1}, l.CliqueEdges()[0]); err == nil {
		t.Error("non-edge e1 accepted")
	}
	if _, err := NewDumbbell(l.Graph, l.Graph, l.CliqueEdges()[0], [2]int{0, l.N() - 1}); err == nil {
		t.Error("non-edge e2 accepted")
	}
}

func TestCliqueCycleShape(t *testing.T) {
	tests := []struct{ n, d int }{
		{24, 8}, {64, 16}, {100, 20}, {48, 12}, {40, 5},
	}
	for _, tt := range tests {
		cc, err := NewCliqueCycle(tt.n, tt.d)
		if err != nil {
			t.Fatal(err)
		}
		if cc.DPrime%4 != 0 {
			t.Errorf("D'=%d not divisible by 4", cc.DPrime)
		}
		if cc.N() != cc.DPrime*cc.Gamma {
			t.Errorf("N=%d want γD'=%d", cc.N(), cc.DPrime*cc.Gamma)
		}
		if cc.N() < tt.n || cc.N() > 2*tt.n+4*cc.Gamma {
			t.Errorf("N=%d not Θ(n=%d)", cc.N(), tt.n)
		}
		if !cc.Connected() {
			t.Error("disconnected")
		}
		d := cc.DiameterExact()
		// Θ(D): traversing half the cycle costs between D'/2 and 2D'.
		if d < cc.DPrime/2 || d > 2*cc.DPrime+2 {
			t.Errorf("diameter %d not Θ(D'=%d)", d, cc.DPrime)
		}
		// Every node belongs to an arc 0..3; arcs are contiguous quarters.
		counts := make([]int, 4)
		for u := 0; u < cc.N(); u++ {
			a := cc.Arc(u)
			if a < 0 || a > 3 {
				t.Fatalf("bad arc %d", a)
			}
			counts[a]++
		}
		for a, c := range counts {
			if c != cc.N()/4 {
				t.Errorf("arc %d has %d nodes, want %d", a, c, cc.N()/4)
			}
		}
	}
}

func TestCliqueCycleRejectsBadArgs(t *testing.T) {
	if _, err := NewCliqueCycle(10, 2); err == nil {
		t.Error("d<=2 accepted")
	}
	if _, err := NewCliqueCycle(10, 10); err == nil {
		t.Error("d>=n accepted")
	}
}

func TestCliqueCycleQuick(t *testing.T) {
	prop := func(nSeed, dSeed uint8) bool {
		n := 12 + int(nSeed)%100
		d := 3 + int(dSeed)%(n-4)
		cc, err := NewCliqueCycle(n, d)
		if err != nil {
			return false
		}
		return cc.Connected() && cc.N() == cc.Gamma*cc.DPrime && cc.DPrime >= d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
