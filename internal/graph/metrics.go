// Distance metrics over the CSR core: scratch-based BFS, the exact
// diameter (all-pairs BFS fanned out over a worker pool), and the cheap
// iterated double-sweep estimate for graphs where all-pairs is
// prohibitive.
package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// bfsScratch is the reusable state of one BFS traversal: an int32
// distance array and a flat frontier buffer used as a FIFO (every node is
// enqueued at most once, so head/tail never wrap). One scratch serves any
// number of sequential traversals on graphs up to its size; the diameter
// workers own one each, and the package keeps a pool for the one-shot
// public entry points.
type bfsScratch struct {
	dist  []int32
	queue []int32
}

var scratchPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// grow sizes the scratch for an n-node graph and resets distances.
func (s *bfsScratch) grow(n int) {
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]int32, n)
	}
	s.dist = s.dist[:n]
	s.queue = s.queue[:n]
	for i := range s.dist {
		s.dist[i] = -1
	}
}

// run traverses from src and returns the eccentricity, the highest-index
// farthest node, and the number of visited nodes (== n iff connected).
// The distance array is left populated for the caller.
func (s *bfsScratch) run(g *Graph, src int) (ecc int32, far int, visited int) {
	s.grow(g.N())
	dist, queue := s.dist, s.queue
	dist[src] = 0
	queue[0] = int32(src)
	head, tail := 0, 1
	far = src
	for head < tail {
		u := queue[head]
		head++
		du := dist[u]
		for i := g.off[u]; i < g.off[u+1]; i++ {
			v := g.nbr[i]
			if dist[v] < 0 {
				dist[v] = du + 1
				queue[tail] = v
				tail++
			}
		}
	}
	for v, d := range dist {
		if d >= ecc {
			ecc = d
			far = v
		}
	}
	return ecc, far, tail
}

// BFS returns the distance from src to every node (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	sc := scratchPool.Get().(*bfsScratch)
	sc.run(g, src)
	dist := make([]int, g.N())
	for i, d := range sc.dist {
		dist[i] = int(d)
	}
	scratchPool.Put(sc)
	return dist
}

// Connected reports whether the graph is connected (true for n==0, n==1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	sc := scratchPool.Get().(*bfsScratch)
	_, _, visited := sc.run(g, 0)
	scratchPool.Put(sc)
	return visited == g.N()
}

// Eccentricity returns the largest BFS distance from u, or -1 if the graph
// is disconnected from u.
func (g *Graph) Eccentricity(u int) int {
	sc := scratchPool.Get().(*bfsScratch)
	ecc, _, visited := sc.run(g, u)
	scratchPool.Put(sc)
	if visited < g.N() {
		return -1
	}
	return int(ecc)
}

// DiameterExact returns the exact diameter (-1 if disconnected), computed
// by all-pairs BFS on first use and memoized thereafter
// (concurrency-safe). The first call fans the eccentricity sources out
// over a worker pool — the per-source maximum is reduced with max, which
// is order-independent, so the result is deterministic for every worker
// count; repeated calls — e.g. a sweep running many trials on one shared
// graph — are free.
func (g *Graph) DiameterExact() int {
	g.diamOnce.Do(func() { g.diam = g.diameterExact() })
	return g.diam
}

// diamChunk is the number of BFS sources a diameter worker claims at
// once; coarse enough that the shared counter never contends.
const diamChunk = 16

// diameterExact is the uncached all-pairs computation.
func (g *Graph) diameterExact() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if max := n / diamChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		sc := scratchPool.Get().(*bfsScratch)
		defer scratchPool.Put(sc)
		diam := int32(0)
		for u := 0; u < n; u++ {
			ecc, _, visited := sc.run(g, u)
			if visited < n {
				return -1
			}
			if ecc > diam {
				diam = ecc
			}
		}
		return int(diam)
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		maxEcc = make([]int32, workers)
		discon atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var sc bfsScratch
			for !discon.Load() {
				lo := int(next.Add(diamChunk)) - diamChunk
				if lo >= n {
					return
				}
				hi := lo + diamChunk
				if hi > n {
					hi = n
				}
				for u := lo; u < hi; u++ {
					ecc, _, visited := sc.run(g, u)
					if visited < n {
						discon.Store(true)
						return
					}
					if ecc > maxEcc[w] {
						maxEcc[w] = ecc
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if discon.Load() {
		return -1
	}
	diam := int32(0)
	for _, e := range maxEcc {
		if e > diam {
			diam = e
		}
	}
	return int(diam)
}

// DiameterTwoSweep returns a lower bound on the diameter computed with the
// classic double-sweep heuristic (exact on trees, a good estimate on the
// families used here). Cost: two BFS traversals.
func (g *Graph) DiameterTwoSweep() int {
	if g.N() == 0 {
		return 0
	}
	sc := scratchPool.Get().(*bfsScratch)
	defer scratchPool.Put(sc)
	_, far, _ := sc.run(g, 0)
	ecc, _, visited := sc.run(g, far)
	if visited < g.N() {
		return -1
	}
	return int(ecc)
}

// estimateRestarts bounds the iterated double-sweep: the deterministic
// restart sample plus the improvement iterations per restart.
const (
	estimateRestarts = 4
	estimateIters    = 8
)

// DiameterEstimate returns a cheap certified lower bound on the diameter
// (-1 if disconnected), memoized like DiameterExact: an iterated double
// sweep — BFS from the farthest node found so far, repeated while the
// eccentricity improves — restarted from a small deterministic sample of
// sources. Every returned value is a real eccentricity, so the estimate
// never exceeds DiameterExact and is never below half of it (any
// eccentricity is at least the radius); on the families shipped here it
// is exact in practice. Cost: O(k·(n+m)) with k bounded by
// estimateRestarts·estimateIters — the option for sweeps on graphs where
// the all-pairs O(n·m) diameter is prohibitive (see Spec.DiameterEstimate
// in internal/harness and docs/SWEEP_SCHEMA.md).
func (g *Graph) DiameterEstimate() int {
	g.estOnce.Do(func() { g.est = g.diameterEstimate() })
	return g.est
}

func (g *Graph) diameterEstimate() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	sc := scratchPool.Get().(*bfsScratch)
	defer scratchPool.Put(sc)
	best := int32(0)
	for r := 0; r < estimateRestarts; r++ {
		start := r * n / estimateRestarts // deterministic sample certificate
		ecc, far, visited := sc.run(g, start)
		if visited < n {
			return -1
		}
		for iter := 0; iter < estimateIters; iter++ {
			e2, f2, _ := sc.run(g, far)
			if e2 <= ecc {
				break
			}
			ecc, far = e2, f2
		}
		if ecc > best {
			best = ecc
		}
	}
	return int(best)
}
