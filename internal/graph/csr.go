// Compressed-sparse-row construction: the alloc-free two-pass builder
// behind every family.
//
// A family is described by an edge stream — a function that yields each
// undirected edge exactly once, in a deterministic order. The builder
// runs the stream twice: a degree-counting pass that sizes the flat
// arrays, and a fill pass that writes both directed slots of every edge
// and, crucially, the reverse-port table in the same sweep (back[off[u]+p]
// is the port at Neighbor(u,p) that leads back to u). Port numbers are
// assigned in stream order, which is exactly the "order edges were added"
// contract of the previous adjacency-list representation — seeded graphs
// built before and after the CSR refactor are identical.
//
// Streams replace the old intermediate [][2]int edge list plus
// map[[2]int]bool dedup: a correct-by-construction family allocates only
// the Graph shell, the three CSR arrays, and one cursor array, regardless
// of density (see the construction budgets in alloc_test.go).
package graph

import (
	"fmt"
	"math"
)

// edgeStream yields every undirected edge of a family once, in a fixed
// deterministic order. The builder invokes a stream twice; it must yield
// the same sequence both times.
type edgeStream func(yield func(u, v int))

// fromStream materializes an edge stream into a CSR graph. Endpoints are
// trusted (family builders are correct by construction); NewFromEdges is
// the validating entry point for untrusted edge lists.
func fromStream(n int, name string, stream edgeStream) *Graph {
	g := &Graph{
		off:  make([]int32, n+1),
		name: name,
	}
	// Pass 1: accumulate degrees in off[1:], then prefix-sum in place so
	// off[u] is the first port slot of node u.
	deg := g.off[1:]
	m := 0
	stream(func(u, v int) {
		deg[u]++
		deg[v]++
		m++
	})
	// The int32 slot space caps the representation at 2m <= MaxInt32;
	// fail loudly rather than wrapping the prefix sum. (Pass 1 only
	// counts, so this is reached before any large allocation.)
	if 2*m > math.MaxInt32 {
		panic(fmt.Sprintf("graph: %s with %d edges exceeds the int32 CSR slot space (2m > %d)", name, m, math.MaxInt32))
	}
	total := int32(0)
	for u := 0; u < n; u++ {
		d := g.off[u+1]
		g.off[u+1] = total + d
		total += d
	}
	g.m = m
	g.nbr = make([]int32, total)
	g.back = make([]int32, total)
	// Pass 2: fill both directed slots of each edge; cur[u] is u's next
	// free port. The two slots see each other's port, so the reverse-port
	// table costs nothing extra.
	cur := make([]int32, n)
	stream(func(u, v int) {
		pu, pv := cur[u], cur[v]
		cur[u], cur[v] = pu+1, pv+1
		iu, iv := g.off[u]+pu, g.off[v]+pv
		g.nbr[iu] = int32(v)
		g.nbr[iv] = int32(u)
		g.back[iu] = pv
		g.back[iv] = pu
	})
	return g
}

// mustFromStream builds a family graph and sanity-checks the stream's
// determinism (both passes must agree on the edge count).
func mustFromStream(n int, name string, stream edgeStream) *Graph {
	g := fromStream(n, name, stream)
	if int(g.off[n]) != 2*g.m {
		panic(fmt.Sprintf("graph: internal builder bug: %s stream yielded inconsistent passes", name))
	}
	return g
}

// packEdge encodes a normalized edge as a single comparable key, so edge
// sets sort with the allocation-free slices.Sort instead of the
// reflect-based sort.Slice.
func packEdge(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// unpackEdge inverts packEdge.
func unpackEdge(k uint64) (u, v int) {
	return int(k >> 32), int(uint32(k))
}
