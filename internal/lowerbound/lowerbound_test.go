package lowerbound

import (
	"math"
	"math/rand"
	"testing"
)

func TestDumbbellInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		db, kappa, err := DumbbellInstance(16, 60, rng)
		if err != nil {
			t.Fatal(err)
		}
		if db.N() != 32 {
			t.Errorf("N=%d want 32", db.N())
		}
		if !db.Connected() {
			t.Error("disconnected dumbbell")
		}
		// Closed-form diameter must match the measured one.
		if want := 2*(16-kappa) + 1; db.DiameterExact() != want {
			t.Errorf("diameter %d != formula %d (κ=%d)", db.DiameterExact(), want, kappa)
		}
	}
}

func TestMessageLBShowsOmegaM(t *testing.T) {
	// Every universal algorithm must spend Ω(m) messages on dumbbells:
	// messages/m bounded below by a constant across sizes.
	for _, algo := range []string{"leastel", "leastel-const", "flood", "kingdom"} {
		for _, tt := range []struct{ n, m int }{{12, 40}, {16, 80}, {24, 160}} {
			row, err := MessageLB(tt.n, tt.m, Sweep{Algo: algo, Trials: 4, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if row.MsgsPerM.Min < 0.5 {
				t.Errorf("%s n=%d m=%d: msgs/m min=%.2f < 0.5 (Ω(m) violated?)",
					algo, tt.n, tt.m, row.MsgsPerM.Min)
			}
			if row.SuccessRate < 0.75 {
				t.Errorf("%s n=%d m=%d: success %.2f", algo, tt.n, tt.m, row.SuccessRate)
			}
		}
	}
}

func TestMessageLBBridgeCrossing(t *testing.T) {
	// Lemma 3.5's instrument: the election must cross a bridge. With few
	// candidates (Thm 4.4.(B)) the crossing typically comes after the
	// flood traversed part of a clique, so messages precede it.
	row, err := MessageLB(16, 100, Sweep{Algo: "leastel-const", Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if row.CrossRound.Max <= 0 {
		t.Error("no run ever crossed a bridge")
	}
	if row.BeforeCross.Max <= 0 {
		t.Error("no messages before first crossing in any run")
	}
}

func TestTimeLBShowsOmegaD(t *testing.T) {
	for _, algo := range []string{"leastel", "flood", "lasvegas"} {
		for _, d := range []int{8, 16, 32} {
			row, err := TimeLB(4*d, d, Sweep{Algo: algo, Trials: 3, Seed: 11})
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if row.RoundsPerD.Min < 0.5 {
				t.Errorf("%s d=%d: rounds/D min=%.2f < 0.5 (Ω(D) violated?)",
					algo, d, row.RoundsPerD.Min)
			}
			if row.SuccessRate < 1 {
				t.Errorf("%s d=%d: success %.2f", algo, d, row.SuccessRate)
			}
		}
	}
}

func TestTruncatedSuccessDropsBelowBudget(t *testing.T) {
	// With a 10%-of-D budget the election cannot complete; with 4x it must.
	low, err := TruncatedSuccess(48, 12, 0.1, Sweep{Algo: "leastel", Trials: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := TruncatedSuccess(48, 12, 4, Sweep{Algo: "leastel", Trials: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if low.SuccessRate > 0.5 {
		t.Errorf("truncated run at 0.1·D succeeded %.2f of the time", low.SuccessRate)
	}
	if high.SuccessRate < 1 {
		t.Errorf("full-budget run only succeeded %.2f", high.SuccessRate)
	}
}

func TestTrivialSuccessNearInverseE(t *testing.T) {
	row, err := TrivialSuccess(128, 800, 17)
	if err != nil {
		t.Fatal(err)
	}
	if row.Messages != 0 {
		t.Error("trivial sent messages")
	}
	if math.Abs(row.SuccessRate-1/math.E) > 0.08 {
		t.Errorf("success %.3f, want ≈ %.3f", row.SuccessRate, 1/math.E)
	}
}

func TestBroadcastLBShowsOmegaM(t *testing.T) {
	for _, tt := range []struct{ n, m int }{{12, 40}, {16, 100}} {
		row, err := BroadcastLB(tt.n, tt.m, 5, 23)
		if err != nil {
			t.Fatal(err)
		}
		if row.MajorityOK < 1 {
			t.Errorf("flooding broadcast failed majority: %.2f", row.MajorityOK)
		}
		// Flooding sends ~2 messages per edge.
		if row.MsgsPerM.Min < 1 || row.MsgsPerM.Max > 3 {
			t.Errorf("msgs/m = [%.2f, %.2f], want ≈ 2", row.MsgsPerM.Min, row.MsgsPerM.Max)
		}
	}
}
