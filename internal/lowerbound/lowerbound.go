// Package lowerbound implements the experiment harnesses behind the
// paper's lower bounds:
//
//   - Theorem 3.1 (Ω(m) messages): dumbbell-graph sweeps measuring the
//     messages/m ratio of every universal election algorithm, plus the
//     Lemma 3.5 bridge-crossing instrument (messages sent before the first
//     bridge crossing).
//   - Theorem 3.13 (Ω(D) time): clique-cycle sweeps measuring rounds/D,
//     and truncated-run success probabilities showing that o(D)-time runs
//     cannot elect reliably.
//   - Corollary 3.12 (Ω(m) broadcast): flooding broadcast on dumbbells.
//   - The §1 trivial algorithm: success probability ≈ 1/e at zero cost.
//
// The theorems are asymptotic and distributional (Yao-minimax over all ID
// and port assignments); the harness samples assignments and reports the
// measured distributions, which is what EXPERIMENTS.md records.
package lowerbound

import (
	"fmt"
	"math/rand"

	"ule/internal/broadcast"
	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/sim"
	"ule/internal/stats"
)

// Sweep is one experiment configuration.
type Sweep struct {
	// Algo is a registry name from internal/core.
	Algo string
	// Trials is the number of sampled (ID, port, coin) instantiations.
	Trials int
	// Seed derives all per-trial randomness.
	Seed int64
	// MaxRounds bounds each run (0 = 1<<18).
	MaxRounds int
}

func (s Sweep) maxRounds() int {
	if s.MaxRounds > 0 {
		return s.MaxRounds
	}
	return 1 << 18
}

// DumbbellInstance builds a sampled dumbbell from the Theorem 3.1 family
// for target per-side size n and edge budget m: a lollipop base graph, two
// uniformly chosen clique edges opened, ports shuffled, IDs sampled from
// [1, (2n)^4] with disjoint halves. It also returns the lollipop clique
// size κ, which determines the invariant diameter 2(n−κ)+1.
func DumbbellInstance(n, m int, rng *rand.Rand) (*graph.Dumbbell, int, error) {
	return graph.RandomDumbbell(n, m, rng)
}

// MessageRow is one dumbbell measurement.
type MessageRow struct {
	N, M, D      int
	Algo         string
	MsgsPerM     stats.Summary
	BeforeCross  stats.Summary // messages before the first bridge crossing
	CrossRound   stats.Summary // round of the first crossing (0 = never)
	SuccessRate  float64
	MeanMessages float64
}

// MessageLB runs the Theorem 3.1 experiment: algorithm msgs/m on sampled
// dumbbells of per-side size n and edge budget m.
func MessageLB(n, m int, sw Sweep) (MessageRow, error) {
	rng := rand.New(rand.NewSource(sw.Seed))
	var ratios, before, crossAt, msgs []float64
	successes := 0
	var dval int
	for trial := 0; trial < sw.Trials; trial++ {
		db, kappa, err := DumbbellInstance(n, m, rng)
		if err != nil {
			return MessageRow{}, err
		}
		dval = 2*(n-kappa) + 1
		ids := sim.RandomIDs(db.N(), rng)
		res, err := core.Run(db.Graph, sw.Algo, core.RunOpts{
			Seed:       rng.Int63(),
			IDs:        ids,
			D:          dval,
			MaxRounds:  sw.maxRounds(),
			WatchEdges: db.Bridges[:],
		})
		if err != nil {
			return MessageRow{}, fmt.Errorf("dumbbell n=%d m=%d: %w", n, m, err)
		}
		ratios = append(ratios, float64(res.Messages)/float64(db.M()))
		msgs = append(msgs, float64(res.Messages))
		before = append(before, float64(res.MessagesBeforeCrossing))
		first := 0
		for _, r := range res.FirstCrossing {
			if first == 0 || (r > 0 && r < first) {
				first = r
			}
		}
		crossAt = append(crossAt, float64(first))
		if res.UniqueLeader() {
			successes++
		}
	}
	return MessageRow{
		N: n, M: m, D: dval, Algo: sw.Algo,
		MsgsPerM:     stats.Summarize(ratios),
		BeforeCross:  stats.Summarize(before),
		CrossRound:   stats.Summarize(crossAt),
		SuccessRate:  float64(successes) / float64(sw.Trials),
		MeanMessages: stats.Summarize(msgs).Mean,
	}, nil
}

// TimeRow is one clique-cycle measurement.
type TimeRow struct {
	N, D, DPrime int
	Algo         string
	RoundsPerD   stats.Summary
	SuccessRate  float64
}

// TimeLB runs the Theorem 3.13 experiment: rounds/D on the Figure 1
// clique-cycle with target size n and diameter parameter d.
func TimeLB(n, d int, sw Sweep) (TimeRow, error) {
	cc, err := graph.NewCliqueCycle(n, d)
	if err != nil {
		return TimeRow{}, err
	}
	diam := cc.DiameterExact()
	rng := rand.New(rand.NewSource(sw.Seed))
	var ratios []float64
	successes := 0
	for trial := 0; trial < sw.Trials; trial++ {
		g := cc.Graph.Clone()
		g.ShufflePorts(rng)
		res, err := core.Run(g, sw.Algo, core.RunOpts{
			Seed:      rng.Int63(),
			IDs:       sim.RandomIDs(g.N(), rng),
			D:         diam,
			MaxRounds: sw.maxRounds(),
		})
		if err != nil {
			return TimeRow{}, err
		}
		ratios = append(ratios, float64(res.LastActive)/float64(diam))
		if res.UniqueLeader() {
			successes++
		}
	}
	return TimeRow{
		N: cc.N(), D: diam, DPrime: cc.DPrime, Algo: sw.Algo,
		RoundsPerD:  stats.Summarize(ratios),
		SuccessRate: float64(successes) / float64(sw.Trials),
	}, nil
}

// TruncatedRow measures election success under a hard round budget.
type TruncatedRow struct {
	N, D        int
	Algo        string
	BudgetFrac  float64 // allowed rounds as a fraction of D
	SuccessRate float64
}

// TruncatedSuccess runs the Theorem 3.13 complement: cap the run at
// frac·D rounds and measure how often a unique leader exists at the cap —
// the paper's claim is that o(D) budgets cannot reach large constant
// success probability on the clique-cycle.
func TruncatedSuccess(n, d int, frac float64, sw Sweep) (TruncatedRow, error) {
	cc, err := graph.NewCliqueCycle(n, d)
	if err != nil {
		return TruncatedRow{}, err
	}
	diam := cc.DiameterExact()
	budget := int(frac * float64(diam))
	if budget < 1 {
		budget = 1
	}
	rng := rand.New(rand.NewSource(sw.Seed))
	successes := 0
	for trial := 0; trial < sw.Trials; trial++ {
		g := cc.Graph.Clone()
		g.ShufflePorts(rng)
		res, err := core.Run(g, sw.Algo, core.RunOpts{
			Seed:      rng.Int63(),
			IDs:       sim.RandomIDs(g.N(), rng),
			D:         diam,
			MaxRounds: budget,
		})
		if err != nil {
			return TruncatedRow{}, err
		}
		if res.UniqueLeader() {
			successes++
		}
	}
	return TruncatedRow{
		N: cc.N(), D: diam, Algo: sw.Algo, BudgetFrac: frac,
		SuccessRate: float64(successes) / float64(sw.Trials),
	}, nil
}

// TrivialRow records the §1 zero-message algorithm's measured success.
type TrivialRow struct {
	N           int
	Trials      int
	SuccessRate float64 // should approach 1/e ≈ 0.368
	Messages    int64
}

// TrivialSuccess measures the success probability of the 1/n self-election.
func TrivialSuccess(n, trials int, seed int64) (TrivialRow, error) {
	g := graph.Ring(n)
	successes := 0
	var msgs int64
	for trial := 0; trial < trials; trial++ {
		res, err := core.Run(g, "trivial", core.RunOpts{Seed: seed + int64(trial)})
		if err != nil {
			return TrivialRow{}, err
		}
		msgs += res.Messages
		if res.UniqueLeader() {
			successes++
		}
	}
	return TrivialRow{
		N: n, Trials: trials,
		SuccessRate: float64(successes) / float64(trials),
		Messages:    msgs,
	}, nil
}

// BroadcastRow is one Corollary 3.12 measurement.
type BroadcastRow struct {
	N, M        int
	MsgsPerM    stats.Summary
	MajorityOK  float64
	MeanRounds  float64
	BeforeCross stats.Summary
}

// BroadcastLB measures flooding-broadcast messages/m on sampled dumbbells,
// with the source on the left half so the majority condition forces a
// bridge crossing.
func BroadcastLB(n, m int, trials int, seed int64) (BroadcastRow, error) {
	rng := rand.New(rand.NewSource(seed))
	var ratios, before, rounds []float64
	majority := 0
	for trial := 0; trial < trials; trial++ {
		db, _, err := DumbbellInstance(n, m, rng)
		if err != nil {
			return BroadcastRow{}, err
		}
		source := rng.Intn(n) // left half
		res, err := sim.Run(sim.Config{
			Graph:      db.Graph,
			IDs:        sim.RandomIDs(db.N(), rng),
			Seed:       rng.Int63(),
			Wake:       broadcast.Config(db.N(), source),
			WatchEdges: db.Bridges[:],
			MaxRounds:  1 << 18,
		}, broadcast.Flood{Source: source})
		if err != nil {
			return BroadcastRow{}, err
		}
		ratios = append(ratios, float64(res.Messages)/float64(db.M()))
		before = append(before, float64(res.MessagesBeforeCrossing))
		rounds = append(rounds, float64(res.LastActive))
		if broadcast.ReachedMajority(res) {
			majority++
		}
	}
	return BroadcastRow{
		N: 2 * n, M: m,
		MsgsPerM:    stats.Summarize(ratios),
		MajorityOK:  float64(majority) / float64(trials),
		MeanRounds:  stats.Summarize(rounds).Mean,
		BeforeCross: stats.Summarize(before),
	}, nil
}
