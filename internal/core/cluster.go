package core

import (
	"math"
	"sort"

	"ule/internal/sim"
)

// Cluster is the Theorem 4.7 "clustering algorithm" (Algorithm 1): a
// randomized election with O(D·log n) time and O(m + n·log n) messages whp
// — fewer messages than the least-element family on sparse graphs, at a
// log-factor time penalty.
//
// Phase 1: Θ(log n) sampled candidates grow BFS trees; every node joins the
// first tree to reach it, so the network is partitioned into clusters whose
// trees have O(n) edges in total. Phase 2 sparsifies the inter-cluster
// edges: each node keeps one edge per adjacent foreign cluster, subtree
// summaries are convergecast (streamed one O(log n)-bit record per message,
// the CONGEST chunking of the paper's O(log² n)-bit graphs), the root
// dedupes to one edge per cluster pair, and the final set is broadcast back
// down. Phase 3 runs the Theorem 4.4 election with f(n)=n on the overlay of
// tree edges plus retained inter-cluster edges, whose size is O(n + log² n)
// and diameter O(D·log n).
type Cluster struct {
	// Factor scales the 8·ln(n)/n candidate probability.
	Factor float64
}

var _ sim.Protocol = Cluster{}

// Name implements sim.Protocol.
func (Cluster) Name() string { return "cluster" }

// New implements sim.Protocol.
func (cl Cluster) New(info sim.NodeInfo) sim.Process {
	f := cl.Factor
	if f <= 0 {
		f = 1
	}
	return &clusterProc{factor: f}
}

// Cluster-algorithm message types. Records travel one per message: a
// retained inter-cluster edge identified by (foreign cluster, owner node,
// owner port).
type (
	cJoin   struct{ cluster int64 }
	cAccept struct{}
	cReject struct{ cluster int64 }
	cRec    struct {
		down    bool
		other   int64 // foreign cluster id
		owner   int64 // in-cluster endpoint's identity
		ownPort int   // owner's port for the edge
	}
	cEnd  struct{ down bool }
	cMark struct{}
)

func (m cJoin) Bits() int   { return 3 + sim.BitsFor(m.cluster) }
func (cAccept) Bits() int   { return 3 }
func (m cReject) Bits() int { return 3 + sim.BitsFor(m.cluster) }
func (m cRec) Bits() int {
	return 4 + sim.BitsFor(m.other) + sim.BitsFor(m.owner) + sim.BitsFor(int64(m.ownPort))
}
func (cEnd) Bits() int  { return 4 }
func (cMark) Bits() int { return 3 }

// Package-level singletons for the field-less (and two-valued) payloads:
// sending one never converts a fresh value into the Payload interface.
var (
	msgAccept  sim.Payload = cAccept{}
	msgMark    sim.Payload = cMark{}
	msgEndUp   sim.Payload = cEnd{}
	msgEndDown sim.Payload = cEnd{down: true}
)

// record is a retained inter-cluster edge.
type record struct {
	other   int64
	owner   int64
	ownPort int
}

type clusterProc struct {
	factor float64
	me     int64

	// Phase 1 state.
	candidate  bool
	joined     bool
	cluster    int64
	parentPort int
	childPorts map[int]bool
	awaiting   int // JOIN answers still outstanding
	nbrCluster map[int]int64

	// Phase 2 state.
	endUpLeft  int // children whose up-stream has not ended yet
	upRecs     map[int64]record
	sentUp     bool
	finalRecs  []record
	endDown    bool
	markPorts  map[int]bool
	queue      *portQueue
	phase3From int

	// Phase 3 state.
	inPh3   bool
	fl      *flooder
	meKey   flKey
	decided bool
	buf3    []portMsg

	// Reusable per-round classification scratch.
	joinBuf, answerBuf, recBuf []sim.Message
}

func (p *clusterProc) Start(c *sim.Context) {
	p.me = c.ID()
	if !c.HasID() {
		p.me = c.Rand().Int63()
	}
	p.parentPort = -1
	p.childPorts = make(map[int]bool)
	p.nbrCluster = make(map[int]int64)
	p.upRecs = make(map[int64]record)
	p.markPorts = make(map[int]bool)
	p.queue = newPortQueue()
	n := c.Know().N
	prob := p.factor * 8 * math.Log(float64(n)+1) / float64(n)
	if prob > 1 {
		prob = 1
	}
	p.candidate = c.Rand().Float64() < prob
	if p.candidate {
		p.joined = true
		p.cluster = p.me
		p.awaiting = c.Degree()
		c.Broadcast(cJoin{cluster: p.cluster})
		p.maybeFinishPhase1(c)
	}
}

func (p *clusterProc) Round(c *sim.Context, inbox []sim.Message) {
	// Collect per-kind, processing joins first so that same-round
	// joins/answers are handled consistently.
	joins, answers, recs := p.joinBuf[:0], p.answerBuf[:0], p.recBuf[:0]
	for _, in := range inbox {
		switch in.Payload.(type) {
		case cJoin:
			joins = append(joins, in)
		case cAccept, cReject:
			answers = append(answers, in)
		case cRec, cEnd:
			recs = append(recs, in)
		case cMark:
			p.markPorts[in.Port] = true
			if p.inPh3 {
				p.fl.addPort(in.Port)
			}
		case *taggedMsg:
			if t := unboxTagged(in.Payload.(*taggedMsg)); t.tag == tagPhaseB {
				p.buf3 = append(p.buf3, portMsg{port: in.Port, m: t.m})
			}
		}
	}
	p.joinBuf, p.answerBuf, p.recBuf = joins, answers, recs
	for _, in := range joins {
		p.handleJoin(c, in.Port, in.Payload.(cJoin))
	}
	for _, in := range answers {
		p.handleAnswer(c, in.Port, in.Payload)
	}
	for _, in := range recs {
		p.handleRec(c, in.Port, in.Payload)
	}
	p.queue.flush(func(port int, pl sim.Payload) { c.Send(port, pl) }, 2)
	if p.inPh3 {
		msgs := p.buf3
		p.buf3 = p.buf3[:0] // handleRound copies; keep the capacity
		p.fl.handleRound(msgs)
		p.fl.flush()
		p.decide(c)
	}
}

func (p *clusterProc) handleJoin(c *sim.Context, port int, m cJoin) {
	p.nbrCluster[port] = m.cluster
	if p.joined {
		c.Send(port, cReject{cluster: p.cluster})
		return
	}
	// First join request wins: adopt the cluster and keep flooding.
	p.joined = true
	p.cluster = m.cluster
	p.parentPort = port
	p.awaiting = c.Degree() - 1
	c.Send(port, msgAccept)
	c.BroadcastExcept(port, cJoin{cluster: p.cluster})
	p.maybeFinishPhase1(c)
}

func (p *clusterProc) handleAnswer(c *sim.Context, port int, pl sim.Payload) {
	switch m := pl.(type) {
	case cAccept:
		p.childPorts[port] = true
		p.endUpLeft++
	case cReject:
		p.nbrCluster[port] = m.cluster
	}
	p.awaiting--
	p.maybeFinishPhase1(c)
}

// maybeFinishPhase1 fires when every JOIN answer arrived: the local tree
// neighborhood is known, so this node's own inter-cluster records are
// final and the phase-2 convergecast can include them.
func (p *clusterProc) maybeFinishPhase1(c *sim.Context) {
	if !p.joined || p.awaiting > 0 {
		return
	}
	// Ascending port order: a foreign cluster reachable through several
	// ports must be recorded through the same (lowest) port on every run,
	// or the retained edge — and with it the whole transcript — would
	// depend on map iteration order.
	ports := make([]int, 0, len(p.nbrCluster))
	for port := range p.nbrCluster {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		cl := p.nbrCluster[port]
		if cl == p.cluster {
			continue
		}
		if _, ok := p.upRecs[cl]; !ok {
			p.upRecs[cl] = record{other: cl, owner: p.me, ownPort: port}
		}
	}
	p.maybeSendUp(c)
}

// maybeSendUp streams the merged subtree records to the parent once every
// child stream has ended (leaves stream immediately).
func (p *clusterProc) maybeSendUp(c *sim.Context) {
	if p.sentUp || p.awaiting > 0 || !p.joined || p.endUpLeft > 0 {
		return
	}
	p.sentUp = true
	if p.parentPort < 0 {
		p.rootFinish(c)
		return
	}
	for _, cl := range sortedClusters(p.upRecs) {
		r := p.upRecs[cl]
		p.queue.push(p.parentPort, cRec{other: r.other, owner: r.owner, ownPort: r.ownPort})
	}
	p.queue.push(p.parentPort, msgEndUp)
}

// rootFinish: the candidate owns the final sparsified inter-cluster graph;
// broadcast it down and start phase 3.
func (p *clusterProc) rootFinish(c *sim.Context) {
	for _, cl := range sortedClusters(p.upRecs) {
		p.finalRecs = append(p.finalRecs, p.upRecs[cl])
	}
	p.pushDown(c, p.finalRecs)
	p.enterPhase3(c)
}

func (p *clusterProc) pushDown(c *sim.Context, recs []record) {
	for port := range p.childPorts {
		for _, r := range recs {
			p.queue.push(port, cRec{down: true, other: r.other, owner: r.owner, ownPort: r.ownPort})
		}
		p.queue.push(port, msgEndDown)
	}
}

func (p *clusterProc) handleRec(c *sim.Context, port int, pl sim.Payload) {
	switch m := pl.(type) {
	case cRec:
		if m.down {
			p.finalRecs = append(p.finalRecs, record{other: m.other, owner: m.owner, ownPort: m.ownPort})
			// Stream onward immediately (pipelined broadcast).
			for ch := range p.childPorts {
				p.queue.push(ch, m)
			}
		} else {
			r := record{other: m.other, owner: m.owner, ownPort: m.ownPort}
			if _, ok := p.upRecs[m.other]; !ok {
				p.upRecs[m.other] = r // sparsify: one edge per foreign cluster
			}
		}
	case cEnd:
		if m.down {
			for ch := range p.childPorts {
				p.queue.push(ch, m)
			}
			p.endDown = true
			p.enterPhase3(c)
		} else {
			p.endUpLeft--
			p.maybeSendUp(c)
		}
	}
}

// enterPhase3 computes the overlay ports and starts the f(n)=n election.
func (p *clusterProc) enterPhase3(c *sim.Context) {
	if p.inPh3 {
		return
	}
	p.inPh3 = true
	ports := make(map[int]bool)
	if p.parentPort >= 0 {
		ports[p.parentPort] = true
	}
	for ch := range p.childPorts {
		ports[ch] = true
	}
	for _, r := range p.finalRecs {
		if r.owner == p.me {
			ports[r.ownPort] = true
			c.Send(r.ownPort, msgMark)
		}
	}
	for mp := range p.markPorts {
		ports[mp] = true
	}
	sorted := make([]int, 0, len(ports))
	for q := range ports {
		sorted = append(sorted, q)
	}
	sort.Ints(sorted)
	p.fl = newFlooder(sorted, true, func(port int, m flMsg) {
		c.Send(port, boxTagged(tagPhaseB, m))
	})
	p.meKey = drawKey(c, rankSpace(c.Know().N))
	// Anonymous networks reuse the phase-1 identity as the tiebreak token.
	if !c.HasID() {
		p.meKey.origin = p.me
	}
	p.fl.start(p.meKey, 0)
	p.decide(c)
}

func (p *clusterProc) decide(c *sim.Context) {
	if p.decided {
		return
	}
	if p.fl.completed {
		if p.fl.won {
			c.Decide(sim.Leader)
		} else {
			c.Decide(sim.NonLeader)
		}
		p.decided = true
	} else if p.fl.heard != p.meKey && p.fl.better(p.fl.heard, p.meKey) {
		c.Decide(sim.NonLeader)
		p.decided = true
	}
}

func sortedClusters(m map[int64]record) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func init() {
	register(Spec{
		Name:    "cluster",
		Result:  "Thm 4.7",
		Summary: "Θ(log n) BFS clusters, sparsified inter-edges, overlay least-el; O(D log n) time, O(m+n log n) msgs whp",
		NeedsN:  true,
		Quiet:   true,
		New:     func(o Options) sim.Protocol { return Cluster{Factor: o.clusterFactor()} },
	})
}
