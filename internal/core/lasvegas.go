package core

import "ule/internal/sim"

// LasVegas is the Corollary 4.6 algorithm: with knowledge of both n and D,
// leader election with probability 1 in expected O(D) time and expected
// O(m) messages.
//
// Time is sliced into epochs of length 2D+4 rounds. At each epoch start
// every node independently becomes a candidate with probability f/n for a
// constant f, and the epoch runs the Theorem 4.4.(B) least-element flood.
// If the epoch stays completely silent (no candidate anywhere — detectable
// because with at least one candidate the flood reaches every node within D
// rounds), everyone restarts with fresh coins. The expected number of
// epochs is the constant 1/(1−e^−f).
type LasVegas struct {
	// F is the constant expected candidate count per epoch (default 4).
	F float64
}

var _ sim.Protocol = LasVegas{}

// Name implements sim.Protocol.
func (LasVegas) Name() string { return "lasvegas" }

// New implements sim.Protocol.
func (l LasVegas) New(info sim.NodeInfo) sim.Process {
	f := l.F
	if f <= 0 {
		f = 4
	}
	return &lvProc{f: f}
}

type lvProc struct {
	f         float64
	epochEnd  int
	fl        *flooder
	candidate bool
	me        flKey
	active    bool // any message seen or candidacy held this epoch
	won       bool
	wonKnown  bool

	buf []portMsg // reusable per-round decode scratch
}

func (p *lvProc) Start(c *sim.Context) {
	p.startEpoch(c)
}

func (p *lvProc) startEpoch(c *sim.Context) {
	d := c.Know().D
	p.epochEnd = c.Round() + 2*d + 3
	p.fl = newFlooder(allPorts(c.Degree()), true, func(port int, m flMsg) {
		c.Send(port, boxTagged(tagPhaseB, m))
	})
	p.active = false
	p.wonKnown = false
	n := c.Know().N
	prob := p.f / float64(n)
	if prob > 1 {
		prob = 1
	}
	p.candidate = c.Rand().Float64() < prob
	if p.candidate {
		p.active = true
		p.me = drawKey(c, rankSpace(n))
		p.fl.start(p.me, 0)
		p.fl.flush()
		if p.fl.completed {
			p.won, p.wonKnown = p.fl.won, true
		}
	}
}

func (p *lvProc) Round(c *sim.Context, inbox []sim.Message) {
	msgs := p.buf[:0]
	for _, in := range inbox {
		if b, ok := in.Payload.(*taggedMsg); ok {
			if t := unboxTagged(b); t.tag == tagPhaseB {
				msgs = append(msgs, portMsg{port: in.Port, m: t.m})
			}
		}
	}
	p.buf = msgs
	if len(msgs) > 0 {
		p.active = true
	}
	p.fl.handleRound(msgs)
	p.fl.flush()
	if p.candidate && p.fl.completed && !p.wonKnown {
		p.won, p.wonKnown = p.fl.won, true
	}
	if c.Round() < p.epochEnd {
		return
	}
	// Epoch boundary: with any candidate present, every node observed
	// traffic (the minimum rank floods everywhere within D rounds), so the
	// outcome is consistent network-wide.
	if p.active {
		if p.candidate && p.wonKnown && p.won {
			c.Decide(sim.Leader)
		} else {
			c.Decide(sim.NonLeader)
		}
		c.Halt()
		return
	}
	p.startEpoch(c)
}

func init() {
	register(Spec{
		Name:    "lasvegas",
		Result:  "Cor 4.6",
		Summary: "epoch-restarted f=Θ(1) least-el; knows n and D, prob 1, expected O(D) time and O(m) msgs",
		NeedsN:  true,
		NeedsD:  true,
		New:     func(o Options) sim.Protocol { return LasVegas{} },
	})
}
