package core

import (
	"math"

	"ule/internal/sim"
)

// FKind selects the candidate budget f(n) of the Theorem 4.4 algorithm
// family. The expected number of candidates is f(n); Lemma 4.3 bounds the
// expected least-element list size by O(min(log f(n), D)), which drives the
// message complexity O(m·min(log f(n), D)).
type FKind int

// Candidate budgets (Theorem 4.4 and its corollaries).
const (
	// FAll sets f(n)=n: every node is a candidate (the original [11]
	// algorithm; succeeds with probability 1 given unique tiebreaks).
	FAll FKind = iota + 1
	// FLog sets f(n)=Θ(log n): Theorem 4.4.(A), success whp, messages
	// O(m·min(log log n, D)).
	FLog
	// FConst sets f(n)=4·ln(1/ε): Theorem 4.4.(B), success ≥ 1−ε,
	// messages O(m).
	FConst
)

func (k FKind) String() string {
	switch k {
	case FAll:
		return "f=n"
	case FLog:
		return "f=log n"
	case FConst:
		return "f=const"
	default:
		return "f=?"
	}
}

// fValue returns f(n) for budget kind k.
func fValue(k FKind, n int, o Options) float64 {
	var f float64
	switch k {
	case FLog:
		f = math.Log(float64(n) + 1)
	case FConst:
		f = 4 * math.Log(1/o.epsilon())
	default:
		f = float64(n)
	}
	f *= o.fScale()
	if f < 1 {
		f = 1
	}
	if f > float64(n) {
		f = float64(n)
	}
	return f
}

// rankSpace returns the rank range [1, n^4] of Section 4.2.
func rankSpace(n int) int64 {
	s := int64(n) * int64(n) * int64(n) * int64(n)
	if s < 4 {
		s = 4
	}
	return s
}

// drawKey draws a candidate's (rank, origin) pair. The origin is the unique
// node ID when available, otherwise a random 62-bit token (the anonymous
// variant; token collisions are the Monte-Carlo failure mode).
func drawKey(c *sim.Context, space int64) flKey {
	k := flKey{rank: 1 + c.Rand().Int63n(space)}
	if c.HasID() {
		k.origin = c.ID()
	} else {
		k.origin = c.Rand().Int63()
	}
	return k
}

// LeastEl is the Theorem 4.4 election family: candidates are sampled with
// probability f(n)/n, draw random ranks, and flood them with least-element
// semantics and echo-based termination; the candidate whose own rank is the
// global minimum elects itself.
type LeastEl struct {
	// F selects the candidate budget.
	F FKind
	// Opt carries shared tuning parameters.
	Opt Options
}

var _ sim.Protocol = LeastEl{}

// Name implements sim.Protocol.
func (l LeastEl) Name() string { return "leastel(" + l.F.String() + ")" }

// New implements sim.Protocol.
func (l LeastEl) New(info sim.NodeInfo) sim.Process {
	return &leastelProc{kind: l.F, opt: l.Opt}
}

type leastelProc struct {
	kind      FKind
	opt       Options
	fl        flooder
	candidate bool
	me        flKey
	decided   bool

	buf []portMsg // reusable per-round decode scratch
}

func allPorts(deg int) []int {
	ports := make([]int, deg)
	for i := range ports {
		ports[i] = i
	}
	return ports
}

func (p *leastelProc) Start(c *sim.Context) {
	n := c.Know().N // Theorem 4.4 assumes n is known
	initFlooder(&p.fl, allPorts(c.Degree()), true, func(port int, m flMsg) {
		c.Send(port, boxFl(m))
	})
	f := fValue(p.kind, n, p.opt)
	p.candidate = c.Rand().Float64() < f/float64(n)
	if p.candidate {
		p.me = drawKey(c, rankSpace(n))
		p.fl.start(p.me, 0)
		p.fl.flush()
		if p.fl.completed { // degree-0 corner: single-node network
			p.finish(c)
		}
	} else {
		// Non-candidates know immediately that they are not the leader
		// (implicit election only requires the leader to know).
		c.Decide(sim.NonLeader)
		p.decided = true
	}
}

func (p *leastelProc) Round(c *sim.Context, inbox []sim.Message) {
	// Quiet round: nothing arrived and nothing is queued, so no flooder
	// state can change and every decision check would repeat last round's.
	if len(inbox) == 0 && p.fl.idle() {
		return
	}
	msgs := p.buf[:0]
	for _, in := range inbox {
		b, ok := in.Payload.(*flMsg)
		if !ok {
			continue
		}
		msgs = append(msgs, portMsg{port: in.Port, m: unboxFl(b)})
	}
	p.buf = msgs
	p.fl.handleRound(msgs)
	p.fl.flush()
	if p.candidate && !p.decided {
		if p.fl.completed {
			p.finish(c)
		} else if p.fl.heard != p.me && p.fl.better(p.fl.heard, p.me) {
			// A strictly better rank exists: this candidate lost.
			c.Decide(sim.NonLeader)
			p.decided = true
		}
	}
}

func (p *leastelProc) finish(c *sim.Context) {
	if p.fl.won {
		c.Decide(sim.Leader)
	} else {
		c.Decide(sim.NonLeader)
	}
	p.decided = true
}

func init() {
	register(Spec{
		Name:    "leastel",
		Result:  "Cor 4.5 [11]",
		Summary: "least-element-list election, every node a candidate (f=n); O(D) time, O(m·min(log n,D)) msgs",
		NeedsN:  true,
		Quiet:   true,
		New:     func(o Options) sim.Protocol { return LeastEl{F: FAll, Opt: o} },
	})
	register(Spec{
		Name:    "leastel-loglog",
		Result:  "Thm 4.4.(A)",
		Summary: "f(n)=Θ(log n) candidates; O(D) time, O(m·min(log log n,D)) msgs, success whp",
		NeedsN:  true,
		Quiet:   true,
		New:     func(o Options) sim.Protocol { return LeastEl{F: FLog, Opt: o} },
	})
	register(Spec{
		Name:    "leastel-const",
		Result:  "Thm 4.4.(B)",
		Summary: "f(n)=4·ln(1/ε) candidates; O(D) time, O(m) msgs, success ≥ 1−ε",
		NeedsN:  true,
		Quiet:   true,
		New:     func(o Options) sim.Protocol { return LeastEl{F: FConst, Opt: o} },
	})
}
