package core

import (
	"fmt"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// TestReelectionAfterWinnerCrash pins the fault semantics end to end:
// flood elects the maximum identifier, so crashing its owner before it
// ever speaks must hand the election to the second-highest ID — and the
// fault-tolerant predicate must accept exactly that outcome.
func TestReelectionAfterWinnerCrash(t *testing.T) {
	const n = 16
	g := graph.Ring(n)
	ids := sim.SequentialIDs(n, 1) // node u has ID u+1; node n-1 is the winner
	m, err := sim.ParseModel(fmt.Sprintf("crash@1:%d", n-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, "flood", RunOpts{Seed: 5, IDs: ids, Model: m, MaxRounds: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || !res.Crashed[n-1] {
		t.Fatalf("crash@1:%d did not take down the winner: %+v", n-1, res.Crashed)
	}
	if res.Statuses[n-1] != sim.Undecided {
		t.Errorf("crashed winner decided anyway: %v", res.Statuses[n-1])
	}
	// The runner-up (node n-2, ID n-1) must now win among the live nodes.
	if res.Statuses[n-2] != sim.Leader {
		t.Errorf("runner-up status = %v, want Leader", res.Statuses[n-2])
	}
	if res.UniqueLeader() {
		t.Error("UniqueLeader must fail: the crashed node is undecided")
	}
	if !res.UniqueLiveLeader() {
		t.Error("UniqueLiveLeader must accept the re-election among live nodes")
	}
	if !Correct(m, res) {
		t.Error("Correct(faulty model) must use the live-leader predicate")
	}
	// And the same run fault-free elects the original winner, confirming
	// the crash actually changed the outcome.
	clean, err := Run(g, "flood", RunOpts{Seed: 5, IDs: ids, MaxRounds: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Statuses[n-1] != sim.Leader {
		t.Fatalf("fault-free winner should be node %d", n-1)
	}
	if !Correct(sim.ModelSpec{}, clean) {
		t.Error("Correct(fault-free model) must use the paper's predicate")
	}
}
