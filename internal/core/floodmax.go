package core

import "ule/internal/sim"

// FloodMax is the classic time-optimal baseline attributed to Peleg [20]:
// every node floods the largest identifier it has seen; after D+1 rounds
// the unique maximum is known everywhere and its owner elects itself.
// Time O(D); messages O(m·min(n, D)) — message-wasteful, which is exactly
// the gap the paper's algorithms close.
type FloodMax struct{}

var _ sim.Protocol = FloodMax{}

// Name implements sim.Protocol.
func (FloodMax) Name() string { return "flood" }

// New implements sim.Protocol.
func (FloodMax) New(info sim.NodeInfo) sim.Process { return &floodProc{} }

type idMsg struct{ id int64 }

func (m idMsg) Bits() int { return sim.BitsFor(m.id) }

type floodProc struct {
	me, max  int64
	deadline int
}

func (p *floodProc) Start(c *sim.Context) {
	p.me = c.ID()
	if !c.HasID() {
		// Anonymous fallback: a random 62-bit identity (Monte Carlo).
		p.me = 1 + c.Rand().Int63()
	}
	p.max = p.me
	// The maximum ID reaches every node within D hops; one extra round
	// accounts for the initial send.
	p.deadline = c.Round() + c.Know().D + 1
	c.Broadcast(idMsg{p.me})
}

func (p *floodProc) Round(c *sim.Context, inbox []sim.Message) {
	improved := false
	for _, in := range inbox {
		m, ok := in.Payload.(idMsg)
		if !ok {
			continue
		}
		if m.id > p.max {
			p.max = m.id
			improved = true
		}
	}
	if improved && c.Round() < p.deadline {
		c.Broadcast(idMsg{p.max})
	}
	if c.Round() >= p.deadline {
		if p.max == p.me {
			c.Decide(sim.Leader)
		} else {
			c.Decide(sim.NonLeader)
		}
		c.Halt()
	}
}

func init() {
	register(Spec{
		Name:     "flood",
		Result:   "[20] baseline",
		Summary:  "max-ID flooding; O(D) time, O(m·min(n,D)) msgs, deterministic",
		NeedsD:   true,
		NeedsIDs: true,
		New:      func(o Options) sim.Protocol { return FloodMax{} },
	})
}
