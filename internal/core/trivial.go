package core

import "ule/internal/sim"

// Trivial is the zero-message algorithm of the introduction: each node
// elects itself with probability 1/n. It succeeds (exactly one leader) with
// probability n·(1/n)·(1−1/n)^(n−1) ≈ 1/e, demonstrating why the Ω(m)/Ω(D)
// lower bounds require a suitably large constant success probability.
type Trivial struct{}

var _ sim.Protocol = Trivial{}

// Name implements sim.Protocol.
func (Trivial) Name() string { return "trivial" }

// New implements sim.Protocol.
func (Trivial) New(info sim.NodeInfo) sim.Process { return &trivialProc{} }

type trivialProc struct{}

func (p *trivialProc) Start(c *sim.Context) {
	if c.Rand().Float64() < 1/float64(c.Know().N) {
		c.Decide(sim.Leader)
	} else {
		c.Decide(sim.NonLeader)
	}
	c.Halt()
}

func (p *trivialProc) Round(c *sim.Context, inbox []sim.Message) {}

func init() {
	register(Spec{
		Name:    "trivial",
		Result:  "§1 example",
		Summary: "self-elect w.p. 1/n; zero messages, one round, succeeds w.p. ≈ 1/e",
		NeedsN:  true,
		New:     func(o Options) sim.Protocol { return Trivial{} },
	})
}
