package core

import (
	"math"

	"ule/internal/sim"
)

// DFS is the Theorem 4.1 algorithm: the deterministic, message-optimal
// (O(m)) election that demonstrates the Ω(m) lower bound is tight. It
// generalizes Frederickson–Lynch [8] from rings to arbitrary graphs:
//
//   - A wake-up phase floods a wake signal (≤ 2m messages, ≤ D rounds).
//   - Every node launches an annexing agent that performs a depth-first
//     traversal carrying the node's ID. An agent whose ID is i takes one
//     DFS step every 2^i rounds, so lower-ID agents outrun higher ones.
//   - Agents die on contact with evidence of a smaller ID: arriving at a
//     node a smaller agent visited, or at a node where a smaller agent
//     waits. The agent with the globally smallest ID completes its DFS
//     (≤ 4m steps) and its origin elects itself; a final done-flood
//     (≤ 2m messages) lets everyone halt.
//
// The message total is O(m): the k-th smallest agent moves at most 2^-(k-1)
// times as often as the winner before dying, so the per-agent step counts
// form a geometric series. The time is unbounded in general — it grows as
// 2^(smallest ID)·m — which is exactly the trade the theorem makes.
//
// BudgetCap caps the step period at 2^BudgetCap rounds so that adversarial
// (large) IDs remain simulable; capped agents move so rarely that the
// message bound is unaffected.
type DFS struct {
	// BudgetCap caps the per-step period exponent (default 20).
	BudgetCap int
}

var _ sim.Protocol = DFS{}

// Name implements sim.Protocol.
func (DFS) Name() string { return "dfs" }

// New implements sim.Protocol.
func (d DFS) New(info sim.NodeInfo) sim.Process {
	cap := d.BudgetCap
	if cap <= 0 {
		cap = 20
	}
	return &dfsProc{capExp: cap}
}

// Message kinds of the DFS election.
type (
	wakeMsg  struct{}
	agentMsg struct {
		id   int64
		back bool // true: token returns to the sender's DFS state
	}
	doneMsg struct{}
)

func (wakeMsg) Bits() int    { return 1 }
func (m agentMsg) Bits() int { return 1 + sim.BitsFor(m.id) }
func (doneMsg) Bits() int    { return 1 }

// Field-less payload singletons: sends never re-box a fresh value.
var (
	msgWake sim.Payload = wakeMsg{}
	msgDone sim.Payload = doneMsg{}
)

// dfsAgent is the per-agent DFS bookkeeping kept at each visited node.
type dfsAgent struct {
	visited    bool
	parentPort int
	nextPort   int
}

// dfsPend is the single waiting token at this node (only the locally
// smallest agent may wait; larger waiting agents are destroyed).
type dfsPend struct {
	id       int64
	bounce   bool // true: send back through bouncePort without advancing
	bPort    int
	dueRound int
}

type dfsProc struct {
	capExp   int
	started  bool
	me       int64
	smallest int64
	agents   map[int64]*dfsAgent
	pend     *dfsPend
	decided  bool
	doneSent bool
}

// period returns the step period 2^min(id, capExp) of agent id.
func (p *dfsProc) period(id int64) int {
	e := id
	if e > int64(p.capExp) {
		e = int64(p.capExp)
	}
	if e < 1 {
		e = 1
	}
	return 1 << uint(e)
}

// due returns the first allowed step round strictly after now.
func (p *dfsProc) due(id int64, now int) int {
	per := p.period(id)
	return (now/per + 1) * per
}

func (p *dfsProc) Start(c *sim.Context) {
	p.smallest = math.MaxInt64
	p.agents = make(map[int64]*dfsAgent)
	if c.SpontaneousWake() {
		p.wake(c)
	}
}

// wake runs once: forwards the wake flood and launches this node's agent.
func (p *dfsProc) wake(c *sim.Context) {
	p.started = true
	p.me = c.ID()
	c.Broadcast(msgWake)
	if p.me < p.smallest {
		p.smallest = p.me
	}
	p.agents[p.me] = &dfsAgent{visited: true, parentPort: -1}
	p.schedule(c, &dfsPend{id: p.me})
}

// schedule installs a pending token action unless a smaller token already
// waits here (in which case the larger one is destroyed, per the paper).
func (p *dfsProc) schedule(c *sim.Context, d *dfsPend) {
	if p.pend != nil && p.pend.id < d.id {
		return // new arrival destroyed by smaller waiting agent
	}
	d.dueRound = p.due(d.id, c.Round())
	p.pend = d // destroys any larger waiting agent
}

func (p *dfsProc) Round(c *sim.Context, inbox []sim.Message) {
	if !p.started && len(inbox) > 0 {
		p.wake(c)
	}
	for _, in := range inbox {
		switch m := in.Payload.(type) {
		case wakeMsg:
			// Wake floods are forwarded exactly once, by wake() above.
		case doneMsg:
			p.finish(c)
			return
		case agentMsg:
			p.handleAgent(c, in.Port, m)
		}
	}
	if p.pend != nil && c.Round() >= p.pend.dueRound {
		d := p.pend
		p.pend = nil
		p.step(c, d)
	}
}

func (p *dfsProc) handleAgent(c *sim.Context, port int, m agentMsg) {
	if m.id > p.smallest {
		return // destroyed: a smaller agent was here (or is waiting)
	}
	if m.id < p.smallest {
		p.smallest = m.id
		if p.pend != nil && p.pend.id > m.id {
			p.pend = nil // destroy larger waiting agent
		}
	}
	if m.id < p.me && !p.decided {
		// Evidence of a smaller candidate: this node cannot win.
		c.Decide(sim.NonLeader)
		p.decided = true
	}
	st := p.agents[m.id]
	if st == nil {
		st = &dfsAgent{}
		p.agents[m.id] = st
	}
	if m.back {
		if !st.visited {
			return // stale return for a destroyed traversal
		}
		// Token returns: continue the DFS at this node.
		p.schedule(c, &dfsPend{id: m.id})
		return
	}
	if st.visited {
		// Already annexed by this agent: bounce the token straight back.
		p.schedule(c, &dfsPend{id: m.id, bounce: true, bPort: port})
		return
	}
	st.visited = true
	st.parentPort = port
	st.nextPort = 0
	p.schedule(c, &dfsPend{id: m.id})
}

// step executes one DFS step of the waiting token.
func (p *dfsProc) step(c *sim.Context, d *dfsPend) {
	if d.bounce {
		c.Send(d.bPort, agentMsg{id: d.id, back: true})
		return
	}
	st := p.agents[d.id]
	for st.nextPort < c.Degree() && st.nextPort == st.parentPort {
		st.nextPort++
	}
	if st.nextPort < c.Degree() {
		c.Send(st.nextPort, agentMsg{id: d.id})
		st.nextPort++
		return
	}
	if st.parentPort >= 0 {
		c.Send(st.parentPort, agentMsg{id: d.id, back: true})
		return
	}
	// The agent explored every edge and returned home: this node leads.
	c.Decide(sim.Leader)
	p.decided = true
	p.doneSent = true
	c.Broadcast(msgDone)
	c.Halt()
}

// finish handles the done flood: decide, forward once, halt.
func (p *dfsProc) finish(c *sim.Context) {
	if !p.decided {
		c.Decide(sim.NonLeader)
		p.decided = true
	}
	if !p.doneSent {
		p.doneSent = true
		c.Broadcast(msgDone)
	}
	c.Halt()
}

func init() {
	register(Spec{
		Name:          "dfs",
		Result:        "Thm 4.1",
		Summary:       "DFS annexing agents, step period 2^ID; O(m) msgs, unbounded (exponential-in-minID) time",
		Deterministic: true,
		NeedsIDs:      true,
		New:           func(o Options) sim.Protocol { return DFS{BudgetCap: o.dfsBudgetCap()} },
	})
}
