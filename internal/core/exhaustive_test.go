package core

import (
	"math/rand"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// permutations returns all permutations of 0..n-1 (n <= 5 in these tests).
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, tail := range permutations(n - 1) {
		for pos := 0; pos <= len(tail); pos++ {
			p := make([]int, 0, n)
			p = append(p, tail[:pos]...)
			p = append(p, n-1)
			p = append(p, tail[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

// TestDeterministicExhaustiveIDAssignments runs the deterministic
// algorithms on small graphs under EVERY ID assignment (all permutations of
// 1..n onto nodes): the paper's universality means no assignment may break
// them.
func TestDeterministicExhaustiveIDAssignments(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path4":     graph.Path(4),
		"ring5":     graph.Ring(5),
		"star5":     graph.Star(5),
		"complete4": graph.Complete(4),
		"diamond": mustEdges(t, 4, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
		}),
	}
	for _, algo := range []string{"dfs", "kingdom", "kingdom-d", "flood"} {
		for name, g := range graphs {
			for _, perm := range permutations(g.N()) {
				ids := make([]int64, g.N())
				minAt := 0
				for i, p := range perm {
					ids[i] = int64(p) + 1
					if ids[i] == 1 {
						minAt = i
					}
				}
				res, err := Run(g, algo, RunOpts{Seed: 1, IDs: ids, MaxRounds: 1 << 14})
				if err != nil {
					t.Fatalf("%s on %s ids=%v: %v", algo, name, ids, err)
				}
				if !res.UniqueLeader() {
					t.Fatalf("%s on %s ids=%v: no unique leader", algo, name, ids)
				}
				// dfs elects the minimum-ID node; flood the maximum.
				switch algo {
				case "dfs":
					if res.Leaders[0] != minAt {
						t.Fatalf("dfs on %s ids=%v: leader %d, want min-ID node %d",
							name, ids, res.Leaders[0], minAt)
					}
				case "flood", "kingdom", "kingdom-d":
					if ids[res.Leaders[0]] != int64(g.N()) {
						t.Fatalf("%s on %s ids=%v: leader %d is not the max-ID node",
							algo, name, ids, res.Leaders[0])
					}
				}
			}
		}
	}
}

// TestDeterministicExhaustivePortMappings: reshuffle ports many times on a
// fixed small graph — port numbering must never affect correctness.
func TestDeterministicExhaustivePortMappings(t *testing.T) {
	base := graph.Complete(5)
	rng := rand.New(rand.NewSource(77))
	for _, algo := range []string{"dfs", "kingdom", "kingdom-d"} {
		for trial := 0; trial < 30; trial++ {
			g := base.Clone()
			g.ShufflePorts(rng)
			res, err := Run(g, algo, RunOpts{Seed: 1, IDs: sim.SequentialIDs(5, 1), MaxRounds: 1 << 14})
			if err != nil {
				t.Fatal(err)
			}
			if !res.UniqueLeader() {
				t.Fatalf("%s trial %d: no unique leader", algo, trial)
			}
		}
	}
}

func mustEdges(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRandomizedOnExpanders: the [14] context — randomized elections on
// expander-like families (regular graphs, hypercubes, complete bipartite).
func TestRandomizedOnExpanders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	reg, err := graph.RandomRegular(32, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{reg, graph.Hypercube(5), graph.CompleteBipartite(10, 12), graph.Caterpillar(8, 3)}
	for _, g := range graphs {
		for _, algo := range []string{"leastel", "leastel-estimate", "cluster", "lasvegas"} {
			for s := int64(0); s < 3; s++ {
				res, err := Run(g, algo, RunOpts{Seed: s, MaxRounds: 1 << 15})
				if err != nil {
					t.Fatalf("%s on %s: %v", algo, g.Name(), err)
				}
				if !res.UniqueLeader() {
					t.Errorf("%s on %s seed %d: failed", algo, g.Name(), s)
				}
			}
		}
	}
}

// TestAdversarialWakeupDFS is the Theorem 4.1 wake-up-phase stress test:
// staggered spontaneous wakeups plus message-only nodes across topologies.
func TestAdversarialWakeupDFS(t *testing.T) {
	graphs := []*graph.Graph{graph.Ring(12), graph.Star(10), graph.Grid(3, 4), graph.Caterpillar(5, 2)}
	for _, g := range graphs {
		for s := int64(0); s < 5; s++ {
			wrng := rand.New(rand.NewSource(s * 131))
			res, err := Run(g, "dfs", RunOpts{
				Seed: s,
				IDs:  sim.PermutationIDs(g.N(), wrng),
				Wake: sim.AdversarialWake(g.N(), 20, wrng),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.UniqueLeader() {
				t.Fatalf("dfs on %s seed %d: failed under adversarial wakeup", g.Name(), s)
			}
		}
	}
}

// TestAnonymousRandomizedAlgorithms: §2 — the randomized algorithms also
// apply to anonymous networks.
func TestAnonymousRandomizedAlgorithms(t *testing.T) {
	graphs := []*graph.Graph{graph.Ring(16), graph.Complete(10), graph.Grid(4, 4)}
	for _, algo := range []string{"leastel", "leastel-loglog", "leastel-estimate", "cluster", "lasvegas", "spanner-le"} {
		for _, g := range graphs {
			for s := int64(0); s < 3; s++ {
				res, err := Run(g, algo, RunOpts{Seed: s, Anonymous: true, MaxRounds: 1 << 15})
				if err != nil {
					t.Fatalf("%s anonymous: %v", algo, err)
				}
				if res.LeaderCount() > 1 {
					t.Fatalf("%s anonymous on %s: %d leaders", algo, g.Name(), res.LeaderCount())
				}
			}
		}
	}
}

// TestLocalModeMatchesCongest: the algorithms fit CONGEST, so running them
// in LOCAL mode must not change behaviour at all.
func TestLocalModeMatchesCongest(t *testing.T) {
	g := graph.Torus(4, 4)
	for _, algo := range []string{"leastel", "cluster", "kingdom"} {
		ids := sim.PermutationIDs(g.N(), rand.New(rand.NewSource(1)))
		a, err := Run(g, algo, RunOpts{Seed: 2, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, algo, RunOpts{Seed: 2, IDs: ids, Mode: sim.LOCAL})
		if err != nil {
			t.Fatal(err)
		}
		if a.Messages != b.Messages || a.Rounds != b.Rounds {
			t.Errorf("%s: LOCAL diverges from CONGEST: %d/%d msgs, %d/%d rounds",
				algo, a.Messages, b.Messages, a.Rounds, b.Rounds)
		}
	}
}
