package core

import (
	"sort"

	"ule/internal/sim"
)

// Kingdom is the Theorem 4.10 "double-win growing kingdoms" deterministic
// election (a corrected variant of Abu-Amara–Kanevsky [1]): O(D·log n)
// time and O(m·log n) messages, with no knowledge of n, D or m.
//
// Every node starts as a candidate. A candidate in phase p grows a BFS
// kingdom of radius 2^(p−1) with an ELECT wave; the wave is an
// echo-terminated flood (the async analogue of the paper's 4-stage
// election), so the candidate learns the largest (phase, ID) claim its
// kingdom touched. A candidate that heard only its own claim runs the
// second win: a CONFIRM/PROBE/VICTOR sweep over its kingdom that collects
// the claims of every neighbor of every kingdom member (the paper's
// "neighbors of neighbors"). Only a candidate that wins both sweeps
// proceeds to phase p+1; claims are totally ordered by (phase, ID), and
// higher claims overrun lower ones mid-wave. The candidate holding the
// historically largest claim can never be defeated, so exactly one
// candidate survives; it detects that its kingdom covers the graph (every
// member's neighbors are members) and elects itself, flooding a final done
// signal so everyone halts.
//
// With KnownD set, waves use radius D from the start (the paper's
// simplified variant under knowledge of D).
type Kingdom struct {
	// KnownD grows radius-D kingdoms from phase 1.
	KnownD bool
}

var _ sim.Protocol = Kingdom{}

// Name implements sim.Protocol.
func (k Kingdom) Name() string {
	if k.KnownD {
		return "kingdom-d"
	}
	return "kingdom"
}

// New implements sim.Protocol.
func (k Kingdom) New(info sim.NodeInfo) sim.Process {
	return &kingdomProc{knownD: k.KnownD}
}

// kkey is a kingdom claim: candidate id at a phase, totally ordered.
type kkey struct {
	phase int32
	id    int64
}

func (a kkey) less(b kkey) bool {
	if a.phase != b.phase {
		return a.phase < b.phase
	}
	return a.id < b.id
}

func (a kkey) max(b kkey) kkey {
	if a.less(b) {
		return b
	}
	return a
}

// Kingdom messages. Every ELECT gets exactly one kReply; every kProbe gets
// exactly one kProbeRe; kConfirm triggers exactly one kVictor per child —
// so both sweeps are deadlock-free echo floods.
type (
	kElect struct {
		key kkey
		ttl int32
	}
	kReply struct {
		key  kkey
		join bool // the sender joined the wave as a child
		max  kkey // largest claim known to the replying subtree
	}
	kConfirm struct{ key kkey }
	kProbe   struct{ key kkey }
	kProbeRe struct {
		key kkey
		max kkey
	}
	kVictor struct {
		key     kkey
		max     kkey
		covered bool
	}
	kDone struct{}
)

func kkeyBits(k kkey) int { return sim.BitsFor(int64(k.phase)) + sim.BitsFor(k.id) }

func (m kElect) Bits() int   { return 3 + kkeyBits(m.key) + sim.BitsFor(int64(m.ttl)) }
func (m kReply) Bits() int   { return 4 + kkeyBits(m.key) + kkeyBits(m.max) }
func (m kConfirm) Bits() int { return 3 + kkeyBits(m.key) }
func (m kProbe) Bits() int   { return 3 + kkeyBits(m.key) }
func (m kProbeRe) Bits() int { return 3 + kkeyBits(m.key) + kkeyBits(m.max) }
func (m kVictor) Bits() int  { return 4 + kkeyBits(m.key) + kkeyBits(m.max) }
func (kDone) Bits() int      { return 1 }

// msgKDone is the field-less termination payload, sent as a singleton.
var msgKDone sim.Payload = kDone{}

// kState is the per-wave membership state at a node.
type kState struct {
	parent   int // port toward the wave's root; -1 at the root
	children []int
	pending  int  // outstanding ELECT replies
	replied  bool // join reply sent upward
	agg      kkey // stage-1 aggregate

	stage2   bool
	pending2 int // outstanding probe replies + child victors
	agg2     kkey
	covered2 bool
}

type kingdomProc struct {
	knownD bool

	me        int64
	zMax      kkey // largest claim ever seen (monotone)
	states    map[kkey]*kState
	candidate bool
	phase     int32
	decided   bool
	doneSent  bool
	halting   bool
}

func (p *kingdomProc) radius(phase int32, c *sim.Context) int32 {
	if p.knownD {
		d := int32(c.Know().D)
		if d < 1 {
			d = 1
		}
		return d
	}
	if phase > 30 {
		return 1 << 30
	}
	return 1 << uint(phase-1)
}

func (p *kingdomProc) Start(c *sim.Context) {
	p.me = c.ID()
	if !c.HasID() {
		p.me = c.Rand().Int63()
	}
	p.states = make(map[kkey]*kState)
	p.candidate = true
	p.phase = 1
	p.launchWave(c)
}

// launchWave starts this candidate's phase-p ELECT wave.
func (p *kingdomProc) launchWave(c *sim.Context) {
	key := kkey{phase: p.phase, id: p.me}
	p.zMax = p.zMax.max(key)
	st := &kState{parent: -1, pending: c.Degree(), agg: key}
	p.states[key] = st
	if st.pending == 0 {
		// Single-node network: both wins are vacuous.
		p.crown(c)
		return
	}
	c.Broadcast(kElect{key: key, ttl: p.radius(p.phase, c)})
}

func (p *kingdomProc) Round(c *sim.Context, inbox []sim.Message) {
	if p.halting {
		return
	}
	// Process ELECTs in descending claim order so that the strongest wave
	// of the round claims the node first.
	var elects []sim.Message
	var others []sim.Message
	for _, in := range inbox {
		if _, ok := in.Payload.(kElect); ok {
			elects = append(elects, in)
		} else {
			others = append(others, in)
		}
	}
	sort.SliceStable(elects, func(i, j int) bool {
		a := elects[i].Payload.(kElect).key
		b := elects[j].Payload.(kElect).key
		return b.less(a)
	})
	for _, in := range elects {
		p.handleElect(c, in.Port, in.Payload.(kElect))
		if p.halting {
			return
		}
	}
	for _, in := range others {
		switch m := in.Payload.(type) {
		case kReply:
			p.handleReply(c, in.Port, m)
		case kConfirm:
			p.handleConfirm(c, in.Port, m)
		case kProbe:
			c.Send(in.Port, kProbeRe{key: m.key, max: p.zMax})
		case kProbeRe:
			p.handleVictorPart(c, m.key, m.max, m.max == m.key)
		case kVictor:
			p.handleVictorPart(c, m.key, m.max, m.covered)
		case kDone:
			p.finish(c)
			return
		}
		if p.halting {
			return
		}
	}
}

func (p *kingdomProc) handleElect(c *sim.Context, port int, m kElect) {
	if !p.zMax.less(m.key) {
		// Known or weaker claim: immediate echo carrying the stronger one.
		c.Send(port, kReply{key: m.key, max: p.zMax})
		return
	}
	p.zMax = m.key
	p.noteDefeat(c)
	st := &kState{parent: port, agg: m.key}
	p.states[m.key] = st
	if m.ttl > 1 && c.Degree() > 1 {
		st.pending = c.Degree() - 1
		c.BroadcastExcept(port, kElect{key: m.key, ttl: m.ttl - 1})
		return
	}
	// Leaf of the wave: join immediately.
	st.replied = true
	c.Send(port, kReply{key: m.key, join: true, max: p.zMax})
}

func (p *kingdomProc) handleReply(c *sim.Context, port int, m kReply) {
	st := p.states[m.key]
	if st == nil || st.pending == 0 {
		return // echo for an abandoned wave
	}
	st.agg = st.agg.max(m.max)
	if m.join {
		st.children = append(st.children, port)
	}
	st.pending--
	if st.pending > 0 {
		return
	}
	if st.parent >= 0 {
		st.replied = true
		c.Send(st.parent, kReply{key: m.key, join: true, max: st.agg.max(p.zMax)})
		return
	}
	// Root: first win decided.
	p.waveDone(c, m.key, st)
}

// waveDone is the stage-1 verdict at the wave's root.
func (p *kingdomProc) waveDone(c *sim.Context, key kkey, st *kState) {
	if !p.candidate || key.id != p.me || key.phase != p.phase {
		return // stale wave of an abandoned candidacy
	}
	final := st.agg.max(p.zMax)
	if final != key {
		p.defeat(c)
		return
	}
	// Second win: sweep the kingdom's neighborhood.
	p.startStage2(c, key, st)
}

func (p *kingdomProc) startStage2(c *sim.Context, key kkey, st *kState) {
	st.stage2 = true
	st.agg2 = key
	st.covered2 = true
	st.pending2 = len(st.children) + c.Degree()
	for _, ch := range st.children {
		c.Send(ch, kConfirm{key: key})
	}
	for q := 0; q < c.Degree(); q++ {
		c.Send(q, kProbe{key: key})
	}
	if st.pending2 == 0 {
		p.stage2Done(c, key, st)
	}
}

func (p *kingdomProc) handleConfirm(c *sim.Context, port int, m kConfirm) {
	st := p.states[m.key]
	if st == nil || st.stage2 || !st.replied {
		return // not a member (or duplicate confirm)
	}
	p.startStage2(c, m.key, st)
}

// handleVictorPart folds one probe reply or child victor into the stage-2
// aggregate of the wave identified by key.
func (p *kingdomProc) handleVictorPart(c *sim.Context, key, max kkey, covered bool) {
	st := p.states[key]
	if st == nil || !st.stage2 || st.pending2 == 0 {
		return
	}
	st.agg2 = st.agg2.max(max)
	if !covered {
		st.covered2 = false
	}
	st.pending2--
	if st.pending2 > 0 {
		return
	}
	p.stage2Done(c, key, st)
}

func (p *kingdomProc) stage2Done(c *sim.Context, key kkey, st *kState) {
	if st.parent >= 0 {
		c.Send(st.parent, kVictor{key: key, max: st.agg2.max(p.zMax), covered: st.covered2})
		return
	}
	if !p.candidate || key.id != p.me || key.phase != p.phase {
		return
	}
	final := st.agg2.max(p.zMax)
	switch {
	case final != key:
		p.defeat(c)
	case st.covered2:
		// Both wins and the kingdom spans the graph: crowned.
		p.crown(c)
	default:
		p.phase++
		p.launchWave(c)
	}
}

// noteDefeat marks this node's own candidacy as beaten when a foreign claim
// overruns it (the foreign claim is already folded into zMax).
func (p *kingdomProc) noteDefeat(c *sim.Context) {
	if p.candidate && p.zMax.id != p.me {
		own := kkey{phase: p.phase, id: p.me}
		if own.less(p.zMax) {
			p.defeat(c)
		}
	}
}

func (p *kingdomProc) defeat(c *sim.Context) {
	p.candidate = false
	if !p.decided {
		c.Decide(sim.NonLeader)
		p.decided = true
	}
}

func (p *kingdomProc) crown(c *sim.Context) {
	c.Decide(sim.Leader)
	p.decided = true
	p.finish(c)
}

// finish floods the done signal and halts.
func (p *kingdomProc) finish(c *sim.Context) {
	if !p.decided {
		c.Decide(sim.NonLeader)
		p.decided = true
	}
	if !p.doneSent {
		p.doneSent = true
		c.Broadcast(msgKDone)
	}
	p.halting = true
	c.Halt()
}

func init() {
	register(Spec{
		Name:          "kingdom",
		Result:        "Thm 4.10",
		Summary:       "double-win growing kingdoms, radius 2^(p-1); deterministic, no knowledge, O(D log n) time, O(m log n) msgs",
		Deterministic: true,
		NeedsIDs:      true,
		New:           func(o Options) sim.Protocol { return Kingdom{} },
	})
	register(Spec{
		Name:          "kingdom-d",
		Result:        "§4.3 (known D)",
		Summary:       "growing kingdoms with radius-D phases (knowledge of D); deterministic, O(D log n) time, O(m log n) msgs",
		Deterministic: true,
		NeedsD:        true,
		NeedsIDs:      true,
		New:           func(o Options) sim.Protocol { return Kingdom{KnownD: true} },
	})
}
