package core

import (
	"math"
	"sort"

	"ule/internal/sim"
)

// flKey is a flood value: a rank plus the origin that injected it. Origins
// are candidate IDs in non-anonymous networks and random 62-bit tokens in
// anonymous ones; the pair is the total order used to break rank ties.
type flKey struct {
	rank   int64
	origin int64
}

// infKey is the identity of the min-order (nothing adopted yet).
var infKey = flKey{rank: math.MaxInt64, origin: math.MaxInt64}

// negKey is the identity of the max-order.
var negKey = flKey{rank: math.MinInt64, origin: math.MinInt64}

func (k flKey) less(o flKey) bool {
	if k.rank != o.rank {
		return k.rank < o.rank
	}
	return k.origin < o.origin
}

// flMsg is the wire format of the flood machine: a rank announcement or its
// echo (ack). Acks piggyback the sender's best-heard value, which closes
// the completion-vs-in-flight race discussed in the Theorem 4.4 analysis.
type flMsg struct {
	Ack    bool
	Origin int64
	Rank   int64
	// Aux rides along rank announcements (Corollary 4.5 uses it to carry
	// the size estimate to nodes that have not locally started phase B).
	Aux int64
	// HeardRank/HeardOrigin are the acker's best-heard value.
	HeardRank   int64
	HeardOrigin int64
}

// Bits implements sim.Payload; every identifier-sized field costs its bit
// length, matching the CONGEST accounting of the paper.
func (m flMsg) Bits() int {
	b := 2 + sim.BitsFor(m.Origin) + sim.BitsFor(m.Rank) + sim.BitsFor(m.Aux)
	if m.Ack {
		b += sim.BitsFor(m.HeardRank) + sim.BitsFor(m.HeardOrigin)
	}
	return b
}

// flState tracks one origin's propagation-with-feedback (the "echo"
// mechanism of [11] as described in Section 4.2).
type flState struct {
	parentPort int // real port toward the origin; -1 at the origin itself
	pending    int // echoes still outstanding
}

// flooder is the least-element-list flood with echo-based termination used
// by every randomized algorithm in the paper (Theorems 4.4, 4.7,
// Corollaries 4.2, 4.5, 4.6). It is direction-parametric: min mode
// implements least-element lists; max mode implements the max-flood of the
// Corollary 4.5 size-estimation phase.
//
// The embedding process forwards inbound flMsg traffic via handleRound and
// provides an out function that performs the actual (possibly tagged, or
// port-restricted) sends.
type flooder struct {
	min   bool
	ports []int // real ports the flood uses
	raw   func(realPort int, m flMsg)
	q     *portQueue

	participating bool
	self          flKey
	aux           int64

	// best is the least (resp. greatest) value adopted and re-flooded; it
	// gates adoption. heard additionally folds in ack gossip and gates
	// only the local win decision — see the safety note in leastel.go.
	best   flKey
	heard  flKey
	states map[int64]*flState

	// listLen counts adopted entries: the size of this node's
	// least-element list (Lemma 4.3 measures its expectation).
	listLen int

	completed bool
	won       bool

	// onAdopt, if set, fires when a new value is adopted (used by the
	// estimate variant's join rule and by tests).
	onAdopt func(k flKey, aux int64)
}

// flushRate bounds flood sends per port per round, keeping bursts of
// echoes within the CONGEST per-edge budget.
const flushRate = 4

func newFlooder(ports []int, min bool, out func(int, flMsg)) *flooder {
	f := &flooder{min: min, ports: ports, raw: out, q: newPortQueue(), states: make(map[int64]*flState)}
	if min {
		f.best, f.heard = infKey, infKey
	} else {
		f.best, f.heard = negKey, negKey
	}
	return f
}

// out enqueues a flood message; flush drips it onto the wire.
func (f *flooder) out(port int, m flMsg) {
	f.q.push(port, m)
}

// flush sends up to flushRate queued messages per port through the raw
// sender (which applies any protocol tagging). The embedding process must
// call it once per Round (after handleRound).
func (f *flooder) flush() {
	f.q.flush(func(port int, pl sim.Payload) {
		m, ok := pl.(flMsg)
		if ok {
			f.raw(port, m)
		}
	}, flushRate)
}

// idle reports whether no flood traffic is queued.
func (f *flooder) idle() bool { return f.q.empty() }

// better reports whether a beats b in the flood's direction.
func (f *flooder) better(a, b flKey) bool {
	if f.min {
		return a.less(b)
	}
	return b.less(a)
}

// start injects this node's own value. Must be called at most once, before
// any handleRound delivery in the same round is processed.
func (f *flooder) start(self flKey, aux int64) {
	f.participating = true
	f.self = self
	f.aux = aux
	f.best = self
	f.heard = self
	f.listLen++
	st := &flState{parentPort: -1, pending: len(f.ports)}
	f.states[self.origin] = st
	for _, p := range f.ports {
		f.out(p, flMsg{Origin: self.origin, Rank: self.rank, Aux: aux})
	}
	if st.pending == 0 {
		f.complete()
	}
}

func (f *flooder) complete() {
	f.completed = true
	f.won = f.heard == f.self
}

// fold updates heard with gossip (no re-flooding).
func (f *flooder) fold(k flKey) {
	if f.better(k, f.heard) {
		f.heard = k
	}
}

// handleRound processes all of this round's flood traffic. Announcements
// are processed before echoes, best value first, so that a completion
// decision in this round already accounts for every value that reached the
// node.
func (f *flooder) handleRound(msgs []portMsg) {
	ranks := msgs[:0:0]
	acks := msgs[:0:0]
	for _, pm := range msgs {
		if pm.m.Ack {
			acks = append(acks, pm)
		} else {
			ranks = append(ranks, pm)
		}
	}
	sort.Slice(ranks, func(i, j int) bool {
		a := flKey{ranks[i].m.Rank, ranks[i].m.Origin}
		b := flKey{ranks[j].m.Rank, ranks[j].m.Origin}
		if a == b {
			return ranks[i].port < ranks[j].port
		}
		return f.better(a, b)
	})
	for _, pm := range ranks {
		f.handleRank(pm.port, pm.m)
	}
	for _, pm := range acks {
		f.handleAck(pm.port, pm.m)
	}
}

// portMsg pairs a real port with a decoded flood message.
type portMsg struct {
	port int
	m    flMsg
}

func (f *flooder) handleRank(port int, m flMsg) {
	k := flKey{m.Rank, m.Origin}
	f.fold(k)
	if _, dup := f.states[m.Origin]; !dup && f.better(k, f.best) {
		// Adopt: this is a new least-element (resp. greatest) entry.
		f.best = k
		f.listLen++
		st := &flState{parentPort: port, pending: len(f.ports) - 1}
		f.states[m.Origin] = st
		if f.onAdopt != nil {
			f.onAdopt(k, m.Aux)
		}
		for _, p := range f.ports {
			if p != port {
				f.out(p, flMsg{Origin: m.Origin, Rank: m.Rank, Aux: m.Aux})
			}
		}
		if st.pending == 0 {
			f.echo(st, m)
		}
		return
	}
	// Reject (or duplicate arrival of an adopted origin): echo immediately.
	f.out(port, flMsg{
		Ack: true, Origin: m.Origin, Rank: m.Rank,
		HeardRank: f.heard.rank, HeardOrigin: f.heard.origin,
	})
}

func (f *flooder) handleAck(port int, m flMsg) {
	f.fold(flKey{m.HeardRank, m.HeardOrigin})
	st := f.states[m.Origin]
	if st == nil || st.pending == 0 {
		return // stale echo (e.g. duplicate origins in anonymous collisions)
	}
	st.pending--
	if st.pending == 0 {
		f.echo(st, m)
	}
}

// echo fires when all outstanding echoes for an origin returned: forward
// the echo toward the origin, or complete if this node is the origin.
func (f *flooder) echo(st *flState, m flMsg) {
	if st.parentPort < 0 {
		f.complete()
		return
	}
	f.out(st.parentPort, flMsg{
		Ack: true, Origin: m.Origin, Rank: m.Rank,
		HeardRank: f.heard.rank, HeardOrigin: f.heard.origin,
	})
}

// addPort grows the port set after the flood started (used by the
// Algorithm 1 overlay when the far side of a retained inter-cluster edge
// finishes its sparsification later than this node). Outstanding echo
// counts are unaffected: already-flooded values were never forwarded on the
// new port, so no echo is owed there; future adoptions include it.
func (f *flooder) addPort(p int) {
	for _, q := range f.ports {
		if q == p {
			return
		}
	}
	f.ports = append(f.ports, p)
}

// quiescedLocally reports whether this node owes no further flood traffic.
func (f *flooder) quiescedLocally() bool {
	for _, st := range f.states {
		if st.pending > 0 {
			return false
		}
	}
	return true
}
