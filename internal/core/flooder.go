package core

import (
	"math"
	"sync"

	"ule/internal/sim"
)

// flKey is a flood value: a rank plus the origin that injected it. Origins
// are candidate IDs in non-anonymous networks and random 62-bit tokens in
// anonymous ones; the pair is the total order used to break rank ties.
type flKey struct {
	rank   int64
	origin int64
}

// infKey is the identity of the min-order (nothing adopted yet).
var infKey = flKey{rank: math.MaxInt64, origin: math.MaxInt64}

// negKey is the identity of the max-order.
var negKey = flKey{rank: math.MinInt64, origin: math.MinInt64}

func (k flKey) less(o flKey) bool {
	if k.rank != o.rank {
		return k.rank < o.rank
	}
	return k.origin < o.origin
}

// flMsg is the wire format of the flood machine: a rank announcement or its
// echo (ack). Acks piggyback the sender's best-heard value, which closes
// the completion-vs-in-flight race discussed in the Theorem 4.4 analysis.
type flMsg struct {
	Ack    bool
	Origin int64
	Rank   int64
	// Aux rides along rank announcements (Corollary 4.5 uses it to carry
	// the size estimate to nodes that have not locally started phase B).
	Aux int64
	// HeardRank/HeardOrigin are the acker's best-heard value.
	HeardRank   int64
	HeardOrigin int64
}

// Bits implements sim.Payload; every identifier-sized field costs its bit
// length, matching the CONGEST accounting of the paper.
func (m flMsg) Bits() int {
	b := 2 + sim.BitsFor(m.Origin) + sim.BitsFor(m.Rank) + sim.BitsFor(m.Aux)
	if m.Ack {
		b += sim.BitsFor(m.HeardRank) + sim.BitsFor(m.HeardOrigin)
	}
	return b
}

// Pooled wire boxes. Flood messages dominate the traffic of every
// randomized algorithm here, and boxing each flMsg value into the Payload
// interface was one heap allocation per send; instead the wire payloads
// are *flMsg / *taggedMsg pointers drawn from free lists, so steady-state
// sends allocate nothing.
//
// Ownership contract: the sender draws one box per Send (never reusing a
// box across ports), and the receiver copies the value out and releases
// the box as it decodes its inbox. Boxes that are never decoded (arrivals
// at halted nodes, aborted runs) are simply dropped — the GC reclaims
// them, which sync.Pool tolerates.
var flMsgPool = sync.Pool{New: func() any { return new(flMsg) }}

// boxFl draws a pooled wire box holding m.
func boxFl(m flMsg) *flMsg {
	b := flMsgPool.Get().(*flMsg)
	*b = m
	return b
}

// unboxFl copies the received value out and releases the box.
func unboxFl(b *flMsg) flMsg {
	m := *b
	flMsgPool.Put(b)
	return m
}

// flState tracks one origin's propagation-with-feedback (the "echo"
// mechanism of [11] as described in Section 4.2).
type flState struct {
	parentPort int // real port toward the origin; -1 at the origin itself
	pending    int // echoes still outstanding
}

// flooder is the least-element-list flood with echo-based termination used
// by every randomized algorithm in the paper (Theorems 4.4, 4.7,
// Corollaries 4.2, 4.5, 4.6). It is direction-parametric: min mode
// implements least-element lists; max mode implements the max-flood of the
// Corollary 4.5 size-estimation phase.
//
// The embedding process forwards inbound flMsg traffic via handleRound and
// provides an out function that performs the actual (possibly tagged, or
// port-restricted) sends.
type flooder struct {
	min   bool
	ports []int // real ports the flood uses
	raw   func(realPort int, m flMsg)
	q     flQueue

	// rankBuf/ackBuf are the reusable per-round partition scratch of
	// handleRound.
	rankBuf, ackBuf []portMsg

	participating bool
	self          flKey
	aux           int64

	// best is the least (resp. greatest) value adopted and re-flooded; it
	// gates adoption. heard additionally folds in ack gossip and gates
	// only the local win decision — see the safety note in leastel.go.
	best   flKey
	heard  flKey
	states map[int64]*flState
	// slab chunk-allocates flState records: one allocation per chunk
	// instead of one per adoption. A full chunk is abandoned in place (map
	// values keep pointing into it) and a fresh one started, so addresses
	// stay stable.
	slab []flState

	// listLen counts adopted entries: the size of this node's
	// least-element list (Lemma 4.3 measures its expectation).
	listLen int

	completed bool
	won       bool

	// onAdopt, if set, fires when a new value is adopted (used by the
	// estimate variant's join rule and by tests).
	onAdopt func(k flKey, aux int64)
}

// flushRate bounds flood sends per port per round, keeping bursts of
// echoes within the CONGEST per-edge budget.
const flushRate = 4

func newFlooder(ports []int, min bool, out func(int, flMsg)) *flooder {
	f := new(flooder)
	initFlooder(f, ports, min, out)
	return f
}

// initFlooder initializes a flooder in place, so embedding processes can
// keep it as a struct field instead of a separate heap object.
func initFlooder(f *flooder, ports []int, min bool, out func(int, flMsg)) {
	*f = flooder{min: min, ports: ports, raw: out, states: make(map[int64]*flState)}
	maxPort := -1
	for _, p := range ports {
		if p > maxPort {
			maxPort = p
		}
	}
	f.q.init(maxPort + 1)
	if min {
		f.best, f.heard = infKey, infKey
	} else {
		f.best, f.heard = negKey, negKey
	}
}

// newState slab-allocates one adoption record.
func (f *flooder) newState(parentPort, pending int) *flState {
	if len(f.slab) == cap(f.slab) {
		f.slab = make([]flState, 0, 16)
	}
	f.slab = append(f.slab, flState{parentPort: parentPort, pending: pending})
	return &f.slab[len(f.slab)-1]
}

// out enqueues a flood message; flush drips it onto the wire.
func (f *flooder) out(port int, m flMsg) {
	f.q.push(port, m)
}

// flush sends up to flushRate queued messages per port through the raw
// sender (which applies any protocol tagging). The embedding process must
// call it once per Round (after handleRound).
func (f *flooder) flush() {
	f.q.flush(f.raw, flushRate)
}

// idle reports whether no flood traffic is queued.
func (f *flooder) idle() bool { return f.q.empty() }

// better reports whether a beats b in the flood's direction.
func (f *flooder) better(a, b flKey) bool {
	if f.min {
		return a.less(b)
	}
	return b.less(a)
}

// start injects this node's own value. Must be called at most once, before
// any handleRound delivery in the same round is processed.
func (f *flooder) start(self flKey, aux int64) {
	f.participating = true
	f.self = self
	f.aux = aux
	f.best = self
	f.heard = self
	f.listLen++
	st := f.newState(-1, len(f.ports))
	f.states[self.origin] = st
	for _, p := range f.ports {
		f.out(p, flMsg{Origin: self.origin, Rank: self.rank, Aux: aux})
	}
	if st.pending == 0 {
		f.complete()
	}
}

func (f *flooder) complete() {
	f.completed = true
	f.won = f.heard == f.self
}

// fold updates heard with gossip (no re-flooding).
func (f *flooder) fold(k flKey) {
	if f.better(k, f.heard) {
		f.heard = k
	}
}

// handleRound processes all of this round's flood traffic. Announcements
// are processed before echoes, best value first (ascending port on ties —
// the same total order the previous sort.Slice call produced), so that a
// completion decision in this round already accounts for every value that
// reached the node. Partitioning and ordering run on reusable scratch
// with an insertion sort: rounds with traffic allocate nothing once the
// scratch is warm.
func (f *flooder) handleRound(msgs []portMsg) {
	if len(msgs) == 0 {
		return
	}
	ranks, acks := f.rankBuf[:0], f.ackBuf[:0]
	for _, pm := range msgs {
		if pm.m.Ack {
			acks = append(acks, pm)
			continue
		}
		a := flKey{pm.m.Rank, pm.m.Origin}
		i := len(ranks)
		ranks = append(ranks, pm)
		for i > 0 {
			b := flKey{ranks[i-1].m.Rank, ranks[i-1].m.Origin}
			if f.better(b, a) || (a == b && ranks[i-1].port <= pm.port) {
				break
			}
			ranks[i] = ranks[i-1]
			i--
		}
		ranks[i] = pm
	}
	f.rankBuf, f.ackBuf = ranks, acks
	for _, pm := range ranks {
		f.handleRank(pm.port, pm.m)
	}
	for _, pm := range acks {
		f.handleAck(pm.port, pm.m)
	}
}

// portMsg pairs a real port with a decoded flood message.
type portMsg struct {
	port int
	m    flMsg
}

func (f *flooder) handleRank(port int, m flMsg) {
	k := flKey{m.Rank, m.Origin}
	f.fold(k)
	if _, dup := f.states[m.Origin]; !dup && f.better(k, f.best) {
		// Adopt: this is a new least-element (resp. greatest) entry.
		f.best = k
		f.listLen++
		st := f.newState(port, len(f.ports)-1)
		f.states[m.Origin] = st
		if f.onAdopt != nil {
			f.onAdopt(k, m.Aux)
		}
		for _, p := range f.ports {
			if p != port {
				f.out(p, flMsg{Origin: m.Origin, Rank: m.Rank, Aux: m.Aux})
			}
		}
		if st.pending == 0 {
			f.echo(st, m)
		}
		return
	}
	// Reject (or duplicate arrival of an adopted origin): echo immediately.
	f.out(port, flMsg{
		Ack: true, Origin: m.Origin, Rank: m.Rank,
		HeardRank: f.heard.rank, HeardOrigin: f.heard.origin,
	})
}

func (f *flooder) handleAck(port int, m flMsg) {
	f.fold(flKey{m.HeardRank, m.HeardOrigin})
	st := f.states[m.Origin]
	if st == nil || st.pending == 0 {
		return // stale echo (e.g. duplicate origins in anonymous collisions)
	}
	st.pending--
	if st.pending == 0 {
		f.echo(st, m)
	}
}

// echo fires when all outstanding echoes for an origin returned: forward
// the echo toward the origin, or complete if this node is the origin.
func (f *flooder) echo(st *flState, m flMsg) {
	if st.parentPort < 0 {
		f.complete()
		return
	}
	f.out(st.parentPort, flMsg{
		Ack: true, Origin: m.Origin, Rank: m.Rank,
		HeardRank: f.heard.rank, HeardOrigin: f.heard.origin,
	})
}

// addPort grows the port set after the flood started (used by the
// Algorithm 1 overlay when the far side of a retained inter-cluster edge
// finishes its sparsification later than this node). Outstanding echo
// counts are unaffected: already-flooded values were never forwarded on the
// new port, so no echo is owed there; future adoptions include it.
func (f *flooder) addPort(p int) {
	for _, q := range f.ports {
		if q == p {
			return
		}
	}
	f.ports = append(f.ports, p)
}

// quiescedLocally reports whether this node owes no further flood traffic.
func (f *flooder) quiescedLocally() bool {
	for _, st := range f.states {
		if st.pending > 0 {
			return false
		}
	}
	return true
}

// flQueue is the flooder's drip queue: flat per-port rows of flMsg values
// consumed flushRate per port per round in ascending port order — the
// order the map-based portQueue produced after its per-flush sort,
// without the sort, the interface boxing, or the per-flush allocations.
type flQueue struct {
	rows    [][]flMsg // indexed by real port
	heads   []int     // per-port consumed prefix
	pending int
}

// init pre-sizes the per-port rows for ports [0, n); push still grows the
// queue on demand (addPort can extend the port set mid-flood).
func (q *flQueue) init(n int) {
	if n > 0 {
		q.rows = make([][]flMsg, n)
		q.heads = make([]int, n)
	}
}

func (q *flQueue) push(port int, m flMsg) {
	for port >= len(q.rows) {
		q.rows = append(q.rows, nil)
		q.heads = append(q.heads, 0)
	}
	q.rows[port] = append(q.rows[port], m)
	q.pending++
}

func (q *flQueue) empty() bool { return q.pending == 0 }

func (q *flQueue) flush(send func(port int, m flMsg), perRound int) {
	if q.pending == 0 {
		return
	}
	for p := range q.rows {
		row, h := q.rows[p], q.heads[p]
		stop := h + perRound
		if stop > len(row) {
			stop = len(row)
		}
		for ; h < stop; h++ {
			send(p, row[h])
			q.pending--
		}
		if h == len(row) {
			q.rows[p] = row[:0]
			q.heads[p] = 0
		} else {
			q.heads[p] = h
		}
	}
}
