package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ule/internal/graph"
	"ule/internal/sim"
)

func TestFlKeyOrdering(t *testing.T) {
	a := flKey{1, 5}
	b := flKey{1, 6}
	c := flKey{2, 1}
	if !a.less(b) || !b.less(c) || !a.less(c) {
		t.Error("ordering broken")
	}
	if a.less(a) {
		t.Error("irreflexivity broken")
	}
	if !a.less(infKey) || negKey.less(negKey) {
		t.Error("sentinel ordering broken")
	}
}

func TestFlMsgBitsAreLogarithmic(t *testing.T) {
	m := flMsg{Ack: true, Origin: 1 << 40, Rank: 1 << 40, HeardRank: 1 << 40, HeardOrigin: 1 << 40}
	if m.Bits() > 4*41+8 {
		t.Errorf("ack bits %d too large", m.Bits())
	}
	small := flMsg{Origin: 3, Rank: 2}
	if small.Bits() > 16 {
		t.Errorf("small msg %d bits", small.Bits())
	}
}

// loopback wires two flooders directly together to unit-test the echo
// protocol without the engine.
type loopback struct {
	a, b   *flooder
	toA    []flMsg
	toB    []flMsg
	rounds int
}

func newLoopback() *loopback {
	lb := &loopback{}
	lb.a = newFlooder([]int{0}, true, func(port int, m flMsg) { lb.toB = append(lb.toB, m) })
	lb.b = newFlooder([]int{0}, true, func(port int, m flMsg) { lb.toA = append(lb.toA, m) })
	return lb
}

func (lb *loopback) step() {
	inA, inB := lb.toA, lb.toB
	lb.toA, lb.toB = nil, nil
	msgsA := make([]portMsg, len(inA))
	for i, m := range inA {
		msgsA[i] = portMsg{port: 0, m: m}
	}
	msgsB := make([]portMsg, len(inB))
	for i, m := range inB {
		msgsB[i] = portMsg{port: 0, m: m}
	}
	lb.a.handleRound(msgsA)
	lb.b.handleRound(msgsB)
	lb.a.flush()
	lb.b.flush()
	lb.rounds++
}

func TestFlooderTwoNodeDuel(t *testing.T) {
	lb := newLoopback()
	lb.a.start(flKey{rank: 5, origin: 1}, 0)
	lb.b.start(flKey{rank: 9, origin: 2}, 0)
	lb.a.flush()
	lb.b.flush()
	for i := 0; i < 10 && !(lb.a.completed && lb.b.completed); i++ {
		lb.step()
	}
	if !lb.a.completed || !lb.b.completed {
		t.Fatal("echo protocol did not complete")
	}
	if !lb.a.won || lb.b.won {
		t.Errorf("a.won=%v b.won=%v, want true/false", lb.a.won, lb.b.won)
	}
	// b must have adopted a's smaller rank: list length 2.
	if lb.b.listLen != 2 {
		t.Errorf("b list length %d, want 2", lb.b.listLen)
	}
	if lb.a.listLen != 1 {
		t.Errorf("a list length %d, want 1", lb.a.listLen)
	}
}

func TestFlooderNonParticipantRelay(t *testing.T) {
	lb := newLoopback()
	lb.a.start(flKey{rank: 5, origin: 1}, 0)
	lb.a.flush()
	for i := 0; i < 10 && !lb.a.completed; i++ {
		lb.step()
	}
	if !lb.a.completed || !lb.a.won {
		t.Fatal("lone participant must win")
	}
	if lb.b.participating {
		t.Error("b should not participate")
	}
	if lb.b.heard != (flKey{5, 1}) {
		t.Errorf("b heard %v", lb.b.heard)
	}
}

// leastElListInvariants is the Lemma 4.3 shape: adopted entries at any node
// form a strictly improving sequence, and the expected list size is
// O(log(#candidates)).
func TestLeastElListInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := graph.RandomConnected(120, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := g.DiameterExact()
	var totalLen float64
	const seeds = 8
	for s := int64(0); s < seeds; s++ {
		res, err := Run(g, "leastel", RunOpts{Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		if !res.UniqueLeader() {
			t.Fatal("election failed")
		}
		// Messages/(2m) approximates the mean list length: each entry is
		// forwarded once per endpoint and echoed once.
		totalLen += float64(res.Messages) / float64(4*g.M())
	}
	mean := totalLen / seeds
	limit := 2 * logf(g.N())
	if mean > limit {
		t.Errorf("mean list length proxy %.2f > %v = 2·log n (Lemma 4.3)", mean, limit)
	}
	if mean < 1 {
		t.Errorf("mean list length proxy %.2f < 1 (accounting bug?)", mean)
	}
	// The list can never exceed D+1 entries: messages <= ~4m(D+1).
	if mean > float64(d+1) {
		t.Errorf("list proxy %.2f exceeds D+1=%d", mean, d+1)
	}
}

// TestElectionSafetyQuick is the core property test: across random graphs,
// seeds, and candidate budgets, no run may ever produce two leaders, and
// f=n runs must always produce exactly one.
func TestElectionSafetyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	prop := func(nRaw, mRaw uint8, seed int64, kind uint8) bool {
		n := 2 + int(nRaw)%40
		maxM := n * (n - 1) / 2
		m := n - 1 + int(mRaw)%(maxM-n+2)
		if m > maxM {
			m = maxM
		}
		g, err := graph.RandomConnected(n, m, rng)
		if err != nil {
			return false
		}
		algo := []string{"leastel", "leastel-loglog", "leastel-const", "leastel-estimate"}[kind%4]
		res, err := Run(g, algo, RunOpts{Seed: seed, MaxRounds: 1 << 15})
		if err != nil || res.HitRoundCap {
			return false
		}
		if res.LeaderCount() > 1 {
			return false
		}
		if (algo == "leastel" || algo == "leastel-estimate") && !res.UniqueLeader() {
			return false // probability-1 algorithms must always succeed
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicSafetyQuick: the deterministic algorithms must elect
// exactly one leader on every instance.
func TestDeterministicSafetyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	prop := func(nRaw, mRaw uint8, seed int64, kind uint8) bool {
		n := 2 + int(nRaw)%24
		maxM := n * (n - 1) / 2
		m := n - 1 + int(mRaw)%(maxM-n+2)
		if m > maxM {
			m = maxM
		}
		g, err := graph.RandomConnected(n, m, rng)
		if err != nil {
			return false
		}
		algo := []string{"dfs", "kingdom", "kingdom-d", "flood"}[kind%4]
		ids := sim.PermutationIDs(n, rand.New(rand.NewSource(seed)))
		res, err := Run(g, algo, RunOpts{Seed: seed, IDs: ids, MaxRounds: 1 << 15})
		if err != nil || res.HitRoundCap {
			return false
		}
		return res.UniqueLeader()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPortQueueDrip(t *testing.T) {
	q := newPortQueue()
	for i := 0; i < 5; i++ {
		q.push(0, idMsg{int64(i)})
	}
	q.push(1, idMsg{99})
	var sent [][2]int64 // (port, value)
	send := func(port int, pl sim.Payload) {
		sent = append(sent, [2]int64{int64(port), pl.(idMsg).id})
	}
	q.flush(send, 2)
	if len(sent) != 3 { // 2 from port 0, 1 from port 1
		t.Fatalf("first flush sent %d, want 3", len(sent))
	}
	if sent[0] != [2]int64{0, 0} || sent[1] != [2]int64{0, 1} {
		t.Error("FIFO order violated")
	}
	sent = nil
	q.flush(send, 2)
	q.flush(send, 2)
	if len(sent) != 3 || !q.empty() {
		t.Fatalf("remaining flushes sent %d, empty=%v", len(sent), q.empty())
	}
}

func TestFlooderAddPortIdempotent(t *testing.T) {
	f := newFlooder([]int{0, 1}, true, func(int, flMsg) {})
	f.addPort(1)
	f.addPort(2)
	f.addPort(2)
	if len(f.ports) != 3 {
		t.Errorf("ports = %v", f.ports)
	}
}

func TestFlooderQuiescedLocally(t *testing.T) {
	f := newFlooder([]int{0}, true, func(int, flMsg) {})
	if !f.quiescedLocally() {
		t.Error("fresh flooder should be quiescent")
	}
	f.start(flKey{1, 1}, 0)
	if f.quiescedLocally() {
		t.Error("pending echo should block quiescence")
	}
}
