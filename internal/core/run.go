package core

import (
	"fmt"
	"math/rand"

	"ule/internal/graph"
	"ule/internal/sim"
)

// RunOpts configures a single election run driven by the registry.
type RunOpts struct {
	// Seed drives ID assignment and all node coins.
	Seed int64
	// IDs overrides the generated identifier assignment.
	IDs []int64
	// Anonymous runs without identifiers (only valid for algorithms with
	// NeedsIDs == false).
	Anonymous bool
	// D is the known diameter; 0 means "compute exactly" (O(n·m) —
	// fine for tests, pass the family's closed form in experiments).
	D int
	// MaxRounds bounds the run (0 = engine default).
	MaxRounds int
	// Mode selects CONGEST (default) or LOCAL.
	Mode sim.Mode
	// Parallel selects the goroutine runner.
	Parallel bool
	// Wake is the wake-up schedule (nil = simultaneous).
	Wake []int
	// WatchEdges and CountPerEdge enable the lower-bound instruments.
	WatchEdges   [][2]int
	CountPerEdge bool
	// Opt tunes the algorithm.
	Opt Options
}

// Run executes the registered algorithm on g and returns the run summary.
// Knowledge is granted exactly as the algorithm's Table 1 row assumes.
func Run(g *graph.Graph, algo string, ro RunOpts) (*sim.Result, error) {
	spec, ok := Get(algo)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	if spec.NeedsIDs && ro.Anonymous {
		return nil, fmt.Errorf("core: %s requires unique IDs", algo)
	}
	d := ro.D
	if d <= 0 && spec.NeedsD {
		d = g.DiameterExact()
	}
	ids := ro.IDs
	if ids == nil && !ro.Anonymous {
		rng := rand.New(rand.NewSource(sim.NodeSeed(ro.Seed, -1)))
		ids = sim.RandomIDs(g.N(), rng)
	}
	cfg := sim.Config{
		Graph: g,
		IDs:   ids,
		Know: sim.Knowledge{
			N: g.N(), HasN: spec.NeedsN,
			M: g.M(), HasM: false,
			D: d, HasD: spec.NeedsD,
		},
		Seed:          ro.Seed,
		Mode:          ro.Mode,
		MaxRounds:     ro.MaxRounds,
		Wake:          ro.Wake,
		StopWhenQuiet: spec.Quiet,
		WatchEdges:    ro.WatchEdges,
		CountPerEdge:  ro.CountPerEdge,
		Parallel:      ro.Parallel,
	}
	return sim.Run(cfg, spec.New(ro.Opt))
}
