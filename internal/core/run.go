package core

import (
	"fmt"
	"math/rand"

	"ule/internal/graph"
	"ule/internal/sim"
)

// RunOpts configures a single election run driven by the registry.
type RunOpts struct {
	// Seed drives ID assignment and all node coins.
	Seed int64
	// IDs overrides the generated identifier assignment.
	IDs []int64
	// Anonymous runs without identifiers (only valid for algorithms with
	// NeedsIDs == false).
	Anonymous bool
	// D is the known diameter; 0 means "compute exactly" (memoized on the
	// graph, so repeated runs on one graph pay the O(n·m) all-pairs BFS
	// once — pass the family's closed form to skip it entirely).
	D int
	// MaxRounds bounds the run (0 = engine default).
	MaxRounds int
	// Model is the execution model — mode, delay schedule and fault
	// schedule in one parsed value. See sim.ModelSpec for the axes and
	// their constraints (that doc is the single source of truth). The
	// zero ModelSpec defers to the deprecated Mode/Delay fields below.
	Model sim.ModelSpec
	// Mode selects the communication model.
	//
	// Deprecated: set Model (ignored unless Model is zero).
	Mode sim.Mode
	// Delay is the ASYNC message-delay schedule spec.
	//
	// Deprecated: set Model (ignored unless Model is zero).
	Delay string
	// DenseLoop selects the legacy dense per-round engine (synchronous
	// modes only; used by differential tests and engine benchmarks).
	DenseLoop bool
	// Parallel selects the goroutine runner.
	Parallel bool
	// Shards partitions the event engine into contiguous node shards that
	// step concurrently and exchange cross-shard messages at tick
	// barriers. Results are byte-identical at every shard count; see
	// sim.Config.Shards for the exact semantics (0/1 = single shard,
	// negative = auto-size to GOMAXPROCS).
	Shards int
	// Wake is the wake-up schedule (nil = simultaneous).
	Wake []int
	// WatchEdges and CountPerEdge enable the lower-bound instruments.
	WatchEdges   [][2]int
	CountPerEdge bool
	// Opt tunes the algorithm.
	Opt Options
}

// config resolves the RunOpts against the algorithm spec into the engine
// configuration and protocol instance. Knowledge is granted exactly as the
// algorithm's Table 1 row assumes.
func (ro RunOpts) config(g *graph.Graph, spec Spec) (sim.Config, sim.Protocol, error) {
	if spec.NeedsIDs && ro.Anonymous {
		return sim.Config{}, nil, fmt.Errorf("core: %s requires unique IDs", spec.Name)
	}
	d := ro.D
	if d <= 0 && spec.NeedsD {
		d = g.DiameterExact()
	}
	ids := ro.IDs
	if ids == nil && !ro.Anonymous {
		rng := rand.New(rand.NewSource(sim.NodeSeed(ro.Seed, -1)))
		ids = sim.RandomIDs(g.N(), rng)
	}
	// The deprecated Mode/Delay shims fold into a ModelSpec, so from here
	// on there is exactly one model representation.
	m := ro.Model
	if m.IsZero() {
		m.Mode = ro.Mode
		if ro.Delay != "" || ro.Mode == sim.ASYNC {
			ds, err := sim.ParseDelay(ro.Delay)
			if err != nil {
				return sim.Config{}, nil, err
			}
			// A non-empty Delay outside ASYNC mode is passed through so
			// the engine rejects the misconfiguration.
			m.Delay = ds
		}
	}
	cfg := sim.Config{
		Graph: g,
		IDs:   ids,
		Know: sim.Knowledge{
			N: g.N(), HasN: spec.NeedsN,
			M: g.M(), HasM: false,
			D: d, HasD: spec.NeedsD,
		},
		Seed:          ro.Seed,
		Mode:          m.Mode,
		Delay:         m.Delay,
		Faults:        m.Faults,
		MaxRounds:     ro.MaxRounds,
		Wake:          ro.Wake,
		StopWhenQuiet: spec.Quiet,
		WatchEdges:    ro.WatchEdges,
		CountPerEdge:  ro.CountPerEdge,
		Parallel:      ro.Parallel,
		Shards:        ro.Shards,
		DenseLoop:     ro.DenseLoop,
	}
	return cfg, spec.New(ro.Opt), nil
}

// Correct reports whether res is a correct election outcome under the
// given execution model: fault-free, the paper's success condition (one
// leader, everyone decided — Result.UniqueLeader); under a fault
// schedule, the fault-tolerant condition (exactly one live leader and
// agreement among the live nodes — Result.UniqueLiveLeader). A model
// with crash-recovery or churn is judged by the same live-node rule: a
// node that rejoined and re-decided counts, one still undecided at the
// end fails the run.
func Correct(m sim.ModelSpec, res *sim.Result) bool {
	if m.Faults == nil {
		return res.UniqueLeader()
	}
	return res.UniqueLiveLeader()
}

// Run executes the registered algorithm on g and returns the run summary.
func Run(g *graph.Graph, algo string, ro RunOpts) (*sim.Result, error) {
	spec, ok := Get(algo)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	cfg, proto, err := ro.config(g, spec)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg, proto)
}

// Prepared binds a registered algorithm to one graph with a reusable
// sim.Runner, so a batch driver pays per-trial setup cost — reverse-port
// tables, engine scratch buffers, the memoized diameter — once. Results
// are identical to calling Run per trial. Not safe for concurrent use;
// sweep workers hold one Prepared per (graph, algorithm) cell each.
type Prepared struct {
	g      *graph.Graph
	spec   Spec
	runner *sim.Runner
}

// Prepare validates the algorithm name and graph and builds the reusable
// runner state.
func Prepare(g *graph.Graph, algo string) (*Prepared, error) {
	spec, ok := Get(algo)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	runner, err := sim.NewRunner(g)
	if err != nil {
		return nil, err
	}
	return &Prepared{g: g, spec: spec, runner: runner}, nil
}

// Spec returns the algorithm spec this Prepared runs.
func (p *Prepared) Spec() Spec { return p.spec }

// Run executes one trial.
func (p *Prepared) Run(ro RunOpts) (*sim.Result, error) {
	cfg, proto, err := ro.config(p.g, p.spec)
	if err != nil {
		return nil, err
	}
	return p.runner.Run(cfg, proto)
}

// RunInto executes one trial into *out, recycling out's slices and maps
// across calls (see sim.Runner.RunInto). Sweep drivers that reduce each
// result to scalars before the next trial use this to keep per-trial
// allocation flat; the filled Result is overwritten by the next RunInto
// with the same out.
func (p *Prepared) RunInto(ro RunOpts, out *sim.Result) error {
	cfg, proto, err := ro.config(p.g, p.spec)
	if err != nil {
		return err
	}
	return p.runner.RunInto(cfg, proto, out)
}

// RunMany executes the registered algorithm once per RunOpts entry on a
// shared graph through a single Prepared instance. This is the batching
// hook the sweep harness drives. It fails fast on the first trial error.
func RunMany(g *graph.Graph, algo string, runs []RunOpts) ([]*sim.Result, error) {
	p, err := Prepare(g, algo)
	if err != nil {
		return nil, err
	}
	results := make([]*sim.Result, len(runs))
	for i, ro := range runs {
		res, err := p.Run(ro)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		results[i] = res
	}
	return results, nil
}
