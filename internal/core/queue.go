package core

import (
	"sort"

	"ule/internal/sim"
)

// portQueue drips queued payloads at a constant per-round rate per port,
// keeping streams CONGEST-compliant.
type portQueue struct {
	q map[int][]sim.Payload
}

func newPortQueue() *portQueue { return &portQueue{q: make(map[int][]sim.Payload)} }

func (pq *portQueue) push(port int, p sim.Payload) {
	pq.q[port] = append(pq.q[port], p)
}

func (pq *portQueue) flush(send func(int, sim.Payload), perRound int) {
	ports := make([]int, 0, len(pq.q))
	for p := range pq.q {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		q := pq.q[p]
		k := perRound
		if k > len(q) {
			k = len(q)
		}
		for i := 0; i < k; i++ {
			send(p, q[i])
		}
		if k == len(q) {
			delete(pq.q, p)
		} else {
			pq.q[p] = q[k:]
		}
	}
}

func (pq *portQueue) empty() bool { return len(pq.q) == 0 }
