package core

import (
	"ule/internal/sim"
	"ule/internal/spanner"
)

// SpannerLE is the Corollary 4.2 algorithm: build a Baswana–Sen
// n^(1+1/k)-edge spanner in O(k²) rounds and O(k·m) messages, then run the
// least-element election restricted to spanner edges. For graphs with
// m > n^(1+ε) and k = ⌈2/ε⌉ this matches both lower bounds: O(D) time and
// O(m) expected messages, with success whp (probability 1 here thanks to
// ID tiebreaks).
type SpannerLE struct {
	// K is the Baswana–Sen parameter (stretch 2k−1).
	K int
}

var _ sim.Protocol = SpannerLE{}

// Name implements sim.Protocol.
func (s SpannerLE) Name() string { return "spanner-le" }

// New implements sim.Protocol.
func (s SpannerLE) New(info sim.NodeInfo) sim.Process {
	k := s.K
	if k < 2 {
		k = 2
	}
	return &spannerLEProc{k: k}
}

type spannerLEProc struct {
	k         int
	machine   *spanner.Machine
	total     int
	startRd   int
	electing  bool
	fl        *flooder
	me        flKey
	decided   bool
	spanPorts []int

	buf []portMsg // reusable per-round decode scratch
}

func (p *spannerLEProc) Start(c *sim.Context) {
	identity := c.ID()
	if !c.HasID() {
		identity = c.Rand().Int63()
	}
	p.machine = spanner.New(identity, c.Know().N, p.k)
	p.total = spanner.TotalRounds(p.k)
	p.startRd = c.Round()
}

func (p *spannerLEProc) Round(c *sim.Context, inbox []sim.Message) {
	rel := c.Round() - p.startRd
	if !p.electing {
		done := p.machine.Step(c, rel, inbox)
		if done {
			p.beginElection(c)
		}
		return
	}
	msgs := p.buf[:0]
	for _, in := range inbox {
		if b, ok := in.Payload.(*taggedMsg); ok {
			if t := unboxTagged(b); t.tag == tagPhaseB {
				msgs = append(msgs, portMsg{port: in.Port, m: t.m})
			}
		}
	}
	p.buf = msgs
	p.fl.handleRound(msgs)
	p.fl.flush()
	if p.decided {
		return
	}
	if p.fl.completed {
		if p.fl.won {
			c.Decide(sim.Leader)
		} else {
			c.Decide(sim.NonLeader)
		}
		p.decided = true
	} else if p.fl.heard != p.me && p.fl.better(p.fl.heard, p.me) {
		c.Decide(sim.NonLeader)
		p.decided = true
	}
}

// beginElection switches to the least-element election on spanner ports.
// All nodes switch in the same round because the spanner schedule length is
// a network-wide constant.
func (p *spannerLEProc) beginElection(c *sim.Context) {
	p.electing = true
	p.spanPorts = p.machine.Ports()
	ports := p.spanPorts
	if len(ports) == 0 && c.Degree() > 0 {
		// Defensive fallback; the construction guarantees every node an
		// incident spanner edge in connected graphs (tested), but a
		// disconnected overlay must never elect extra leaders.
		ports = allPorts(c.Degree())
	}
	p.fl = newFlooder(ports, true, func(port int, m flMsg) {
		c.Send(port, boxTagged(tagPhaseB, m))
	})
	p.me = drawKey(c, rankSpace(c.Know().N))
	p.fl.start(p.me, 0)
	p.fl.flush()
	if p.fl.completed && !p.decided {
		if p.fl.won {
			c.Decide(sim.Leader)
		} else {
			c.Decide(sim.NonLeader)
		}
		p.decided = true
	}
}

func init() {
	register(Spec{
		Name:    "spanner-le",
		Result:  "Cor 4.2",
		Summary: "Baswana–Sen spanner then least-el on it; O(D) time, O(m) msgs when m>n^(1+ε), whp",
		NeedsN:  true,
		Quiet:   true,
		New:     func(o Options) sim.Protocol { return SpannerLE{K: o.spannerK()} },
	})
}
