package core

import (
	"math/rand"
	"strings"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// testGraphs returns the topology zoo used by the cross-algorithm safety
// tests, together with exact diameters.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(123))
	g1, err := graph.RandomConnected(30, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.RandomConnected(50, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	lolli, err := graph.NewLollipop(24, 80)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := graph.NewCliqueCycle(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"single":      graph.Path(1),
		"pair":        graph.Path(2),
		"path":        graph.Path(17),
		"ring":        graph.Ring(20),
		"star":        graph.Star(15),
		"complete":    graph.Complete(12),
		"grid":        graph.Grid(5, 6),
		"hypercube":   graph.Hypercube(4),
		"random":      g1,
		"dense":       g2,
		"lollipop":    lolli.Graph,
		"cliquecycle": cc.Graph,
	}
}

// checkElection runs the algorithm across the zoo and many seeds, asserting
// safety (never more than one leader) and counting successes; it requires
// the success rate to be at least minRate.
func checkElection(t *testing.T, algo string, seeds int, minRate float64) {
	t.Helper()
	graphs := testGraphs(t)
	total, successes := 0, 0
	for name, g := range graphs {
		for seed := int64(0); seed < int64(seeds); seed++ {
			res, err := Run(g, algo, RunOpts{Seed: seed, MaxRounds: 1 << 16})
			if err != nil {
				t.Fatalf("%s on %s seed %d: %v", algo, name, seed, err)
			}
			if res.HitRoundCap {
				t.Fatalf("%s on %s seed %d: hit round cap", algo, name, seed)
			}
			if n := res.LeaderCount(); n > 1 {
				t.Fatalf("%s on %s seed %d: %d leaders (safety violation)", algo, name, seed, n)
			}
			total++
			if res.UniqueLeader() {
				successes++
			}
		}
	}
	rate := float64(successes) / float64(total)
	if rate < minRate {
		t.Errorf("%s success rate %.3f < %.3f (%d/%d)", algo, rate, minRate, successes, total)
	}
}

func TestLeastElElectsUniqueLeader(t *testing.T) {
	// f(n)=n with ID tiebreaks: success probability 1.
	checkElection(t, "leastel", 8, 1.0)
}

func TestLeastElLogLog(t *testing.T) {
	// f(n)=Θ(log n): whp, but small graphs can have zero candidates;
	// accept a small failure rate.
	checkElection(t, "leastel-loglog", 8, 0.9)
}

func TestLeastElConst(t *testing.T) {
	// ε=0.1 ⇒ success ≥ 0.9 on every graph.
	checkElection(t, "leastel-const", 8, 0.9)
}

func TestFloodElectsUniqueLeader(t *testing.T) {
	checkElection(t, "flood", 8, 1.0)
}

func TestTrivialSuccessNearOneOverE(t *testing.T) {
	g := graph.Ring(64)
	successes, trials := 0, 600
	for seed := 0; seed < trials; seed++ {
		res, err := Run(g, "trivial", RunOpts{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != 0 {
			t.Fatal("trivial sent messages")
		}
		if res.Rounds != 1 {
			t.Fatalf("trivial took %d rounds", res.Rounds)
		}
		if res.UniqueLeader() {
			successes++
		}
	}
	rate := float64(successes) / float64(trials)
	// 1/e ≈ 0.368; allow generous Monte-Carlo slack.
	if rate < 0.28 || rate > 0.46 {
		t.Errorf("trivial success rate %.3f, want ≈ 0.368", rate)
	}
}

func TestLeastElTimeIsLinearInD(t *testing.T) {
	// Time must be O(D): on a ring, rounds ≈ 2·D plus small constants.
	for _, n := range []int{16, 32, 64, 128} {
		g := graph.Ring(n)
		d := n / 2
		res, err := Run(g, "leastel", RunOpts{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !res.UniqueLeader() {
			t.Fatalf("n=%d: no unique leader", n)
		}
		if res.Rounds > 4*d+8 {
			t.Errorf("n=%d: rounds=%d exceeds 4D+8=%d", n, res.Rounds, 4*d+8)
		}
	}
}

func TestLeastElMessagesScaleWithMLogN(t *testing.T) {
	// Messages must be O(m·log n) for f=n (each list entry crosses each
	// edge a constant number of times).
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{32, 64, 128} {
		g, err := graph.RandomConnected(n, 4*n, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, "leastel", RunOpts{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		// Generous constant: 2 messages (rank+echo) per entry per edge
		// endpoint, expected list length ~ ln n.
		limit := float64(g.M()) * 8 * logf(n)
		if float64(res.Messages) > limit {
			t.Errorf("n=%d: messages=%d > %0.f", n, res.Messages, limit)
		}
	}
}

func logf(n int) float64 {
	l := 1.0
	for v := 2; v < n; v *= 2 {
		l++
	}
	return l
}

func TestLeastElConstUsesFewerMessagesThanAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := graph.RandomConnected(200, 1200, rng)
	if err != nil {
		t.Fatal(err)
	}
	var msgsAll, msgsConst int64
	for seed := int64(0); seed < 5; seed++ {
		ra, err := Run(g, "leastel", RunOpts{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Run(g, "leastel-const", RunOpts{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		msgsAll += ra.Messages
		msgsConst += rc.Messages
	}
	if msgsConst >= msgsAll {
		t.Errorf("Theorem 4.4.(B) ordering violated: const=%d >= all=%d", msgsConst, msgsAll)
	}
}

func TestAnonymousLeastEl(t *testing.T) {
	// The randomized algorithms work in anonymous networks (§2).
	g := graph.Ring(24)
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(g, "leastel", RunOpts{Seed: seed, Anonymous: true})
		if err != nil {
			t.Fatal(err)
		}
		if n := res.LeaderCount(); n > 1 {
			t.Fatalf("anonymous leastel elected %d leaders", n)
		}
		if !res.UniqueLeader() {
			t.Errorf("seed %d: anonymous leastel failed (rank collision is ~n^-62)", seed)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, n := range names {
		s, ok := Get(n)
		if !ok || s.Name != n || s.New == nil {
			t.Errorf("bad spec for %q", n)
		}
		desc, err := Describe(n)
		if err != nil || !strings.Contains(desc, n) {
			t.Errorf("Describe(%q) = %q, %v", n, desc, err)
		}
	}
	if _, ok := Get("no-such-algo"); ok {
		t.Error("unknown name resolved")
	}
	if _, err := Describe("no-such-algo"); err == nil {
		t.Error("Describe accepted unknown name")
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := Run(graph.Path(3), "nope", RunOpts{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunRejectsAnonymousForIDAlgorithms(t *testing.T) {
	if _, err := Run(graph.Path(3), "flood", RunOpts{Anonymous: true}); err == nil {
		t.Error("flood must require IDs")
	}
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	g := graph.Torus(5, 5)
	for _, algo := range []string{"leastel", "leastel-const", "flood"} {
		a, err := Run(g, algo, RunOpts{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, algo, RunOpts{Seed: 3, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Messages != b.Messages || a.Rounds != b.Rounds || len(a.Leaders) != len(b.Leaders) {
			t.Errorf("%s: parallel diverges: %d/%d msgs, %d/%d rounds", algo,
				a.Messages, b.Messages, a.Rounds, b.Rounds)
		}
	}
}

func TestLeastElCongestCompliant(t *testing.T) {
	// All payloads must fit the CONGEST budget (Run would error otherwise);
	// additionally check the observed max is Θ(log n)-sized.
	g := graph.Complete(40)
	res, err := Run(g, "leastel", RunOpts{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMsgBits > sim.DefaultBitCap(g.N()) {
		t.Errorf("payload of %d bits exceeds cap", res.MaxMsgBits)
	}
}
