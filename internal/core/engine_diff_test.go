package core

import (
	"math/rand"
	"testing"

	"ule/internal/sim"
)

// TestEventEngineMatchesDenseAllAlgorithms runs every registered algorithm
// through both execution engines — the event-driven scheduler and the
// seed's dense per-round loop — and requires byte-identical results, under
// both simultaneous and adversarial wake-up. This is the contract that let
// the engine swap land without touching a single algorithm.
func TestEventEngineMatchesDenseAllAlgorithms(t *testing.T) {
	for gname, g := range fixedGraphs(t) {
		wakes := map[string][]int{"sync": nil}
		adv := make([]int, g.N())
		for i := range adv {
			adv[i] = sim.WakeOnMessage
		}
		adv[0] = 1
		wakes["adversarial"] = adv
		for _, algo := range Names() {
			for wname, wake := range wakes {
				t.Run(gname+"/"+algo+"/"+wname, func(t *testing.T) {
					ro := RunOpts{
						Seed: 5,
						IDs:  sim.PermutationIDs(g.N(), rand.New(rand.NewSource(5))),
						Wake: wake,
						// dfs under adversarial wake can stall silently;
						// a modest cap keeps the matrix fast either way.
						MaxRounds: 1 << 12,
					}
					ro.DenseLoop = true
					dense, err := Run(g, algo, ro)
					if err != nil {
						t.Fatal(err)
					}
					ro.DenseLoop = false
					event, err := Run(g, algo, ro)
					if err != nil {
						t.Fatal(err)
					}
					db, eb := resultBytes(t, dense), resultBytes(t, event)
					if string(db) != string(eb) {
						t.Errorf("engines diverge:\ndense: %s\nevent: %s", db, eb)
					}
				})
			}
		}
	}
}

// TestAsyncAllAlgorithmsDeterministic: in ASYNC mode every registered
// algorithm must produce the same transcript for the same seed under each
// delay schedule. Success is not required — round-counting protocols
// legitimately stall against the asynchronous adversary — but the outcome,
// whatever it is, must be reproducible.
func TestAsyncAllAlgorithmsDeterministic(t *testing.T) {
	g := fixedGraphs(t)["random:24:72"]
	for _, algo := range Names() {
		for _, delay := range []string{"unit", "random:5", "fifo:5"} {
			t.Run(algo+"/"+delay, func(t *testing.T) {
				run := func() []byte {
					res, err := Run(g, algo, RunOpts{
						Seed: 8,
						IDs:  sim.PermutationIDs(g.N(), rand.New(rand.NewSource(8))),
						Mode: sim.ASYNC, Delay: delay, MaxRounds: 1 << 12,
					})
					if err != nil {
						t.Fatal(err)
					}
					return resultBytes(t, res)
				}
				a, b := run(), run()
				if string(a) != string(b) {
					t.Errorf("async run not reproducible:\n%s\n%s", a, b)
				}
			})
		}
	}
}
