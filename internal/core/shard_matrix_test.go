package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// shardResultBytes extends resultBytes with the fault-cell fields, which
// the fault matrix must also reproduce byte-for-byte at every shard
// count.
func shardResultBytes(t *testing.T, res *sim.Result) string {
	t.Helper()
	return fmt.Sprintf("%s crashes=%d recov=%d dropped=%d crashed=%v",
		resultBytes(t, res), res.Crashes, res.Recoveries, res.Dropped, res.Crashed)
}

// TestShardMatrixAllAlgorithms is the determinism matrix: every
// registered algorithm × execution model × fault schedule must produce
// byte-identical results at shards ∈ {1, 2, 4, 8}. The single-shard run
// is the reference; the matrix covers both synchronous modes and the
// asynchronous model with a non-FIFO random adversary.
func TestShardMatrixAllAlgorithms(t *testing.T) {
	g, err := graph.RandomConnected(24, 72, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	models := []string{"local", "congest", "async+random:4"}
	faults := []string{"", "crash:0.2", "crashrec:0.1:5"}
	for _, algo := range Names() {
		for _, model := range models {
			for _, fault := range faults {
				spec := model
				if fault != "" {
					spec += "+" + fault
				}
				t.Run(algo+"/"+spec, func(t *testing.T) {
					m, err := sim.ParseModel(spec)
					if err != nil {
						t.Fatal(err)
					}
					run := func(shards int) string {
						res, err := Run(g, algo, RunOpts{
							Seed:  5,
							IDs:   sim.PermutationIDs(g.N(), rand.New(rand.NewSource(5))),
							Model: m, MaxRounds: 1 << 12,
							WatchEdges: [][2]int{{0, 1}}, CountPerEdge: true,
							Shards: shards,
						})
						if err != nil {
							t.Fatal(err)
						}
						return shardResultBytes(t, res)
					}
					ref := run(1)
					for _, shards := range []int{2, 4, 8} {
						if got := run(shards); got != ref {
							t.Errorf("shards=%d diverges:\n1: %s\n%d: %s", shards, ref, shards, got)
						}
					}
				})
			}
		}
	}
}

// TestThreeWayEngineDifferential runs representative algorithms through
// all three execution paths — the sharded engine at several counts, the
// single-shard event engine, and the legacy dense per-round loop — on
// small ring, complete and dumbbell instances and requires identical
// transcripts. In ASYNC mode the dense loop does not apply, so the
// differential is sharded-vs-event only.
func TestThreeWayEngineDifferential(t *testing.T) {
	graphs := map[string]*graph.Graph{"ring:32": graph.Ring(32), "complete:16": graph.Complete(16)}
	db, err := graph.FromSpec("dumbbell:16:40", 3)
	if err != nil {
		t.Fatal(err)
	}
	graphs["dumbbell:16:40"] = db
	algos := []string{"leastel", "flood", "kingdom", "cluster"}
	models := []string{"congest", "local", "async+random:3"}
	for gname, g := range graphs {
		if g.N() > 64 {
			t.Fatalf("%s: differential graphs must stay ≤ 64 nodes, got %d", gname, g.N())
		}
		for _, algo := range algos {
			for _, model := range models {
				t.Run(gname+"/"+algo+"/"+model, func(t *testing.T) {
					m, err := sim.ParseModel(model)
					if err != nil {
						t.Fatal(err)
					}
					base := RunOpts{
						Seed:  9,
						IDs:   sim.PermutationIDs(g.N(), rand.New(rand.NewSource(9))),
						Model: m, MaxRounds: 1 << 12,
						WatchEdges: [][2]int{{0, 1}}, CountPerEdge: true,
					}
					run := func(ro RunOpts) string {
						res, err := Run(g, algo, ro)
						if err != nil {
							t.Fatal(err)
						}
						return shardResultBytes(t, res)
					}
					event := run(base)
					for _, shards := range []int{2, 4, 8} {
						ro := base
						ro.Shards = shards
						if got := run(ro); got != event {
							t.Errorf("sharded(%d) vs event:\nevent:   %s\nsharded: %s", shards, event, got)
						}
					}
					if m.Mode != sim.ASYNC {
						ro := base
						ro.DenseLoop = true
						if dense := run(ro); dense != event {
							t.Errorf("dense vs event:\ndense: %s\nevent: %s", dense, event)
						}
					}
				})
			}
		}
	}
}
