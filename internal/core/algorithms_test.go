package core

import (
	"math/rand"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// runOn is a test helper running one algorithm on one graph with
// small-valued permutation IDs (so even the Theorem 4.1 algorithm, whose
// time is exponential in the smallest ID, terminates promptly).
func runOn(t *testing.T, g *graph.Graph, algo string, seed int64) *sim.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed ^ 0x51ed))
	res, err := Run(g, algo, RunOpts{
		Seed:      seed,
		IDs:       sim.PermutationIDs(g.N(), rng),
		MaxRounds: 1 << 17,
	})
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	return res
}

// checkAll runs an algorithm across the zoo asserting safety and a minimum
// success rate, with permutation IDs.
func checkAll(t *testing.T, algo string, seeds int, minRate float64) {
	t.Helper()
	graphs := testGraphs(t)
	total, succ := 0, 0
	for name, g := range graphs {
		for s := int64(0); s < int64(seeds); s++ {
			res := runOn(t, g, algo, s)
			if res.HitRoundCap {
				t.Fatalf("%s on %s seed %d: hit round cap", algo, name, s)
			}
			if res.LeaderCount() > 1 {
				t.Fatalf("%s on %s seed %d: %d leaders", algo, name, s, res.LeaderCount())
			}
			total++
			if res.UniqueLeader() {
				succ++
			}
		}
	}
	if rate := float64(succ) / float64(total); rate < minRate {
		t.Errorf("%s success rate %.3f < %.3f", algo, rate, minRate)
	}
}

func TestDFSElectsUniqueLeader(t *testing.T) {
	checkAll(t, "dfs", 4, 1.0)
}

func TestDFSMessagesLinearInM(t *testing.T) {
	// Theorem 4.1: O(m) messages. The constant covers wake-up (2m),
	// winner traversal (4m), losers (≤4m total geometric) and the done
	// flood (2m).
	rng := rand.New(rand.NewSource(2))
	for _, tt := range []struct{ n, m int }{{20, 40}, {40, 160}, {80, 640}, {120, 2000}} {
		g, err := graph.RandomConnected(tt.n, tt.m, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := runOn(t, g, "dfs", 11)
		if !res.UniqueLeader() {
			t.Fatalf("n=%d: no unique leader", tt.n)
		}
		if res.Messages > int64(16*g.M()) {
			t.Errorf("n=%d m=%d: %d messages > 16m (not O(m))", tt.n, tt.m, res.Messages)
		}
	}
}

func TestDFSTimeGrowsWithMinID(t *testing.T) {
	// The DFS running time is ~2m·2^minID: doubling the smallest ID must
	// roughly double the time.
	g := graph.Ring(16)
	base := int64(-1)
	var prev int
	for _, minID := range []int64{1, 2, 3, 4} {
		ids := sim.SequentialIDs(g.N(), minID)
		res, err := Run(g, "dfs", RunOpts{Seed: 1, IDs: ids, MaxRounds: 1 << 17})
		if err != nil {
			t.Fatal(err)
		}
		if !res.UniqueLeader() {
			t.Fatalf("minID=%d: no unique leader", minID)
		}
		if base >= 0 && res.Rounds < prev {
			t.Errorf("minID=%d: rounds %d did not grow (prev %d)", minID, res.Rounds, prev)
		}
		base = minID
		prev = res.Rounds
	}
}

func TestDFSAdversarialWakeup(t *testing.T) {
	// Theorem 4.1 explicitly handles non-simultaneous wake-up via the
	// wake flood.
	rng := rand.New(rand.NewSource(3))
	g, err := graph.RandomConnected(24, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		wrng := rand.New(rand.NewSource(seed))
		res, err := Run(g, "dfs", RunOpts{
			Seed:      seed,
			IDs:       sim.PermutationIDs(g.N(), wrng),
			Wake:      sim.AdversarialWake(g.N(), 10, wrng),
			MaxRounds: 1 << 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.UniqueLeader() {
			t.Fatalf("seed %d: no unique leader under adversarial wakeup", seed)
		}
	}
}

func TestEstimateElectsUniqueLeader(t *testing.T) {
	checkAll(t, "leastel-estimate", 6, 1.0)
}

func TestEstimateNeedsNoKnowledge(t *testing.T) {
	spec := MustGet("leastel-estimate")
	if spec.NeedsN || spec.NeedsD {
		t.Error("Corollary 4.5 must not require knowledge of n or D")
	}
}

func TestLasVegasElectsUniqueLeader(t *testing.T) {
	checkAll(t, "lasvegas", 6, 1.0)
}

func TestLasVegasExpectedTimeLinearInD(t *testing.T) {
	// Expected O(D): across seeds, the mean time on a ring must stay
	// within a constant times D (epochs are 2D+4; a few restarts allowed).
	g := graph.Ring(40)
	d := 20
	var total int
	const seeds = 20
	for s := int64(0); s < seeds; s++ {
		res := runOn(t, g, "lasvegas", s)
		if !res.UniqueLeader() {
			t.Fatalf("seed %d failed", s)
		}
		total += res.Rounds
	}
	if avg := total / seeds; avg > 8*d {
		t.Errorf("mean rounds %d > 8D (expected O(D) with small constant)", avg)
	}
}

func TestSpannerLEElectsUniqueLeader(t *testing.T) {
	checkAll(t, "spanner-le", 6, 1.0)
}

func TestClusterElectsUniqueLeader(t *testing.T) {
	checkAll(t, "cluster", 6, 1.0)
}

func TestClusterMessageShape(t *testing.T) {
	// Theorem 4.7: O(m + n·log n) messages. On dense graphs this beats
	// the f=n least-element algorithm's O(m·log n).
	rng := rand.New(rand.NewSource(17))
	g, err := graph.RandomConnected(150, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	var clMsgs, leMsgs int64
	for s := int64(0); s < 5; s++ {
		rng2 := rand.New(rand.NewSource(s ^ 0x51ed))
		ids := sim.PermutationIDs(g.N(), rng2)
		// At n=150 the paper's 8·ln(n) candidate count is ≈ n/4, far from
		// the asymptotic regime; scale it down to Θ(log n) proper so the
		// O(m + n log n) vs O(m log n) separation is visible at this size.
		cl, err := Run(g, "cluster", RunOpts{
			Seed: s, IDs: ids, MaxRounds: 1 << 17,
			Opt: Options{ClusterCandidateFactor: 0.25},
		})
		if err != nil {
			t.Fatal(err)
		}
		le := runOn(t, g, "leastel", s)
		if !cl.UniqueLeader() || !le.UniqueLeader() {
			t.Fatalf("seed %d: failed election", s)
		}
		clMsgs += cl.Messages
		leMsgs += le.Messages
	}
	if clMsgs >= leMsgs {
		t.Errorf("cluster (%d msgs) should beat leastel f=n (%d msgs) on dense graphs", clMsgs, leMsgs)
	}
}

func TestKingdomElectsUniqueLeader(t *testing.T) {
	checkAll(t, "kingdom", 4, 1.0)
}

func TestKingdomDElectsUniqueLeader(t *testing.T) {
	checkAll(t, "kingdom-d", 4, 1.0)
}

func TestKingdomNeedsNoKnowledge(t *testing.T) {
	spec := MustGet("kingdom")
	if spec.NeedsN || spec.NeedsD {
		t.Error("Theorem 4.10 must not require knowledge of n or D")
	}
	if !spec.Deterministic {
		t.Error("Theorem 4.10 is deterministic")
	}
}

func TestKingdomTimeShape(t *testing.T) {
	// O(D·log n) time: on rings, rounds/(D·log n) stays bounded.
	for _, n := range []int{16, 32, 64, 128} {
		g := graph.Ring(n)
		res := runOn(t, g, "kingdom", 5)
		if !res.UniqueLeader() {
			t.Fatalf("n=%d: failed", n)
		}
		d := float64(n / 2)
		limit := 24 * d * logf(n)
		if float64(res.Rounds) > limit {
			t.Errorf("n=%d: rounds=%d > %0.f (not O(D log n))", n, res.Rounds, limit)
		}
	}
}

func TestKingdomMessageShape(t *testing.T) {
	// O(m·log n) messages.
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{32, 64, 128} {
		g, err := graph.RandomConnected(n, 4*n, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := runOn(t, g, "kingdom", 7)
		if !res.UniqueLeader() {
			t.Fatalf("n=%d: failed", n)
		}
		limit := 24 * float64(g.M()) * logf(n)
		if float64(res.Messages) > limit {
			t.Errorf("n=%d: messages=%d > %0.f (not O(m log n))", n, res.Messages, limit)
		}
	}
}

func TestEveryAlgorithmOnEveryGraphSmoke(t *testing.T) {
	// One seed across the full registry and zoo: no crashes, no round
	// caps, never two leaders.
	graphs := testGraphs(t)
	for _, algo := range Names() {
		for name, g := range graphs {
			res := runOn(t, g, algo, 99)
			if res.HitRoundCap {
				t.Errorf("%s on %s: round cap", algo, name)
			}
			// The trivial algorithm's legal failure mode is multiple
			// leaders; every real election must never elect two.
			if algo != "trivial" && res.LeaderCount() > 1 {
				t.Errorf("%s on %s: %d leaders", algo, name, res.LeaderCount())
			}
		}
	}
}
