// Package core implements the paper's contribution: the universal leader
// election algorithms of Table 1 (Kutten, Pandurangan, Peleg, Robinson,
// Trehan — "On the Complexity of Universal Leader Election", PODC 2013 /
// JACM 2015), plus the baselines they are measured against.
//
// Every algorithm is a sim.Protocol; the package-level registry maps the
// names used by the CLI, the experiment harness and the benchmarks to
// constructors together with the knowledge each algorithm assumes (the
// "Knowledge" column of Table 1).
package core

import (
	"fmt"
	"math"
	"sort"

	"ule/internal/sim"
)

// Options configures algorithm constructors; zero values select the
// defaults documented per field.
type Options struct {
	// Epsilon is the target failure probability of leastel-const
	// (Theorem 4.4.(B)) and the density exponent of spanner-le
	// (Corollary 4.2). Default 0.1.
	Epsilon float64
	// FScale multiplies the candidate budget f(n) of leastel variants.
	// Default 1.
	FScale float64
	// SpannerK is the Baswana–Sen parameter (spanner stretch 2k-1).
	// Default: ⌈2/Epsilon⌉ capped at 4.
	SpannerK int
	// DFSBudgetCap caps the per-agent step period 2^i of the Theorem 4.1
	// algorithm to keep simulations finite when IDs are large. Default 20
	// (period at most 2^20 rounds). The capped algorithm sends no more
	// messages than the uncapped one.
	DFSBudgetCap int
	// ClusterCandidateFactor scales the 8·ln(n)/n candidate probability
	// of Algorithm 1. Default 1.
	ClusterCandidateFactor float64
}

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return 0.1
	}
	return o.Epsilon
}

func (o Options) fScale() float64 {
	if o.FScale <= 0 {
		return 1
	}
	return o.FScale
}

func (o Options) spannerK() int {
	if o.SpannerK > 0 {
		return o.SpannerK
	}
	k := int(math.Ceil(2 / o.epsilon()))
	if k > 4 {
		k = 4
	}
	if k < 2 {
		k = 2
	}
	return k
}

func (o Options) dfsBudgetCap() int {
	if o.DFSBudgetCap > 0 {
		return o.DFSBudgetCap
	}
	return 20
}

func (o Options) clusterFactor() float64 {
	if o.ClusterCandidateFactor <= 0 {
		return 1
	}
	return o.ClusterCandidateFactor
}

// Spec describes a registered algorithm.
type Spec struct {
	// Name is the registry key.
	Name string
	// Result ties the algorithm to the paper artifact it realizes.
	Result string
	// Summary is a one-line description.
	Summary string
	// Deterministic reports whether the algorithm uses no coins.
	Deterministic bool
	// NeedsN / NeedsD report required a-priori knowledge.
	NeedsN, NeedsD bool
	// NeedsIDs reports whether unique identifiers are required.
	NeedsIDs bool
	// Quiet requests the engine's StopWhenQuiet termination (the protocol
	// decides everywhere but does not halt every node explicitly).
	Quiet bool
	// New constructs the protocol.
	New func(o Options) sim.Protocol
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("core: duplicate algorithm " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns the spec registered under name.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// MustGet is Get for names known to exist; it panics otherwise (programmer
// error in experiment code).
func MustGet(name string) Spec {
	s, ok := registry[name]
	if !ok {
		panic("core: unknown algorithm " + name)
	}
	return s
}

// Names returns all registered algorithm names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns a human-readable one-line description of an algorithm.
func Describe(name string) (string, error) {
	s, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("core: unknown algorithm %q", name)
	}
	return fmt.Sprintf("%-18s %-14s %s", s.Name, s.Result, s.Summary), nil
}
