package core

import (
	"sync"

	"ule/internal/sim"
)

// Estimate is the Corollary 4.5 algorithm: leader election with probability
// 1 in O(D) time and O(m·min(log n, D)) messages whp, with NO knowledge of
// n (or any other parameter).
//
// Phase A (size estimation): every node flips a fair coin until heads and
// floods its count X_u with max semantics and echo termination; the global
// maximum X̄ concentrates around log2 n, so n̂ = 2^X̄ satisfies
// n̂ ∈ [Ω(n/log n), O(n²)] whp. The unique node holding the maximum
// (X, ID) pair learns, from its echo completion, that everyone has X̄, and
// launches phase B by flooding a start signal.
//
// Phase B: the least-element-list election of Theorem 4.4 with every node a
// candidate, rank space n̂⁴, and ties broken by unique IDs — hence success
// with probability 1. Nodes reached by a phase-B rank before the start
// signal join phase B on the spot (the rank message carries X̄), which
// preserves the flood-timing argument despite the skewed starts.
type Estimate struct{}

var _ sim.Protocol = Estimate{}

// Name implements sim.Protocol.
func (Estimate) Name() string { return "leastel-estimate" }

// New implements sim.Protocol.
func (Estimate) New(info sim.NodeInfo) sim.Process { return &estimateProc{} }

// Phase tags multiplexing the two flooders plus the start signal.
const (
	tagPhaseA uint8 = iota + 1
	tagPhaseB
	tagStartB
)

// taggedMsg wraps a flood message with its phase tag. Like flMsg it
// crosses the network behind a pooled pointer box (see the ownership
// contract at flMsgPool).
type taggedMsg struct {
	tag uint8
	m   flMsg
}

func (t taggedMsg) Bits() int { return 3 + t.m.Bits() }

var taggedPool = sync.Pool{New: func() any { return new(taggedMsg) }}

// boxTagged draws a pooled wire box for a tagged flood message.
func boxTagged(tag uint8, m flMsg) *taggedMsg {
	b := taggedPool.Get().(*taggedMsg)
	b.tag, b.m = tag, m
	return b
}

// unboxTagged copies the received value out and releases the box.
func unboxTagged(b *taggedMsg) taggedMsg {
	t := *b
	taggedPool.Put(b)
	return t
}

// startBMsg floods the phase-B start signal carrying X̄.
type startBMsg struct{ xbar int64 }

func (m startBMsg) Bits() int { return 3 + sim.BitsFor(m.xbar) }

type estimateProc struct {
	flA, flB *flooder
	x        int64 // own geometric draw
	meB      flKey
	inB      bool
	startFwd bool
	decided  bool
	sawAWin  bool

	aBuf, bBuf []portMsg // reusable per-round decode scratch
}

func (p *estimateProc) Start(c *sim.Context) {
	ports := allPorts(c.Degree())
	p.flA = newFlooder(ports, false, func(port int, m flMsg) {
		c.Send(port, boxTagged(tagPhaseA, m))
	})
	p.flB = newFlooder(ports, true, func(port int, m flMsg) {
		c.Send(port, boxTagged(tagPhaseB, m))
	})
	// Geometric draw: flips until the first heads.
	p.x = 1
	for c.Rand().Intn(2) == 0 {
		p.x++
	}
	origin := c.ID()
	if !c.HasID() {
		origin = c.Rand().Int63()
	}
	p.flA.start(flKey{rank: p.x, origin: origin}, 0)
	p.flA.flush()
	if p.flA.completed {
		// Single-node network: phase A is trivially complete.
		p.enterPhaseB(c, p.x)
	}
}

// enterPhaseB makes the node a phase-B candidate with rank space n̂⁴.
func (p *estimateProc) enterPhaseB(c *sim.Context, xbar int64) {
	if p.inB {
		return
	}
	p.inB = true
	if xbar > 15 {
		xbar = 15 // clamp the rank space to a sane 60-bit ceiling
	}
	nHat := int64(1) << uint(xbar)
	space := nHat * nHat * nHat * nHat
	if space < 4 {
		space = 4
	}
	p.meB = drawKey(c, space)
	p.flB.start(p.meB, xbar)
	if p.flB.completed {
		p.finishB(c)
	}
}

func (p *estimateProc) Round(c *sim.Context, inbox []sim.Message) {
	aMsgs, bMsgs := p.aBuf[:0], p.bBuf[:0]
	startB := int64(0)
	for _, in := range inbox {
		switch m := in.Payload.(type) {
		case *taggedMsg:
			t := unboxTagged(m)
			switch t.tag {
			case tagPhaseA:
				aMsgs = append(aMsgs, portMsg{port: in.Port, m: t.m})
			case tagPhaseB:
				bMsgs = append(bMsgs, portMsg{port: in.Port, m: t.m})
			}
		case startBMsg:
			if startB == 0 || m.xbar > startB {
				startB = m.xbar
			}
		}
	}
	p.aBuf, p.bBuf = aMsgs, bMsgs
	p.flA.handleRound(aMsgs)
	// Phase-A completion at the maximum holder triggers the start flood.
	if p.flA.completed && p.flA.won && !p.sawAWin {
		p.sawAWin = true
		c.Broadcast(startBMsg{xbar: p.flA.heard.rank})
		p.enterPhaseB(c, p.flA.heard.rank)
	}
	if startB > 0 && !p.startFwd {
		p.startFwd = true
		c.Broadcast(startBMsg{xbar: startB})
		p.enterPhaseB(c, startB)
	}
	// Join rule: a phase-B rank arriving before the start signal makes the
	// node a candidate first (using the rank's X̄), then processes it.
	if len(bMsgs) > 0 && !p.inB {
		xbar := int64(1)
		for _, pm := range bMsgs {
			if pm.m.Aux > xbar {
				xbar = pm.m.Aux
			}
		}
		p.enterPhaseB(c, xbar)
	}
	p.flB.handleRound(bMsgs)
	p.flA.flush()
	p.flB.flush()
	if p.inB && !p.decided {
		if p.flB.completed {
			p.finishB(c)
		} else if p.flB.heard != p.meB && p.flB.better(p.flB.heard, p.meB) {
			c.Decide(sim.NonLeader)
			p.decided = true
		}
	}
}

func (p *estimateProc) finishB(c *sim.Context) {
	if p.flB.won {
		c.Decide(sim.Leader)
	} else {
		c.Decide(sim.NonLeader)
	}
	p.decided = true
}

func init() {
	register(Spec{
		Name:    "leastel-estimate",
		Result:  "Cor 4.5",
		Summary: "size-estimate max-flood then f=n least-el; no knowledge, prob 1, O(D) time, O(m·min(log n,D)) msgs whp",
		Quiet:   true,
		New:     func(o Options) sim.Protocol { return Estimate{} },
	})
}
