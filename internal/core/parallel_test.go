package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// fixedGraphs is the determinism test matrix: one sparse, one dense, one
// degenerate-diameter family.
func fixedGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	random, err := graph.RandomConnected(24, 72, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"ring:16":      graph.Ring(16),
		"random:24:72": random,
		"star:12":      graph.Star(12),
	}
}

// resultBytes canonicalizes every field of a sim.Result (maps rendered in
// sorted key order) for byte-level comparison.
func resultBytes(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	sortedIntMap := func(m map[[2]int]int) string {
		pairs := make([]string, 0, len(m))
		for k, v := range m {
			pairs = append(pairs, fmt.Sprintf("%v=%d", k, v))
		}
		sort.Strings(pairs)
		return strings.Join(pairs, ",")
	}
	sortedInt64Map := func(m map[[2]int]int64) string {
		pairs := make([]string, 0, len(m))
		for k, v := range m {
			pairs = append(pairs, fmt.Sprintf("%v=%d", k, v))
		}
		sort.Strings(pairs)
		return strings.Join(pairs, ",")
	}
	return []byte(fmt.Sprintf(
		"rounds=%d lastActive=%d msgs=%d bits=%d maxBits=%d statuses=%v leaders=%v halted=%v cap=%v beforeCross=%d firstCross=[%s] perEdge=[%s]",
		res.Rounds, res.LastActive, res.Messages, res.Bits, res.MaxMsgBits,
		res.Statuses, res.Leaders, res.Halted, res.HitRoundCap,
		res.MessagesBeforeCrossing,
		sortedIntMap(res.FirstCrossing), sortedInt64Map(res.PerEdge)))
}

// TestParallelMatchesSequential asserts, for every registered algorithm,
// that the goroutine runner (RunOpts.Parallel) produces byte-identical
// results to the sequential runner on a fixed graph/seed matrix.
func TestParallelMatchesSequential(t *testing.T) {
	graphs := fixedGraphs(t)
	for _, algo := range Names() {
		for gname, g := range graphs {
			for _, seed := range []int64{1, 7, 42} {
				ids := sim.PermutationIDs(g.N(), rand.New(rand.NewSource(seed)))
				base := RunOpts{
					Seed: seed, IDs: ids, MaxRounds: 1 << 17,
					// Exercise the lower-bound instruments too: they share
					// state with message delivery, so they must also be
					// identical under the goroutine runner.
					WatchEdges:   [][2]int{{0, 1}},
					CountPerEdge: true,
				}
				seq, err := Run(g, algo, base)
				if err != nil {
					t.Fatalf("%s on %s seed %d (sequential): %v", algo, gname, seed, err)
				}
				par := base
				par.Parallel = true
				pres, err := Run(g, algo, par)
				if err != nil {
					t.Fatalf("%s on %s seed %d (parallel): %v", algo, gname, seed, err)
				}
				sb, pb := resultBytes(t, seq), resultBytes(t, pres)
				if string(sb) != string(pb) {
					t.Errorf("%s on %s seed %d: parallel result differs\nseq: %s\npar: %s",
						algo, gname, seed, sb, pb)
				}
			}
		}
	}
}

// TestRunManyMatchesRun asserts that the batching entry point (shared
// sim.Runner, reused engine state) is observationally identical to
// independent Run calls.
func TestRunManyMatchesRun(t *testing.T) {
	graphs := fixedGraphs(t)
	for _, algo := range Names() {
		for gname, g := range graphs {
			var runs []RunOpts
			for _, seed := range []int64{1, 7, 42} {
				runs = append(runs, RunOpts{
					Seed:      seed,
					IDs:       sim.PermutationIDs(g.N(), rand.New(rand.NewSource(seed))),
					MaxRounds: 1 << 17,
				})
			}
			batch, err := RunMany(g, algo, runs)
			if err != nil {
				t.Fatalf("%s on %s: RunMany: %v", algo, gname, err)
			}
			for i, ro := range runs {
				solo, err := Run(g, algo, ro)
				if err != nil {
					t.Fatalf("%s on %s trial %d: %v", algo, gname, i, err)
				}
				sb, bb := resultBytes(t, solo), resultBytes(t, batch[i])
				if string(sb) != string(bb) {
					t.Errorf("%s on %s trial %d: RunMany result differs\nrun:  %s\nmany: %s",
						algo, gname, i, sb, bb)
				}
			}
		}
	}
}
