package spanner

import (
	"math/rand"
	"sync"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

// buildProto runs only the spanner construction and records each node's
// marked ports.
type buildProto struct {
	k  int
	mu *sync.Mutex
	// ports[id] = marked ports of the node with that identity.
	ports map[int64][]int
}

func (b *buildProto) Name() string { return "spanner-build" }

func (b *buildProto) New(info sim.NodeInfo) sim.Process {
	return &buildProc{k: b.k, proto: b}
}

type buildProc struct {
	k     int
	proto *buildProto
	m     *Machine
	start int
	done  bool
}

func (p *buildProc) Start(c *sim.Context) {
	p.m = New(c.ID(), c.Know().N, p.k)
	p.start = c.Round()
}

func (p *buildProc) Round(c *sim.Context, inbox []sim.Message) {
	if p.done {
		return
	}
	if p.m.Step(c, c.Round()-p.start, inbox) {
		p.done = true
		p.proto.mu.Lock()
		p.proto.ports[c.ID()] = p.m.Ports()
		p.proto.mu.Unlock()
		c.Decide(sim.NonLeader)
		c.Halt()
	}
}

// buildSpanner runs the construction on g and returns the spanner subgraph.
func buildSpanner(t *testing.T, g *graph.Graph, k int, seed int64) *graph.Graph {
	t.Helper()
	proto := &buildProto{k: k, mu: &sync.Mutex{}, ports: make(map[int64][]int)}
	ids := make([]int64, g.N())
	for i := range ids {
		ids[i] = int64(i) + 1
	}
	res, err := sim.Run(sim.Config{
		Graph: g, IDs: ids, Seed: seed,
		Know:      sim.Knowledge{N: g.N(), HasN: true},
		MaxRounds: TotalRounds(k) + 4,
	}, proto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("construction did not finish on schedule")
	}
	edgeSet := make(map[[2]int]bool)
	for u := 0; u < g.N(); u++ {
		for _, p := range proto.ports[int64(u)+1] {
			v := g.Neighbor(u, p)
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			edgeSet[[2]int{a, b}] = true
		}
	}
	var edges [][2]int
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sg, err := graph.NewFromEdges(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetry check: both endpoints of every spanner edge marked it.
	for u := 0; u < g.N(); u++ {
		marked := make(map[int]bool)
		for _, p := range proto.ports[int64(u)+1] {
			marked[g.Neighbor(u, p)] = true
		}
		for v := range marked {
			found := false
			for _, q := range proto.ports[int64(v)+1] {
				if g.Neighbor(v, q) == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) marked asymmetrically", u, v)
			}
		}
	}
	return sg
}

func TestSpannerSchedule(t *testing.T) {
	if got := TotalRounds(2); got != 6 {
		t.Errorf("TotalRounds(2) = %d, want 6", got)
	}
	if got := TotalRounds(4); got != 15 {
		t.Errorf("TotalRounds(4) = %d, want 15", got)
	}
}

func TestSpannerPreservesConnectivityAndStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tt := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"complete-20-k2", graph.Complete(20), 2},
		{"complete-40-k3", graph.Complete(40), 3},
		{"dense-random-k2", mustRandom(t, rng, 60, 600), 2},
		{"dense-random-k3", mustRandom(t, rng, 80, 1200), 3},
		{"ring", graph.Ring(30), 3},
		{"star", graph.Star(25), 2},
		{"hypercube", graph.Hypercube(5), 2},
	} {
		t.Run(tt.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				sg := buildSpanner(t, tt.g, tt.k, seed)
				if !sg.Connected() {
					t.Fatal("spanner disconnected")
				}
				for u := 0; u < tt.g.N(); u++ {
					if sg.Degree(u) == 0 {
						t.Fatalf("node %d has no spanner edge", u)
					}
				}
				// Stretch: for every original edge (u,v), the spanner
				// distance must be at most 2k-1.
				limit := 2*tt.k - 1
				for u := 0; u < tt.g.N(); u++ {
					dist := sg.BFS(u)
					for p := 0; p < tt.g.Degree(u); p++ {
						v := tt.g.Neighbor(u, p)
						if dist[v] > limit {
							t.Fatalf("edge (%d,%d): spanner distance %d > %d", u, v, dist[v], limit)
						}
					}
				}
			}
		})
	}
}

func TestSpannerSparsifiesDenseGraphs(t *testing.T) {
	// On K_n with k=2 the expected size is O(n^1.5); require a real cut
	// versus the original n(n-1)/2.
	g := graph.Complete(64)
	var total int
	for seed := int64(0); seed < 3; seed++ {
		sg := buildSpanner(t, g, 2, seed)
		total += sg.M()
	}
	avg := total / 3
	if avg >= g.M()/2 {
		t.Errorf("spanner size %d not sparser than half of m=%d", avg, g.M())
	}
}

func mustRandom(t *testing.T, rng *rand.Rand, n, m int) *graph.Graph {
	t.Helper()
	g, err := graph.RandomConnected(n, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
