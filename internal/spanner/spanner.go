// Package spanner implements the distributed Baswana–Sen randomized
// (2k−1)-spanner construction [6] used by Corollary 4.2: in O(k²) rounds
// and O(k·m) messages it selects an expected O(k·n^(1+1/k)) subset of edges
// that preserves connectivity with stretch at most 2k−1.
//
// The construction runs k−1 clustering iterations. Initially every vertex
// is a singleton cluster. In iteration i, every cluster is sampled with
// probability n^(−1/k); a vertex of an unsampled cluster joins an adjacent
// sampled cluster if one exists (adding the connecting edge to the spanner)
// and otherwise adds one edge toward every adjacent cluster and settles
// (drops out of the clustering). A final iteration adds one edge per
// adjacent cluster for all still-clustered vertices.
//
// The package exposes a per-node state Machine on a fixed, globally known
// round schedule, so that an embedding protocol (core's spanner-le) can
// drive it inside the sim engine and switch to election when it finishes.
package spanner

import (
	"math"
	"sort"

	"ule/internal/sim"
)

// Message kinds.
const (
	kindSample  uint8 = iota + 1 // down-tree sampling verdict
	kindCluster                  // neighbor announcement (cluster, sampled)
	kindJoin                     // join a sampled cluster through this edge
	kindMark                     // this edge entered the spanner
)

// Msg is the wire format of the construction.
type Msg struct {
	Kind    uint8
	Cluster int64
	Sampled bool
}

// Bits implements sim.Payload.
func (m Msg) Bits() int { return 3 + sim.BitsFor(m.Cluster) + 1 }

// TotalRounds returns the fixed schedule length for parameter k: k−1
// iterations of i+3 rounds (sampling broadcast of depth i, neighbor
// exchange, join/settle, acknowledgment) plus a 3-round final iteration.
func TotalRounds(k int) int {
	t := 0
	for i := 0; i <= k-2; i++ {
		t += i + 3
	}
	return t + 3
}

// Machine is the per-node spanner construction state machine.
type Machine struct {
	k       int
	n       int
	prob    float64
	cluster int64
	sampled bool
	active  bool
	center  bool
	parent  int // port toward center, -1 at center
	childs  map[int]bool
	marked  map[int]bool

	// nbrs holds this iteration's neighbor announcements (port -> msg).
	nbrs map[int]Msg
}

// New creates the machine for a node. The identity must be unique (node ID
// or a random token in anonymous networks); n and k must be network-wide
// constants.
func New(identity int64, n, k int) *Machine {
	if k < 2 {
		k = 2
	}
	return &Machine{
		k:       k,
		n:       n,
		prob:    math.Pow(float64(n), -1/float64(k)),
		cluster: identity,
		active:  true,
		center:  true,
		parent:  -1,
		childs:  make(map[int]bool),
		marked:  make(map[int]bool),
	}
}

// Ports returns the sorted list of ports whose edges entered the spanner.
// Valid once Step has reported done.
func (m *Machine) Ports() []int {
	ports := make([]int, 0, len(m.marked))
	for p := range m.marked {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports
}

// Step advances the machine by one round. rel is the round index relative
// to the construction start (0-based); msgs are this round's spanner
// messages. It reports whether the construction is finished.
func (m *Machine) Step(c *sim.Context, rel int, msgs []sim.Message) bool {
	// Locate (iteration, offset) on the fixed schedule.
	iter, off, rest := 0, rel, rel
	for iter <= m.k-2 && rest >= iter+3 {
		rest -= iter + 3
		iter++
		off = rest
	}
	final := iter > m.k-2

	// Always process marks/joins first: they are edge-level and carry no
	// schedule dependency.
	var clusterAnns []sim.Message
	var sample *Msg
	for _, in := range msgs {
		mm, ok := in.Payload.(Msg)
		if !ok {
			continue
		}
		switch mm.Kind {
		case kindMark:
			m.marked[in.Port] = true
		case kindJoin:
			m.marked[in.Port] = true
			m.childs[in.Port] = true
		case kindCluster:
			clusterAnns = append(clusterAnns, in)
		case kindSample:
			v := mm
			sample = &v
		}
	}
	if sample != nil && m.active && !m.center {
		// Sampling verdict travels down the cluster tree.
		m.sampled = sample.Sampled
		for p := range m.childs {
			c.Send(p, Msg{Kind: kindSample, Cluster: m.cluster, Sampled: m.sampled})
		}
	}

	switch {
	case final:
		m.finalStep(c, off, clusterAnns)
		return off >= 2
	default:
		m.iterStep(c, iter, off, clusterAnns)
		return false
	}
}

// iterStep runs one round of clustering iteration iter at offset off.
func (m *Machine) iterStep(c *sim.Context, iter, off int, anns []sim.Message) {
	if off == 0 {
		m.nbrs = make(map[int]Msg)
		if m.active && m.center {
			// Centers flip the sampling coin and push the verdict down.
			m.sampled = c.Rand().Float64() < m.prob
			for p := range m.childs {
				c.Send(p, Msg{Kind: kindSample, Cluster: m.cluster, Sampled: m.sampled})
			}
		}
	}
	for _, in := range anns {
		m.nbrs[in.Port], _ = in.Payload.(Msg)
	}
	if off == iter && m.active {
		// Everyone knows its cluster's verdict now (tree depth <= iter):
		// announce to all neighbors.
		c.Broadcast(Msg{Kind: kindCluster, Cluster: m.cluster, Sampled: m.sampled})
	}
	if off == iter+1 && m.active && !m.sampled {
		// Members of unsampled clusters join or settle.
		joinPort := -1
		for _, p := range sortedPorts(m.nbrs) {
			if m.nbrs[p].Sampled {
				joinPort = p
				break
			}
		}
		if joinPort >= 0 {
			m.join(c, joinPort)
			return
		}
		m.settle(c)
	}
}

// join moves this vertex into the sampled cluster announced on port p.
func (m *Machine) join(c *sim.Context, p int) {
	ann := m.nbrs[p]
	m.cluster = ann.Cluster
	m.sampled = true
	m.center = false
	m.parent = p
	m.childs = make(map[int]bool)
	m.marked[p] = true
	c.Send(p, Msg{Kind: kindJoin, Cluster: m.cluster})
}

// settle adds one spanner edge toward every adjacent cluster and retires
// this vertex from the clustering.
func (m *Machine) settle(c *sim.Context) {
	m.active = false
	m.center = false
	picked := make(map[int64]bool)
	for _, p := range sortedPorts(m.nbrs) {
		ann := m.nbrs[p]
		if ann.Cluster == m.cluster || picked[ann.Cluster] {
			continue
		}
		picked[ann.Cluster] = true
		m.marked[p] = true
		c.Send(p, Msg{Kind: kindMark, Cluster: ann.Cluster})
	}
}

// finalStep is the last iteration: still-clustered vertices add one edge
// per adjacent (foreign) cluster.
func (m *Machine) finalStep(c *sim.Context, off int, anns []sim.Message) {
	switch off {
	case 0:
		m.nbrs = make(map[int]Msg)
		if m.active {
			c.Broadcast(Msg{Kind: kindCluster, Cluster: m.cluster, Sampled: m.sampled})
		}
	case 1:
		for _, in := range anns {
			m.nbrs[in.Port], _ = in.Payload.(Msg)
		}
		if m.active {
			picked := make(map[int64]bool)
			for _, p := range sortedPorts(m.nbrs) {
				ann := m.nbrs[p]
				if ann.Cluster == m.cluster || picked[ann.Cluster] {
					continue
				}
				picked[ann.Cluster] = true
				m.marked[p] = true
				c.Send(p, Msg{Kind: kindMark, Cluster: ann.Cluster})
			}
		}
	}
}

func sortedPorts(m map[int]Msg) []int {
	ports := make([]int, 0, len(m))
	for p := range m {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports
}
