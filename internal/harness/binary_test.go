package harness

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// binarySpec is a matrix with fault cells, async delays, and enough
// trials to cross several checkpoints at the cadence the tests use.
func binarySpec() Spec {
	return Spec{
		Name:   "binary-matrix",
		Algos:  []string{"leastel", "kingdom"},
		Graphs: []string{"ring:12", "random:16:40"},
		Modes:  []string{"congest", "async"},
		Delays: []string{"unit", "random:4"},
		Faults: []string{"none", "crash:0.2"},
		Trials: 2,
		Seed:   9,
	}
}

// runBinary executes spec with both the JSON and binary emitters and
// returns both byte streams plus the report.
func runBinary(t *testing.T, spec Spec, workers int, opt BinaryOptions) (jsonDoc, binDoc []byte, rep *Report) {
	t.Helper()
	var jb, bb bytes.Buffer
	rep, err := Run(spec, RunConfig{
		Workers:  workers,
		Emitters: []Emitter{NewJSONEmitter(&jb), NewBinaryEmitter(&bb, opt)},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return jb.Bytes(), bb.Bytes(), rep
}

func TestBinaryRoundTrip(t *testing.T) {
	spec := binarySpec()
	jsonDoc, binDoc, rep := runBinary(t, spec, 4, BinaryOptions{CheckpointEvery: 16})

	want, err := ParseDocument(jsonDoc)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	got, err := ParseBinary(binDoc)
	if err != nil {
		t.Fatalf("ParseBinary: %v", err)
	}
	if got.Schema != BinarySchemaVersion {
		t.Fatalf("schema = %q, want %q", got.Schema, BinarySchemaVersion)
	}
	if !reflect.DeepEqual(got.Spec, want.Spec) {
		t.Fatalf("spec mismatch:\n got %+v\nwant %+v", got.Spec, want.Spec)
	}
	if len(got.Trials) != len(want.Trials) {
		t.Fatalf("trial count %d != %d", len(got.Trials), len(want.Trials))
	}
	for i := range want.Trials {
		if !reflect.DeepEqual(got.Trials[i], want.Trials[i]) {
			t.Fatalf("trial %d mismatch:\n got %+v\nwant %+v", i, got.Trials[i], want.Trials[i])
		}
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("groups mismatch")
	}
	if got.TotalTrials != want.TotalTrials || got.Errors != want.Errors {
		t.Fatalf("totals: got %d/%d want %d/%d", got.TotalTrials, got.Errors, want.TotalTrials, want.Errors)
	}
	if rep.Total != got.TotalTrials {
		t.Fatalf("report total %d != document total %d", rep.Total, got.TotalTrials)
	}
}

func TestBinaryExportJSONByteIdentical(t *testing.T) {
	spec := binarySpec()
	jsonDoc, binDoc, _ := runBinary(t, spec, 4, BinaryOptions{CheckpointEvery: 16})
	var out bytes.Buffer
	if err := ExportJSON(bytes.NewReader(binDoc), &out); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	if !bytes.Equal(out.Bytes(), jsonDoc) {
		t.Fatalf("exported JSON differs from live JSON emitter (%d vs %d bytes)", out.Len(), len(jsonDoc))
	}
}

func TestBinaryDeterministicAcrossWorkers(t *testing.T) {
	spec := binarySpec()
	_, seq, _ := runBinary(t, spec, 1, BinaryOptions{CheckpointEvery: 16})
	_, par, _ := runBinary(t, spec, 8, BinaryOptions{CheckpointEvery: 16})
	if !bytes.Equal(seq, par) {
		t.Fatalf("binary output differs between 1 and 8 workers (%d vs %d bytes)", len(seq), len(par))
	}
}

// TestBinaryCompactness checks the marginal per-trial cost (the quantity
// that matters at 10^6 trials) rather than whole-file sizes, which are
// dominated by the spec echo and groups trailer on a small sweep: the
// same matrix at two rep counts isolates the per-trial bytes of each
// format.
func TestBinaryCompactness(t *testing.T) {
	small := binarySpec()
	big := small
	big.Trials = small.Trials * 4
	jsonSmall, binSmall, _ := runBinary(t, small, 4, BinaryOptions{})
	jsonBig, binBig, _ := runBinary(t, big, 4, BinaryOptions{})

	extra := big.NumTrials() - small.NumTrials()
	jsonPer := float64(len(jsonBig)-len(jsonSmall)) / float64(extra)
	binPer := float64(len(binBig)-len(binSmall)) / float64(extra)
	if binPer*4 >= jsonPer {
		t.Fatalf("binary trials cost %.1f B each vs %.1f JSON — want at least 4x smaller", binPer, jsonPer)
	}
	if binPer > 25 {
		t.Fatalf("binary trials cost %.1f B each, want ≤ 25 (ISSUE budget 10–20)", binPer)
	}
	t.Logf("per-trial marginal cost: binary %.1f B, JSON %.1f B (%.1fx)", binPer, jsonPer, jsonPer/binPer)
}

func TestDecodeBinaryTrialsStreams(t *testing.T) {
	spec := binarySpec()
	_, binDoc, _ := runBinary(t, spec, 4, BinaryOptions{CheckpointEvery: 16})
	doc, err := ParseBinary(binDoc)
	if err != nil {
		t.Fatal(err)
	}
	var got []TrialResult
	if err := DecodeBinaryTrials(bytes.NewReader(binDoc), func(tr TrialResult) error {
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatalf("DecodeBinaryTrials: %v", err)
	}
	if !reflect.DeepEqual(got, doc.Trials) {
		t.Fatalf("streamed trials differ from ParseBinary")
	}

	sentinel := errors.New("stop here")
	n := 0
	err = DecodeBinaryTrials(bytes.NewReader(binDoc), func(TrialResult) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error = %v, want sentinel", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times after sentinel, want 3", n)
	}
}

// TestBinaryKillAndResume is the headline resume test: a sweep killed at
// an arbitrary byte offset (torn tail included) must, after
// ResumeBinary + Run(Resume:...), produce a file byte-identical to the
// uninterrupted run, and a report with identical groups.
func TestBinaryKillAndResume(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 16}

	// Reference: uninterrupted run straight to a file.
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.ulsb")
	refFile, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := Run(spec, RunConfig{Workers: 4, Emitters: []Emitter{NewBinaryEmitter(refFile, opt)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := refFile.Close(); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Locate the end of the header + initial checkpoint record so one kill
	// point exercises resume-from-zero: magic, uvarint spec length, spec,
	// uvarint total, uvarint cadence, 8-byte hash, then the 10-byte
	// checkpoint record (tag, uvarint 0, 8-byte hash).
	specLen, n := binary.Uvarint(refBytes[len(binMagic):])
	if n <= 0 {
		t.Fatal("could not decode header spec length")
	}
	off := len(binMagic) + n + int(specLen)
	_, n = binary.Uvarint(refBytes[off:])
	off += n
	_, n = binary.Uvarint(refBytes[off:])
	off += n + 8
	headerEnd := off + 10

	// Kill points: a few bytes into trial 0 (resume from zero), mid-file
	// (torn record almost surely), and one byte short of done.
	for _, cut := range []int{
		headerEnd + 3,
		len(refBytes) / 3,
		len(refBytes) * 71 / 100,
		len(refBytes) - 1,
	} {
		killed := filepath.Join(dir, "killed.ulsb")
		if err := os.WriteFile(killed, refBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ck, em, err := ResumeBinary(killed)
		if err != nil {
			t.Fatalf("cut=%d: ResumeBinary: %v", cut, err)
		}
		if ck.Done {
			t.Fatalf("cut=%d: checkpoint claims done", cut)
		}
		rep, err := Run(spec, RunConfig{Workers: 4, Resume: ck, Emitters: []Emitter{em}})
		if err != nil {
			t.Fatalf("cut=%d: resumed Run: %v", cut, err)
		}
		resumed, err := os.ReadFile(killed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumed, refBytes) {
			t.Fatalf("cut=%d (resumed from trial %d): resumed file differs from uninterrupted run (%d vs %d bytes)",
				cut, ck.Completed, len(resumed), len(refBytes))
		}
		if rep.Total != refRep.Total || rep.Errors != refRep.Errors {
			t.Fatalf("cut=%d: resumed report totals %d/%d, want %d/%d", cut, rep.Total, rep.Errors, refRep.Total, refRep.Errors)
		}
		if !reflect.DeepEqual(rep.Groups, refRep.Groups) {
			t.Fatalf("cut=%d: resumed report groups differ from uninterrupted run", cut)
		}
	}

	// A kill inside the header leaves nothing durable: ResumeBinary must
	// refuse rather than continue from a spec it cannot verify.
	torn := filepath.Join(dir, "torn.ulsb")
	if err := os.WriteFile(torn, refBytes[:headerEnd/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeBinary(torn); err == nil {
		t.Fatal("ResumeBinary on torn header succeeded, want error")
	}
}

func TestBinaryResumeOfCompleteFile(t *testing.T) {
	spec := binarySpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "done.ulsb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunConfig{Workers: 2, Emitters: []Emitter{NewBinaryEmitter(f, BinaryOptions{})}}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck, err := InspectBinary(path)
	if err != nil {
		t.Fatalf("InspectBinary: %v", err)
	}
	if !ck.Done || ck.Completed != spec.NumTrials() || ck.Total != spec.NumTrials() {
		t.Fatalf("inspect: done=%v completed=%d total=%d, want done with %d trials", ck.Done, ck.Completed, ck.Total, spec.NumTrials())
	}
	if _, _, err := ResumeBinary(path); !errors.Is(err, ErrSweepComplete) {
		t.Fatalf("ResumeBinary on complete file = %v, want ErrSweepComplete", err)
	}
}

func TestBinaryResumeSpecMismatch(t *testing.T) {
	spec := binarySpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ulsb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunConfig{Workers: 2, Emitters: []Emitter{NewBinaryEmitter(f, BinaryOptions{CheckpointEvery: 16})}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ck, em, err := ResumeBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = spec.Seed + 1
	if _, err := Run(other, RunConfig{Workers: 2, Resume: ck, Emitters: []Emitter{em}}); err == nil {
		t.Fatal("resume with a different spec succeeded, want error")
	}
}

func TestBinaryResumeUnresumableFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn-header.ulsb")
	// A file torn before the header checkpoint has no durable prefix.
	if err := os.WriteFile(path, []byte("ULSB1\n\x05"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeBinary(path); err == nil {
		t.Fatal("ResumeBinary on header-less file succeeded, want error")
	}
}

func TestParseBinaryRejectsCorruption(t *testing.T) {
	spec := binarySpec()
	_, binDoc, _ := runBinary(t, spec, 2, BinaryOptions{CheckpointEvery: 16})

	if _, err := ParseBinary(nil); err == nil {
		t.Fatal("ParseBinary(nil) succeeded")
	}
	if _, err := ParseBinary(binDoc[:len(binDoc)/3]); err == nil {
		t.Fatal("ParseBinary on truncated document succeeded")
	}
	if _, err := ParseBinary(append(append([]byte{}, binDoc...), 0xFF)); err == nil {
		t.Fatal("ParseBinary with trailing garbage succeeded")
	}
	// Flip one byte at a sweep of offsets; every mutation must produce an
	// error or a successfully-parsed document — never a panic. (Single-bit
	// damage in a varint payload can legitimately decode; integrity of the
	// header and checkpoints is what the hashes pin.)
	for off := 0; off < len(binDoc); off += 7 {
		mut := append([]byte{}, binDoc...)
		mut[off] ^= 0x20
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseBinary panicked on corruption at offset %d: %v", off, r)
				}
			}()
			_, _ = ParseBinary(mut)
		}()
	}
}

func TestReorderRing(t *testing.T) {
	r := newReorderRing(4, 0)
	// Feed indices 0..999 in a scrambled order with a large spread to
	// force growth, and check in-order drain.
	const n = 1000
	order := make([]int, n)
	for i := range order {
		order[i] = (i*613 + 401) % n
	}
	next := 0
	for _, idx := range order {
		r.put(TrialResult{Trial: Trial{Index: idx}})
		for {
			tr, ok := r.take()
			if !ok {
				break
			}
			if tr.Index != next {
				t.Fatalf("drained index %d, want %d", tr.Index, next)
			}
			next++
		}
	}
	if next != n {
		t.Fatalf("drained %d records, want %d", next, n)
	}
	if r.pending() != 0 {
		t.Fatalf("%d records still pending", r.pending())
	}
}

func TestReorderRingResumeBase(t *testing.T) {
	r := newReorderRing(4, 500)
	r.put(TrialResult{Trial: Trial{Index: 501}})
	if _, ok := r.take(); ok {
		t.Fatal("take succeeded before base index arrived")
	}
	r.put(TrialResult{Trial: Trial{Index: 500}})
	tr, ok := r.take()
	if !ok || tr.Index != 500 {
		t.Fatalf("take = %v/%v, want index 500", tr.Index, ok)
	}
	tr, ok = r.take()
	if !ok || tr.Index != 501 {
		t.Fatalf("take = %v/%v, want index 501", tr.Index, ok)
	}
}
