package harness

import (
	"strconv"
	"unicode/utf8"
)

// Hand-rolled, reflection-free encoders for the per-trial emit hot path.
//
// A million-trial sweep calls Emitter.Trial a million times; routing each
// record through encoding/json (reflection, interface boxing, a fresh
// []byte per record) or a strconv.Itoa-per-cell CSV row dominated the
// consumer's profile once the engine itself went allocation-free. The
// appenders below write into a caller-owned reusable buffer and are
// pinned byte-identical to the encoding/json / strconv output they
// replace (encode_test.go compares them against the stdlib across every
// field combination), so emitted documents are unchanged.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json's encoder with its default HTML escaping: ", \ and the
// C0 controls are escaped (short forms for \b \f \n \r \t), <, > and &
// become \u00XX, invalid UTF-8 bytes become �, and U+2028/U+2029
// are escaped for JS embedding. Everything else is copied verbatim.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendBool appends "true"/"false".
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendTrialJSON appends tr as one JSON object, byte-identical to
// json.Marshal(tr): fields in declaration order (the embedded Trial
// first), omitempty fields dropped at their zero values.
func appendTrialJSON(b []byte, tr *TrialResult) []byte {
	b = append(b, `{"trial":`...)
	b = strconv.AppendInt(b, int64(tr.Index), 10)
	b = append(b, `,"algo":`...)
	b = appendJSONString(b, tr.Algo)
	b = append(b, `,"graph":`...)
	b = appendJSONString(b, tr.Graph)
	b = append(b, `,"mode":`...)
	b = appendJSONString(b, tr.Mode)
	b = append(b, `,"wake":`...)
	b = appendJSONString(b, tr.Wake)
	if tr.Delay != "" {
		b = append(b, `,"delay_model":`...)
		b = appendJSONString(b, tr.Delay)
	}
	if tr.Fault != "" {
		b = append(b, `,"fault_model":`...)
		b = appendJSONString(b, tr.Fault)
	}
	b = append(b, `,"rep":`...)
	b = strconv.AppendInt(b, int64(tr.Rep), 10)
	b = append(b, `,"seed":`...)
	b = strconv.AppendInt(b, tr.Seed, 10)
	b = append(b, `,"n":`...)
	b = strconv.AppendInt(b, int64(tr.N), 10)
	b = append(b, `,"m":`...)
	b = strconv.AppendInt(b, int64(tr.M), 10)
	if tr.D != 0 {
		b = append(b, `,"d":`...)
		b = strconv.AppendInt(b, int64(tr.D), 10)
	}
	b = append(b, `,"rounds":`...)
	b = strconv.AppendInt(b, int64(tr.Rounds), 10)
	b = append(b, `,"last_active":`...)
	b = strconv.AppendInt(b, int64(tr.LastActive), 10)
	b = append(b, `,"messages":`...)
	b = strconv.AppendInt(b, tr.Messages, 10)
	b = append(b, `,"bits":`...)
	b = strconv.AppendInt(b, tr.Bits, 10)
	b = append(b, `,"leaders":`...)
	b = strconv.AppendInt(b, int64(tr.Leaders), 10)
	b = append(b, `,"unique":`...)
	b = appendBool(b, tr.Unique)
	b = append(b, `,"halted":`...)
	b = appendBool(b, tr.Halted)
	if tr.HitRoundCap {
		b = append(b, `,"hit_round_cap":true`...)
	}
	if tr.Crashes != 0 {
		b = append(b, `,"crashes":`...)
		b = strconv.AppendInt(b, int64(tr.Crashes), 10)
	}
	if tr.Recoveries != 0 {
		b = append(b, `,"recoveries":`...)
		b = strconv.AppendInt(b, int64(tr.Recoveries), 10)
	}
	if tr.Dropped != 0 {
		b = append(b, `,"dropped":`...)
		b = strconv.AppendInt(b, tr.Dropped, 10)
	}
	if tr.LiveUnique {
		b = append(b, `,"live_unique":true`...)
	}
	if tr.Err != "" {
		b = append(b, `,"err":`...)
		b = appendJSONString(b, tr.Err)
	}
	return append(b, '}')
}

// appendCSVField appends the only free-form CSV column (trial errors)
// with RFC 4180 quoting: a non-empty field is wrapped in double quotes
// and embedded quotes are doubled. For the plain single-line strings the
// simulator actually produces this is byte-identical to the old
// strconv.Quote path; strings containing quotes, backslashes or newlines
// now produce standard CSV instead of Go-escaped text that CSV readers
// mis-split.
func appendCSVField(b []byte, s string) []byte {
	if s == "" {
		return b
	}
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			b = append(b, '"', '"')
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, '"')
}

// appendTrialCSV appends tr as one CSV row (csvHeader layout, trailing
// newline), byte-identical to the previous strconv.Itoa/FormatBool row
// construction for quote-free error strings.
func appendTrialCSV(b []byte, tr *TrialResult) []byte {
	b = strconv.AppendInt(b, int64(tr.Index), 10)
	b = append(b, ',')
	b = append(b, tr.Algo...)
	b = append(b, ',')
	b = append(b, tr.Graph...)
	b = append(b, ',')
	b = append(b, tr.Mode...)
	b = append(b, ',')
	b = append(b, tr.Wake...)
	b = append(b, ',')
	b = append(b, tr.Delay...)
	b = append(b, ',')
	b = append(b, tr.Fault...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.Rep), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, tr.Seed, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.N), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.M), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.D), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.Rounds), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.LastActive), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, tr.Messages, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, tr.Bits, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.Leaders), 10)
	b = append(b, ',')
	b = appendBool(b, tr.Unique)
	b = append(b, ',')
	b = appendBool(b, tr.Halted)
	b = append(b, ',')
	b = appendBool(b, tr.HitRoundCap)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.Crashes), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(tr.Recoveries), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, tr.Dropped, 10)
	b = append(b, ',')
	b = appendBool(b, tr.LiveUnique)
	b = append(b, ',')
	b = appendCSVField(b, tr.Err)
	return append(b, '\n')
}
