package harness

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// BinarySchemaVersion identifies the compact binary sweep format written
// by NewBinaryEmitter; see docs/SWEEP_SCHEMA.md. The layout:
//
//	magic   "ULSB1\n"
//	header  uvarint specLen, specJSON (the ule-sweep/v3 spec echo, verbatim)
//	        uvarint total trials
//	        uvarint checkpoint cadence (trials between durable checkpoints)
//	        8-byte LE spec hash (FNV-1a 64 over specJSON ‖ LE64(total))
//	records, each introduced by a tag byte:
//	  0x01 cellDef     algo, graph, mode, wake, delay, fault (uvarint len +
//	                   bytes each), uvarint n, uvarint m; defines the next
//	                   cell id (0, 1, ...) in order of first appearance
//	  0x02 trial       uvarint cellID, uvarint rep, flags byte, uvarint d,
//	                   rounds, lastActive, messages, bits, leaders;
//	                   then [flagSeed] zigzag seed, [flagFault] uvarint
//	                   crashes, recoveries, dropped, [flagErr] uvarint len +
//	                   error bytes. Trial index is implicit (records are in
//	                   index order); seed is stored only when it differs
//	                   from the spec-derived TrialSeed(spec.Seed, rep).
//	  0x03 checkpoint  uvarint completed trials, 8-byte LE checkpoint hash;
//	                   everything before this record is durable (the writer
//	                   flushes and fsyncs right after it)
//	  0x04 end         uvarint groupsLen, groupsJSON (verbatim
//	                   json.Marshal of the report groups), uvarint total,
//	                   uvarint errors, magic "ULSE"; presence marks a
//	                   complete document
//
// A typical fault-free trial record is 12–18 bytes against ~200 bytes of
// ule-sweep/v3 JSON. The JSON document remains the interchange format:
// ExportJSON re-encodes a binary stream into the byte-identical
// ule-sweep/v3 document the JSON emitter would have produced.
const BinarySchemaVersion = "ule-sweepbin/v1"

// ShardSchemaVersion identifies the shard variant of the binary format: a
// contiguous slice [start, start+count) of a sweep's trial index space,
// written by one worker process of a distributed run (internal/fleet).
// The layout differs from the full document only in the header — magic
// "ULSS1\n", then specLen/specJSON/total exactly as the full format,
// then uvarint start and uvarint count before the cadence and spec hash —
// and in the end record: tag 0x05 carries uvarint start, uvarint count
// and the end magic instead of a groups trailer (group aggregation is the
// merger's job). Trial records are byte-identical to the full format;
// their absolute trial index is start + (records seen), and checkpoint
// hashes are salted with (start, count) so a checkpoint from a different
// shard of the same sweep never validates. MergeShards reassembles any
// covering set of shards into the full document, byte-for-byte.
const ShardSchemaVersion = "ule-sweepbin-shard/v1"

var (
	binMagic      = []byte("ULSB1\n")
	binShardMagic = []byte("ULSS1\n")
	binEndMagic   = []byte("ULSE")
)

// ErrSweepComplete is returned by ResumeBinary when the file already
// carries the end trailer — there is nothing left to resume.
var ErrSweepComplete = errors.New("harness: sweep already complete")

// DefaultCheckpointEvery is the checkpoint cadence used when
// BinaryOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = 8192

// Caps on attacker-controlled lengths so a corrupt or adversarial file
// yields an error instead of a giant allocation.
const (
	maxBinString = 1 << 20 // axis / error strings
	maxBinGroups = 1 << 28 // groups trailer JSON
	maxBinCells  = 1 << 22 // cell definitions per document
)

// trial record flag bits.
const (
	binFlagUnique      = 1 << 0
	binFlagHalted      = 1 << 1
	binFlagHitRoundCap = 1 << 2
	binFlagLiveUnique  = 1 << 3
	binFlagFault       = 1 << 4 // crashes/recoveries/dropped follow
	binFlagErr         = 1 << 5 // error string follows
	binFlagSeed        = 1 << 6 // explicit zigzag seed follows
	binFlagsKnown      = binFlagUnique | binFlagHalted | binFlagHitRoundCap |
		binFlagLiveUnique | binFlagFault | binFlagErr | binFlagSeed
)

// record tags.
const (
	binTagCell       = 0x01
	binTagTrial      = 0x02
	binTagCheckpoint = 0x03
	binTagEnd        = 0x04
	binTagShardEnd   = 0x05
)

// BinaryOptions tunes the binary emitter.
type BinaryOptions struct {
	// CheckpointEvery is the number of trials between durable
	// checkpoints (flush + fsync when the writer is a file); 0 selects
	// DefaultCheckpointEvery. The cadence is recorded in the header so a
	// resumed sweep keeps the original placement and the final file stays
	// byte-identical to an uninterrupted run.
	CheckpointEvery int
}

// sweepSpecHash is the integrity hash binding a binary stream to its
// expanded spec: FNV-1a 64 over the spec JSON followed by the little-
// endian total trial count.
func sweepSpecHash(specJSON []byte, total int) uint64 {
	h := fnv.New64a()
	h.Write(specJSON)
	var tot [8]byte
	binary.LittleEndian.PutUint64(tot[:], uint64(total))
	h.Write(tot[:])
	return h.Sum64()
}

// checkpointHash authenticates one checkpoint record. salt is the spec
// hash for full documents and shardSalt(specHash, start, count) for
// shards, so a shard checkpoint never validates against a different
// range of the same sweep.
func checkpointHash(salt uint64, completed int) uint64 {
	h := fnv.New64a()
	h.Write([]byte("ulsb-ckpt"))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], salt)
	binary.LittleEndian.PutUint64(b[8:], uint64(completed))
	h.Write(b[:])
	return h.Sum64()
}

// shardSalt derives the checkpoint-hash salt of one shard range.
func shardSalt(specHash uint64, start, count int) uint64 {
	h := fnv.New64a()
	h.Write([]byte("ulsb-shard"))
	var b [24]byte
	binary.LittleEndian.PutUint64(b[:8], specHash)
	binary.LittleEndian.PutUint64(b[8:16], uint64(start))
	binary.LittleEndian.PutUint64(b[16:], uint64(count))
	h.Write(b[:])
	return h.Sum64()
}

// binaryEmitter streams the ule-sweepbin/v1 document. Like the JSON and
// CSV emitters it is reflection-free on the per-trial path: every record
// is appended to a reusable buffer with varint/byte writes.
type binaryEmitter struct {
	w      *bufio.Writer
	syncFn func() error // underlying fsync when the writer is a file
	closer io.Closer    // owned file handle (resume path only)

	buf      []byte
	cells    map[[6]string]int
	specSeed int64
	specHash uint64
	ckSalt   uint64
	total    int
	written  int
	every    int
	resumed  bool

	// Shard emitters write the range [start, start+count) of the sweep's
	// trial index space; full-document emitters have shard=false and
	// count=total.
	shard bool
	start int
	count int
}

type fileSyncer interface{ Sync() error }

// NewBinaryEmitter returns an emitter writing a ule-sweepbin/v1 document
// to w. If w has a Sync method (an *os.File), every checkpoint record is
// followed by a flush and fsync, making the prefix durable for
// ResumeBinary.
func NewBinaryEmitter(w io.Writer, opt BinaryOptions) Emitter {
	e := &binaryEmitter{
		w:     bufio.NewWriterSize(w, 1<<16),
		cells: make(map[[6]string]int),
		every: opt.CheckpointEvery,
	}
	if e.every <= 0 {
		e.every = DefaultCheckpointEvery
	}
	if s, ok := w.(fileSyncer); ok {
		e.syncFn = s.Sync
	}
	return e
}

// NewShardEmitter returns an emitter writing the shard variant of the
// binary format covering trials [start, start+count) of the sweep. Like
// NewBinaryEmitter it fsyncs at every checkpoint when w is a file, so a
// killed worker's shard resumes from its last durable checkpoint
// (ResumeShard). Pair it with RunConfig.Range so only the shard's trials
// execute.
func NewShardEmitter(w io.Writer, start, count int, opt BinaryOptions) Emitter {
	e := NewBinaryEmitter(w, opt).(*binaryEmitter)
	e.shard = true
	e.start = start
	e.count = count
	return e
}

func (e *binaryEmitter) Begin(spec Spec, total int) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	hash := sweepSpecHash(specJSON, total)
	if e.resumed {
		// The header is already on disk; just verify the caller is
		// continuing the same sweep.
		if hash != e.specHash || total != e.total {
			return fmt.Errorf("harness: resume spec mismatch (hash %016x != checkpoint %016x)", hash, e.specHash)
		}
		e.specSeed = spec.withDefaults().Seed
		return nil
	}
	if e.shard {
		if e.start < 0 || e.count <= 0 || e.start+e.count > total {
			return fmt.Errorf("harness: shard range [%d,%d) outside sweep of %d trials", e.start, e.start+e.count, total)
		}
	} else {
		e.start, e.count = 0, total
	}
	e.specSeed = spec.withDefaults().Seed
	e.specHash = hash
	e.ckSalt = hash
	if e.shard {
		e.ckSalt = shardSalt(hash, e.start, e.count)
	}
	e.total = total
	b := e.buf[:0]
	if e.shard {
		b = append(b, binShardMagic...)
	} else {
		b = append(b, binMagic...)
	}
	b = binary.AppendUvarint(b, uint64(len(specJSON)))
	b = append(b, specJSON...)
	b = binary.AppendUvarint(b, uint64(total))
	if e.shard {
		b = binary.AppendUvarint(b, uint64(e.start))
		b = binary.AppendUvarint(b, uint64(e.count))
	}
	b = binary.AppendUvarint(b, uint64(e.every))
	b = binary.LittleEndian.AppendUint64(b, hash)
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	// An empty-prefix checkpoint right after the header makes even a
	// sweep killed during trial 0 resumable.
	return e.checkpoint()
}

func (e *binaryEmitter) Trial(tr TrialResult) error {
	b := e.buf[:0]
	key := [6]string{tr.Algo, tr.Graph, tr.Mode, tr.Wake, tr.Delay, tr.Fault}
	cell, ok := e.cells[key]
	if !ok {
		cell = len(e.cells)
		e.cells[key] = cell
		b = append(b, binTagCell)
		for _, s := range key {
			b = binary.AppendUvarint(b, uint64(len(s)))
			b = append(b, s...)
		}
		b = binary.AppendUvarint(b, uint64(tr.N))
		b = binary.AppendUvarint(b, uint64(tr.M))
	}
	var flags byte
	if tr.Unique {
		flags |= binFlagUnique
	}
	if tr.Halted {
		flags |= binFlagHalted
	}
	if tr.HitRoundCap {
		flags |= binFlagHitRoundCap
	}
	if tr.LiveUnique {
		flags |= binFlagLiveUnique
	}
	if tr.Crashes != 0 || tr.Recoveries != 0 || tr.Dropped != 0 {
		flags |= binFlagFault
	}
	if tr.Err != "" {
		flags |= binFlagErr
	}
	if tr.Seed != TrialSeed(e.specSeed, tr.Rep) {
		flags |= binFlagSeed
	}
	b = append(b, binTagTrial)
	b = binary.AppendUvarint(b, uint64(cell))
	b = binary.AppendUvarint(b, uint64(tr.Rep))
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(tr.D))
	b = binary.AppendUvarint(b, uint64(tr.Rounds))
	b = binary.AppendUvarint(b, uint64(tr.LastActive))
	b = binary.AppendUvarint(b, uint64(tr.Messages))
	b = binary.AppendUvarint(b, uint64(tr.Bits))
	b = binary.AppendUvarint(b, uint64(tr.Leaders))
	if flags&binFlagSeed != 0 {
		b = binary.AppendUvarint(b, zigzag(tr.Seed))
	}
	if flags&binFlagFault != 0 {
		b = binary.AppendUvarint(b, uint64(tr.Crashes))
		b = binary.AppendUvarint(b, uint64(tr.Recoveries))
		b = binary.AppendUvarint(b, uint64(tr.Dropped))
	}
	if flags&binFlagErr != 0 {
		b = binary.AppendUvarint(b, uint64(len(tr.Err)))
		b = append(b, tr.Err...)
	}
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	e.written++
	if e.written%e.every == 0 && e.written < e.count {
		return e.checkpoint()
	}
	return nil
}

// checkpoint writes a checkpoint record and makes the prefix durable.
// The completed count is range-local (equal to the absolute count for
// full documents).
func (e *binaryEmitter) checkpoint() error {
	b := e.buf[:0]
	b = append(b, binTagCheckpoint)
	b = binary.AppendUvarint(b, uint64(e.written))
	b = binary.LittleEndian.AppendUint64(b, checkpointHash(e.ckSalt, e.written))
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	if err := e.w.Flush(); err != nil {
		return err
	}
	if e.syncFn != nil {
		return e.syncFn()
	}
	return nil
}

func (e *binaryEmitter) End(rep *Report) error {
	b := e.buf[:0]
	if e.shard {
		if e.written != e.count {
			return fmt.Errorf("harness: shard end after %d of %d trials", e.written, e.count)
		}
		b = append(b, binTagShardEnd)
		b = binary.AppendUvarint(b, uint64(e.start))
		b = binary.AppendUvarint(b, uint64(e.count))
		b = append(b, binEndMagic...)
	} else {
		groupsJSON, err := json.Marshal(rep.Groups)
		if err != nil {
			return err
		}
		b = append(b, binTagEnd)
		b = binary.AppendUvarint(b, uint64(len(groupsJSON)))
		b = append(b, groupsJSON...)
		b = binary.AppendUvarint(b, uint64(rep.Total))
		b = binary.AppendUvarint(b, uint64(rep.Errors))
		b = append(b, binEndMagic...)
	}
	e.buf = b
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	if err := e.w.Flush(); err != nil {
		return err
	}
	if e.syncFn != nil {
		if err := e.syncFn(); err != nil {
			return err
		}
	}
	if e.closer != nil {
		return e.closer.Close()
	}
	return nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// binReader layers byte-offset accounting and bounds-checked primitives
// over a buffered reader; every decode path funnels through it so corrupt
// and truncated inputs surface as errors, never panics or giant
// allocations.
type binReader struct {
	r   *bufio.Reader
	off int64
}

func (br *binReader) ReadByte() (byte, error) {
	c, err := br.r.ReadByte()
	if err == nil {
		br.off++
	}
	return c, err
}

func (br *binReader) readFull(p []byte) error {
	n, err := io.ReadFull(br.r, p)
	br.off += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (br *binReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err == io.EOF && v == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	return v, err
}

// uvarintMax reads a uvarint and rejects values above max.
func (br *binReader) uvarintMax(max uint64, what string) (uint64, error) {
	v, err := br.uvarint()
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("harness: binary document: %s %d exceeds limit %d", what, v, max)
	}
	return v, nil
}

// readBlob reads n bytes in bounded chunks so a corrupt length claim
// costs allocation proportional to the data actually present, not to the
// claim — a truncated file asserting a 200 MB string fails after one
// 64 KB chunk.
func (br *binReader) readBlob(n uint64) ([]byte, error) {
	const chunk = 64 << 10
	cap0 := n
	if cap0 > chunk {
		cap0 = chunk
	}
	buf := make([]byte, 0, cap0)
	for uint64(len(buf)) < n {
		want := n - uint64(len(buf))
		if want > chunk {
			want = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, want)...)
		if err := br.readFull(buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func (br *binReader) str(max uint64, what string) (string, error) {
	n, err := br.uvarintMax(max, what+" length")
	if err != nil {
		return "", err
	}
	buf, err := br.readBlob(n)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

func (br *binReader) uint64LE() (uint64, error) {
	var b [8]byte
	if err := br.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// binHeader is the decoded fixed header of a binary sweep document.
// Full documents have shard=false, start=0, count=total, ckSalt=specHash;
// shard documents carry their range and the salted checkpoint key.
type binHeader struct {
	specJSON []byte
	spec     Spec
	specSeed int64
	total    int
	every    int
	specHash uint64

	shard  bool
	start  int
	count  int
	ckSalt uint64
}

func readBinHeader(br *binReader) (*binHeader, error) {
	magic := make([]byte, len(binMagic))
	if err := br.readFull(magic); err != nil {
		return nil, fmt.Errorf("harness: not a %s document: %w", BinarySchemaVersion, err)
	}
	shard := bytes.Equal(magic, binShardMagic)
	if !shard && !bytes.Equal(magic, binMagic) {
		return nil, fmt.Errorf("harness: not a %s document (bad magic)", BinarySchemaVersion)
	}
	specLen, err := br.uvarintMax(maxBinGroups, "spec")
	if err != nil {
		return nil, fmt.Errorf("harness: binary header: %w", err)
	}
	specJSON, err := br.readBlob(specLen)
	if err != nil {
		return nil, fmt.Errorf("harness: binary header: %w", err)
	}
	total, err := br.uvarintMax(1<<40, "total")
	if err != nil {
		return nil, fmt.Errorf("harness: binary header: %w", err)
	}
	var start, count uint64
	if shard {
		if start, err = br.uvarintMax(1<<40, "shard start"); err != nil {
			return nil, fmt.Errorf("harness: binary header: %w", err)
		}
		if count, err = br.uvarintMax(1<<40, "shard count"); err != nil {
			return nil, fmt.Errorf("harness: binary header: %w", err)
		}
		if count == 0 || start+count > total {
			return nil, fmt.Errorf("harness: binary header: shard range [%d,%d) outside sweep of %d trials", start, start+count, total)
		}
	} else {
		count = total
	}
	every, err := br.uvarintMax(1<<40, "checkpoint cadence")
	if err != nil {
		return nil, fmt.Errorf("harness: binary header: %w", err)
	}
	if every == 0 {
		return nil, fmt.Errorf("harness: binary header: zero checkpoint cadence")
	}
	hash, err := br.uint64LE()
	if err != nil {
		return nil, fmt.Errorf("harness: binary header: %w", err)
	}
	if want := sweepSpecHash(specJSON, int(total)); hash != want {
		return nil, fmt.Errorf("harness: binary header: spec hash %016x does not match spec (%016x)", hash, want)
	}
	h := &binHeader{
		specJSON: specJSON, total: int(total), every: int(every), specHash: hash,
		shard: shard, start: int(start), count: int(count), ckSalt: hash,
	}
	if shard {
		h.ckSalt = shardSalt(hash, h.start, h.count)
	}
	if err := json.Unmarshal(specJSON, &h.spec); err != nil {
		return nil, fmt.Errorf("harness: binary header: invalid spec JSON: %w", err)
	}
	h.specSeed = h.spec.withDefaults().Seed
	return h, nil
}

type binCell struct {
	key  [6]string
	n, m int
}

// binTrailer is the decoded end record: a groups trailer (tag 0x04, full
// documents) or a shard end (tag 0x05, shard documents).
type binTrailer struct {
	groupsJSON []byte
	total      int
	errors     int

	shard bool
	start int
	count int
}

// readBinRecord decodes the next record after the header. Exactly one of
// the returns is meaningful per tag: a trial (tag 0x02), a completed
// count (tag 0x03), a trailer (tag 0x04); cell definitions (tag 0x01)
// mutate cells in place and return tag only. io.EOF is returned at a
// clean record boundary.
func readBinRecord(br *binReader, h *binHeader, cells *[]binCell, trialsSeen int) (tag byte, tr TrialResult, completed int, trailer *binTrailer, err error) {
	tag, err = br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, tr, 0, nil, io.EOF
		}
		return 0, tr, 0, nil, err
	}
	switch tag {
	case binTagCell:
		if len(*cells) >= maxBinCells {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: too many cell definitions")
		}
		var c binCell
		for i := range c.key {
			s, err := br.str(maxBinString, "cell string")
			if err != nil {
				return tag, tr, 0, nil, err
			}
			c.key[i] = s
		}
		n, err := br.uvarintMax(1<<40, "cell n")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		m, err := br.uvarintMax(1<<40, "cell m")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		c.n, c.m = int(n), int(m)
		*cells = append(*cells, c)
		return tag, tr, 0, nil, nil

	case binTagTrial:
		cellID, err := br.uvarint()
		if err != nil {
			return tag, tr, 0, nil, err
		}
		if cellID >= uint64(len(*cells)) {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: trial references undefined cell %d", cellID)
		}
		c := (*cells)[cellID]
		rep, err := br.uvarintMax(1<<40, "rep")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		flags, err := br.ReadByte()
		if err != nil {
			return tag, tr, 0, nil, unexpectedEOF(err)
		}
		if flags&^byte(binFlagsKnown) != 0 {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: unknown trial flags %02x", flags)
		}
		var vals [5]uint64
		for i, what := range []string{"d", "rounds", "last_active", "messages", "bits"} {
			vals[i], err = br.uvarintMax(1<<62, what)
			if err != nil {
				return tag, tr, 0, nil, err
			}
		}
		leaders, err := br.uvarintMax(1<<40, "leaders")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		tr = TrialResult{
			Trial: Trial{
				Index: trialsSeen,
				Algo:  c.key[0], Graph: c.key[1], Mode: c.key[2],
				Wake: c.key[3], Delay: c.key[4], Fault: c.key[5],
				Rep:  int(rep),
				Seed: TrialSeed(h.specSeed, int(rep)),
			},
			N: c.n, M: c.m, D: int(vals[0]),
			Rounds: int(vals[1]), LastActive: int(vals[2]),
			Messages: int64(vals[3]), Bits: int64(vals[4]),
			Leaders:     int(leaders),
			Unique:      flags&binFlagUnique != 0,
			Halted:      flags&binFlagHalted != 0,
			HitRoundCap: flags&binFlagHitRoundCap != 0,
			LiveUnique:  flags&binFlagLiveUnique != 0,
		}
		if flags&binFlagSeed != 0 {
			u, err := br.uvarint()
			if err != nil {
				return tag, tr, 0, nil, err
			}
			tr.Seed = unzigzag(u)
		}
		if flags&binFlagFault != 0 {
			crashes, err := br.uvarintMax(1<<40, "crashes")
			if err != nil {
				return tag, tr, 0, nil, err
			}
			recoveries, err := br.uvarintMax(1<<40, "recoveries")
			if err != nil {
				return tag, tr, 0, nil, err
			}
			dropped, err := br.uvarintMax(1<<62, "dropped")
			if err != nil {
				return tag, tr, 0, nil, err
			}
			tr.Crashes, tr.Recoveries, tr.Dropped = int(crashes), int(recoveries), int64(dropped)
		}
		if flags&binFlagErr != 0 {
			s, err := br.str(maxBinString, "trial error")
			if err != nil {
				return tag, tr, 0, nil, err
			}
			tr.Err = s
		}
		return tag, tr, 0, nil, nil

	case binTagCheckpoint:
		done, err := br.uvarintMax(1<<40, "checkpoint completed")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		hash, err := br.uint64LE()
		if err != nil {
			return tag, tr, 0, nil, err
		}
		if hash != checkpointHash(h.ckSalt, int(done)) {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: checkpoint hash mismatch at %d trials", done)
		}
		return tag, tr, int(done), nil, nil

	case binTagEnd:
		if h.shard {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: groups trailer inside a shard document")
		}
		groupsJSON, err := br.str(maxBinGroups, "groups trailer")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		total, err := br.uvarintMax(1<<40, "trailer total")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		errCount, err := br.uvarintMax(1<<40, "trailer errors")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		endMagic := make([]byte, len(binEndMagic))
		if err := br.readFull(endMagic); err != nil {
			return tag, tr, 0, nil, err
		}
		if !bytes.Equal(endMagic, binEndMagic) {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: bad end magic")
		}
		return tag, tr, 0, &binTrailer{groupsJSON: []byte(groupsJSON), total: int(total), errors: int(errCount)}, nil

	case binTagShardEnd:
		if !h.shard {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: shard end inside a full document")
		}
		start, err := br.uvarintMax(1<<40, "shard end start")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		count, err := br.uvarintMax(1<<40, "shard end count")
		if err != nil {
			return tag, tr, 0, nil, err
		}
		endMagic := make([]byte, len(binEndMagic))
		if err := br.readFull(endMagic); err != nil {
			return tag, tr, 0, nil, err
		}
		if !bytes.Equal(endMagic, binEndMagic) {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: bad end magic")
		}
		if int(start) != h.start || int(count) != h.count {
			return tag, tr, 0, nil, fmt.Errorf("harness: binary document: shard end range [%d,%d) disagrees with header [%d,%d)",
				start, start+count, h.start, h.start+h.count)
		}
		return tag, tr, 0, &binTrailer{shard: true, start: int(start), count: int(count)}, nil

	default:
		return tag, tr, 0, nil, fmt.Errorf("harness: binary document: unknown record tag %02x", tag)
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeBinary drives a full sequential decode: header, then records
// until the end trailer. onTrial may be nil. It enforces record-level
// invariants (trial count monotonicity, checkpoint consistency, nothing
// after the trailer).
func decodeBinary(r io.Reader, onTrial func(TrialResult) error) (*binHeader, *binTrailer, error) {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<16)}
	h, err := readBinHeader(br)
	if err != nil {
		return nil, nil, err
	}
	if h.shard {
		return nil, nil, fmt.Errorf("harness: %s is a shard document; merge shards with MergeShards first", ShardSchemaVersion)
	}
	var cells []binCell
	trials := 0
	for {
		tag, tr, completed, trailer, err := readBinRecord(br, h, &cells, trials)
		if err == io.EOF {
			return h, nil, fmt.Errorf("harness: binary document: missing end trailer (stream ends after %d trials)", trials)
		}
		if err != nil {
			return h, nil, err
		}
		switch tag {
		case binTagTrial:
			if trials >= h.total {
				return h, nil, fmt.Errorf("harness: binary document: more trials than the declared %d", h.total)
			}
			trials++
			if onTrial != nil {
				if err := onTrial(tr); err != nil {
					return h, nil, err
				}
			}
		case binTagCheckpoint:
			if completed != trials {
				return h, nil, fmt.Errorf("harness: binary document: checkpoint claims %d trials, saw %d", completed, trials)
			}
		case binTagEnd:
			if trials != h.total || trailer.total != h.total {
				return h, trailer, fmt.Errorf("harness: binary document: trailer declares %d/%d trials, saw %d",
					trailer.total, h.total, trials)
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return h, trailer, fmt.Errorf("harness: binary document: trailing data after end record")
			}
			return h, trailer, nil
		}
	}
}

// DecodeBinaryTrials streams the trial records of a complete
// ule-sweepbin/v1 document from r, calling fn once per trial in index
// order with O(1) memory. Incomplete (checkpoint-only) files are the
// domain of InspectBinary/ResumeBinary and are rejected here.
func DecodeBinaryTrials(r io.Reader, fn func(TrialResult) error) error {
	_, _, err := decodeBinary(r, fn)
	return err
}

// ParseBinary decodes a complete ule-sweepbin/v1 document into the same
// Document shape ParseDocument yields for the JSON format (Schema is set
// to BinarySchemaVersion). Corrupt or truncated input returns an error,
// never a panic.
func ParseBinary(data []byte) (*Document, error) {
	doc := &Document{Schema: BinarySchemaVersion}
	h, trailer, err := decodeBinary(bytes.NewReader(data), func(tr TrialResult) error {
		doc.Trials = append(doc.Trials, tr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	doc.Spec = h.spec
	doc.TotalTrials = trailer.total
	doc.Errors = trailer.errors
	if len(trailer.groupsJSON) > 0 {
		if err := json.Unmarshal(trailer.groupsJSON, &doc.Groups); err != nil {
			return nil, fmt.Errorf("harness: binary document: invalid groups trailer: %w", err)
		}
	}
	return doc, nil
}

// ExportJSON re-encodes a complete binary sweep stream as the
// ule-sweep/v3 JSON document, byte-identical to what NewJSONEmitter
// produced during the original run: the spec echo and groups trailer are
// stored verbatim in the binary stream, and the trial records go through
// the same appendTrialJSON encoder the live emitter uses.
func ExportJSON(r io.Reader, w io.Writer) error {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<16)}
	h, err := readBinHeader(br)
	if err != nil {
		return err
	}
	if h.shard {
		return fmt.Errorf("harness: %s is a shard document; merge shards with MergeShards first", ShardSchemaVersion)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "{\"schema\":%q,\n\"spec\":%s,\n\"trials\":[", SchemaVersion, h.specJSON); err != nil {
		return err
	}
	var buf []byte
	var cells []binCell
	trials := 0
	for {
		tag, tr, completed, trailer, err := readBinRecord(br, h, &cells, trials)
		if err == io.EOF {
			return fmt.Errorf("harness: binary document: missing end trailer (stream ends after %d trials)", trials)
		}
		if err != nil {
			return err
		}
		switch tag {
		case binTagTrial:
			b := buf[:0]
			if trials == 0 {
				b = append(b, '\n')
			} else {
				b = append(b, ',', '\n')
			}
			b = appendTrialJSON(b, &tr)
			buf = b
			if _, err := bw.Write(b); err != nil {
				return err
			}
			trials++
		case binTagCheckpoint:
			if completed != trials {
				return fmt.Errorf("harness: binary document: checkpoint claims %d trials, saw %d", completed, trials)
			}
		case binTagEnd:
			if trials != h.total || trailer.total != h.total {
				return fmt.Errorf("harness: binary document: trailer declares %d/%d trials, saw %d", trailer.total, h.total, trials)
			}
			if _, err := fmt.Fprintf(bw, "\n],\n\"groups\":%s,\n\"total_trials\":%d,\n\"errors\":%d}\n",
				trailer.groupsJSON, trailer.total, trailer.errors); err != nil {
				return err
			}
			return bw.Flush()
		}
	}
}

// SweepCheckpoint describes the durable prefix of a (possibly
// interrupted) binary sweep file: how many leading trials survived, and
// everything needed to verify a resuming spec and replay the prefix into
// the aggregator. Obtain one with InspectBinary (read-only) or
// ResumeBinary (truncates the file and returns the continuation emitter).
type SweepCheckpoint struct {
	// Spec is the sweep spec echoed in the file header.
	Spec Spec
	// Total is the declared trial count of the full sweep.
	Total int
	// Start and Count delimit the trial range [Start, Start+Count) the
	// file covers: 0 and Total for full documents, the shard range for
	// shard documents.
	Start int
	Count int
	// Completed is the length of the durable trial prefix, counted from
	// Start (range-local).
	Completed int
	// Done reports a complete document (end trailer present).
	Done bool

	shard    bool
	specHash uint64
	path     string
	offset   int64 // byte length of the durable prefix
	cells    int   // cell definitions within the durable prefix
	every    int
}

// check verifies that a compiled resuming spec matches the checkpoint.
func (ck *SweepCheckpoint) check(spec Spec, total int) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	if hash := sweepSpecHash(specJSON, total); hash != ck.specHash {
		return fmt.Errorf("harness: resume spec mismatch: sweep expands to hash %016x, checkpoint has %016x", hash, ck.specHash)
	}
	if ck.Done {
		return ErrSweepComplete
	}
	if ck.Completed > ck.Count {
		return fmt.Errorf("harness: checkpoint claims %d of %d trials", ck.Completed, ck.Count)
	}
	return nil
}

// CheckSpec verifies that the checkpoint file belongs to spec: the
// compiled spec's hash must match the file header's. The fleet
// coordinator uses it to detect corrupt or foreign shards (the ISSUE's
// spec-hash-mismatch lease revocation) without touching the file.
func (ck *SweepCheckpoint) CheckSpec(spec Spec) error {
	p, err := spec.compile()
	if err != nil {
		return err
	}
	specJSON, err := json.Marshal(p.spec)
	if err != nil {
		return err
	}
	if hash := sweepSpecHash(specJSON, len(p.trials)); hash != ck.specHash {
		return fmt.Errorf("harness: %s: spec hash %016x does not match sweep (%016x)", ck.path, ck.specHash, hash)
	}
	return nil
}

// replay streams the durable prefix trials (in index order) to fn; Run
// uses it to rebuild the aggregator state before executing the suffix.
func (ck *SweepCheckpoint) replay(fn func(TrialResult) error) error {
	if ck.Completed == 0 {
		return nil
	}
	f, err := os.Open(ck.path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := &binReader{r: bufio.NewReaderSize(f, 1<<16)}
	h, err := readBinHeader(br)
	if err != nil {
		return err
	}
	var cells []binCell
	trials := 0
	for trials < ck.Completed {
		tag, tr, _, _, err := readBinRecord(br, h, &cells, h.start+trials)
		if err != nil {
			return unexpectedEOF(err)
		}
		switch tag {
		case binTagTrial:
			trials++
			if err := fn(tr); err != nil {
				return err
			}
		case binTagEnd:
			return fmt.Errorf("harness: checkpoint file has an end trailer before %d trials", ck.Completed)
		}
	}
	return nil
}

// scanCheckpoint reads as much of a binary sweep file as is intact and
// returns the state at the last valid checkpoint (or trailer). Damage
// past that point — a torn record from a killed process, trailing
// garbage — is reported via durable=false for the tail, never an error,
// as long as the header itself is sound. wantShard selects which of the
// two document kinds the caller expects; the other kind is an error.
func scanCheckpoint(path string, wantShard bool) (*SweepCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := &binReader{r: bufio.NewReaderSize(f, 1<<16)}
	h, err := readBinHeader(br)
	if err != nil {
		return nil, err
	}
	if h.shard != wantShard {
		if h.shard {
			return nil, fmt.Errorf("harness: %s: shard document (use InspectShard/ResumeShard)", path)
		}
		return nil, fmt.Errorf("harness: %s: full document, not a shard", path)
	}
	ck := &SweepCheckpoint{
		Spec:     h.spec,
		Total:    h.total,
		Start:    h.start,
		Count:    h.count,
		shard:    h.shard,
		specHash: h.specHash,
		path:     path,
		offset:   -1, // no durable checkpoint seen yet
		every:    h.every,
	}
	var cells []binCell
	trials := 0
	for {
		tag, _, completed, trailer, err := readBinRecord(br, h, &cells, h.start+trials)
		if err != nil {
			// io.EOF at a record boundary and any torn/corrupt tail both
			// mean: resume from the last durable checkpoint.
			break
		}
		switch tag {
		case binTagTrial:
			if trials >= h.count {
				return nil, fmt.Errorf("harness: binary document: more trials than the declared %d", h.count)
			}
			trials++
		case binTagCheckpoint:
			if completed != trials {
				// A checkpoint that disagrees with the stream is corruption;
				// stop trusting the file here.
				return finishScan(ck)
			}
			ck.Completed = trials
			ck.offset = br.off
			ck.cells = len(cells)
		case binTagEnd, binTagShardEnd:
			if (trailer.shard || trailer.total == h.total) && trials == h.count {
				ck.Completed = trials
				ck.offset = br.off
				ck.cells = len(cells)
				ck.Done = true
			}
			return finishScan(ck)
		}
	}
	return finishScan(ck)
}

// finishScan rejects files with no durable checkpoint at all (the header
// checkpoint is written before the first trial, so its absence means the
// header never became durable).
func finishScan(ck *SweepCheckpoint) (*SweepCheckpoint, error) {
	if ck.offset < 0 {
		return nil, fmt.Errorf("harness: %s: no durable checkpoint (file not resumable)", ck.path)
	}
	return ck, nil
}

// InspectBinary reports the durable state of a binary sweep file without
// modifying it.
func InspectBinary(path string) (*SweepCheckpoint, error) {
	return scanCheckpoint(path, false)
}

// InspectShard reports the durable state of a shard file without
// modifying it.
func InspectShard(path string) (*SweepCheckpoint, error) {
	return scanCheckpoint(path, true)
}

// ResumeBinary prepares an interrupted binary sweep for continuation: it
// finds the last durable checkpoint, truncates any torn tail past it,
// and returns the checkpoint plus an emitter that appends the remaining
// records to the same file. Pass both to Run (RunConfig.Resume and
// RunConfig.Emitters); the finished file is byte-identical to an
// uninterrupted run. Returns ErrSweepComplete if the file already holds
// the end trailer.
func ResumeBinary(path string) (*SweepCheckpoint, Emitter, error) {
	return resumeFile(path, false)
}

// ResumeShard is ResumeBinary for shard files: the returned checkpoint
// carries the shard range, and the emitter continues the same shard.
// Pass RunConfig.Range matching (Start, Count) alongside Resume.
func ResumeShard(path string) (*SweepCheckpoint, Emitter, error) {
	return resumeFile(path, true)
}

func resumeFile(path string, shard bool) (*SweepCheckpoint, Emitter, error) {
	ck, err := scanCheckpoint(path, shard)
	if err != nil {
		return nil, nil, err
	}
	if ck.Done {
		return ck, nil, ErrSweepComplete
	}
	if err := os.Truncate(path, ck.offset); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Re-prime the emitter exactly as it was after writing the durable
	// prefix: cell table, trial count, checkpoint cadence.
	salt := ck.specHash
	if shard {
		salt = shardSalt(ck.specHash, ck.Start, ck.Count)
	}
	e := &binaryEmitter{
		w:        bufio.NewWriterSize(f, 1<<16),
		syncFn:   f.Sync,
		closer:   f,
		cells:    make(map[[6]string]int, ck.cells),
		specHash: ck.specHash,
		ckSalt:   salt,
		total:    ck.Total,
		written:  ck.Completed,
		every:    ck.every,
		resumed:  true,
		shard:    shard,
		start:    ck.Start,
		count:    ck.Count,
	}
	if err := primeCells(path, ck, e.cells); err != nil {
		f.Close()
		return nil, nil, err
	}
	return ck, e, nil
}

// primeCells rebuilds the emitter's cell table from the durable prefix.
func primeCells(path string, ck *SweepCheckpoint, out map[[6]string]int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := &binReader{r: bufio.NewReaderSize(f, 1<<16)}
	h, err := readBinHeader(br)
	if err != nil {
		return err
	}
	var cells []binCell
	trials := 0
	for len(cells) < ck.cells || trials < ck.Completed {
		tag, _, _, _, err := readBinRecord(br, h, &cells, trials)
		if err != nil {
			return unexpectedEOF(err)
		}
		if tag == binTagTrial {
			trials++
		}
	}
	for i, c := range cells[:ck.cells] {
		out[c.key] = i
	}
	return nil
}
