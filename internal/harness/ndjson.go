package harness

import (
	"encoding/json"
	"fmt"
	"io"
)

// NDJSONSchemaVersion identifies the newline-delimited streaming layout
// written by NewNDJSONEmitter: one JSON object per line, no enclosing
// document. The layout:
//
//	line 1    {"schema":"ule-sweep-ndjson/v1","spec":{...},"total_trials":N}
//	per trial one object, byte-identical to the trial objects of the
//	          ule-sweep/v3 JSON document (same appendTrialJSON encoder)
//	last line {"groups":[...],"total_trials":N,"errors":E}
//
// Every line is a single Write call, so an unbuffered sink (an HTTP
// response with per-write flushing, a pipe) observes complete records —
// this is the streaming format of the uled serving layer (docs/SERVICE.md).
const NDJSONSchemaVersion = "ule-sweep-ndjson/v1"

// ndjsonEmitter streams one object per line through the zero-reflection
// append encoders over a reusable buffer. Unlike jsonEmitter it does not
// buffer across records: each line reaches the sink as one Write.
type ndjsonEmitter struct {
	w   io.Writer
	buf []byte
}

// NewNDJSONEmitter returns an emitter streaming newline-delimited JSON to
// w (one header line, one line per trial, one trailer line — see
// NDJSONSchemaVersion). Trial lines are byte-identical to the trial
// objects inside the ule-sweep/v3 document, pinned by ndjson_test.go.
func NewNDJSONEmitter(w io.Writer) Emitter {
	return &ndjsonEmitter{w: w}
}

func (e *ndjsonEmitter) Begin(spec Spec, total int) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(e.w, "{\"schema\":%q,\"spec\":%s,\"total_trials\":%d}\n",
		NDJSONSchemaVersion, specJSON, total)
	return err
}

func (e *ndjsonEmitter) Trial(tr TrialResult) error {
	b := appendTrialJSON(e.buf[:0], &tr)
	b = append(b, '\n')
	e.buf = b
	_, err := e.w.Write(b)
	return err
}

func (e *ndjsonEmitter) End(rep *Report) error {
	groups, err := json.Marshal(rep.Groups)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(e.w, "{\"groups\":%s,\"total_trials\":%d,\"errors\":%d}\n",
		groups, rep.Total, rep.Errors)
	return err
}
