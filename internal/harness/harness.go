package harness

import (
	"fmt"
	"math/rand"
	"time"

	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/sim"
	"ule/internal/stats"
)

// TrialResult is the streamed per-trial record: the trial identity plus
// the scalar measurements reduced from the full sim.Result (which is
// discarded immediately — statuses, per-edge maps and other O(n) state
// never accumulate across a sweep).
type TrialResult struct {
	Trial
	// N, M describe the instantiated graph; D is the diameter granted as
	// knowledge (0 when the algorithm runs without knowing D).
	N int `json:"n"`
	M int `json:"m"`
	D int `json:"d,omitempty"`
	// Rounds is the executed round count; LastActive the last round with
	// activity (the natural time measure for quiet protocols).
	Rounds     int `json:"rounds"`
	LastActive int `json:"last_active"`
	// Messages and Bits are the run's communication totals.
	Messages int64 `json:"messages"`
	Bits     int64 `json:"bits"`
	// Leaders counts elected nodes; Unique is the paper's success
	// condition (exactly one leader, nobody undecided).
	Leaders int  `json:"leaders"`
	Unique  bool `json:"unique"`
	// Halted / HitRoundCap describe how the run ended.
	Halted      bool `json:"halted"`
	HitRoundCap bool `json:"hit_round_cap,omitempty"`
	// Fault-cell measurements, set only when the trial ran under a fault
	// schedule (fault-free trial records are unchanged from earlier
	// schema versions): applied crash/recovery event counts, messages
	// lost to the fault adversary, and the fault-tolerant success
	// condition (core.Correct — a unique leader among the live nodes).
	Crashes    int   `json:"crashes,omitempty"`
	Recoveries int   `json:"recoveries,omitempty"`
	Dropped    int64 `json:"dropped,omitempty"`
	LiveUnique bool  `json:"live_unique,omitempty"`
	// Err records a per-trial model violation ("" = clean run). The sweep
	// continues past trial errors; Report.Errors counts them.
	Err string `json:"err,omitempty"`

	// elapsed is kept out of the JSON so emitter output is byte-identical
	// across worker counts and machines.
	elapsed time.Duration
}

// GroupStats aggregates every repetition of one (algo, graph, mode, wake,
// delay, fault) cell. Delay is empty for synchronous cells; Fault is
// empty for fault-free cells.
type GroupStats struct {
	Algo   string `json:"algo"`
	Graph  string `json:"graph"`
	Mode   string `json:"mode"`
	Wake   string `json:"wake"`
	Delay  string `json:"delay_model,omitempty"`
	Fault  string `json:"fault_model,omitempty"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	D      int    `json:"d,omitempty"`
	Trials int    `json:"trials"`
	Errors int    `json:"errors,omitempty"`
	// Messages/Rounds summarize clean trials; Success is the fraction of
	// clean trials electing a unique leader.
	Messages stats.Summary `json:"messages"`
	Rounds   stats.Summary `json:"rounds"` // LastActive per trial
	Bits     stats.Summary `json:"bits"`
	Success  float64       `json:"success"`
	// Survival is the fraction of clean trials satisfying the
	// fault-tolerant success condition (unique live leader); only
	// emitted for fault cells.
	Survival float64 `json:"survival,omitempty"`
}

// Report is the end-of-sweep synthesis returned by Run and appended by the
// JSON emitter.
type Report struct {
	Spec   Spec         `json:"spec"`
	Total  int          `json:"total_trials"`
	Errors int          `json:"errors,omitempty"`
	Groups []GroupStats `json:"groups"`

	// Elapsed and Workers describe the execution, not the experiment;
	// they are excluded from emitter output to keep it deterministic.
	Elapsed time.Duration `json:"-"`
	Workers int           `json:"-"`

	// graphs holds the instantiated graph axis, parallel to Spec.Graphs.
	graphs []*graph.Graph
}

// Graphs returns the instantiated graph axis, parallel to Spec.Graphs.
// Callers needing per-graph normalizations (e.g. rounds/D from the
// memoized exact diameter) use these instances instead of rebuilding.
func (r *Report) Graphs() []*graph.Graph { return r.graphs }

// Group returns the aggregate for one cell, or nil if absent. The
// optional trailing arguments select a delay model (rest[0]) and a fault
// model (rest[1]); without them the first cell matching
// (algo, graph, mode, wake) is returned, which is unique for synchronous
// fault-free cells and for sweeps with a single delay/fault model.
func (r *Report) Group(algo, graphSpec, mode, wake string, rest ...string) *GroupStats {
	for i := range r.Groups {
		g := &r.Groups[i]
		if g.Algo == algo && g.Graph == graphSpec && g.Mode == mode && g.Wake == wake &&
			(len(rest) < 1 || g.Delay == rest[0]) &&
			(len(rest) < 2 || g.Fault == rest[1]) {
			return g
		}
	}
	return nil
}

// TrialRange selects a contiguous slice [Start, Start+Count) of a
// sweep's trial index space. Workers of a distributed run (internal/fleet)
// each execute one range and write one shard file.
type TrialRange struct {
	Start int
	Count int
}

// RunConfig tunes sweep execution (all fields optional).
type RunConfig struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// Emitters receive every trial record in trial-index order, then the
	// final report.
	Emitters []Emitter
	// Progress, when set, is called after every completed trial with the
	// completed and total counts (from the single consumer goroutine).
	// Both counts are range-local when Range is set.
	Progress func(done, total int)
	// Resume, when set, continues an interrupted binary sweep instead of
	// starting over: the compiled spec must hash-match the checkpoint's
	// header, the completed trial prefix is replayed from the checkpoint
	// file into the aggregator (not re-run and not re-emitted), and only
	// the remaining suffix executes. Pair it with the emitter returned by
	// ResumeBinary so the binary stream continues where it stopped; the
	// final document is byte-identical to an uninterrupted run. The
	// checkpoint's range must match Range (a full-document checkpoint
	// pairs with Range == nil).
	Resume *SweepCheckpoint
	// Range, when set, restricts execution to the trials in
	// [Start, Start+Count); emitted records keep their absolute trial
	// indices. Emitters still receive the full spec and total in Begin,
	// so a shard emitter can bind the shard to the whole sweep.
	Range *TrialRange
}

// groupAcc accumulates one cell online. The three metric accumulators are
// exact value→count multisets (stats.IntSample), so consumer memory is
// bounded by the number of distinct observed values per cell — flat in
// trial count — while the end-of-sweep summaries stay bit-identical to
// the old O(trials) float-slice path.
type groupAcc struct {
	key              [6]string
	n, m, d          int
	trials, errors   int
	unique           int
	liveUnique       int
	msgs, rounds, bs stats.IntSample
}

// add folds one emitted record into the cell accumulators.
func (acc *groupAcc) add(next *TrialResult) {
	acc.trials++
	if next.Err != "" {
		acc.errors++
		return
	}
	acc.msgs.Add(next.Messages)
	acc.rounds.Add(int64(next.LastActive))
	acc.bs.Add(next.Bits)
	if next.Unique {
		acc.unique++
	}
	if next.LiveUnique {
		acc.liveUnique++
	}
}

// sweepAgg is the online aggregator shared by Run and MergeShards: it
// folds trial records (fed in trial-index order) into per-cell
// accumulators and builds the report groups, so a merged document's
// groups are bit-identical to a single-process run's.
type sweepAgg struct {
	groups []*groupAcc
	byKey  map[[6]string]*groupAcc
}

func newSweepAgg() *sweepAgg {
	return &sweepAgg{byKey: make(map[[6]string]*groupAcc)}
}

func (a *sweepAgg) add(next *TrialResult) {
	key := [6]string{next.Algo, next.Graph, next.Mode, next.Wake, next.Delay, next.Fault}
	acc, ok := a.byKey[key]
	if !ok {
		acc = &groupAcc{key: key, n: next.N, m: next.M, d: next.D}
		a.byKey[key] = acc
		a.groups = append(a.groups, acc)
	}
	acc.add(next)
}

// finish appends the group summaries (in first-appearance order, which is
// trial-index order) to rep and accumulates the error total.
func (a *sweepAgg) finish(rep *Report) {
	for _, acc := range a.groups {
		gs := GroupStats{
			Algo: acc.key[0], Graph: acc.key[1], Mode: acc.key[2], Wake: acc.key[3],
			Delay: acc.key[4], Fault: acc.key[5],
			N: acc.n, M: acc.m, D: acc.d,
			Trials:   acc.trials,
			Errors:   acc.errors,
			Messages: acc.msgs.Summary(),
			Rounds:   acc.rounds.Summary(),
			Bits:     acc.bs.Summary(),
		}
		if clean := acc.trials - acc.errors; clean > 0 {
			gs.Success = float64(acc.unique) / float64(clean)
			if gs.Fault != "" {
				gs.Survival = float64(acc.liveUnique) / float64(clean)
			}
		}
		rep.Errors += acc.errors
		rep.Groups = append(rep.Groups, gs)
	}
}

// Run expands the spec and executes every trial on the work-stealing pool,
// streaming records to the emitters and the online aggregator. Per-trial
// model violations are recorded in the affected TrialResult and counted in
// the report; Run itself fails only on invalid specs or emitter errors.
func Run(spec Spec, rc RunConfig) (*Report, error) {
	p, err := spec.compile()
	if err != nil {
		return nil, err
	}
	workers := rc.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	total := len(p.trials)

	// The executed range: the whole sweep, or rc.Range's slice of it.
	rangeStart, rangeCount := 0, total
	if rc.Range != nil {
		rangeStart, rangeCount = rc.Range.Start, rc.Range.Count
		if rangeStart < 0 || rangeCount <= 0 || rangeStart+rangeCount > total {
			return nil, fmt.Errorf("harness: trial range [%d,%d) outside sweep of %d trials", rangeStart, rangeStart+rangeCount, total)
		}
	}

	agg := newSweepAgg()

	// A resumed sweep re-aggregates the durable prefix from the
	// checkpoint file; those trials are neither re-run nor re-emitted.
	completed := 0
	if rc.Resume != nil {
		if err := rc.Resume.check(p.spec, total); err != nil {
			return nil, err
		}
		if rc.Resume.Start != rangeStart || rc.Resume.Count != rangeCount {
			return nil, fmt.Errorf("harness: resume checkpoint covers [%d,%d), run range is [%d,%d)",
				rc.Resume.Start, rc.Resume.Start+rc.Resume.Count, rangeStart, rangeStart+rangeCount)
		}
		completed = rc.Resume.Completed
	}
	for _, em := range rc.Emitters {
		if err := em.Begin(p.spec, total); err != nil {
			return nil, err
		}
	}
	if rc.Resume != nil {
		if err := rc.Resume.replay(func(tr TrialResult) error {
			agg.add(&tr)
			return nil
		}); err != nil {
			return nil, fmt.Errorf("harness: resume replay: %w", err)
		}
	}

	start := time.Now()
	results := make(chan TrialResult, 2*workers)
	poolDone := make(chan struct{})
	states := make([]workerState, workers)
	go func() {
		defer close(results)
		runPool(rangeCount-completed, workers, func(i, w int) {
			select {
			case <-poolDone:
				return // consumer bailed on an emitter error
			default:
			}
			if states[w].cache == nil {
				states[w].cache = preparedCache{}
			}
			results <- runTrial(p, p.trials[rangeStart+completed+i], &states[w])
		})
	}()

	// Single consumer: reorder to trial-index order, emit, aggregate.
	// The reorder window is a power-of-two ring of small TrialResult
	// records (see reorderRing).
	var (
		ring    = newReorderRing(2*workers, rangeStart+completed)
		done    = completed
		emitErr error
	)
	for tr := range results {
		done++
		if rc.Progress != nil {
			rc.Progress(done, rangeCount)
		}
		ring.put(tr)
		for {
			next, ok := ring.take()
			if !ok {
				break
			}
			if emitErr == nil {
				for _, em := range rc.Emitters {
					if err := em.Trial(next); err != nil {
						emitErr = err
						close(poolDone)
						break
					}
				}
			}
			agg.add(&next)
		}
	}
	if emitErr != nil {
		return nil, emitErr
	}

	rep := &Report{
		Spec:    p.spec,
		Total:   total,
		Elapsed: time.Since(start),
		Workers: workers,
		graphs:  p.graphs,
	}
	// The consumer aggregates in trial-index order, so groups are already
	// in deterministic expansion (graph-major) order.
	agg.finish(rep)
	for _, em := range rc.Emitters {
		if err := em.End(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// preparedCache holds one worker's (graph, algorithm) → Prepared
// bindings. It is per-worker state, so no locking; the Prepared inside
// reuses engine buffers across every trial the worker runs in that cell.
type preparedCache map[preparedKey]*core.Prepared

type preparedKey struct {
	graphIdx int
	algo     string
}

// workerState is one pool worker's private trial machinery: the Prepared
// cache plus a single sim.Result recycled across every trial the worker
// runs — each trial is reduced to a TrialResult before the next one
// overwrites it, so the O(n) statuses and instrument maps are allocated
// once per worker rather than once per trial.
type workerState struct {
	cache preparedCache
	res   sim.Result
}

// runTrial executes one trial through the worker's Prepared cache and
// reduces the full sim.Result to the streamed record.
func runTrial(p *plan, t Trial, ws *workerState) TrialResult {
	g := p.graphs[t.graphIdx]
	tr := TrialResult{Trial: t, N: g.N(), M: g.M()}
	key := preparedKey{t.graphIdx, t.Algo}
	prep, ok := ws.cache[key]
	if !ok {
		var err error
		prep, err = core.Prepare(g, t.Algo)
		if err != nil {
			tr.Err = err.Error()
			return tr
		}
		ws.cache[key] = prep
	}
	return finishTrial(p, t, g, prep, ws, tr)
}

func finishTrial(p *plan, t Trial, g *graph.Graph, prep *core.Prepared, ws *workerState, tr TrialResult) TrialResult {
	var ids []int64
	if p.spec.SmallIDs {
		ids = sim.PermutationIDs(g.N(), rand.New(rand.NewSource(sim.NodeSeed(t.Seed, -2))))
	}
	ro := core.RunOpts{
		Seed:      t.Seed,
		IDs:       ids,
		MaxRounds: p.spec.MaxRounds,
		Model:     t.Model(),
		Wake:      wakeSchedule(t.Wake, g.N(), t.Seed),
		Shards:    p.spec.Shards,
		Opt:       p.spec.Opt,
	}
	if prep.Spec().NeedsD {
		// Resolve the granted diameter here (memoized on the shared graph)
		// so the record shows exactly what the algorithm was told; with
		// Spec.DiameterEstimate that is the cheap double-sweep bound.
		if p.spec.DiameterEstimate {
			ro.D = g.DiameterEstimate()
		} else {
			ro.D = g.DiameterExact()
		}
		tr.D = ro.D
	}
	start := time.Now()
	err := prep.RunInto(ro, &ws.res)
	tr.elapsed = time.Since(start)
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	res := &ws.res
	tr.Rounds = res.Rounds
	tr.LastActive = res.LastActive
	tr.Messages = res.Messages
	tr.Bits = res.Bits
	tr.Leaders = res.LeaderCount()
	tr.Unique = res.UniqueLeader()
	tr.Halted = res.Halted
	tr.HitRoundCap = res.HitRoundCap
	if t.faults != nil {
		tr.Crashes = res.Crashes
		tr.Recoveries = res.Recoveries
		tr.Dropped = res.Dropped
		tr.LiveUnique = core.Correct(t.Model(), res)
	}
	return tr
}

// Smoke is a small built-in sweep used by `make sweep-smoke` and the CI
// pipeline: every registered algorithm on two graph families, in the
// synchronous model and in the asynchronous model under all three
// built-in delay schedules.
func Smoke() Spec {
	return Spec{
		Name:     "smoke",
		Algos:    core.Names(),
		Graphs:   []string{"ring:16", "random:24:60"},
		Trials:   2,
		Seed:     1,
		Modes:    []string{"congest", "async"},
		Delays:   []string{"unit", "random:4", "fifo:4"},
		SmallIDs: true,
	}
}
