package harness

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// IncompleteError reports that a set of shards does not cover the full
// trial index space of the sweep. MergeShards returns it before writing
// any emitter output, so a partial fleet run never produces a
// plausible-looking but incomplete merged document. The missing ranges
// are sorted and disjoint — a machine-readable work list for finishing
// the sweep.
type IncompleteError struct {
	Total   int          `json:"total"`
	Missing []TrialRange `json:"missing"`
}

func (e *IncompleteError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "harness: shards do not cover the sweep (%d trials); missing", e.Total)
	for i, r := range e.Missing {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " [%d,%d)", r.Start, r.Start+r.Count)
	}
	return sb.String()
}

// MergeConfig tunes MergeShards.
type MergeConfig struct {
	// Emitters receive every merged trial in absolute index order, then
	// the synthesized report — exactly the stream a single-process Run
	// would have produced. Pass NewBinaryEmitter (with the original
	// checkpoint cadence) to obtain a merged binary byte-identical to an
	// uninterrupted run.
	Emitters []Emitter
}

// MergeShards reassembles shard files written by distributed workers into
// the full sweep document. Shards may overlap (a retried unit re-runs a
// prefix another attempt already made durable) and may be incomplete
// (only the durable checkpoint prefix of each shard is trusted);
// duplicate trial records are deduplicated by absolute trial index, and
// every duplicate is verified byte-equal to the record it repeats — a
// mismatch means the determinism contract broke and is an error, not a
// silent choice. The merged emitter stream and report groups are
// bit-identical to a single-process Run of the same spec, which is the
// fleet coordinator's correctness bar (see docs/DISTRIBUTED.md).
//
// If the shards do not cover [0, total), MergeShards returns an
// *IncompleteError naming the missing ranges before any emitter output.
func MergeShards(spec Spec, paths []string, mc MergeConfig) (*Report, error) {
	p, err := spec.compile()
	if err != nil {
		return nil, err
	}
	total := len(p.trials)
	specJSON, err := json.Marshal(p.spec)
	if err != nil {
		return nil, err
	}
	wantHash := sweepSpecHash(specJSON, total)

	// Inspect every shard first: durable prefix lengths bound how far each
	// stream may be read, and coverage is checked before any output.
	cks := make([]*SweepCheckpoint, 0, len(paths))
	for _, path := range paths {
		ck, err := InspectShard(path)
		if err != nil {
			return nil, err
		}
		if ck.specHash != wantHash {
			return nil, fmt.Errorf("harness: %s: shard belongs to a different sweep (hash %016x, want %016x)",
				path, ck.specHash, wantHash)
		}
		if ck.Completed > 0 {
			cks = append(cks, ck)
		}
	}
	if missing := coverageGaps(total, cks); len(missing) > 0 {
		return nil, &IncompleteError{Total: total, Missing: missing}
	}

	streams := make([]*shardStream, 0, len(cks))
	defer func() {
		for _, s := range streams {
			s.close()
		}
	}()
	mh := make(mergeHeap, 0, len(cks))
	for _, ck := range cks {
		s, err := openShardStream(ck)
		if err != nil {
			return nil, err
		}
		streams = append(streams, s)
		if err := s.next(); err != nil {
			return nil, err
		}
		if s.ok {
			mh = append(mh, s)
		}
	}
	heap.Init(&mh)

	start := time.Now()
	for _, em := range mc.Emitters {
		if err := em.Begin(p.spec, total); err != nil {
			return nil, err
		}
	}
	agg := newSweepAgg()
	var prev TrialResult
	want := 0
	for mh.Len() > 0 {
		s := mh[0]
		tr := s.cur
		if err := s.next(); err != nil {
			return nil, err
		}
		if s.ok {
			heap.Fix(&mh, 0)
		} else {
			heap.Pop(&mh)
		}
		switch {
		case tr.Index == want:
			for _, em := range mc.Emitters {
				if err := em.Trial(tr); err != nil {
					return nil, err
				}
			}
			agg.add(&tr)
			prev = tr
			want++
		case tr.Index == want-1:
			// A re-run prefix duplicates trials another shard already
			// provided; determinism says the bytes must agree.
			if tr != prev {
				return nil, fmt.Errorf("harness: shard %s: trial %d disagrees with an overlapping shard (determinism violation)",
					s.path(), tr.Index)
			}
		default:
			// Coverage was verified up front, so an index jump here means a
			// shard lied about its range.
			return nil, fmt.Errorf("harness: shard merge out of order at trial %d (want %d)", tr.Index, want)
		}
	}
	if want != total {
		return nil, fmt.Errorf("harness: shard merge produced %d of %d trials", want, total)
	}

	rep := &Report{
		Spec:    p.spec,
		Total:   total,
		Elapsed: time.Since(start),
		graphs:  p.graphs,
	}
	agg.finish(rep)
	for _, em := range mc.Emitters {
		if err := em.End(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// coverageGaps returns the sorted disjoint sub-ranges of [0, total) not
// covered by any checkpoint's durable prefix [Start, Start+Completed).
func coverageGaps(total int, cks []*SweepCheckpoint) []TrialRange {
	type iv struct{ lo, hi int }
	ivs := make([]iv, 0, len(cks))
	for _, ck := range cks {
		ivs = append(ivs, iv{ck.Start, ck.Start + ck.Completed})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var missing []TrialRange
	at := 0
	for _, v := range ivs {
		if v.lo > at {
			missing = append(missing, TrialRange{Start: at, Count: v.lo - at})
			at = v.lo
		}
		if v.hi > at {
			at = v.hi
		}
	}
	if at < total {
		missing = append(missing, TrialRange{Start: at, Count: total - at})
	}
	return missing
}

// shardStream sequentially decodes the durable trial prefix of one shard
// file; cur holds the next undelivered trial (absolute index) while ok.
type shardStream struct {
	f     *os.File
	br    *binReader
	h     *binHeader
	cells []binCell
	local int // trials decoded so far (range-local)
	limit int // durable prefix length from InspectShard
	cur   TrialResult
	ok    bool
}

func openShardStream(ck *SweepCheckpoint) (*shardStream, error) {
	f, err := os.Open(ck.path)
	if err != nil {
		return nil, err
	}
	br := &binReader{r: bufio.NewReaderSize(f, 1<<16)}
	h, err := readBinHeader(br)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &shardStream{f: f, br: br, h: h, limit: ck.Completed}, nil
}

func (s *shardStream) path() string { return s.f.Name() }

func (s *shardStream) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// next advances to the following trial record, or sets ok=false when the
// durable prefix is exhausted. Decode errors inside the durable prefix
// are real errors — InspectShard already vouched for these bytes.
func (s *shardStream) next() error {
	s.ok = false
	for s.local < s.limit {
		tag, tr, _, _, err := readBinRecord(s.br, s.h, &s.cells, s.h.start+s.local)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", s.path(), unexpectedEOF(err))
		}
		if tag == binTagTrial {
			s.local++
			s.cur = tr
			s.ok = true
			return nil
		}
	}
	s.close()
	return nil
}

// mergeHeap orders shard streams by the absolute index of their next
// trial, so Pop order is global trial-index order with duplicates
// adjacent.
type mergeHeap []*shardStream

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cur.Index < h[j].cur.Index }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*shardStream)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
