package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// encodeTrialCases is the field-combination battery shared by the JSON
// and CSV golden tests: zero values, every omitempty path off and on,
// fault cells, error trials, negative seeds, huge counters, and error
// strings that stress the escapers.
func encodeTrialCases() []TrialResult {
	base := TrialResult{
		Trial: Trial{
			Index: 3, Algo: "leastel", Graph: "ring:24", Mode: "congest",
			Wake: "sync", Rep: 2, Seed: 12345,
		},
		N: 24, M: 24, Rounds: 17, LastActive: 15,
		Messages: 812, Bits: 51968, Leaders: 1, Unique: true, Halted: true,
	}
	cases := []TrialResult{
		{},
		base,
	}
	v := base
	v.Delay = "random:4"
	v.Mode = "async"
	cases = append(cases, v)
	v = base
	v.Fault = "crash:0.2"
	v.Crashes = 4
	v.Recoveries = 0
	v.Dropped = 19
	v.LiveUnique = true
	cases = append(cases, v)
	v = base
	v.Fault = "crashrec:0.1:32:keep"
	v.Crashes = 0
	v.Recoveries = 7
	v.LiveUnique = false
	cases = append(cases, v)
	v = base
	v.D = 12
	v.HitRoundCap = true
	v.Unique = false
	v.Halted = false
	cases = append(cases, v)
	v = base
	v.Seed = -9007199254740993
	v.Messages = 1<<62 + 7
	v.Bits = 1<<60 + 3
	v.Dropped = 1 << 59
	cases = append(cases, v)
	for _, errStr := range escapeStrings() {
		v = base
		v.Err = errStr
		cases = append(cases, v)
	}
	return cases
}

// escapeStrings is the escaper battery: quotes, backslashes, commas,
// control characters, HTML-escaped runes, multi-byte UTF-8, invalid
// UTF-8, and the JS line separators.
func escapeStrings() []string {
	return []string{
		"plain error",
		`quote " inside`,
		`backslash \ inside`,
		"comma, semicolon; pipe|",
		"newline\nand\ttab\rand\bbell\fform",
		"control \x00 \x1f chars",
		"html <tag> & entity",
		"unicode é ☃ 漢字",
		"invalid utf8 \xff\xfe bytes",
		"line sep \u2028 para sep \u2029",
		"\x7f del",
		strings.Repeat("long ", 100),
	}
}

// TestAppendJSONStringMatchesStdlib pins the hand-rolled string escaper
// against encoding/json (default HTML escaping) byte for byte.
func TestAppendJSONStringMatchesStdlib(t *testing.T) {
	cases := escapeStrings()
	cases = append(cases, "", `""`, "\\", "\u2027", "\ufffd")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		cases = append(cases, string(b)) // mostly invalid UTF-8
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := appendJSONString(nil, s)
		if string(got) != string(want) {
			t.Errorf("appendJSONString(%q):\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestAppendTrialJSONMatchesStdlib pins the reflection-free record
// encoder against json.Marshal across the field battery — the byte-level
// contract that keeps emitted documents identical to every pre-existing
// golden hash and determinism matrix.
func TestAppendTrialJSONMatchesStdlib(t *testing.T) {
	for i, tr := range encodeTrialCases() {
		want, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("case %d: json.Marshal: %v", i, err)
		}
		got := appendTrialJSON(nil, &tr)
		if string(got) != string(want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

// legacyCSVRow reconstructs the pre-PR CSV row (strconv per cell,
// strconv.Quote escaping) for the byte-identity pin on quote-free rows.
func legacyCSVRow(tr TrialResult) string {
	esc := tr.Err
	if esc != "" {
		esc = strconv.Quote(esc)
	}
	cells := []string{
		strconv.Itoa(tr.Index), tr.Algo, tr.Graph, tr.Mode, tr.Wake, tr.Delay, tr.Fault,
		strconv.Itoa(tr.Rep), strconv.FormatInt(tr.Seed, 10),
		strconv.Itoa(tr.N), strconv.Itoa(tr.M), strconv.Itoa(tr.D),
		strconv.Itoa(tr.Rounds), strconv.Itoa(tr.LastActive),
		strconv.FormatInt(tr.Messages, 10), strconv.FormatInt(tr.Bits, 10),
		strconv.Itoa(tr.Leaders), strconv.FormatBool(tr.Unique),
		strconv.FormatBool(tr.Halted), strconv.FormatBool(tr.HitRoundCap),
		strconv.Itoa(tr.Crashes), strconv.Itoa(tr.Recoveries),
		strconv.FormatInt(tr.Dropped, 10), strconv.FormatBool(tr.LiveUnique),
		esc,
	}
	return strings.Join(cells, ",") + "\n"
}

// TestAppendTrialCSVMatchesLegacy pins the append-based CSV row against
// the old strconv construction for every case whose error string is free
// of characters the old escaper mishandled (the determinism matrices all
// are); rows with quotes/backslashes deliberately diverge — that is the
// RFC 4180 fix, covered below.
func TestAppendTrialCSVMatchesLegacy(t *testing.T) {
	for i, tr := range encodeTrialCases() {
		if !isPlainASCII(tr.Err) {
			continue
		}
		want := legacyCSVRow(tr)
		got := string(appendTrialCSV(nil, &tr))
		if got != want {
			t.Errorf("case %d:\n got %q\nwant %q", i, got, want)
		}
	}
}

// isPlainASCII reports whether s is printable ASCII free of the quote and
// backslash characters whose escaping the RFC 4180 fix changed.
func isPlainASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] >= 0x7f || s[i] == '"' || s[i] == '\\' {
			return false
		}
	}
	return true
}

// TestCSVFieldRFC4180 pins the csvEscape fix: the free-form error column
// must follow RFC 4180 (wrap in quotes, double embedded quotes, pass
// everything else through raw) instead of Go escaping, so CSV readers
// split rows correctly even for errors containing quotes or commas.
func TestCSVFieldRFC4180(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain", `"plain"`},
		{`has "quotes" inside`, `"has ""quotes"" inside"`},
		{"comma, field", `"comma, field"`},
		{`back\slash`, `"back\slash"`},     // raw, not doubled
		{"multi\nline", "\"multi\nline\""}, // raw newline inside quotes
		{`""`, `""""""`},                   // two quotes -> four, wrapped
	}
	for _, c := range cases {
		if got := string(appendCSVField(nil, c.in)); got != c.want {
			t.Errorf("appendCSVField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCSVRowWellFormedUnderHostileErrors runs hostile error strings
// through a full row and checks a conforming RFC 4180 split recovers
// exactly the original cells — the property strconv.Quote violated.
func TestCSVRowWellFormedUnderHostileErrors(t *testing.T) {
	for _, errStr := range escapeStrings() {
		if strings.ContainsAny(errStr, "\n\r") {
			continue // embedded newlines are legal but the naive splitter below can't handle them
		}
		tr := TrialResult{Trial: Trial{Index: 1, Algo: "a", Graph: "g", Mode: "m", Wake: "w"}, Err: errStr}
		row := string(appendTrialCSV(nil, &tr))
		cells := splitCSVLine(strings.TrimSuffix(row, "\n"))
		if len(cells) != len(csvHeader) {
			t.Fatalf("err %q: row splits into %d cells, want %d: %q", errStr, len(cells), len(csvHeader), row)
		}
		if got := cells[len(cells)-1]; got != errStr {
			t.Errorf("err %q round-trips as %q", errStr, got)
		}
	}
}

// splitCSVLine is a minimal RFC 4180 single-line field splitter for the
// round-trip check above.
func splitCSVLine(line string) []string {
	var cells []string
	i := 0
	for {
		if i < len(line) && line[i] == '"' {
			var b strings.Builder
			i++
			for i < len(line) {
				if line[i] == '"' {
					if i+1 < len(line) && line[i+1] == '"' {
						b.WriteByte('"')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(line[i])
				i++
			}
			cells = append(cells, b.String())
		} else {
			j := strings.IndexByte(line[i:], ',')
			if j < 0 {
				cells = append(cells, line[i:])
				return cells
			}
			cells = append(cells, line[i:i+j])
			i += j
		}
		if i >= len(line) {
			return cells
		}
		i++ // the comma after the field
		if i == len(line) {
			cells = append(cells, "")
			return cells
		}
	}
}

// TestJSONEmitterMatchesLegacyDocument runs a real sweep (fault cells
// included) twice — once through the live emitter, once through a
// json.Marshal re-encode of every streamed record — and requires the two
// documents to be byte-identical. This is the end-to-end golden pin for
// the whole zero-reflection path.
func TestJSONEmitterMatchesLegacyDocument(t *testing.T) {
	spec := Spec{
		Name:   "golden",
		Algos:  []string{"leastel", "kingdom"},
		Graphs: []string{"ring:12", "random:16:40"},
		Modes:  []string{"congest", "async"},
		Delays: []string{"unit", "random:4"},
		Faults: []string{"none", "crash:0.2"},
		Trials: 2,
		Seed:   9,
	}
	data, rep := runToJSON(t, spec, 4)

	// Rebuild the document the way the pre-PR emitter did.
	var legacy strings.Builder
	specJSON, err := json.Marshal(rep.Spec)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&legacy, "{\"schema\":%q,\n\"spec\":%s,\n\"trials\":[", SchemaVersion, specJSON)
	doc, err := ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range doc.Trials {
		rec, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		fmt.Fprintf(&legacy, "%s%s", sep, rec)
	}
	groups, err := json.Marshal(rep.Groups)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&legacy, "\n],\n\"groups\":%s,\n\"total_trials\":%d,\n\"errors\":%d}\n",
		groups, rep.Total, rep.Errors)
	if legacy.String() != string(data) {
		t.Fatal("live JSON emitter output differs from the legacy json.Marshal document")
	}
}

// TestDecodeTrialsStreams checks the streaming decoder sees exactly the
// records ParseDocument materializes, in order, and propagates callback
// errors.
func TestDecodeTrialsStreams(t *testing.T) {
	spec := sweepSpec()
	data, _ := runToJSON(t, spec, 4)
	doc, err := ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []TrialResult
	if err := DecodeTrials(strings.NewReader(string(data)), func(tr TrialResult) error {
		streamed = append(streamed, tr)
		return nil
	}); err != nil {
		t.Fatalf("DecodeTrials: %v", err)
	}
	if len(streamed) != len(doc.Trials) {
		t.Fatalf("streamed %d trials, want %d", len(streamed), len(doc.Trials))
	}
	for i := range streamed {
		if streamed[i] != doc.Trials[i] {
			t.Fatalf("trial %d: streamed %+v != parsed %+v", i, streamed[i], doc.Trials[i])
		}
	}
	// Callback errors abort and propagate.
	sentinel := fmt.Errorf("stop here")
	calls := 0
	err = DecodeTrials(strings.NewReader(string(data)), func(TrialResult) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || calls != 3 {
		t.Fatalf("callback error: err=%v calls=%d", err, calls)
	}
	// Bad inputs error instead of panicking.
	for _, bad := range []string{"", "[]", `{"trials":[]}`, `{"schema":"nope","trials":[]}`, `{"schema":"ule-sweep/v3","trials":{}}`} {
		if err := DecodeTrials(strings.NewReader(bad), func(TrialResult) error { return nil }); err == nil {
			t.Errorf("DecodeTrials(%q): want error", bad)
		}
	}
}
