package harness

// reorderRing is the consumer's trial-index reorder window: workers
// finish trials out of order, the emitters must see them in index order.
// It replaces the old map[int]TrialResult — whose per-record bucket
// churn and hashing dominated the consumer once the encoders went
// allocation-free — with a power-of-two circular buffer indexed by
// trial index & mask. base is the next index to emit; an occupied slot i
// always holds trial (base + ((i - base) & mask)), so put/take are one
// mask and one array access.
//
// The window grows by doubling when a result arrives more than len(buf)
// ahead of base (with contiguous work-stealing shards the spread can
// reach a full worker shard), so the ring never blocks the pool.
type reorderRing struct {
	buf  []TrialResult
	occ  []bool
	mask int
	base int // next trial index to hand out
}

// newReorderRing sizes the initial window to a power of two covering at
// least min slots (floor 256).
func newReorderRing(min, base int) *reorderRing {
	size := 256
	for size < min {
		size <<= 1
	}
	return &reorderRing{
		buf:  make([]TrialResult, size),
		occ:  make([]bool, size),
		mask: size - 1,
		base: base,
	}
}

// put stores tr, growing the window if the index is beyond the current
// span. Indices below base are gone (each trial arrives exactly once).
func (r *reorderRing) put(tr TrialResult) {
	for tr.Index-r.base >= len(r.buf) {
		r.grow()
	}
	i := tr.Index & r.mask
	r.buf[i] = tr
	r.occ[i] = true
}

// take removes and returns the record at base, or ok=false if it has not
// arrived yet. Drained slots are not zeroed — clearing ~200 bytes per
// trial is measurable at 10^6-trial rates, and a stale record only pins
// its strings until the window wraps, so retention is bounded by the
// window size.
func (r *reorderRing) take() (TrialResult, bool) {
	i := r.base & r.mask
	if !r.occ[i] {
		return TrialResult{}, false
	}
	tr := r.buf[i]
	r.occ[i] = false
	r.base++
	return tr, true
}

// pending returns the number of buffered records (test hook).
func (r *reorderRing) pending() int {
	n := 0
	for _, o := range r.occ {
		if o {
			n++
		}
	}
	return n
}

// grow doubles the window, re-homing occupied slots by their trial index
// under the new mask.
func (r *reorderRing) grow() {
	size := len(r.buf) << 1
	buf := make([]TrialResult, size)
	occ := make([]bool, size)
	mask := size - 1
	for i, o := range r.occ {
		if o {
			buf[r.buf[i].Index&mask] = r.buf[i]
			occ[r.buf[i].Index&mask] = true
		}
	}
	r.buf, r.occ, r.mask = buf, occ, mask
}
