package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func ndjsonSpec() Spec {
	return Spec{
		Name:     "ndjson-test",
		Algos:    []string{"leastel", "flood"},
		Graphs:   []string{"ring:16", "random:24:72"},
		Trials:   2,
		Seed:     11,
		SmallIDs: true,
	}
}

// TestNDJSONMatchesDocument pins the stream to the ule-sweep/v3 document:
// same header spec, trial lines byte-identical to the document's trial
// objects, trailer groups byte-identical to the document's groups.
func TestNDJSONMatchesDocument(t *testing.T) {
	spec := ndjsonSpec()
	var stream, doc bytes.Buffer
	if _, err := Run(spec, RunConfig{
		Workers:  1,
		Emitters: []Emitter{NewNDJSONEmitter(&stream), NewJSONEmitter(&doc)},
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}

	lines := strings.Split(strings.TrimRight(stream.String(), "\n"), "\n")
	total := spec.NumTrials()
	if len(lines) != total+2 {
		t.Fatalf("stream has %d lines, want %d (header + %d trials + trailer)", len(lines), total+2, total)
	}

	var header struct {
		Schema      string          `json:"schema"`
		Spec        json.RawMessage `json:"spec"`
		TotalTrials int             `json:"total_trials"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("bad header line: %v", err)
	}
	if header.Schema != NDJSONSchemaVersion || header.TotalTrials != total {
		t.Fatalf("header = %s %d, want %s %d", header.Schema, header.TotalTrials, NDJSONSchemaVersion, total)
	}

	var parsed struct {
		Spec   json.RawMessage   `json:"spec"`
		Trials []json.RawMessage `json:"trials"`
		Groups json.RawMessage   `json:"groups"`
	}
	if err := json.Unmarshal(doc.Bytes(), &parsed); err != nil {
		t.Fatalf("bad v3 document: %v", err)
	}
	if !bytes.Equal(header.Spec, parsed.Spec) {
		t.Fatalf("header spec differs from the document spec:\n  %s\n  %s", header.Spec, parsed.Spec)
	}
	if len(parsed.Trials) != total {
		t.Fatalf("document has %d trials, want %d", len(parsed.Trials), total)
	}
	for i, want := range parsed.Trials {
		if got := lines[1+i]; got != string(want) {
			t.Fatalf("trial line %d diverges from the document trial object:\n  stream   %s\n  document %s", i, got, want)
		}
	}

	var trailer struct {
		Groups      json.RawMessage `json:"groups"`
		TotalTrials int             `json:"total_trials"`
		Errors      int             `json:"errors"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("bad trailer line: %v", err)
	}
	if trailer.TotalTrials != total {
		t.Fatalf("trailer total_trials = %d, want %d", trailer.TotalTrials, total)
	}
	if !bytes.Equal(trailer.Groups, parsed.Groups) {
		t.Fatalf("trailer groups differ from the document groups")
	}
}

// TestNDJSONWorkerInvariance: the stream is byte-identical at any worker
// count (emission order is the trial order, not completion order).
func TestNDJSONWorkerInvariance(t *testing.T) {
	spec := ndjsonSpec()
	var one, many bytes.Buffer
	if _, err := Run(spec, RunConfig{Workers: 1, Emitters: []Emitter{NewNDJSONEmitter(&one)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunConfig{Workers: 4, Emitters: []Emitter{NewNDJSONEmitter(&many)}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), many.Bytes()) {
		t.Fatalf("stream differs across worker counts (%d vs %d bytes)", one.Len(), many.Len())
	}
}

// TestNDJSONSingleWriteLines: every record reaches the sink as exactly
// one Write (the property the HTTP streaming path relies on).
func TestNDJSONSingleWriteLines(t *testing.T) {
	spec := ndjsonSpec()
	w := &writeRecorder{}
	if _, err := Run(spec, RunConfig{Workers: 1, Emitters: []Emitter{NewNDJSONEmitter(w)}}); err != nil {
		t.Fatal(err)
	}
	want := spec.NumTrials() + 2
	if len(w.writes) != want {
		t.Fatalf("%d writes, want %d (one per line)", len(w.writes), want)
	}
	for i, p := range w.writes {
		if !bytes.HasSuffix(p, []byte("\n")) || bytes.Count(p, []byte("\n")) != 1 {
			t.Fatalf("write %d is not exactly one line: %q", i, p)
		}
	}
}

type writeRecorder struct{ writes [][]byte }

func (w *writeRecorder) Write(p []byte) (int, error) {
	w.writes = append(w.writes, append([]byte(nil), p...))
	return len(p), nil
}
