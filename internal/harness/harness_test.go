package harness

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sweepSpec is the shared ≥100-trial matrix used by the determinism and
// speedup tests: 4 algorithms × 2 graphs × 2 wake schedules × 4 reps.
func sweepSpec() Spec {
	return Spec{
		Name:   "determinism-matrix",
		Algos:  []string{"leastel", "leastel-const", "kingdom", "lasvegas"},
		Graphs: []string{"ring:24", "random:32:96", "grid:5x5", "dumbbell:16:60"},
		Wakes:  []string{"sync", "random:4"},
		Trials: 4,
		Seed:   7,
	}
}

func runToJSON(t *testing.T, spec Spec, workers int) ([]byte, *Report) {
	t.Helper()
	var buf bytes.Buffer
	rep, err := Run(spec, RunConfig{Workers: workers, Emitters: []Emitter{NewJSONEmitter(&buf)}})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return buf.Bytes(), rep
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := sweepSpec()
	if n := spec.NumTrials(); n < 100 {
		t.Fatalf("matrix has %d trials, want >= 100", n)
	}
	seqJSON, seqRep := runToJSON(t, spec, 1)
	parJSON, parRep := runToJSON(t, spec, 8)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("sweep output differs between 1 and 8 workers (%d vs %d bytes)",
			len(seqJSON), len(parJSON))
	}
	if seqRep.Total != parRep.Total || seqRep.Total != spec.NumTrials() {
		t.Fatalf("trial totals: seq=%d par=%d want %d", seqRep.Total, parRep.Total, spec.NumTrials())
	}
	if seqRep.Errors != 0 {
		t.Fatalf("sweep reported %d trial errors", seqRep.Errors)
	}
}

// TestDiameterEstimateSpecField runs a D-dependent algorithm with the
// opt-in estimate and checks (a) the trials are granted and labeled with
// the double-sweep value, and (b) on families where the estimate is exact
// the sweep's trial stream is identical to the all-pairs run, modulo the
// spec echo.
func TestDiameterEstimateSpecField(t *testing.T) {
	base := Spec{
		Name:   "diam-estimate",
		Algos:  []string{"flood", "lasvegas"},
		Graphs: []string{"ring:24", "grid:5x5"},
		Trials: 3,
		Seed:   11,
	}
	est := base
	est.DiameterEstimate = true

	exactJSON, exactRep := runToJSON(t, base, 4)
	estJSON, estRep := runToJSON(t, est, 4)

	graphs, err := base.BuildGraphs()
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range graphs {
		if g.DiameterEstimate() != g.DiameterExact() {
			t.Fatalf("%s: estimate %d != exact %d (test premise)", base.Graphs[gi], g.DiameterEstimate(), g.DiameterExact())
		}
	}
	for i := range estRep.Groups {
		eg, xg := &estRep.Groups[i], &exactRep.Groups[i]
		if eg.D == 0 {
			t.Fatalf("group %s/%s missing granted D", eg.Algo, eg.Graph)
		}
		if eg.D != xg.D || eg.Messages != xg.Messages || eg.Success != xg.Success {
			t.Fatalf("estimate group %s/%s diverged from exact run", eg.Algo, eg.Graph)
		}
	}
	// The trial streams must be byte-identical; only the spec echo differs.
	trim := func(b []byte) string {
		s := string(b)
		if i := strings.Index(s, "\n\"trials\":["); i >= 0 {
			return s[i:]
		}
		return s
	}
	if trim(estJSON) != trim(exactJSON) {
		t.Fatal("estimate-granted trial stream differs from exact-granted stream on estimate-exact families")
	}
}

func TestJSONDocumentConsumable(t *testing.T) {
	spec := sweepSpec()
	data, rep := runToJSON(t, spec, 4)
	doc, err := ParseDocument(data)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if doc.Schema != SchemaVersion {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Trials) != spec.NumTrials() {
		t.Fatalf("document has %d trials, want %d", len(doc.Trials), spec.NumTrials())
	}
	if len(doc.Groups) != len(rep.Groups) {
		t.Fatalf("document has %d groups, report %d", len(doc.Groups), len(rep.Groups))
	}
	// Trials must be in index order with deterministic per-rep seeds.
	for i, tr := range doc.Trials {
		if tr.Index != i {
			t.Fatalf("trial %d has index %d", i, tr.Index)
		}
		if tr.Seed != TrialSeed(spec.Seed, tr.Rep) {
			t.Fatalf("trial %d: seed %d, want %d", i, tr.Seed, TrialSeed(spec.Seed, tr.Rep))
		}
		if tr.N == 0 || tr.M == 0 {
			t.Fatalf("trial %d: missing graph dimensions: %+v", i, tr)
		}
	}
	for _, g := range doc.Groups {
		if g.Trials != spec.Trials {
			t.Fatalf("group %v: %d trials, want %d", g, g.Trials, spec.Trials)
		}
		if g.Success < 0 || g.Success > 1 {
			t.Fatalf("group %v: success %f out of range", g, g.Success)
		}
		if g.Messages.Count != g.Trials-g.Errors {
			t.Fatalf("group %v: %d message samples for %d clean trials",
				g, g.Messages.Count, g.Trials-g.Errors)
		}
	}
	// The paired-sample design must make the sync-wake cells reproducible
	// via Report.Group lookup.
	if g := rep.Group("leastel", "ring:24", "congest", "sync"); g == nil || g.Success == 0 {
		t.Fatalf("leastel/ring:24 group missing or never succeeded: %+v", g)
	}
}

func TestCSVEmitter(t *testing.T) {
	spec := Spec{Algos: []string{"leastel"}, Graphs: []string{"ring:8"}, Trials: 3, Seed: 2}
	var buf bytes.Buffer
	if _, err := Run(spec, RunConfig{Workers: 2, Emitters: []Emitter{NewCSVEmitter(&buf)}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "trial,algo,graph,") {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(csvHeader) {
			t.Fatalf("CSV row has %d cells, want %d: %q", got, len(csvHeader), line)
		}
	}
}

func TestProgressReporting(t *testing.T) {
	spec := Spec{Algos: []string{"leastel"}, Graphs: []string{"ring:8"}, Trials: 5, Seed: 2}
	var calls, last int
	_, err := Run(spec, RunConfig{Workers: 2, Progress: func(done, total int) {
		calls++
		last = done
		if total != 5 {
			t.Errorf("progress total = %d, want 5", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || last != 5 {
		t.Fatalf("progress called %d times (last done=%d), want 5/5", calls, last)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Algos: []string{"leastel"}},
		{Algos: []string{"nosuch"}, Graphs: []string{"ring:8"}},
		{Algos: []string{"leastel"}, Graphs: []string{"nosuch:8"}},
		{Algos: []string{"leastel"}, Graphs: []string{"ring:8"}, Modes: []string{"quantum"}},
		{Algos: []string{"leastel"}, Graphs: []string{"ring:8"}, Wakes: []string{"random:-1"}},
		{Algos: []string{"leastel"}, Graphs: []string{"ring:8"}, Wakes: []string{"sync:3"}},
	}
	for i, spec := range bad {
		if _, err := Run(spec, RunConfig{}); err == nil {
			t.Errorf("spec %d: want error, got nil", i)
		}
	}
}

func TestWakeSchedules(t *testing.T) {
	if w := wakeSchedule("sync", 8, 1); w != nil {
		t.Fatalf("sync schedule = %v, want nil", w)
	}
	w := wakeSchedule("random:4", 8, 1)
	for i, r := range w {
		if r < 1 || r > 4 {
			t.Fatalf("random:4 node %d wakes at %d", i, r)
		}
	}
	again := wakeSchedule("random:4", 8, 1)
	for i := range w {
		if w[i] != again[i] {
			t.Fatalf("random schedule not deterministic at node %d", i)
		}
	}
	w = wakeSchedule("stagger:3", 7, 1)
	for i, r := range w {
		if r != 1+i%3 {
			t.Fatalf("stagger:3 node %d wakes at %d", i, r)
		}
	}
	w = wakeSchedule("adversarial", 9, 5)
	spontaneous := 0
	for _, r := range w {
		if r == 1 {
			spontaneous++
		} else if r != -1 {
			t.Fatalf("adversarial schedule has wake round %d", r)
		}
	}
	if spontaneous != 1 {
		t.Fatalf("adversarial schedule has %d spontaneous wakers, want 1", spontaneous)
	}
}

func TestPoolCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		for _, total := range []int{0, 1, 7, 64, 257} {
			counts := make([]int32, total)
			var maxWorker int32 = -1
			runPool(total, workers, func(i, w int) {
				atomic.AddInt32(&counts[i], 1)
				for {
					old := atomic.LoadInt32(&maxWorker)
					if int32(w) <= old || atomic.CompareAndSwapInt32(&maxWorker, old, int32(w)) {
						break
					}
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d total=%d: index %d ran %d times", workers, total, i, c)
				}
			}
			if total > 0 && int(maxWorker) >= workers {
				t.Fatalf("worker index %d out of range (workers=%d)", maxWorker, workers)
			}
		}
	}
}

func TestPoolStealsFromUnevenShards(t *testing.T) {
	// Make shard 0's items very slow; with stealing, other workers must
	// execute some indices from shard 0's initial range.
	const total, workers = 64, 4
	var ranBy [total]int32
	var slow sync.Once
	runPool(total, workers, func(i, w int) {
		atomic.StoreInt32(&ranBy[i], int32(w)+1)
		if i == 0 {
			slow.Do(func() { time.Sleep(50 * time.Millisecond) })
		}
	})
	stolen := 0
	for i := 1; i < total/workers; i++ { // shard 0's initial range, minus item 0
		if w := atomic.LoadInt32(&ranBy[i]); w != 0 && w != 1 {
			stolen++
		}
	}
	if runtime.GOMAXPROCS(0) > 1 && stolen == 0 {
		t.Log("no steals observed from the slow shard (timing-dependent; not fatal)")
	}
}

func TestSmokeSpecRuns(t *testing.T) {
	spec := Smoke()
	rep, err := Run(spec, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != spec.NumTrials() {
		t.Fatalf("smoke ran %d trials, want %d", rep.Total, spec.NumTrials())
	}
	if rep.Errors != 0 {
		t.Fatalf("smoke sweep reported %d errors", rep.Errors)
	}
	for _, g := range rep.Groups {
		if g.Trials == 0 {
			t.Fatalf("empty group %+v", g)
		}
	}
}

// TestParallelSpeedup demonstrates the ≥2× wall-clock speedup of the pool
// on a multi-core machine. It needs real parallel hardware, so it skips
// below 4 procs and under -short.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("need >= 4 procs for a stable 2x speedup measurement, have %d", procs)
	}
	spec := sweepSpec()
	spec.Trials = 8 // ≥ 256 trials of real work
	start := time.Now()
	seqJSON, _ := runToJSON(t, spec, 1)
	seqElapsed := time.Since(start)
	start = time.Now()
	parJSON, _ := runToJSON(t, spec, procs)
	parElapsed := time.Since(start)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("parallel sweep output differs from sequential")
	}
	speedup := float64(seqElapsed) / float64(parElapsed)
	t.Logf("sequential %v, %d workers %v: speedup %.2fx", seqElapsed, procs, parElapsed, speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx < 2x (seq %v, par %v)", speedup, seqElapsed, parElapsed)
	}
}

// asyncSpec is the wake × delay coverage matrix: both execution models,
// three wake schedules, three delay schedules.
func asyncSpec() Spec {
	return Spec{
		Name:   "async-matrix",
		Algos:  []string{"leastel", "leastel-const", "kingdom", "cluster"},
		Graphs: []string{"ring:24", "random:32:96"},
		Modes:  []string{"congest", "async"},
		Wakes:  []string{"sync", "stagger:3", "adversarial"},
		Delays: []string{"unit", "random:4", "fifo:4"},
		Trials: 2,
		Seed:   7,
	}
}

func TestAsyncSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := asyncSpec()
	// congest cells collapse the delay axis: (1 + 3) mode-delay cells.
	if want := 4 * 2 * (1 + 3) * 3 * 2; spec.NumTrials() != want {
		t.Fatalf("matrix has %d trials, want %d", spec.NumTrials(), want)
	}
	seqJSON, seqRep := runToJSON(t, spec, 1)
	parJSON, parRep := runToJSON(t, spec, 8)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("async sweep output differs between 1 and 8 workers (%d vs %d bytes)",
			len(seqJSON), len(parJSON))
	}
	if seqRep.Errors != 0 || parRep.Errors != 0 {
		t.Fatalf("async sweep reported trial errors: %d/%d", seqRep.Errors, parRep.Errors)
	}
	doc, err := ParseDocument(seqJSON)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range doc.Trials {
		switch tr.Mode {
		case "async":
			if tr.Delay == "" {
				t.Fatalf("async trial %d missing delay_model", tr.Index)
			}
		default:
			if tr.Delay != "" {
				t.Fatalf("sync trial %d carries delay_model %q", tr.Index, tr.Delay)
			}
		}
	}
}

// TestAsyncUnitReproducesSync: for oblivious (message-driven) algorithms,
// the async/unit cells must reproduce the synchronous cells exactly —
// same message totals, rounds and success, trial by trial.
func TestAsyncUnitReproducesSync(t *testing.T) {
	// cluster is deliberately absent: its BFS phases wait out silent
	// rounds on some topologies, so it is only oblivious by accident.
	spec := Spec{
		Name:   "async-vs-sync",
		Algos:  []string{"leastel", "leastel-const", "kingdom"},
		Graphs: []string{"ring:24", "random:32:96"},
		Modes:  []string{"congest", "async"},
		Delays: []string{"unit"},
		Trials: 3,
		Seed:   11,
	}
	data, _ := runToJSON(t, spec, 4)
	doc, err := ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		algo, graph string
		rep         int
	}
	sync := make(map[cell]TrialResult)
	for _, tr := range doc.Trials {
		if tr.Mode == "congest" {
			sync[cell{tr.Algo, tr.Graph, tr.Rep}] = tr
		}
	}
	checked := 0
	for _, tr := range doc.Trials {
		if tr.Mode != "async" {
			continue
		}
		s, ok := sync[cell{tr.Algo, tr.Graph, tr.Rep}]
		if !ok {
			t.Fatalf("no sync twin for trial %d", tr.Index)
		}
		if tr.Messages != s.Messages || tr.Bits != s.Bits || tr.LastActive != s.LastActive ||
			tr.Leaders != s.Leaders || tr.Unique != s.Unique {
			t.Errorf("%s/%s rep %d: async/unit diverges from sync:\nsync:  %+v\nasync: %+v",
				tr.Algo, tr.Graph, tr.Rep, s, tr)
		}
		checked++
	}
	if checked != spec.NumTrials()/2 {
		t.Fatalf("compared %d pairs, want %d", checked, spec.NumTrials()/2)
	}
}
