package harness

import (
	"bytes"
	"strings"
	"testing"
)

func runToCSV(t *testing.T, spec Spec, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	rep, err := Run(spec, RunConfig{Workers: workers, Emitters: []Emitter{NewCSVEmitter(&buf)}})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	if rep.Errors != 0 {
		t.Fatalf("sweep reported %d trial errors", rep.Errors)
	}
	return buf.String()
}

// TestSweepByteIdenticalAcrossShardWorkerMatrix is the ISSUE's harness
// acceptance criterion: the emitted JSON of a fault-injected sweep is
// byte-identical at every (shards, workers) combination in {1,2,4,8}².
// The spec echo records the Shards knob, so the comparison trims the
// header down to the trial stream + report — the experiment data proper.
func TestSweepByteIdenticalAcrossShardWorkerMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("16-run sweep matrix")
	}
	spec := Spec{
		Name:      "shard-worker-matrix",
		Algos:     []string{"leastel", "flood"},
		Graphs:    []string{"ring:24", "random:32:96"},
		Modes:     []string{"congest", "async"},
		Faults:    []string{"none", "crash:0.2", "crashrec:0.2:16"},
		Trials:    2,
		Seed:      13,
		MaxRounds: 1 << 12,
	}
	trim := func(b []byte) string {
		s := string(b)
		if i := strings.Index(s, "\n\"trials\":["); i >= 0 {
			return s[i:]
		}
		return s
	}
	var ref string
	for _, shards := range []int{1, 2, 4, 8} {
		s := spec
		s.Shards = shards
		for _, workers := range []int{1, 2, 4, 8} {
			out, rep := runToJSON(t, s, workers)
			if rep.Errors != 0 {
				t.Fatalf("shards=%d workers=%d: %d trial errors", shards, workers, rep.Errors)
			}
			got := trim(out)
			if ref == "" {
				ref = got
			} else if got != ref {
				t.Fatalf("sweep output diverges at shards=%d workers=%d (%d vs %d bytes)",
					shards, workers, len(ref), len(got))
			}
		}
	}
}

// TestSweepCSVIdenticalAcrossShards covers the second emitter: the CSV
// trial stream has no spec echo at all, so it must match exactly.
func TestSweepCSVIdenticalAcrossShards(t *testing.T) {
	spec := Spec{
		Name:      "shard-csv",
		Algos:     []string{"leastel"},
		Graphs:    []string{"random:32:96"},
		Faults:    []string{"churn:0.2:8"},
		Trials:    3,
		Seed:      5,
		MaxRounds: 1 << 12,
	}
	var ref string
	for _, shards := range []int{1, 2, 4, 8} {
		s := spec
		s.Shards = shards
		out := runToCSV(t, s, 4)
		if ref == "" {
			ref = out
		} else if out != ref {
			t.Fatalf("CSV output diverges at shards=%d", shards)
		}
	}
}
