package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SchemaVersion identifies the JSON document layout emitted by
// NewJSONEmitter; see docs/SWEEP_SCHEMA.md. v3 added the fault axis:
// a "faults" spec field, per-trial/per-group "fault_model", per-trial
// crashes/recoveries/dropped/live_unique and per-group survival (all
// omitted on fault-free cells, so a fault-free v3 sweep differs from v2
// only in the schema string).
const SchemaVersion = "ule-sweep/v3"

// legacySchemaV2 is the pre-fault document layout; ParseDocument still
// accepts it (its records simply carry no fault_model).
const legacySchemaV2 = "ule-sweep/v2"

// legacySchemaV1 is the pre-async document layout; ParseDocument still
// accepts it (its records carry neither delay_model nor fault_model).
const legacySchemaV1 = "ule-sweep/v1"

// Emitter receives the sweep stream: Begin once, Trial once per trial in
// trial-index order, End once with the final report. Emitters are called
// from a single goroutine; output is deterministic for a given spec
// regardless of worker count.
type Emitter interface {
	Begin(spec Spec, total int) error
	Trial(tr TrialResult) error
	End(rep *Report) error
}

// jsonEmitter streams one JSON document:
//
//	{"schema":"ule-sweep/v1","spec":{...},"trials":[{...},...],"groups":[...],"total_trials":N,"errors":E}
//
// Trials are written as they arrive, one object per line, so memory does
// not grow with the sweep.
type jsonEmitter struct {
	w      *bufio.Writer
	trials int
}

// NewJSONEmitter returns an emitter writing the current SchemaVersion
// document to w.
func NewJSONEmitter(w io.Writer) Emitter {
	return &jsonEmitter{w: bufio.NewWriter(w)}
}

func (e *jsonEmitter) Begin(spec Spec, total int) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(e.w, "{\"schema\":%q,\n\"spec\":%s,\n\"trials\":[",
		SchemaVersion, specJSON)
	return err
}

func (e *jsonEmitter) Trial(tr TrialResult) error {
	rec, err := json.Marshal(tr)
	if err != nil {
		return err
	}
	sep := ",\n"
	if e.trials == 0 {
		sep = "\n"
	}
	e.trials++
	_, err = fmt.Fprintf(e.w, "%s%s", sep, rec)
	return err
}

func (e *jsonEmitter) End(rep *Report) error {
	groups, err := json.Marshal(rep.Groups)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(e.w, "\n],\n\"groups\":%s,\n\"total_trials\":%d,\n\"errors\":%d}\n",
		groups, rep.Total, rep.Errors); err != nil {
		return err
	}
	return e.w.Flush()
}

// csvHeader is the column layout of the CSV emitter.
var csvHeader = []string{
	"trial", "algo", "graph", "mode", "wake", "delay_model", "fault_model",
	"rep", "seed",
	"n", "m", "d", "rounds", "last_active", "messages", "bits",
	"leaders", "unique", "halted", "hit_round_cap",
	"crashes", "recoveries", "dropped", "live_unique", "err",
}

// csvEmitter streams one row per trial.
type csvEmitter struct {
	w *bufio.Writer
}

// NewCSVEmitter returns an emitter writing a trials CSV to w (header row
// first; no aggregate rows — groups belong to the JSON document).
func NewCSVEmitter(w io.Writer) Emitter {
	return &csvEmitter{w: bufio.NewWriter(w)}
}

func (e *csvEmitter) Begin(Spec, int) error {
	return writeCSVRow(e.w, csvHeader)
}

func (e *csvEmitter) Trial(tr TrialResult) error {
	return writeCSVRow(e.w, []string{
		strconv.Itoa(tr.Index), tr.Algo, tr.Graph, tr.Mode, tr.Wake, tr.Delay, tr.Fault,
		strconv.Itoa(tr.Rep), strconv.FormatInt(tr.Seed, 10),
		strconv.Itoa(tr.N), strconv.Itoa(tr.M), strconv.Itoa(tr.D),
		strconv.Itoa(tr.Rounds), strconv.Itoa(tr.LastActive),
		strconv.FormatInt(tr.Messages, 10), strconv.FormatInt(tr.Bits, 10),
		strconv.Itoa(tr.Leaders), strconv.FormatBool(tr.Unique),
		strconv.FormatBool(tr.Halted), strconv.FormatBool(tr.HitRoundCap),
		strconv.Itoa(tr.Crashes), strconv.Itoa(tr.Recoveries),
		strconv.FormatInt(tr.Dropped, 10), strconv.FormatBool(tr.LiveUnique),
		csvEscape(tr.Err),
	})
}

func (e *csvEmitter) End(*Report) error {
	return e.w.Flush()
}

func writeCSVRow(w *bufio.Writer, cells []string) error {
	for i, c := range cells {
		if i > 0 {
			if err := w.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := w.WriteString(c); err != nil {
			return err
		}
	}
	return w.WriteByte('\n')
}

// csvEscape quotes the only free-form CSV column (trial errors).
func csvEscape(s string) string {
	if s == "" {
		return s
	}
	return strconv.Quote(s)
}

// Document is the parsed form of a ule-sweep/v3 (or legacy v2/v1) JSON
// file; tests and downstream tooling use it to consume sweep output.
type Document struct {
	Schema      string        `json:"schema"`
	Spec        Spec          `json:"spec"`
	Trials      []TrialResult `json:"trials"`
	Groups      []GroupStats  `json:"groups"`
	TotalTrials int           `json:"total_trials"`
	Errors      int           `json:"errors"`
}

// ParseDocument decodes and validates a ule-sweep/v3 document. Legacy
// ule-sweep/v2 and v1 documents are also accepted: their trials and
// groups predate the fault (and, for v1, the delay) axis and parse with
// the corresponding fields empty.
func ParseDocument(data []byte) (*Document, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("harness: invalid sweep document: %w", err)
	}
	if doc.Schema != SchemaVersion && doc.Schema != legacySchemaV2 && doc.Schema != legacySchemaV1 {
		return nil, fmt.Errorf("harness: unknown schema %q (want %q)", doc.Schema, SchemaVersion)
	}
	if len(doc.Trials) != doc.TotalTrials {
		return nil, fmt.Errorf("harness: document lists %d trials but declares %d",
			len(doc.Trials), doc.TotalTrials)
	}
	return &doc, nil
}
