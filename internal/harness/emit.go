package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the JSON document layout emitted by
// NewJSONEmitter; see docs/SWEEP_SCHEMA.md. v3 added the fault axis:
// a "faults" spec field, per-trial/per-group "fault_model", per-trial
// crashes/recoveries/dropped/live_unique and per-group survival (all
// omitted on fault-free cells, so a fault-free v3 sweep differs from v2
// only in the schema string).
const SchemaVersion = "ule-sweep/v3"

// legacySchemaV2 is the pre-fault document layout; ParseDocument still
// accepts it (its records simply carry no fault_model).
const legacySchemaV2 = "ule-sweep/v2"

// legacySchemaV1 is the pre-async document layout; ParseDocument still
// accepts it (its records carry neither delay_model nor fault_model).
const legacySchemaV1 = "ule-sweep/v1"

// Emitter receives the sweep stream: Begin once, Trial once per trial in
// trial-index order, End once with the final report. Emitters are called
// from a single goroutine; output is deterministic for a given spec
// regardless of worker count.
type Emitter interface {
	Begin(spec Spec, total int) error
	Trial(tr TrialResult) error
	End(rep *Report) error
}

// jsonEmitter streams one JSON document:
//
//	{"schema":"ule-sweep/v1","spec":{...},"trials":[{...},...],"groups":[...],"total_trials":N,"errors":E}
//
// Trials are written as they arrive, one object per line, through the
// reflection-free appendTrialJSON encoder over a reusable buffer, so the
// per-trial cost is a few appends and one buffered write — no
// encoding/json, no per-record allocation — while the bytes stay
// identical to what json.Marshal produced (pinned by encode_test.go).
type jsonEmitter struct {
	w      *bufio.Writer
	trials int
	buf    []byte
}

// NewJSONEmitter returns an emitter writing the current SchemaVersion
// document to w.
func NewJSONEmitter(w io.Writer) Emitter {
	return &jsonEmitter{w: bufio.NewWriter(w)}
}

func (e *jsonEmitter) Begin(spec Spec, total int) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(e.w, "{\"schema\":%q,\n\"spec\":%s,\n\"trials\":[",
		SchemaVersion, specJSON)
	return err
}

func (e *jsonEmitter) Trial(tr TrialResult) error {
	b := e.buf[:0]
	if e.trials == 0 {
		b = append(b, '\n')
	} else {
		b = append(b, ',', '\n')
	}
	e.trials++
	b = appendTrialJSON(b, &tr)
	e.buf = b
	_, err := e.w.Write(b)
	return err
}

func (e *jsonEmitter) End(rep *Report) error {
	groups, err := json.Marshal(rep.Groups)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(e.w, "\n],\n\"groups\":%s,\n\"total_trials\":%d,\n\"errors\":%d}\n",
		groups, rep.Total, rep.Errors); err != nil {
		return err
	}
	return e.w.Flush()
}

// csvHeader is the column layout of the CSV emitter.
var csvHeader = []string{
	"trial", "algo", "graph", "mode", "wake", "delay_model", "fault_model",
	"rep", "seed",
	"n", "m", "d", "rounds", "last_active", "messages", "bits",
	"leaders", "unique", "halted", "hit_round_cap",
	"crashes", "recoveries", "dropped", "live_unique", "err",
}

// csvEmitter streams one row per trial through the append-based encoder
// (appendTrialCSV) over a reusable buffer.
type csvEmitter struct {
	w   *bufio.Writer
	buf []byte
}

// NewCSVEmitter returns an emitter writing a trials CSV to w (header row
// first; no aggregate rows — groups belong to the JSON document).
func NewCSVEmitter(w io.Writer) Emitter {
	return &csvEmitter{w: bufio.NewWriter(w)}
}

func (e *csvEmitter) Begin(Spec, int) error {
	for i, c := range csvHeader {
		if i > 0 {
			if err := e.w.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := e.w.WriteString(c); err != nil {
			return err
		}
	}
	return e.w.WriteByte('\n')
}

func (e *csvEmitter) Trial(tr TrialResult) error {
	e.buf = appendTrialCSV(e.buf[:0], &tr)
	_, err := e.w.Write(e.buf)
	return err
}

func (e *csvEmitter) End(*Report) error {
	return e.w.Flush()
}

// Document is the parsed form of a ule-sweep/v3 (or legacy v2/v1) JSON
// file; tests and downstream tooling use it to consume sweep output.
type Document struct {
	Schema      string        `json:"schema"`
	Spec        Spec          `json:"spec"`
	Trials      []TrialResult `json:"trials"`
	Groups      []GroupStats  `json:"groups"`
	TotalTrials int           `json:"total_trials"`
	Errors      int           `json:"errors"`
}

// ParseDocument decodes and validates a ule-sweep/v3 document. Legacy
// ule-sweep/v2 and v1 documents are also accepted: their trials and
// groups predate the fault (and, for v1, the delay) axis and parse with
// the corresponding fields empty.
func ParseDocument(data []byte) (*Document, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("harness: invalid sweep document: %w", err)
	}
	if doc.Schema != SchemaVersion && doc.Schema != legacySchemaV2 && doc.Schema != legacySchemaV1 {
		return nil, fmt.Errorf("harness: unknown schema %q (want %q)", doc.Schema, SchemaVersion)
	}
	if len(doc.Trials) != doc.TotalTrials {
		return nil, fmt.Errorf("harness: document lists %d trials but declares %d",
			len(doc.Trials), doc.TotalTrials)
	}
	return &doc, nil
}

// DecodeTrials streams the trial records of a ule-sweep JSON document
// (v3 or legacy v2/v1) from r, calling fn once per trial in document
// order. Unlike ParseDocument it never materializes the trials array, so
// memory stays constant in document size — the consumption path for
// million-trial documents. The schema field must precede the trials
// array (every document the emitters produce has it first) and is
// validated before the first callback; any fn error aborts the decode
// and is returned verbatim.
func DecodeTrials(r io.Reader, fn func(TrialResult) error) error {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("harness: invalid sweep document: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("harness: invalid sweep document: not a JSON object")
	}
	schemaOK := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("harness: invalid sweep document: %w", err)
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("harness: invalid sweep document: non-string key %v", keyTok)
		}
		switch key {
		case "schema":
			var schema string
			if err := dec.Decode(&schema); err != nil {
				return fmt.Errorf("harness: invalid sweep document: %w", err)
			}
			if schema != SchemaVersion && schema != legacySchemaV2 && schema != legacySchemaV1 {
				return fmt.Errorf("harness: unknown schema %q (want %q)", schema, SchemaVersion)
			}
			schemaOK = true
		case "trials":
			if !schemaOK {
				return fmt.Errorf("harness: document schema must precede trials for streaming decode")
			}
			tok, err := dec.Token()
			if err != nil {
				return fmt.Errorf("harness: invalid sweep document: %w", err)
			}
			if d, ok := tok.(json.Delim); !ok || d != '[' {
				return fmt.Errorf("harness: invalid sweep document: trials is not an array")
			}
			for dec.More() {
				var tr TrialResult
				if err := dec.Decode(&tr); err != nil {
					return fmt.Errorf("harness: invalid trial record: %w", err)
				}
				if err := fn(tr); err != nil {
					return err
				}
			}
			if _, err := dec.Token(); err != nil { // closing ']'
				return fmt.Errorf("harness: invalid sweep document: %w", err)
			}
		default:
			// Skip the value without keeping it (spec, groups, counters).
			var raw json.RawMessage
			if err := dec.Decode(&raw); err != nil {
				return fmt.Errorf("harness: invalid sweep document: %w", err)
			}
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return fmt.Errorf("harness: invalid sweep document: %w", err)
	}
	if !schemaOK {
		return fmt.Errorf("harness: document carries no schema field")
	}
	return nil
}
