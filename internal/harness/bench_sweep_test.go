package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"ule/internal/stats"
)

// syntheticTrials fabricates a deterministic emit-bound trial stream —
// mixed cells, a sprinkling of fault counts — shaped like a real sweep
// but with zero simulation cost, so benchmarks measure the result
// pipeline alone.
func syntheticTrials(n int) []TrialResult {
	algos := []string{"leastel", "leastel-const", "kingdom", "lasvegas"}
	graphs := []string{"ring:256", "random:256:1024"}
	trials := make([]TrialResult, n)
	for i := range trials {
		tr := TrialResult{
			Trial: Trial{
				Index: i,
				Algo:  algos[i%len(algos)],
				Graph: graphs[(i/len(algos))%len(graphs)],
				Mode:  "congest", Wake: "sync",
				Rep:  i % 50,
				Seed: TrialSeed(42, i%50),
			},
			N: 256, M: 1024, D: 16,
			Rounds: 40 + i%17, LastActive: 39 + i%17,
			Messages: int64(9000 + i%4096), Bits: int64(288000 + 32*(i%4096)),
			Leaders: 1, Unique: true, Halted: true,
		}
		if i%16 == 5 {
			tr.Fault = "crash:0.2"
			tr.Crashes = 3 + i%5
			tr.Dropped = int64(i % 7)
			tr.LiveUnique = true
		}
		trials[i] = tr
	}
	return trials
}

// scrambled returns the trial indices in the arrival order a parallel
// pool produces: contiguous shards interleaved out of order.
func scrambled(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = (i*613 + 401) % n
	}
	return order
}

// ---- per-trial encoder benchmarks: new append path vs the stdlib path
// the emitters used before the rewrite ----

func BenchmarkEmitTrialJSON(b *testing.B) {
	trials := syntheticTrials(64)
	var buf []byte
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		buf = appendTrialJSON(buf[:0], &trials[i%len(trials)])
	}
	if len(buf) == 0 {
		b.Fatal("no output")
	}
}

func BenchmarkEmitTrialJSONLegacy(b *testing.B) {
	trials := syntheticTrials(64)
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		if _, err := json.Marshal(trials[i%len(trials)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmitTrialCSV(b *testing.B) {
	trials := syntheticTrials(64)
	var buf []byte
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		buf = appendTrialCSV(buf[:0], &trials[i%len(trials)])
	}
	if len(buf) == 0 {
		b.Fatal("no output")
	}
}

func BenchmarkEmitTrialCSVLegacy(b *testing.B) {
	trials := syntheticTrials(64)
	b.ReportAllocs()
	for i := 0; b.N > i; i++ {
		if legacyCSVRow(trials[i%len(trials)]) == "" {
			b.Fatal("no output")
		}
	}
}

// ---- whole-consumer benchmarks: reorder window + emit + aggregation,
// exactly the work between a worker's result and the output stream ----

// consumeNew drives the post-PR consumer: ring reorder, append-encoders
// into one emitter set, IntSample aggregation.
func consumeNew(trials []TrialResult, order []int, emitters []Emitter) error {
	ring := newReorderRing(256, 0)
	var acc groupAcc
	for _, idx := range order {
		ring.put(trials[idx])
		for {
			tr, ok := ring.take()
			if !ok {
				break
			}
			for _, em := range emitters {
				if err := em.Trial(tr); err != nil {
					return err
				}
			}
			acc.add(&tr)
		}
	}
	if acc.trials != len(trials) {
		return fmt.Errorf("aggregated %d trials, want %d", acc.trials, len(trials))
	}
	return nil
}

// consumeLegacy replicates the pre-PR consumer faithfully: map reorder
// window, json.Marshal + strconv row building, O(trials) float slices.
func consumeLegacy(trials []TrialResult, order []int, w io.Writer) error {
	window := make(map[int]TrialResult)
	next := 0
	var msgs, rounds, bs []float64
	emit := func(tr TrialResult) error {
		line, err := json.Marshal(tr)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := io.WriteString(w, legacyCSVRow(tr)); err != nil {
			return err
		}
		msgs = append(msgs, float64(tr.Messages))
		rounds = append(rounds, float64(tr.LastActive))
		bs = append(bs, float64(tr.Bits))
		return nil
	}
	for _, idx := range order {
		window[trials[idx].Index] = trials[idx]
		for {
			tr, ok := window[next]
			if !ok {
				break
			}
			delete(window, next)
			next++
			if err := emit(tr); err != nil {
				return err
			}
		}
	}
	if len(msgs) != len(trials) {
		return fmt.Errorf("aggregated %d trials, want %d", len(msgs), len(trials))
	}
	stats.Summarize(msgs)
	stats.Summarize(rounds)
	stats.Summarize(bs)
	return nil
}

const consumerBenchTrials = 4096

// steadyConsumer holds the consumer state that persists across batches
// in a long sweep — warm ring, warm aggregation maps, warm emitter
// buffers — so the benchmarks measure steady-state throughput at
// 10^6-trial scale rather than cold-start map growth on every pass.
type steadyConsumer struct {
	ring     *reorderRing
	acc      groupAcc
	emitters []Emitter
	consumed int
}

func newSteadyConsumer(total int, emitters []Emitter) *steadyConsumer {
	for _, em := range emitters {
		if err := em.Begin(Spec{Seed: 42}, total); err != nil {
			panic(err)
		}
	}
	return &steadyConsumer{ring: newReorderRing(256, 0), emitters: emitters}
}

// feed pushes one batch through reorder + emit + aggregation; trial
// indices restart at 0 each batch, so the ring base is rewound (a free
// operation — the window state machine is identical either way).
func (c *steadyConsumer) feed(trials []TrialResult, order []int) error {
	c.ring.base = 0
	for _, idx := range order {
		c.ring.put(trials[idx])
		for {
			tr, ok := c.ring.take()
			if !ok {
				break
			}
			for _, em := range c.emitters {
				if err := em.Trial(tr); err != nil {
					return err
				}
			}
			c.acc.add(&tr)
			c.consumed++
		}
	}
	return nil
}

func benchSteadyConsumer(b *testing.B, emitters []Emitter) {
	trials := syntheticTrials(consumerBenchTrials)
	order := scrambled(len(trials))
	c := newSteadyConsumer(consumerBenchTrials, emitters)
	if err := c.feed(trials, order); err != nil { // warm everything
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		if err := c.feed(trials, order); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if c.consumed != (b.N+1)*consumerBenchTrials {
		b.Fatalf("consumed %d trials, want %d", c.consumed, (b.N+1)*consumerBenchTrials)
	}
	b.ReportMetric(float64(consumerBenchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkSweepConsumer(b *testing.B) {
	benchSteadyConsumer(b, []Emitter{NewJSONEmitter(io.Discard), NewCSVEmitter(io.Discard)})
}

func BenchmarkSweepConsumerJSON(b *testing.B) {
	benchSteadyConsumer(b, []Emitter{NewJSONEmitter(io.Discard)})
}

func BenchmarkSweepConsumerBinary(b *testing.B) {
	benchSteadyConsumer(b, []Emitter{NewBinaryEmitter(io.Discard, BinaryOptions{})})
}

func BenchmarkSweepConsumerLegacy(b *testing.B) {
	trials := syntheticTrials(consumerBenchTrials)
	order := scrambled(len(trials))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		if err := consumeLegacy(trials, order, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(consumerBenchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// TestAllocBudgetSweepConsumer pins the steady-state allocation budget of
// the consumer: after warm-up, pushing a trial through the ring, both
// text encoders, the binary encoder, and the streaming aggregator must
// not allocate at all — the budget flags any reintroduced per-trial
// reflection, string building, or map churn. (The IntSample maps are warm
// because the synthetic stream revisits the same values.)
func TestAllocBudgetSweepConsumer(t *testing.T) {
	trials := syntheticTrials(2048)
	order := scrambled(len(trials))
	emitters := []Emitter{
		NewJSONEmitter(io.Discard),
		NewCSVEmitter(io.Discard),
		NewBinaryEmitter(io.Discard, BinaryOptions{}),
	}
	for _, em := range emitters {
		if err := em.Begin(Spec{Seed: 42}, len(trials)); err != nil {
			t.Fatal(err)
		}
	}
	run := func() {
		if err := consumeNew(trials, order, emitters); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: ring sized, buffers grown, IntSample maps populated
	allocs := testing.AllocsPerRun(5, run)
	perTrial := allocs / float64(len(trials))
	if perTrial > 0.05 {
		t.Errorf("consumer allocates %.3f allocs/trial steady-state (%.0f per pass), want ~0", perTrial, allocs)
	}
}

// TestConsumerMemoryFlatInTrialCount is the O(1)-aggregation regression
// guard at the Run level: the aggregator state after a sweep must scale
// with distinct observed values, not with trial count. (The full-RSS
// claim is exercised by the 10^6-trial benchmark in BENCH_SWEEP_PIPELINE;
// here the property that makes it true is pinned directly.)
func TestConsumerMemoryFlatInTrialCount(t *testing.T) {
	var acc groupAcc
	for i := 0; i < 1_000_000; i++ {
		tr := TrialResult{
			N: 8, M: 8, Messages: int64(i % 200), Bits: int64(i % 300),
			Leaders: 1, Unique: true, Halted: true,
		}
		tr.LastActive = i % 100
		acc.add(&tr)
	}
	if acc.trials != 1_000_000 {
		t.Fatalf("aggregated %d trials", acc.trials)
	}
	if got := acc.msgs.Count(); got != 1_000_000 {
		t.Fatalf("msgs sample holds %d observations", got)
	}
	var sink bytes.Buffer
	enc := json.NewEncoder(&sink)
	if err := enc.Encode(acc.msgs.Summary()); err != nil {
		t.Fatal(err)
	}
}
