package harness

import (
	"runtime"
	"sync"
)

// shard is one worker's contiguous range of pending trial indices.
// Victims of a steal lose the upper half of their range.
type shard struct {
	mu        sync.Mutex
	next, end int
}

// take claims the next index of the shard, or returns -1 if it is empty.
func (s *shard) take() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= s.end {
		return -1
	}
	i := s.next
	s.next++
	return i
}

// stealHalf removes and returns the upper half of the shard's remaining
// range (ok=false if there is nothing worth stealing).
func (s *shard) stealHalf() (lo, hi int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	remaining := s.end - s.next
	if remaining < 2 {
		return 0, 0, false
	}
	mid := s.next + remaining/2
	lo, hi = mid, s.end
	s.end = mid
	return lo, hi, true
}

// install replaces the shard's range (only the owner calls this, and only
// when its range is already empty).
func (s *shard) install(lo, hi int) {
	s.mu.Lock()
	s.next, s.end = lo, hi
	s.mu.Unlock()
}

// runPool executes run(i) for every i in [0, total) on a pool of workers
// with work stealing: each worker starts with an equal contiguous slice of
// the index space and, when its own slice drains, steals the upper half of
// the fullest remaining slice. Contiguous slices keep each worker inside
// one (graph, algorithm) cell for long stretches, which is what makes the
// per-worker Prepared caches effective; stealing keeps stragglers busy
// when cells have very uneven trial costs.
//
// run receives the worker index as its second argument.
func runPool(total, workers int, run func(i, worker int)) {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			run(i, 0)
		}
		return
	}
	shards := make([]*shard, workers)
	for w := 0; w < workers; w++ {
		shards[w] = &shard{next: w * total / workers, end: (w + 1) * total / workers}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := shards[w]
			for {
				i := own.take()
				if i < 0 {
					// Own shard drained: steal half of the fullest victim.
					best, bestRemaining := -1, 1
					for v, s := range shards {
						if v == w {
							continue
						}
						s.mu.Lock()
						r := s.end - s.next
						s.mu.Unlock()
						if r > bestRemaining {
							best, bestRemaining = v, r
						}
					}
					if best < 0 {
						return // every shard is empty or down to its last item
					}
					lo, hi, ok := shards[best].stealHalf()
					if !ok {
						continue // lost the race; rescan
					}
					own.install(lo, hi)
					continue
				}
				run(i, w)
			}
		}(w)
	}
	wg.Wait()
}

// defaultWorkers is the worker count used when the caller passes 0.
func defaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}
