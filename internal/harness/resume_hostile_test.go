package harness

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hostileFile writes data to a temp file and returns the path.
func hostileFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// refBinaryFile produces an uninterrupted reference document plus the
// byte offset just past the header's initial checkpoint.
func refBinaryFile(t *testing.T) (refBytes []byte, headerEnd int) {
	t.Helper()
	spec := binarySpec()
	_, refBytes, _ = runBinary(t, spec, 2, BinaryOptions{CheckpointEvery: 16})
	specLen, n := binary.Uvarint(refBytes[len(binMagic):])
	if n <= 0 {
		t.Fatal("could not decode header spec length")
	}
	off := len(binMagic) + n + int(specLen)
	_, n = binary.Uvarint(refBytes[off:])
	off += n
	_, n = binary.Uvarint(refBytes[off:])
	off += n + 8
	return refBytes, off + 10
}

// TestResumeBinaryTruncatedHeader: every truncation point inside the
// header (magic, spec echo, counters, hash, initial checkpoint) must
// produce a clean error from ResumeBinary and InspectBinary — never a
// panic, never a checkpoint.
func TestResumeBinaryTruncatedHeader(t *testing.T) {
	refBytes, headerEnd := refBinaryFile(t)
	for cut := 0; cut < headerEnd; cut++ {
		path := hostileFile(t, "torn.ulsb", refBytes[:cut])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut=%d: panic: %v", cut, r)
				}
			}()
			if _, _, err := ResumeBinary(path); err == nil {
				t.Fatalf("cut=%d: ResumeBinary succeeded on a torn header", cut)
			}
			if _, err := InspectBinary(path); err == nil {
				t.Fatalf("cut=%d: InspectBinary succeeded on a torn header", cut)
			}
		}()
	}
}

// TestResumeBinaryZeroCheckpoints: a file whose header is intact but
// whose initial checkpoint never landed has no durable prefix; resume
// must refuse rather than re-run over unverifiable bytes.
func TestResumeBinaryZeroCheckpoints(t *testing.T) {
	refBytes, headerEnd := refBinaryFile(t)
	headerOnly := refBytes[:headerEnd-10] // strip the 10-byte initial checkpoint
	path := hostileFile(t, "no-ckpt.ulsb", headerOnly)
	if _, _, err := ResumeBinary(path); err == nil || !strings.Contains(err.Error(), "no durable checkpoint") {
		t.Fatalf("ResumeBinary without any checkpoint = %v, want no-durable-checkpoint error", err)
	}

	// Same header followed by trial records but still no checkpoint record:
	// the trials are not durable and must not be silently trusted.
	var rest []byte
	rest = append(rest, headerOnly...)
	rest = append(rest, refBytes[headerEnd:headerEnd+40]...) // some record bytes, no checkpoint
	path = hostileFile(t, "no-ckpt-trials.ulsb", rest)
	if _, _, err := ResumeBinary(path); err == nil {
		t.Fatal("ResumeBinary with records but no checkpoint succeeded, want error")
	}
}

// TestResumeBinaryCheckpointBeyondTrials: a forged checkpoint claiming
// more completed trials than records actually precede it (with a valid
// hash, so only the count cross-check can catch it) must not cause
// trials to be invented or silently dropped — the checkpoint is
// distrusted and resume falls back to the last consistent one.
func TestResumeBinaryCheckpointBeyondTrials(t *testing.T) {
	refBytes, headerEnd := refBinaryFile(t)
	h, err := InspectBinary(hostileFile(t, "ref.ulsb", refBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Header + initial checkpoint, then a forged checkpoint claiming 5
	// trials completed with a correctly-salted hash.
	forged := append([]byte{}, refBytes[:headerEnd]...)
	forged = append(forged, binTagCheckpoint)
	forged = binary.AppendUvarint(forged, 5)
	forged = binary.LittleEndian.AppendUint64(forged, checkpointHash(h.specHash, 5))
	path := hostileFile(t, "forged.ulsb", forged)

	ck, err := InspectBinary(path)
	if err != nil {
		t.Fatalf("InspectBinary: %v", err)
	}
	if ck.Completed != 0 {
		t.Fatalf("forged checkpoint trusted: Completed = %d, want 0", ck.Completed)
	}
	ck2, _, err := ResumeBinary(path)
	if err != nil {
		t.Fatalf("ResumeBinary: %v", err)
	}
	if ck2.Completed != 0 {
		t.Fatalf("resume from forged checkpoint: Completed = %d, want 0", ck2.Completed)
	}

	// The strict decoders must reject the same inconsistency outright.
	if _, err := ParseBinary(forged); err == nil {
		t.Fatal("ParseBinary accepted checkpoint count beyond trials present")
	}
}

// TestResumeShardHostileHeader runs the same header-truncation sweep over
// the shard variant (its header has two extra varints to tear inside).
func TestResumeShardHostileHeader(t *testing.T) {
	spec := binarySpec()
	total := spec.NumTrials()
	dir := t.TempDir()
	refPath := writeShard(t, dir, spec, TrialRange{Start: 3, Count: total / 2}, BinaryOptions{CheckpointEvery: 8})
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	// The shard header is at most magic+5 varints+hash+spec echo; tearing
	// every offset in the first 120 bytes covers it for this spec.
	limit := 120
	if limit > len(refBytes) {
		limit = len(refBytes)
	}
	for cut := 0; cut < limit; cut++ {
		path := hostileFile(t, "torn.ulss", refBytes[:cut])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut=%d: panic: %v", cut, r)
				}
			}()
			_, _, _ = ResumeShard(path)
		}()
	}
}
