package harness

import (
	"bytes"
	"strings"
	"testing"
)

// faultSweepSpec is the fault-axis determinism matrix: every fault class
// crossed with two algorithms, two graphs and both timing models.
func faultSweepSpec() Spec {
	return Spec{
		Name:      "fault-matrix",
		Algos:     []string{"leastel", "flood"},
		Graphs:    []string{"ring:24", "random:32:96"},
		Modes:     []string{"congest", "async"},
		Faults:    []string{"none", "crash:0.2", "crashrec:0.2:16", "drop:0.1", "churn:0.2:8"},
		Trials:    2,
		Seed:      13,
		MaxRounds: 1 << 12,
	}
}

// TestFaultSweepDeterministicAcrossWorkers pins the tentpole guarantee at
// the harness layer: a faulty sweep is a pure function of the spec, so
// every worker count emits the same bytes — fault ordering, crash counts
// and drop tallies included.
func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := faultSweepSpec()
	ref, refRep := runToJSON(t, spec, 1)
	if refRep.Errors != 0 {
		t.Fatalf("fault sweep reported %d trial errors", refRep.Errors)
	}
	sawFaultGroup := false
	for _, g := range refRep.Groups {
		if g.Fault != "" {
			sawFaultGroup = true
		}
	}
	if !sawFaultGroup {
		t.Fatal("no fault-model groups in the fault sweep")
	}
	for _, workers := range []int{2, 4, 8} {
		out, _ := runToJSON(t, spec, workers)
		if !bytes.Equal(ref, out) {
			t.Fatalf("fault sweep output differs between 1 and %d workers (%d vs %d bytes)",
				workers, len(ref), len(out))
		}
	}
}

// TestNoneFaultAxisMatchesFaultFree is the differential guard for the
// fault-free path: a sweep whose fault axis is only "none" must stream
// byte-identical trials and groups to the same sweep with no fault axis
// at all — the fault subsystem leaves zero trace when disarmed.
func TestNoneFaultAxisMatchesFaultFree(t *testing.T) {
	base := sweepSpec()
	withNone := base
	withNone.Faults = []string{"none"}

	baseJSON, baseRep := runToJSON(t, base, 4)
	noneJSON, noneRep := runToJSON(t, withNone, 4)

	if baseRep.Total != noneRep.Total {
		t.Fatalf("trial totals diverge: %d vs %d", baseRep.Total, noneRep.Total)
	}
	// Only the spec echo may differ (it records the explicit "none" axis).
	trim := func(b []byte) string {
		s := string(b)
		if i := strings.Index(s, "\n\"trials\":["); i >= 0 {
			return s[i:]
		}
		return s
	}
	if trim(noneJSON) != trim(baseJSON) {
		t.Fatal(`faults:["none"] trial stream differs from the fault-free sweep`)
	}
}

// TestParseDocumentAcceptsLegacyV2 pins the schema compatibility
// promise: pre-fault v2 documents keep parsing (with no fault_model).
func TestParseDocumentAcceptsLegacyV2(t *testing.T) {
	doc := []byte(`{"schema":"ule-sweep/v2","spec":{"algos":["leastel"],"graphs":["ring:8"]},"trials":[],"groups":[],"total_trials":0,"errors":0}`)
	if _, err := ParseDocument(doc); err != nil {
		t.Fatal(err)
	}
	bad := []byte(`{"schema":"ule-sweep/v9","spec":{},"trials":[],"groups":[],"total_trials":0,"errors":0}`)
	if _, err := ParseDocument(bad); err == nil {
		t.Fatal("unknown schema version accepted")
	}
}

// TestFaultCellsCarryMeasurements checks the v3 per-trial fields land
// only on fault cells, and that survival is populated per fault group.
func TestFaultCellsCarryMeasurements(t *testing.T) {
	spec := Spec{
		Name:      "fault-fields",
		Algos:     []string{"flood"},
		Graphs:    []string{"ring:16"},
		Faults:    []string{"none", "crash:0.5"},
		Trials:    4,
		Seed:      3,
		MaxRounds: 1 << 12,
	}
	data, rep := runToJSON(t, spec, 2)
	doc, err := ParseDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	sawCrash := false
	for _, tr := range doc.Trials {
		if tr.Fault == "" {
			if tr.Crashes != 0 || tr.Recoveries != 0 || tr.Dropped != 0 || tr.LiveUnique {
				t.Fatalf("fault-free trial %d carries fault measurements: %+v", tr.Index, tr)
			}
			continue
		}
		if tr.Crashes > 0 {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("no crash:0.5 trial recorded a crash across 4 reps")
	}
	g := rep.Group("flood", "ring:16", "congest", "sync", "", "crash:0.5")
	if g == nil {
		t.Fatal("missing crash:0.5 group")
	}
	if g.Survival == 0 {
		t.Error("flood should survive crash faults on a ring in at least one rep")
	}
	if free := rep.Group("flood", "ring:16", "congest", "sync", "", ""); free == nil || free.Survival != 0 {
		t.Error("fault-free group must not report survival")
	}
}
