package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSweepDoc builds one small but feature-complete binary document —
// two cells, fault counts, an error record, explicit seed, several
// checkpoints — synthesized straight through the emitter so every fuzz
// worker restart pays microseconds, not a sweep.
func fuzzSweepDoc(tb testing.TB) []byte {
	tb.Helper()
	spec := Spec{
		Name:   "fuzz-seed",
		Algos:  []string{"leastel", "kingdom"},
		Graphs: []string{"ring:8"},
		Faults: []string{"none", "crash:0.3"},
		Trials: 2,
		Seed:   5,
	}
	total := spec.NumTrials()
	var buf bytes.Buffer
	em := NewBinaryEmitter(&buf, BinaryOptions{CheckpointEvery: 3})
	if err := em.Begin(spec, total); err != nil {
		tb.Fatalf("seed Begin: %v", err)
	}
	seed := spec.withDefaults().Seed
	for i := 0; i < total; i++ {
		algo := spec.Algos[i%2]
		fault := spec.Faults[(i/2)%2]
		rep := i % spec.Trials
		tr := TrialResult{
			Trial: Trial{
				Index: i, Algo: algo, Graph: "ring:8", Mode: "congest",
				Wake: "sync", Fault: fault, Rep: rep, Seed: TrialSeed(seed, rep),
			},
			N: 8, M: 8, D: 4, Rounds: 10 + i, LastActive: 9 + i,
			Messages: int64(100 * (i + 1)), Bits: int64(4000 * (i + 1)),
			Leaders: 1, Unique: true, Halted: true,
		}
		switch i {
		case 1:
			tr.Crashes, tr.Recoveries, tr.Dropped = 2, 1, 37
			tr.LiveUnique = true
		case 2:
			tr.Err = `boom "quoted" \slash`
			tr.Seed = 12345 // explicit, not the spec-derived seed
		case 3:
			tr.HitRoundCap = true
		}
		if err := em.Trial(tr); err != nil {
			tb.Fatalf("seed Trial: %v", err)
		}
	}
	rep := &Report{Total: total, Errors: 1, Groups: []GroupStats{{
		Algo: "leastel", Graph: "ring:8", Mode: "congest", Wake: "sync",
		N: 8, M: 8, Trials: total, Success: 1,
	}}}
	if err := em.End(rep); err != nil {
		tb.Fatalf("seed End: %v", err)
	}
	return buf.Bytes()
}

// fuzzSeedVariants derives the seed corpus: a valid document plus the
// classic damage patterns (truncations at every region boundary, bit
// flips, trailing garbage, hostile lengths).
func fuzzSeedVariants(tb testing.TB) [][]byte {
	valid := fuzzSweepDoc(tb)
	variants := [][]byte{
		valid,
		{},
		[]byte("ULSB1\n"),
		[]byte("not a sweep at all"),
		valid[:len(binMagic)+2],
		valid[:len(valid)/4],
		valid[:len(valid)/2],
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0x00),
		append(append([]byte{}, valid...), valid[:40]...),
		// A header that claims a gigantic spec length.
		append(append([]byte{}, binMagic...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
	}
	for _, off := range []int{7, len(valid) / 3, len(valid) * 2 / 3, len(valid) - 5} {
		mut := append([]byte{}, valid...)
		mut[off] ^= 0x55
		variants = append(variants, mut)
	}
	return variants
}

// FuzzParseBinary asserts the decoder's crash-safety contract: arbitrary
// bytes may be rejected with an error but must never panic, loop, or
// allocate unboundedly — a corrupt checkpoint file goes through this
// exact code path before a resume.
func FuzzParseBinary(f *testing.F) {
	for _, v := range fuzzSeedVariants(f) {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ParseBinary(data)
		if err == nil {
			if doc == nil {
				t.Fatal("ParseBinary returned nil document with nil error")
			}
			if len(doc.Trials) != doc.TotalTrials {
				t.Fatalf("accepted document with %d trials but total %d", len(doc.Trials), doc.TotalTrials)
			}
			// A document the parser accepts must survive the export and
			// streaming paths too.
			var out bytes.Buffer
			if err := ExportJSON(bytes.NewReader(data), &out); err != nil {
				t.Fatalf("ParseBinary accepted but ExportJSON rejected: %v", err)
			}
			n := 0
			if err := DecodeBinaryTrials(bytes.NewReader(data), func(TrialResult) error { n++; return nil }); err != nil {
				t.Fatalf("ParseBinary accepted but DecodeBinaryTrials rejected: %v", err)
			}
			if n != len(doc.Trials) {
				t.Fatalf("streaming decoded %d trials, parse got %d", n, len(doc.Trials))
			}
			return
		}
		// Rejected input: the streaming paths must agree it is bad (no
		// silent partial success) and likewise not panic.
		var out bytes.Buffer
		_ = ExportJSON(bytes.NewReader(data), &out)
		_ = DecodeBinaryTrials(bytes.NewReader(data), func(TrialResult) error { return nil })
	})
}

// TestRegenerateFuzzCorpus materializes the seed variants as checked-in
// corpus files so CI fuzzes them without needing a -fuzz run first. Run
// with ULE_REGEN_FUZZ_CORPUS=1 to refresh testdata/fuzz/FuzzParseBinary.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("ULE_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set ULE_REGEN_FUZZ_CORPUS=1 to regenerate the checked-in corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzParseBinary")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, v := range fuzzSeedVariants(t) {
		sum := sha256.Sum256(v)
		name := hex.EncodeToString(sum[:8])
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(v)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFuzzCorpusCheckedIn guards against the corpus directory being
// deleted or left empty: the fuzz target's regression value in plain
// `go test` runs comes from these files.
func TestFuzzCorpusCheckedIn(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzParseBinary"))
	if err != nil {
		t.Fatalf("checked-in fuzz corpus missing: %v", err)
	}
	if len(entries) < 10 {
		t.Fatalf("fuzz corpus has %d entries, want >= 10", len(entries))
	}
}
