package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// partitionRanges slices [0, total) into parts near-equal contiguous
// ranges (the same split the fleet coordinator's unit planner uses for a
// given unit size).
func partitionRanges(total, parts int) []TrialRange {
	var out []TrialRange
	for i := 0; i < parts; i++ {
		start := i * total / parts
		end := (i + 1) * total / parts
		if end > start {
			out = append(out, TrialRange{Start: start, Count: end - start})
		}
	}
	return out
}

// writeShard runs one contiguous range of spec into a shard file and
// returns its path.
func writeShard(t *testing.T, dir string, spec Spec, r TrialRange, opt BinaryOptions) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("shard-%d-%d.ulss", r.Start, r.Count))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(spec, RunConfig{
		Workers:  2,
		Emitters: []Emitter{NewShardEmitter(f, r.Start, r.Count, opt)},
		Range:    &r,
	})
	if err != nil {
		t.Fatalf("shard [%d,%d): Run: %v", r.Start, r.Start+r.Count, err)
	}
	return path
}

// mergeToBytes merges shards through binary+JSON emitters.
func mergeToBytes(t *testing.T, spec Spec, paths []string, opt BinaryOptions) (binDoc, jsonDoc []byte, rep *Report) {
	t.Helper()
	var bb, jb bytes.Buffer
	rep, err := MergeShards(spec, paths, MergeConfig{
		Emitters: []Emitter{NewBinaryEmitter(&bb, opt), NewJSONEmitter(&jb)},
	})
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	return bb.Bytes(), jb.Bytes(), rep
}

// TestShardMergeByteIdentical is the core distributed-determinism
// contract: any partition of the sweep into shard files merges back into
// the exact bytes (binary and JSON) a single-process run produces.
func TestShardMergeByteIdentical(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 16}
	refJSON, refBin, refRep := runBinary(t, spec, 4, opt)
	total := spec.NumTrials()

	for _, parts := range []int{1, 2, 3, 5} {
		dir := t.TempDir()
		var paths []string
		for _, r := range partitionRanges(total, parts) {
			paths = append(paths, writeShard(t, dir, spec, r, opt))
		}
		binDoc, jsonDoc, rep := mergeToBytes(t, spec, paths, opt)
		if !bytes.Equal(binDoc, refBin) {
			t.Fatalf("parts=%d: merged binary differs from single-process run (%d vs %d bytes)", parts, len(binDoc), len(refBin))
		}
		if !bytes.Equal(jsonDoc, refJSON) {
			t.Fatalf("parts=%d: merged JSON differs from single-process run", parts)
		}
		if !reflect.DeepEqual(rep.Groups, refRep.Groups) || rep.Errors != refRep.Errors {
			t.Fatalf("parts=%d: merged report differs from single-process run", parts)
		}
	}
}

// TestShardKillAndResume mirrors TestBinaryKillAndResume for the shard
// format: a shard truncated at an arbitrary byte resumes from its last
// durable checkpoint and finishes byte-identical to the uninterrupted
// shard file.
func TestShardKillAndResume(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 8}
	total := spec.NumTrials()
	r := TrialRange{Start: total / 3, Count: total / 2}

	dir := t.TempDir()
	refPath := writeShard(t, dir, spec, r, opt)
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{len(refBytes) / 3, len(refBytes) * 4 / 5, len(refBytes) - 1} {
		killed := filepath.Join(dir, "killed.ulss")
		if err := os.WriteFile(killed, refBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ck, em, err := ResumeShard(killed)
		if err != nil {
			t.Fatalf("cut=%d: ResumeShard: %v", cut, err)
		}
		if ck.Start != r.Start || ck.Count != r.Count {
			t.Fatalf("cut=%d: checkpoint range [%d,%d), want [%d,%d)", cut, ck.Start, ck.Start+ck.Count, r.Start, r.Start+r.Count)
		}
		if _, err := Run(spec, RunConfig{
			Workers:  2,
			Resume:   ck,
			Range:    &r,
			Emitters: []Emitter{em},
		}); err != nil {
			t.Fatalf("cut=%d: resumed Run: %v", cut, err)
		}
		resumed, err := os.ReadFile(killed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumed, refBytes) {
			t.Fatalf("cut=%d (resumed from %d local trials): shard differs from uninterrupted (%d vs %d bytes)",
				cut, ck.Completed, len(resumed), len(refBytes))
		}
	}

	// Resuming a complete shard reports ErrSweepComplete.
	if _, _, err := ResumeShard(refPath); !errors.Is(err, ErrSweepComplete) {
		t.Fatalf("ResumeShard on complete shard = %v, want ErrSweepComplete", err)
	}
	// Range mismatch between checkpoint and run is rejected.
	killed := filepath.Join(dir, "mismatch.ulss")
	if err := os.WriteFile(killed, refBytes[:len(refBytes)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ck, em, err := ResumeShard(killed)
	if err != nil {
		t.Fatal(err)
	}
	wrong := TrialRange{Start: r.Start + 1, Count: r.Count}
	if _, err := Run(spec, RunConfig{Resume: ck, Range: &wrong, Emitters: []Emitter{em}}); err == nil {
		t.Fatal("resume with mismatched range succeeded, want error")
	}
}

// TestShardMergeOverlapDedup: a stale partial shard left behind by a
// revoked lease overlaps the range a fresh attempt re-ran in full; merge
// deduplicates by absolute index and still reproduces the reference
// bytes.
func TestShardMergeOverlapDedup(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 8}
	refJSON, refBin, _ := runBinary(t, spec, 4, opt)
	total := spec.NumTrials()

	dir := t.TempDir()
	half := total / 2
	paths := []string{
		writeShard(t, dir, spec, TrialRange{Start: 0, Count: half}, opt),
		writeShard(t, dir, spec, TrialRange{Start: half, Count: total - half}, opt),
	}
	// The stale attempt: covers part of shard 0's range, truncated to a
	// durable prefix mid-way (as a revoked lease would leave it).
	stalePath := writeShard(t, dir, spec, TrialRange{Start: half / 4, Count: half / 2}, opt)
	stale, err := os.ReadFile(stalePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stalePath, stale[:len(stale)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	paths = append(paths, stalePath)

	binDoc, jsonDoc, _ := mergeToBytes(t, spec, paths, opt)
	if !bytes.Equal(binDoc, refBin) {
		t.Fatalf("merged binary with overlapping stale shard differs from reference")
	}
	if !bytes.Equal(jsonDoc, refJSON) {
		t.Fatalf("merged JSON with overlapping stale shard differs from reference")
	}
}

// TestShardMergeIncomplete: coverage gaps abort the merge with a
// machine-readable list of missing ranges before any emitter output.
func TestShardMergeIncomplete(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 16}
	total := spec.NumTrials()
	rs := partitionRanges(total, 4)

	dir := t.TempDir()
	// Drop the second quarter.
	paths := []string{
		writeShard(t, dir, spec, rs[0], opt),
		writeShard(t, dir, spec, rs[2], opt),
		writeShard(t, dir, spec, rs[3], opt),
	}
	var bb bytes.Buffer
	_, err := MergeShards(spec, paths, MergeConfig{Emitters: []Emitter{NewBinaryEmitter(&bb, opt)}})
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("MergeShards on gappy shards = %v, want IncompleteError", err)
	}
	want := []TrialRange{{Start: rs[1].Start, Count: rs[1].Count}}
	if !reflect.DeepEqual(inc.Missing, want) {
		t.Fatalf("missing = %+v, want %+v", inc.Missing, want)
	}
	if bb.Len() != 0 {
		t.Fatalf("incomplete merge wrote %d bytes of output, want none", bb.Len())
	}
}

// TestShardMergeDetectsDivergence: an overlapping shard whose duplicate
// records do not match byte-for-byte is a broken determinism contract,
// surfaced as an error rather than silently picking one copy.
func TestShardMergeDetectsDivergence(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 8}
	_, refBin, _ := runBinary(t, spec, 4, opt)
	total := spec.NumTrials()

	doc, err := ParseBinary(refBin)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := []string{writeShard(t, dir, spec, TrialRange{Start: 0, Count: total}, opt)}

	// Forge an overlapping shard whose trial 1 reports different numbers.
	forged := filepath.Join(dir, "forged.ulss")
	f, err := os.Create(forged)
	if err != nil {
		t.Fatal(err)
	}
	em := NewShardEmitter(f, 0, 4, opt)
	if err := em.Begin(spec, total); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tr := doc.Trials[i]
		if i == 1 {
			tr.Messages += 7
		}
		if err := em.Trial(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := em.End(&Report{}); err != nil {
		t.Fatal(err)
	}
	paths = append(paths, forged)

	var bb bytes.Buffer
	if _, err := MergeShards(spec, paths, MergeConfig{Emitters: []Emitter{NewBinaryEmitter(&bb, opt)}}); err == nil {
		t.Fatal("MergeShards with divergent duplicate succeeded, want determinism-violation error")
	}
}

// TestShardFullDocumentCrossRejects: the inspect/resume entry points for
// the two document kinds reject each other's files, and the full-document
// decoders reject shards.
func TestShardFullDocumentCrossRejects(t *testing.T) {
	spec := binarySpec()
	opt := BinaryOptions{CheckpointEvery: 16}
	total := spec.NumTrials()
	dir := t.TempDir()

	shardPath := writeShard(t, dir, spec, TrialRange{Start: 0, Count: total / 2}, opt)
	fullPath := filepath.Join(dir, "full.ulsb")
	f, err := os.Create(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, RunConfig{Workers: 2, Emitters: []Emitter{NewBinaryEmitter(f, opt)}}); err != nil {
		t.Fatal(err)
	}

	if _, err := InspectBinary(shardPath); err == nil {
		t.Fatal("InspectBinary accepted a shard file")
	}
	if _, err := InspectShard(fullPath); err == nil {
		t.Fatal("InspectShard accepted a full document")
	}
	shardBytes, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBinary(shardBytes); err == nil {
		t.Fatal("ParseBinary accepted a shard file")
	}
	if err := ExportJSON(bytes.NewReader(shardBytes), &bytes.Buffer{}); err == nil {
		t.Fatal("ExportJSON accepted a shard file")
	}
	// A shard of a different sweep (same shape, different seed) must be
	// rejected by merge via the spec hash.
	other := spec
	other.Seed++
	foreign := writeShard(t, dir, spec, TrialRange{Start: total / 2, Count: total - total/2}, opt)
	if _, err := MergeShards(other, []string{shardPath, foreign}, MergeConfig{}); err == nil {
		t.Fatal("MergeShards accepted shards from a different sweep")
	}
}
