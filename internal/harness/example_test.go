package harness_test

import (
	"fmt"

	"ule/internal/harness"
)

// A declarative sweep: two algorithms on two graphs, synchronous and
// asynchronous, executed on the work-stealing pool. The same spec yields
// byte-identical emitter output for any worker count.
func ExampleRun() {
	spec := harness.Spec{
		Name:   "example",
		Algos:  []string{"leastel", "kingdom"},
		Graphs: []string{"ring:16", "random:24:60"},
		Modes:  []string{"congest", "async"},
		Delays: []string{"fifo:4"},
		Trials: 3,
		Seed:   2,
	}
	rep, err := harness.Run(spec, harness.RunConfig{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("trials:", rep.Total, "errors:", rep.Errors)
	sync := rep.Group("leastel", "ring:16", "congest", "sync")
	async := rep.Group("leastel", "ring:16", "async", "sync", "fifo:4")
	fmt.Printf("leastel ring:16 sync:  success %.0f%%\n", 100*sync.Success)
	fmt.Printf("leastel ring:16 async: success %.0f%% under %s delays\n", 100*async.Success, async.Delay)
	// Output:
	// trials: 24 errors: 0
	// leastel ring:16 sync:  success 100%
	// leastel ring:16 async: success 100% under fifo:4 delays
}
