// Package harness is the parallel experiment-sweep engine: it expands a
// declarative sweep specification (algorithm set × graph family × modes ×
// wake schedules × async delay schedules × fault schedules ×
// repetitions) into deterministic trials, executes them on a
// work-stealing goroutine pool, and streams the results through JSON/CSV
// emitters and an online aggregator.
//
// Determinism: every trial's randomness derives from (Spec.Seed, rep), so
// the r-th repetition of every (algorithm, graph, mode, wake) cell sees
// the same coins and ID assignment — a paired-sample design — and the
// same spec produces byte-identical emitter output regardless of worker
// count. Results are streamed, not accumulated: workers discard the full
// sim.Result (statuses, per-edge maps and other O(n) state) after
// reducing it to a small TrialResult record. What the consumer retains is
// the emit reorder window (a power-of-two ring of TrialResult records)
// plus exact value→count accumulators (stats.IntSample) per cell, so
// consumer memory is flat in trial count while the group summaries keep
// their exact order statistics.
package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/sim"
)

// Spec declaratively describes a sweep. The zero values of optional
// fields select the documented defaults, so a minimal spec is just
// {Algos, Graphs}. Specs round-trip through JSON; see docs/SWEEP_SCHEMA.md.
type Spec struct {
	// Name labels the sweep in reports and emitted files.
	Name string `json:"name,omitempty"`
	// Algos lists internal/core registry names.
	Algos []string `json:"algos"`
	// Graphs lists graph.FromSpec family specs (e.g. "ring:64",
	// "random:128:640"). Each entry is instantiated once and shared by
	// all its trials.
	Graphs []string `json:"graphs"`
	// Trials is the number of repetitions per cell (default 1).
	Trials int `json:"trials,omitempty"`
	// Seed derives all per-trial randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Modes lists execution models: "congest", "local", "async" (default
	// ["congest"]).
	Modes []string `json:"modes,omitempty"`
	// Wakes lists wake schedules: "sync", "random:R", "stagger:K",
	// "adversarial" (default ["sync"]).
	Wakes []string `json:"wakes,omitempty"`
	// Delays lists asynchronous message-delay schedules: "unit",
	// "random:B", "fifo:B" (default ["unit"]). The axis applies to
	// "async"-mode cells only; synchronous cells ignore it rather than
	// multiplying.
	Delays []string `json:"delays,omitempty"`
	// Faults lists fault-adversary schedules (sim.ParseFaults grammar:
	// "crash:0.2", "crashrec:0.1:32:keep+drop:0.05", ...; "" or "none"
	// is fault-free). The default is the single fault-free entry. Unlike
	// Delays, the axis multiplies every mode — faults compose with the
	// synchronous models too.
	Faults []string `json:"faults,omitempty"`
	// MaxRounds bounds each run (default 1 << 18).
	MaxRounds int `json:"max_rounds,omitempty"`
	// SmallIDs assigns permutation IDs 1..n instead of random 64-bit IDs
	// (required for "dfs", whose running time is exponential in the
	// minimum ID).
	SmallIDs bool `json:"small_ids,omitempty"`
	// DiameterEstimate grants D-dependent algorithms the cheap iterated
	// double-sweep lower bound (graph.DiameterEstimate, O(k·(n+m))) as
	// their known diameter instead of the exact all-pairs value (O(n·m)),
	// making D-knowledge cells feasible on million-node graphs. Opt-in:
	// the estimate equals the exact diameter on the shipped families, but
	// an under-estimate changes what the algorithm is told, so trials with
	// this flag are labeled by it in the emitted spec.
	DiameterEstimate bool `json:"diameter_estimate,omitempty"`
	// Shards partitions each trial's event engine into concurrently
	// stepped node shards (sim.Config.Shards: 0/1 single shard, negative
	// auto-sizes to GOMAXPROCS). Emitted output is byte-identical at
	// every shard count, so this is a pure execution knob like
	// RunConfig.Workers — but it is part of the spec echo, so two sweeps
	// differing only in Shards differ in the emitted spec header.
	Shards int `json:"shards,omitempty"`
	// Opt tunes the algorithms (shared by every trial).
	Opt core.Options `json:"opt,omitempty"`
}

// Trial identifies one expanded (algorithm, graph, mode, wake, delay,
// fault) cell repetition. Index is the position in expansion order; Seed
// is the trial's deterministic root seed. Delay is the async delay-model
// spec ("" for synchronous cells); Fault is the fault-schedule spec (""
// for fault-free cells — "none" axis entries are canonicalized to "").
type Trial struct {
	Index int    `json:"trial"`
	Algo  string `json:"algo"`
	Graph string `json:"graph"`
	Mode  string `json:"mode"`
	Wake  string `json:"wake"`
	Delay string `json:"delay_model,omitempty"`
	Fault string `json:"fault_model,omitempty"`
	Rep   int    `json:"rep"`
	Seed  int64  `json:"seed"`

	graphIdx int
	// The parsed model axes, resolved once per axis entry at compile time
	// and shared by every repetition (both values are immutable).
	mode   sim.Mode
	delay  sim.DelaySchedule
	faults *sim.FaultSchedule
}

// Model returns the trial's parsed execution model.
func (t Trial) Model() sim.ModelSpec {
	return sim.ModelSpec{Mode: t.mode, Delay: t.delay, Faults: t.faults}
}

// TrialSeed derives the deterministic root seed of repetition rep.
// Repetitions share seeds across cells (paired-sample design).
func TrialSeed(base int64, rep int) int64 {
	return sim.NodeSeed(base, rep)
}

// graphSeed derives the instantiation seed of the i-th graph axis entry.
func graphSeed(base int64, i int) int64 {
	return sim.NodeSeed(base, -1000-i)
}

// plan is the validated, expanded form of a Spec.
type plan struct {
	spec   Spec
	graphs []*graph.Graph // parallel to spec.Graphs
	trials []Trial
}

func parseMode(s string) (sim.Mode, error) {
	mode, err := sim.ParseMode(s)
	if err != nil {
		return 0, fmt.Errorf("harness: %w", err)
	}
	return mode, nil
}

// parseWake validates a wake-schedule spec. Schedules:
//
//	sync         all nodes wake in round 1 (the default)
//	random:R     each node wakes uniformly in rounds [1, R]
//	stagger:K    node i wakes in round 1 + (i mod K)
//	adversarial  one seeded random node wakes in round 1; every other
//	             node sleeps until a message arrives
func parseWake(s string) error {
	kind, arg, hasArg := strings.Cut(s, ":")
	switch kind {
	case "", "sync", "adversarial":
		if hasArg {
			return fmt.Errorf("harness: wake %q takes no parameter", s)
		}
		return nil
	case "random", "stagger":
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return fmt.Errorf("harness: wake %q needs a positive integer parameter", s)
		}
		return nil
	default:
		return fmt.Errorf("harness: unknown wake schedule %q", s)
	}
}

// wakeSchedule materializes a parsed wake spec for an n-node trial. The
// schedule derives from the trial seed, so it is deterministic and
// repetition-paired like every other source of randomness.
func wakeSchedule(spec string, n int, trialSeed int64) []int {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "", "sync":
		return nil
	case "random":
		span, _ := strconv.Atoi(arg)
		rng := rand.New(rand.NewSource(sim.NodeSeed(trialSeed, -3)))
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + rng.Intn(span)
		}
		return w
	case "stagger":
		k, _ := strconv.Atoi(arg)
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + i%k
		}
		return w
	case "adversarial":
		rng := rand.New(rand.NewSource(sim.NodeSeed(trialSeed, -3)))
		w := make([]int, n)
		for i := range w {
			w[i] = sim.WakeOnMessage
		}
		w[rng.Intn(n)] = 1
		return w
	default:
		panic("harness: unvalidated wake spec " + spec)
	}
}

// WakeSchedule validates and materializes a wake-schedule spec for an
// n-node run, exactly as the sweep expansion does for its trials (the
// schedule derives from trialSeed, so a server-side run reproduces the
// batch path byte-for-byte). Exported for the uled serving layer.
func WakeSchedule(spec string, n int, trialSeed int64) ([]int, error) {
	if err := parseWake(spec); err != nil {
		return nil, err
	}
	return wakeSchedule(spec, n, trialSeed), nil
}

// Validate compiles the spec — axis grammars parsed, algorithms resolved,
// graphs instantiated — and returns the expanded trial count. It is the
// pre-flight check of the serving layer: a spec that validates cannot
// fail Run with a spec error (trial-level model violations are still
// recorded per trial).
func (s Spec) Validate() (int, error) {
	p, err := s.compile()
	if err != nil {
		return 0, err
	}
	return len(p.trials), nil
}

// withDefaults resolves the zero values of optional fields.
func (s Spec) withDefaults() Spec {
	if s.Trials <= 0 {
		s.Trials = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxRounds <= 0 {
		s.MaxRounds = 1 << 18
	}
	if len(s.Modes) == 0 {
		s.Modes = []string{"congest"}
	}
	if len(s.Wakes) == 0 {
		s.Wakes = []string{"sync"}
	}
	if len(s.Delays) == 0 {
		s.Delays = []string{"unit"}
	}
	return s
}

// cellDelays returns the delay-model axis of one mode cell: the spec's
// Delays for async cells, and the single empty entry (no delay model) for
// synchronous cells, which would otherwise be multiplied by an axis that
// cannot affect them.
func (s Spec) cellDelays(mode sim.Mode) []string {
	if mode == sim.ASYNC {
		return s.Delays
	}
	return []string{""}
}

// faultAxis returns the fault-schedule axis: the spec's Faults, or the
// single fault-free entry. The spec field itself is left alone (an
// omitted axis stays omitted in emitted spec JSON).
func (s Spec) faultAxis() []string {
	if len(s.Faults) == 0 {
		return []string{""}
	}
	return s.Faults
}

// BuildGraphs instantiates the spec's graph axis exactly as Run does
// (deterministic given Spec.Seed), for callers that need the instances —
// e.g. to compute table normalizations like rounds/D from the memoized
// exact diameter.
func (s Spec) BuildGraphs() ([]*graph.Graph, error) {
	s = s.withDefaults()
	graphs := make([]*graph.Graph, len(s.Graphs))
	for i, gs := range s.Graphs {
		g, err := graph.FromSpec(gs, graphSeed(s.Seed, i))
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	return graphs, nil
}

// compile validates the spec, instantiates every graph, and expands the
// cross product into the deterministic trial list.
func (s Spec) compile() (*plan, error) {
	if len(s.Algos) == 0 {
		return nil, fmt.Errorf("harness: spec needs at least one algorithm")
	}
	if len(s.Graphs) == 0 {
		return nil, fmt.Errorf("harness: spec needs at least one graph")
	}
	s = s.withDefaults()
	for _, a := range s.Algos {
		if _, ok := core.Get(a); !ok {
			return nil, fmt.Errorf("harness: unknown algorithm %q", a)
		}
	}
	modes := make([]sim.Mode, len(s.Modes))
	for i, m := range s.Modes {
		mode, err := parseMode(m)
		if err != nil {
			return nil, err
		}
		modes[i] = mode
	}
	for _, w := range s.Wakes {
		if err := parseWake(w); err != nil {
			return nil, err
		}
	}
	// Parse each delay and fault axis entry once; the immutable parsed
	// values are shared by every trial of the entry.
	delays := make(map[string]sim.DelaySchedule, len(s.Delays))
	for _, d := range s.Delays {
		ds, err := sim.ParseDelay(d)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		delays[d] = ds
	}
	faults := make([]*sim.FaultSchedule, len(s.faultAxis()))
	for i, f := range s.faultAxis() {
		fs, err := sim.ParseFaults(f)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		faults[i] = fs
	}
	graphs, err := s.BuildGraphs()
	if err != nil {
		return nil, err
	}
	p := &plan{spec: s, graphs: graphs}
	for gi, gs := range s.Graphs {
		for _, algo := range s.Algos {
			for mi, mode := range s.Modes {
				for _, wake := range s.Wakes {
					for _, delay := range s.cellDelays(modes[mi]) {
						for fi, fault := range s.faultAxis() {
							if faults[fi] == nil {
								fault = "" // canonicalize "none"
							}
							for rep := 0; rep < s.Trials; rep++ {
								p.trials = append(p.trials, Trial{
									Index:    len(p.trials),
									Algo:     algo,
									Graph:    gs,
									Mode:     strings.ToLower(mode),
									Wake:     wake,
									Delay:    delay,
									Fault:    fault,
									Rep:      rep,
									Seed:     TrialSeed(s.Seed, rep),
									graphIdx: gi,
									mode:     modes[mi],
									delay:    delays[delay],
									faults:   faults[fi],
								})
							}
						}
					}
				}
			}
		}
	}
	return p, nil
}

// NumTrials returns the number of trials the spec expands to, without
// instantiating graphs.
func (s Spec) NumTrials() int {
	s = s.withDefaults()
	cells := 0
	for _, m := range s.Modes {
		if mode, err := sim.ParseMode(m); err == nil {
			cells += len(s.cellDelays(mode))
		} else {
			cells++ // invalid mode: count one cell; compile will reject it
		}
	}
	return len(s.Algos) * len(s.Graphs) * len(s.Wakes) * cells * len(s.faultAxis()) * s.Trials
}
