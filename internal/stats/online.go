package stats

import (
	"math"
	"sort"
)

// IntSample is an exact online accumulator for integer-valued samples.
// It replaces the "append every observation to a []float64, Summarize at
// the end" pattern with a value→count multiset, so memory is proportional
// to the number of *distinct* values rather than the number of samples —
// for a 10^6-trial sweep cell whose message counts cluster around a few
// thousand distinct totals, that is the difference between 24 MB of
// float slices per cell and a few KB.
//
// The contract that makes it a drop-in replacement: Summary() is
// bit-identical to Summarize(xs) applied to the same multiset converted
// to float64. Summarize sorts the sample ascending and then runs two
// passes (sum, then squared deviations) in sorted order; because
// int64→float64 conversion is monotonic, replaying the multiset in
// ascending key order with one addition per observation reproduces the
// exact same float operations in the exact same order. No Welford-style
// running moments are kept — they would be cheaper but not bit-identical.
type IntSample struct {
	counts map[int64]int
	n      int
}

// Add records one observation.
func (s *IntSample) Add(v int64) {
	if s.counts == nil {
		s.counts = make(map[int64]int)
	}
	s.counts[v]++
	s.n++
}

// Count returns the number of observations recorded so far.
func (s *IntSample) Count() int { return s.n }

// Summary computes the same Summary that Summarize would return for the
// accumulated multiset, bit for bit (see the type comment for why).
// It is O(distinct·log distinct + n) time but only O(distinct) memory.
func (s *IntSample) Summary() Summary {
	if s.n == 0 {
		return Summary{}
	}
	keys := make([]int64, 0, len(s.counts))
	for v := range s.counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	out := Summary{Count: s.n}
	out.Min = float64(keys[0])
	out.Max = float64(keys[len(keys)-1])

	// sorted[i] without materializing the sorted slice.
	at := func(idx int) float64 {
		cum := 0
		for _, v := range keys {
			cum += s.counts[v]
			if idx < cum {
				return float64(v)
			}
		}
		panic("stats: IntSample index out of range")
	}
	out.Median = at(s.n / 2)
	if s.n%2 == 0 {
		out.Median = (at(s.n/2-1) + at(s.n/2)) / 2
	}

	// One addition per observation, ascending — the same operation
	// sequence Summarize runs over its sorted slice.
	var sum float64
	for _, v := range keys {
		f := float64(v)
		for c := s.counts[v]; c > 0; c-- {
			sum += f
		}
	}
	out.Mean = sum / float64(s.n)
	var ss float64
	for _, v := range keys {
		d := float64(v) - out.Mean
		dd := d * d
		for c := s.counts[v]; c > 0; c-- {
			ss += dd
		}
	}
	if s.n > 1 {
		out.Std = math.Sqrt(ss / float64(s.n-1))
	}
	return out
}
