package stats

import (
	"math/rand"
	"testing"
)

// TestIntSampleBitIdentical pins the drop-in contract: IntSample.Summary
// must reproduce Summarize bit for bit on the same integer multiset, for
// every sample shape the harness aggregator sees (empty, singleton, heavy
// duplication, huge magnitudes, negatives, odd/even counts).
func TestIntSampleBitIdentical(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{42},
		{1, 1, 1, 1},
		{3, 1, 2},
		{5, -5, 0, 5, -5},
		{1 << 40, 1, 1 << 40, 7, 7, 7},
		{9223372036854775807, -9223372036854775808, 0},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		n := rng.Intn(200)
		xs := make([]int64, n)
		for j := range xs {
			// Mix of small clustered values (duplicates) and wide ones.
			if rng.Intn(2) == 0 {
				xs[j] = int64(rng.Intn(10))
			} else {
				xs[j] = rng.Int63n(1<<50) - 1<<49
			}
		}
		cases = append(cases, xs)
	}
	for ci, xs := range cases {
		var acc IntSample
		fs := make([]float64, len(xs))
		for i, v := range xs {
			acc.Add(v)
			fs[i] = float64(v)
		}
		want := Summarize(fs)
		got := acc.Summary()
		if got != want {
			t.Errorf("case %d (%d samples): IntSample summary %+v != Summarize %+v", ci, len(xs), got, want)
		}
		if acc.Count() != len(xs) {
			t.Errorf("case %d: Count=%d want %d", ci, acc.Count(), len(xs))
		}
	}
}

// TestIntSampleMemoryBoundedByDistinct checks the point of the type: a
// million observations over a small value domain keep the internal map at
// domain size.
func TestIntSampleMemoryBoundedByDistinct(t *testing.T) {
	var acc IntSample
	for i := 0; i < 1_000_000; i++ {
		acc.Add(int64(i % 97))
	}
	if len(acc.counts) != 97 {
		t.Fatalf("map holds %d entries, want 97", len(acc.counts))
	}
	if acc.Count() != 1_000_000 {
		t.Fatalf("Count=%d", acc.Count())
	}
	s := acc.Summary()
	if s.Count != 1_000_000 || s.Min != 0 || s.Max != 96 {
		t.Fatalf("summary %+v", s)
	}
}
