// Package stats provides the small aggregation and table-rendering toolkit
// used by the experiment harness: per-metric summaries over repeated trials
// and plain-text/CSV table output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics and moments of a sample.
type Summary struct {
	Count            int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary of xs (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		s.Median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Table accumulates rows and renders them as aligned text or CSV.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func trimFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping; the
// harness emits only numbers and simple identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}
