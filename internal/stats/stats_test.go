package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("got %+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v", odd.Median)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Errorf("empty sample: %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Errorf("singleton: %+v", one)
	}
}

func TestSummarizeProperties(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Std >= 0 && s.Count == len(xs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 1000.25)
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	text := tb.String()
	for _, want := range []string{"demo", "a", "bb", "2.500", "1000.2"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "|---|---|") {
		t.Errorf("bad markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("bad csv:\n%s", csv)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{3, "3"}, {3.14159, "3.142"}, {123.456, "123.5"}, {-2, "-2"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.v); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
	if math.IsNaN(1) {
		t.Fatal("unreachable")
	}
}
