package broadcast

import (
	"math/rand"
	"testing"

	"ule/internal/graph"
	"ule/internal/sim"
)

func runFlood(t *testing.T, g *graph.Graph, source int, seed int64) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Graph:     g,
		Seed:      seed,
		Wake:      Config(g.N(), source),
		MaxRounds: 4 * g.N(),
	}, Flood{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFloodReachesEveryone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*graph.Graph{
		graph.Path(20), graph.Ring(20), graph.Star(20), graph.Complete(12),
		graph.Grid(4, 5), graph.Hypercube(4),
	}
	g, err := graph.RandomConnected(40, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g)
	for _, gr := range graphs {
		src := rng.Intn(gr.N())
		res := runFlood(t, gr, src, 7)
		if got := Informed(res); got != gr.N() {
			t.Errorf("%s: informed %d of %d", gr.Name(), got, gr.N())
		}
		if !ReachedMajority(res) {
			t.Errorf("%s: majority not reached", gr.Name())
		}
		// Flooding sends exactly one broadcast per node: degree sum = 2m.
		if res.Messages != int64(2*gr.M()) {
			t.Errorf("%s: messages %d, want 2m=%d", gr.Name(), res.Messages, 2*gr.M())
		}
	}
}

func TestFloodTimeIsEccentricity(t *testing.T) {
	g := graph.Path(30)
	res := runFlood(t, g, 0, 3)
	// Source at the path end: the last delivery happens at round ecc+1.
	if res.LastActive < 29 || res.LastActive > 31 {
		t.Errorf("LastActive=%d, want ≈ 30", res.LastActive)
	}
}

func TestInformedCounting(t *testing.T) {
	res := &sim.Result{Statuses: []sim.Status{sim.Leader, sim.NonLeader, sim.Leader}}
	if Informed(res) != 2 {
		t.Error("bad informed count")
	}
	if !ReachedMajority(res) {
		t.Error("2 of 3 is a majority")
	}
	res2 := &sim.Result{Statuses: []sim.Status{sim.Leader, sim.NonLeader}}
	if ReachedMajority(res2) {
		t.Error("1 of 2 is not a strict majority")
	}
}
