// Package broadcast implements the broadcast problem of Corollary 3.12: a
// single source must convey a message to all (or, in the majority variant,
// to more than half of) the nodes. The flooding protocol here is
// message-optimal up to constants (Θ(m)); the corollary shows that Ω(m) is
// unavoidable for any algorithm with suitably large success probability,
// which the lowerbound package demonstrates on dumbbell graphs.
package broadcast

import "ule/internal/sim"

// Flood is the classic flooding broadcast: the source sends a token to all
// neighbors; every node forwards it once. Θ(m) messages, source
// eccentricity + 1 rounds.
type Flood struct {
	// Source is the broadcasting node index.
	Source int
}

var _ sim.Protocol = Flood{}

// Name implements sim.Protocol.
func (Flood) Name() string { return "broadcast-flood" }

// New implements sim.Protocol.
func (f Flood) New(info sim.NodeInfo) sim.Process {
	return &floodProc{}
}

type token struct{}

func (token) Bits() int { return 1 }

// msgToken is the flood payload, sent as a package-level singleton.
var msgToken sim.Payload = token{}

type floodProc struct{ got bool }

// Protocol convention: the source is the unique node with wake round 1;
// all others use sim.WakeOnMessage (see Config below).
func (p *floodProc) Start(c *sim.Context) {
	if c.SpontaneousWake() {
		p.got = true
		c.Decide(sim.Leader) // "informed" marker; Leader doubles as got-it
		c.Broadcast(msgToken)
		c.Halt()
	}
}

func (p *floodProc) Round(c *sim.Context, inbox []sim.Message) {
	if !p.got && len(inbox) > 0 {
		p.got = true
		c.Decide(sim.Leader)
		c.Broadcast(msgToken)
	}
	c.Halt()
}

// Config returns the sim configuration that realizes the broadcast wakeup
// convention on an n-node graph: only the source wakes spontaneously.
func Config(n, source int) []int {
	wake := make([]int, n)
	for i := range wake {
		wake[i] = sim.WakeOnMessage
	}
	wake[source] = 1
	return wake
}

// Informed counts the nodes the broadcast reached (marked Leader by the
// convention above).
func Informed(res *sim.Result) int {
	count := 0
	for _, s := range res.Statuses {
		if s == sim.Leader {
			count++
		}
	}
	return count
}

// ReachedMajority reports whether the broadcast informed more than half of
// the nodes (the majority-broadcast success condition of Corollary 3.12).
func ReachedMajority(res *sim.Result) bool {
	return Informed(res)*2 > len(res.Statuses)
}
