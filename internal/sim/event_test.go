package sim

import (
	"errors"
	"fmt"
	"testing"

	"ule/internal/graph"
)

// resultKey reduces a Result to everything observable, for engine
// equivalence checks.
func resultKey(r *Result) string {
	return fmt.Sprintf("rounds=%d last=%d msgs=%d bits=%d maxbits=%d leaders=%v halted=%v cap=%v statuses=%v",
		r.Rounds, r.LastActive, r.Messages, r.Bits, r.MaxMsgBits, r.Leaders, r.Halted, r.HitRoundCap, r.Statuses)
}

// TestEventEngineMatchesDense is the differential test behind the engine
// swap: on the synchronous modes, the event-driven scheduler must be
// observably identical to the seed's dense per-round loop for every
// combination of protocol, wake schedule and instrumentation.
func TestEventEngineMatchesDense(t *testing.T) {
	g := graph.Torus(4, 4)
	n := g.N()
	wakes := map[string][]int{
		"sync": nil,
		"adversarial": func() []int {
			w := make([]int, n)
			for i := range w {
				w[i] = WakeOnMessage
			}
			w[3] = 1
			return w
		}(),
		"staggered": func() []int {
			w := make([]int, n)
			for i := range w {
				w[i] = 1 + i%5
			}
			return w
		}(),
	}
	protos := map[string]Protocol{
		"floodOnce": floodOnceProto{},
		"coin":      coinProto{},
		"babbler":   babblerProto{},
	}
	for wname, wake := range wakes {
		for pname, proto := range protos {
			t.Run(wname+"/"+pname, func(t *testing.T) {
				cfg := Config{
					Graph: g, IDs: SequentialIDs(n, 1), Seed: 9, Wake: wake,
					MaxRounds: 60, WatchEdges: [][2]int{{0, 1}}, CountPerEdge: true,
				}
				cfg.DenseLoop = true
				dense, err := Run(cfg, proto)
				if err != nil {
					t.Fatal(err)
				}
				cfg.DenseLoop = false
				event, err := Run(cfg, proto)
				if err != nil {
					t.Fatal(err)
				}
				if dk, ek := resultKey(dense), resultKey(event); dk != ek {
					t.Errorf("engines diverge:\ndense: %s\nevent: %s", dk, ek)
				}
				if dense.MessagesBeforeCrossing != event.MessagesBeforeCrossing {
					t.Errorf("msgs before crossing: dense %d event %d",
						dense.MessagesBeforeCrossing, event.MessagesBeforeCrossing)
				}
				for k, v := range dense.PerEdge {
					if event.PerEdge[k] != v {
						t.Errorf("per-edge %v: dense %d event %d", k, v, event.PerEdge[k])
					}
				}
				for k, v := range dense.FirstCrossing {
					if event.FirstCrossing[k] != v {
						t.Errorf("crossing %v: dense %d event %d", k, v, event.FirstCrossing[k])
					}
				}
			})
		}
	}
}

// TestAsyncDeterministic: same seed ⇒ same transcript under every delay
// schedule, sequentially and on the parallel stepper, across fresh and
// reused Runners.
func TestAsyncDeterministic(t *testing.T) {
	g := graph.Torus(4, 4)
	for _, delay := range []string{"unit", "random:6", "fifo:6"} {
		t.Run(delay, func(t *testing.T) {
			ds, err := ParseDelay(delay)
			if err != nil {
				t.Fatal(err)
			}
			run := func(parallel bool) *Result {
				res, err := Run(Config{
					Graph: g, Seed: 42, Mode: ASYNC, Delay: ds,
					MaxRounds: 500, Parallel: parallel,
				}, coinProto{})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b, c := run(false), run(false), run(true)
			if resultKey(a) != resultKey(b) {
				t.Errorf("sequential async runs diverge:\n%s\n%s", resultKey(a), resultKey(b))
			}
			if resultKey(a) != resultKey(c) {
				t.Errorf("parallel async run diverges:\n%s\n%s", resultKey(a), resultKey(c))
			}
		})
	}
}

// TestAsyncUnitMatchesSync: for an oblivious (message-driven) protocol,
// the asynchronous execution under unit delays collapses to the
// synchronous one — same messages, same statuses, same rounds.
func TestAsyncUnitMatchesSync(t *testing.T) {
	g := graph.Ring(12)
	wake := make([]int, 12)
	for i := range wake {
		wake[i] = WakeOnMessage
	}
	wake[0] = 1
	sync, err := Run(Config{Graph: g, IDs: SequentialIDs(12, 1), Wake: wake, Seed: 3}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(Config{Graph: g, IDs: SequentialIDs(12, 1), Wake: wake, Seed: 3, Mode: ASYNC}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(sync) != resultKey(async) {
		t.Errorf("async/unit diverges from sync for an oblivious protocol:\nsync:  %s\nasync: %s",
			resultKey(sync), resultKey(async))
	}
}

// sleeperProto exercises Context.RequestWake: the node decides only when
// its timer fires, with no messages in the network at all.
type sleeperProto struct{ delta int }

func (p sleeperProto) Name() string         { return "sleeper" }
func (p sleeperProto) New(NodeInfo) Process { return &sleeperProc{delta: p.delta} }

type sleeperProc struct {
	delta int
	set   bool
}

func (p *sleeperProc) Start(c *Context) {}
func (p *sleeperProc) Round(c *Context, inbox []Message) {
	if !p.set {
		p.set = true
		c.RequestWake(p.delta)
		return
	}
	c.Decide(NonLeader)
	c.Halt()
}

func TestRequestWakeTimer(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(Config{Graph: g, Seed: 1, Mode: ASYNC, MaxRounds: 100}, sleeperProto{delta: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Tick 1: wake + Round (sets the timer); tick 8: timer fires, halt.
	if !res.Halted || res.Rounds != 8 {
		t.Errorf("halted=%v rounds=%d, want halted at tick 8", res.Halted, res.Rounds)
	}
	if res.Messages != 0 {
		t.Errorf("messages = %d, want 0", res.Messages)
	}
}

// TestScheduledWakeRevivesQuietNetwork: a node whose wake round is far in
// the future must still fire even when nothing else is running — timer
// wake-ups are first-class events (the dense loop's deadlock detector
// stopped such runs prematurely).
func TestScheduledWakeRevivesQuietNetwork(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(Config{Graph: g, Wake: []int{40, WakeOnMessage, WakeOnMessage}, Seed: 1, MaxRounds: 1000}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Error("wave never ran")
	}
	if res.Rounds < 40 {
		t.Errorf("rounds = %d, want the engine to jump to the round-40 wake-up", res.Rounds)
	}
	if res.HitRoundCap {
		t.Error("hit the round cap instead of quiescing")
	}
}

func TestAsyncConfigValidation(t *testing.T) {
	g := graph.Path(2)
	if _, err := Run(Config{Graph: g, Delay: RandomDelay(4)}, floodOnceProto{}); !errors.Is(err, ErrConfig) {
		t.Errorf("delay schedule accepted outside ASYNC mode: %v", err)
	}
	if _, err := Run(Config{Graph: g, Mode: ASYNC, DenseLoop: true}, floodOnceProto{}); !errors.Is(err, ErrConfig) {
		t.Errorf("dense loop accepted in ASYNC mode: %v", err)
	}
}

func TestDelaySchedules(t *testing.T) {
	for _, spec := range []string{"unit", "random:5", "fifo:5"} {
		ds, err := ParseDelay(spec)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Name() != spec {
			t.Errorf("Name() = %q, want %q", ds.Name(), spec)
		}
		for u := 0; u < 4; u++ {
			for p := 0; p < 3; p++ {
				for seq := 0; seq < 8; seq++ {
					d := ds.Delay(7, u, p, seq)
					if d < 1 || d > 5 {
						t.Fatalf("%s: delay %d out of [1,5]", spec, d)
					}
					if d != ds.Delay(7, u, p, seq) {
						t.Fatalf("%s: non-deterministic delay", spec)
					}
				}
			}
		}
	}
	// FIFO: constant per directed link, independent of the sequence number.
	fifo, _ := ParseDelay("fifo:9")
	if fifo.Delay(1, 2, 0, 0) != fifo.Delay(1, 2, 0, 99) {
		t.Error("fifo delay varies with sequence number")
	}
	// "" is unit; junk is rejected.
	if ds, err := ParseDelay(""); err != nil || ds.Delay(1, 0, 0, 0) != 1 {
		t.Errorf("empty spec: %v", err)
	}
	for _, bad := range []string{"random", "random:0", "fifo:-1", "unit:3", "gauss:2"} {
		if _, err := ParseDelay(bad); err == nil {
			t.Errorf("ParseDelay(%q) accepted", bad)
		}
	}
}

func TestParseMode(t *testing.T) {
	for spec, want := range map[string]Mode{"": CONGEST, "congest": CONGEST, "LOCAL": LOCAL, "async": ASYNC} {
		got, err := ParseMode(spec)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", spec, got, err)
		}
	}
	if _, err := ParseMode("quantum"); err == nil {
		t.Error("ParseMode accepted junk")
	}
	if ASYNC.String() != "async" || CONGEST.String() != "congest" || LOCAL.String() != "local" {
		t.Error("bad Mode strings")
	}
}

// TestAsyncRunnerReuse: repeated async runs through one Runner match a
// fresh Runner per run (the event-queue scratch resets completely).
func TestAsyncRunnerReuse(t *testing.T) {
	g := graph.Torus(3, 3)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	ds := RandomDelay(5)
	for i := 0; i < 5; i++ {
		seed := int64(20 + i)
		reused, err := r.Run(Config{Graph: g, Seed: seed, Mode: ASYNC, Delay: ds, MaxRounds: 400}, coinProto{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(Config{Graph: g, Seed: seed, Mode: ASYNC, Delay: ds, MaxRounds: 400}, coinProto{})
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(reused) != resultKey(fresh) {
			t.Fatalf("seed %d: reused Runner diverges:\n%s\n%s", seed, resultKey(reused), resultKey(fresh))
		}
	}
}

// haltInStart decides and halts immediately on wake-up without sending —
// the sparsest possible protocol, used to probe termination corners.
type haltInStartProto struct{}

func (haltInStartProto) Name() string         { return "halt-in-start" }
func (haltInStartProto) New(NodeInfo) Process { return haltInStart{} }

type haltInStart struct{}

func (haltInStart) Start(c *Context) {
	c.Decide(NonLeader)
	c.Halt()
}
func (haltInStart) Round(*Context, []Message) {}

// TestFutureWakeAgreesAcrossEngines: when every awake node halts before a
// sleeper's scheduled wake round, both engines must wait for that wake to
// fire (the dense loop once mistook such sleepers for dead ones).
func TestFutureWakeAgreesAcrossEngines(t *testing.T) {
	g := graph.Path(2)
	for _, dense := range []bool{true, false} {
		res, err := Run(Config{Graph: g, Wake: []int{1, 5}, Seed: 1, MaxRounds: 100, DenseLoop: dense}, haltInStartProto{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted || res.Rounds != 5 {
			t.Errorf("dense=%v: halted=%v rounds=%d, want both nodes run and rounds=5", dense, res.Halted, res.Rounds)
		}
	}
	// A wake scheduled past the round cap can never fire: dead network.
	for _, dense := range []bool{true, false} {
		res, err := Run(Config{Graph: g, Wake: []int{1, 500}, Seed: 1, MaxRounds: 100, DenseLoop: dense}, haltInStartProto{})
		if err != nil {
			t.Fatal(err)
		}
		if res.HitRoundCap || res.Rounds != 1 {
			t.Errorf("dense=%v: cap=%v rounds=%d, want early stop at round 1", dense, res.HitRoundCap, res.Rounds)
		}
	}
}

// TestStaleWakeDoesNotInflateRounds: a node woken by a message before its
// scheduled wake round leaves a dead queue entry behind; the entry must
// not keep the run alive or stretch Rounds (and both engines must agree).
func TestStaleWakeDoesNotInflateRounds(t *testing.T) {
	g := graph.Path(3)
	wake := []int{1, 50, WakeOnMessage}
	var got [2]*Result
	for i, dense := range []bool{true, false} {
		res, err := Run(Config{Graph: g, Wake: wake, Seed: 1, MaxRounds: 1000, DenseLoop: dense}, floodOnceProto{})
		if err != nil {
			t.Fatal(err)
		}
		got[i] = res
	}
	if resultKey(got[0]) != resultKey(got[1]) {
		t.Errorf("engines diverge:\ndense: %s\nevent: %s", resultKey(got[0]), resultKey(got[1]))
	}
	if got[1].Rounds >= 50 {
		t.Errorf("rounds = %d: the stale round-50 wake entry stretched the run", got[1].Rounds)
	}
}

// requestAndHalt sets a timer and halts immediately; the timer is dead on
// arrival in every mode.
type requestAndHaltProto struct{}

func (requestAndHaltProto) Name() string         { return "request-and-halt" }
func (requestAndHaltProto) New(NodeInfo) Process { return requestAndHalt{} }

type requestAndHalt struct{}

func (requestAndHalt) Start(*Context) {}
func (requestAndHalt) Round(c *Context, _ []Message) {
	c.RequestWake(40)
	c.Decide(NonLeader)
	c.Halt()
}

// TestDeadTimerDoesNotStretchRun: a timer whose node halted (or, in the
// synchronous modes, any timer at all) must not keep the engine ticking.
func TestDeadTimerDoesNotStretchRun(t *testing.T) {
	g := graph.Path(2)
	for _, mode := range []Mode{CONGEST, ASYNC} {
		res, err := Run(Config{Graph: g, Seed: 1, Mode: mode, MaxRounds: 1000}, requestAndHaltProto{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != 1 {
			t.Errorf("mode %v: rounds = %d, want 1 (dead timer processed)", mode, res.Rounds)
		}
	}
}

func TestDelayConstructorClamp(t *testing.T) {
	for _, ds := range []DelaySchedule{RandomDelay(0), RandomDelay(-3), FIFODelay(0)} {
		if d := ds.Delay(1, 0, 0, 0); d != 1 {
			t.Errorf("%s: Delay = %d, want clamped unit delay", ds.Name(), d)
		}
	}
}
