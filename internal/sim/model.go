// The unified execution-model spec: one parsed value carrying the
// communication mode, the asynchronous delay adversary and the fault
// adversary, with one grammar and one precedence rule. Every layer above
// the simulator (core.RunOpts, election.Params, harness.Spec, the CLIs)
// resolves its model through ParseModel, so the constraints between the
// three axes are defined — and documented — exactly here.
package sim

import (
	"fmt"
	"strings"
)

// ModelSpec is a parsed execution model: which timing/communication mode
// a run uses, which delay schedule the asynchronous adversary plays, and
// which fault schedule the fault adversary plays. It is the single
// source of truth for the mode/delay/fault axes; the deprecated
// Local/Async bools and Delay strings of the higher layers are shims
// that fold into one of these.
//
// Axis constraints (enforced by ParseModel and the engine):
//
//   - Delay requires Mode == ASYNC — the synchronous modes deliver every
//     message in exactly one round, so a delay schedule is meaningless
//     there. nil Delay in ASYNC mode means unit delays.
//   - Faults compose with every mode. nil means fault-free, and the
//     fault-free path is byte-identical to a run without the fault
//     subsystem.
//   - The zero Mode resolves to CONGEST.
type ModelSpec struct {
	// Mode is the communication/timing model (CONGEST, LOCAL, ASYNC).
	Mode Mode
	// Delay is the asynchronous adversary's message-delay schedule
	// (ASYNC only; nil = unit delays).
	Delay DelaySchedule
	// Faults is the fault adversary's schedule (nil = fault-free).
	Faults *FaultSchedule
}

// IsZero reports whether no axis of the model has been set — the cue for
// the deprecated per-field shims to apply.
func (m ModelSpec) IsZero() bool {
	return m.Mode == 0 && m.Delay == nil && m.Faults == nil
}

// String returns the canonical spec string: the mode, then a non-unit
// delay term, then the fault terms, joined by "+". ParseModel(m.String())
// reproduces the model.
func (m ModelSpec) String() string {
	mode := m.Mode
	if mode == 0 {
		mode = CONGEST
	}
	s := mode.String()
	if m.Delay != nil && m.Delay.Name() != "unit" {
		s += "+" + m.Delay.Name()
	}
	if m.Faults != nil {
		s += "+" + m.Faults.Name()
	}
	return s
}

// ParseModel resolves an execution-model spec string: "+"-separated
// terms, each either a mode ("congest", "local", "async"), a delay
// schedule ("unit", "random:B", "fifo:B" — async only), or a fault term
// (see ParseFaults: "crash:P[:W]", "crash@T:u1,u2,...",
// "crashrec:P:D[:keep]", "drop:P", "churn:P:K"; "none" is accepted and
// ignored). Term order is free; at most one mode and one delay term are
// allowed, and fault terms combine under ParseFaults's rules. The empty
// spec is CONGEST, fault-free.
//
//	"local"                        LOCAL, fault-free
//	"async+random:4"               ASYNC under the bounded-random adversary
//	"crash:0.2"                    CONGEST with 20% crash-stop failures
//	"async+fifo:8+crashrec:0.1:32" everything at once
func ParseModel(spec string) (ModelSpec, error) {
	var m ModelSpec
	if spec == "" {
		m.Mode = CONGEST
		return m, nil
	}
	var faultTerms []string
	for _, term := range strings.Split(spec, "+") {
		switch kind, _, _ := strings.Cut(term, ":"); kind {
		case "congest", "local", "async":
			if m.Mode != 0 {
				return ModelSpec{}, fmt.Errorf("sim: model %q has two mode terms", spec)
			}
			m.Mode, _ = ParseMode(term)
		case "unit", "random", "fifo":
			if m.Delay != nil {
				return ModelSpec{}, fmt.Errorf("sim: model %q has two delay terms", spec)
			}
			ds, err := ParseDelay(term)
			if err != nil {
				return ModelSpec{}, err
			}
			m.Delay = ds
		case "none":
			// A fault-free fault term: harness sweep axes pass it through.
		default:
			faultTerms = append(faultTerms, term)
		}
	}
	if len(faultTerms) > 0 {
		fs, err := ParseFaults(strings.Join(faultTerms, "+"))
		if err != nil {
			return ModelSpec{}, err
		}
		m.Faults = fs
	}
	if m.Mode == 0 {
		m.Mode = CONGEST
	}
	if m.Delay != nil && m.Mode != ASYNC {
		return ModelSpec{}, fmt.Errorf("sim: model %q pairs a delay schedule with the synchronous %s mode", spec, m.Mode)
	}
	return m, nil
}
