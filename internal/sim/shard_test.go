package sim

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"ule/internal/graph"
)

// fullResultKey extends resultKey with every fault and instrument field,
// rendering maps in sorted key order so equal Results compare equal.
func fullResultKey(r *Result) string {
	s := resultKey(r)
	s += fmt.Sprintf(" crashes=%d recov=%d dropped=%d crashed=%v mbc=%d",
		r.Crashes, r.Recoveries, r.Dropped, r.Crashed, r.MessagesBeforeCrossing)
	for _, m := range []map[[2]int]int{r.FirstCrossing} {
		keys := make([][2]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
		})
		for _, k := range keys {
			s += fmt.Sprintf(" fc%v=%d", k, m[k])
		}
	}
	keys := make([][2]int, 0, len(r.PerEdge))
	for k := range r.PerEdge {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	for _, k := range keys {
		s += fmt.Sprintf(" pe%v=%d", k, r.PerEdge[k])
	}
	return s
}

// TestShardedEngineMatchesSingleShard is the tentpole's contract at the
// engine layer: for every combination of protocol, wake schedule, timing
// model and fault schedule, the run transcript is byte-identical at
// every shard count — including counts that do not divide n and counts
// above n.
func TestShardedEngineMatchesSingleShard(t *testing.T) {
	g := graph.Torus(4, 4)
	n := g.N()
	adversarial := make([]int, n)
	for i := range adversarial {
		adversarial[i] = WakeOnMessage
	}
	adversarial[3] = 1
	staggered := make([]int, n)
	for i := range staggered {
		staggered[i] = 1 + i%5
	}
	wakes := map[string][]int{"sync": nil, "adversarial": adversarial, "staggered": staggered}
	protos := map[string]Protocol{
		"floodOnce": floodOnceProto{},
		"coin":      coinProto{},
		"sleeper":   sleeperProto{delta: 4},
	}
	models := []struct {
		mode  Mode
		delay string
	}{
		{CONGEST, ""},
		{LOCAL, ""},
		{ASYNC, "random:4"},
		{ASYNC, "fifo:3"},
	}
	faults := []string{"none", "crash:0.3:8", "crashrec:0.3:6", "crashrec:0.3:6:keep", "churn:0.3:7", "drop:0.2"}

	for wname, wake := range wakes {
		for pname, proto := range protos {
			for _, m := range models {
				for _, fspec := range faults {
					name := fmt.Sprintf("%s/%s/%s+%s+%s", wname, pname, m.mode, m.delay, fspec)
					t.Run(name, func(t *testing.T) {
						var delay DelaySchedule
						if m.delay != "" {
							var err error
							if delay, err = ParseDelay(m.delay); err != nil {
								t.Fatal(err)
							}
						}
						fs, err := ParseFaults(fspec)
						if err != nil {
							t.Fatal(err)
						}
						run := func(shards int) string {
							res, err := Run(Config{
								Graph: g, IDs: SequentialIDs(n, 1), Seed: 11, Wake: wake,
								Mode: m.mode, Delay: delay, Faults: fs, MaxRounds: 200,
								WatchEdges: [][2]int{{0, 1}, {5, 6}}, CountPerEdge: true,
								Shards: shards,
							}, proto)
							if err != nil {
								t.Fatal(err)
							}
							return fullResultKey(res)
						}
						ref := run(1)
						for _, shards := range []int{2, 3, 4, 8, n, n + 7} {
							if got := run(shards); got != ref {
								t.Errorf("shards=%d diverges:\n 1: %s\n%2d: %s", shards, ref, shards, got)
							}
						}
					})
				}
			}
		}
	}
}

// TestShardedRunnerReuse alternates shard counts and schedules on one
// Runner: the shard state must rebuild and reset cleanly between runs.
func TestShardedRunnerReuse(t *testing.T) {
	g := graph.Ring(24)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ParseFaults("crashrec:0.3:6")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, shards := range []int{1, 4, 2, 8, 1, 3} {
		for _, faulty := range []bool{false, true} {
			cfg := Config{Seed: 7, MaxRounds: 200, Shards: shards, CountPerEdge: true}
			if faulty {
				cfg.Faults = fs
			}
			res, err := r.Run(cfg, coinProto{})
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("faulty=%v", faulty)
			got := fullResultKey(res)
			if prev, ok := want[key]; !ok {
				want[key] = got
			} else if prev != got {
				t.Fatalf("reused Runner diverges at shards=%d faulty=%v:\nwant %s\ngot  %s",
					shards, faulty, prev, got)
			}
		}
	}
}

// TestShardedConfigValidation pins the Shards knob's edge cases: the
// dense loop rejects explicit multi-sharding, and auto-sizing (negative)
// plus clamping (shards > n) both run and match the single-shard result.
func TestShardedConfigValidation(t *testing.T) {
	g := graph.Ring(8)
	if _, err := Run(Config{Graph: g, DenseLoop: true, Shards: 4}, floodOnceProto{}); !errors.Is(err, ErrConfig) {
		t.Errorf("DenseLoop+Shards>1 accepted: %v", err)
	}
	ref, err := Run(Config{Graph: g, Seed: 5}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{-1, 8, 100} {
		res, err := Run(Config{Graph: g, Seed: 5, Shards: shards}, floodOnceProto{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if fullResultKey(res) != fullResultKey(ref) {
			t.Errorf("shards=%d diverges from default", shards)
		}
	}
	// DenseLoop with auto-sizing silently resolves to one shard.
	if _, err := Run(Config{Graph: g, Seed: 5, DenseLoop: true, Shards: -1}, floodOnceProto{}); err != nil {
		t.Errorf("DenseLoop+auto shards rejected: %v", err)
	}
}

// TestShardedModelViolationDeterministic: when several nodes violate the
// model in one tick, every shard count must surface the same (first in
// merge order) error.
func TestShardedModelViolationDeterministic(t *testing.T) {
	g := graph.Complete(12)
	ref := ""
	for _, shards := range []int{1, 2, 4, 8} {
		_, err := Run(Config{Graph: g, Seed: 3, Shards: shards, PortSendCap: 1}, doubleSenderProto{})
		if err == nil {
			t.Fatalf("shards=%d: model violation not reported", shards)
		}
		if !errors.Is(err, ErrDoubleSend) {
			t.Fatalf("shards=%d: wrong error class: %v", shards, err)
		}
		if ref == "" {
			ref = err.Error()
		} else if err.Error() != ref {
			t.Errorf("shards=%d picks a different violator:\nwant %s\ngot  %s", shards, ref, err.Error())
		}
	}
}
