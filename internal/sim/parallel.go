// Parallel stepper: the worker pool behind Config.Parallel.
//
// One pool is started per parallel run and reused for every tick, so the
// engine no longer spawns goroutines (or contends on a mutex-guarded work
// cursor) once per round. Each tick's step set is partitioned into
// contiguous shards, one per worker; a node step writes only node-private
// state (its outbox row, send counters, status/error/timer slots), so
// shards share no mutable state and need no synchronization beyond the
// end-of-tick barrier. The engine's merge phase then folds per-node
// scratch sequentially in step-list order — the same order the sequential
// runner uses — which keeps results byte-identical for every worker count.
package sim

import (
	"runtime"
	"sync"
)

// minShard is the smallest per-worker shard worth the coordination: step
// sets below 2*minShard always run inline, and runs on graphs that small
// skip pool creation entirely.
const minShard = 16

// stepPool runs index-sharded jobs on workers-1 persistent goroutines
// plus the calling goroutine.
type stepPool struct {
	workers int
	jobs    []chan stepJob
	wg      sync.WaitGroup // reused by runEach (no per-call allocation)
}

// stepJob is one shard: indices [lo, hi) of the current step set, with
// an optional stride (0 means 1 — the contiguous jobs of run).
type stepJob struct {
	lo, hi, stride int
	run            func(i int)
	done           *sync.WaitGroup
}

func newStepPool() *stepPool {
	p := &stepPool{workers: runtime.GOMAXPROCS(0)}
	for i := 1; i < p.workers; i++ {
		ch := make(chan stepJob, 1)
		p.jobs = append(p.jobs, ch)
		go func() {
			for j := range ch {
				st := j.stride
				if st == 0 {
					st = 1
				}
				for i := j.lo; i < j.hi; i += st {
					j.run(i)
				}
				j.done.Done()
			}
		}()
	}
	return p
}

// close releases the pool's goroutines (idempotent is not required; the
// engine closes exactly once per run).
func (p *stepPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// run calls step(i) for every i in [0, count), sharding across the pool
// when the set is large enough to pay for the coordination. Small sets
// run inline: correctness never depends on which path is taken.
func (p *stepPool) run(count int, step func(i int)) {
	shards := p.workers
	if m := count / minShard; shards > m {
		shards = m
	}
	if shards <= 1 {
		for i := 0; i < count; i++ {
			step(i)
		}
		return
	}
	size := (count + shards - 1) / shards
	var done sync.WaitGroup
	done.Add(shards - 1)
	for s := 1; s < shards; s++ {
		lo := s * size
		hi := lo + size
		if hi > count {
			hi = count
		}
		p.jobs[s-1] <- stepJob{lo: lo, hi: hi, run: step, done: &done}
	}
	for i := 0; i < size; i++ {
		step(i)
	}
	done.Wait()
}

// runEach calls fn(i) for every i in [0, count) with no minimum-batch
// gating, striding the indices round-robin across the pool. It is the
// dispatch path for coarse jobs — whole-shard ticks — where count is
// small and each call is heavy, so every index deserves its own worker.
// The reused WaitGroup and caller-owned fn keep the per-call allocation
// at zero.
func (p *stepPool) runEach(count int, fn func(i int)) {
	k := p.workers
	if k > count {
		k = count
	}
	if k <= 1 {
		for i := 0; i < count; i++ {
			fn(i)
		}
		return
	}
	p.wg.Add(k - 1)
	for w := 1; w < k; w++ {
		p.jobs[w-1] <- stepJob{lo: w, hi: count, stride: k, run: fn, done: &p.wg}
	}
	for i := 0; i < count; i += k {
		fn(i)
	}
	p.wg.Wait()
}
