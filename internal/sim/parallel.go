// Parallel stepper: the worker pool behind Config.Parallel.
//
// One pool is started per parallel run and reused for every tick, so the
// engine no longer spawns goroutines (or contends on a mutex-guarded work
// cursor) once per round. Each tick's step set is partitioned into
// contiguous shards, one per worker; a node step writes only node-private
// state (its outbox row, send counters, status/error/timer slots), so
// shards share no mutable state and need no synchronization beyond the
// end-of-tick barrier. The engine's merge phase then folds per-node
// scratch sequentially in step-list order — the same order the sequential
// runner uses — which keeps results byte-identical for every worker count.
package sim

import (
	"runtime"
	"sync"
)

// minShard is the smallest per-worker shard worth the coordination: step
// sets below 2*minShard always run inline, and runs on graphs that small
// skip pool creation entirely.
const minShard = 16

// stepPool runs index-sharded jobs on workers-1 persistent goroutines
// plus the calling goroutine.
type stepPool struct {
	workers int
	jobs    []chan stepJob
}

// stepJob is one shard: indices [lo, hi) of the current step set.
type stepJob struct {
	lo, hi int
	run    func(i int)
	done   *sync.WaitGroup
}

func newStepPool() *stepPool {
	p := &stepPool{workers: runtime.GOMAXPROCS(0)}
	for i := 1; i < p.workers; i++ {
		ch := make(chan stepJob, 1)
		p.jobs = append(p.jobs, ch)
		go func() {
			for j := range ch {
				for i := j.lo; i < j.hi; i++ {
					j.run(i)
				}
				j.done.Done()
			}
		}()
	}
	return p
}

// close releases the pool's goroutines (idempotent is not required; the
// engine closes exactly once per run).
func (p *stepPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// run calls step(i) for every i in [0, count), sharding across the pool
// when the set is large enough to pay for the coordination. Small sets
// run inline: correctness never depends on which path is taken.
func (p *stepPool) run(count int, step func(i int)) {
	shards := p.workers
	if m := count / minShard; shards > m {
		shards = m
	}
	if shards <= 1 {
		for i := 0; i < count; i++ {
			step(i)
		}
		return
	}
	size := (count + shards - 1) / shards
	var done sync.WaitGroup
	done.Add(shards - 1)
	for s := 1; s < shards; s++ {
		lo := s * size
		hi := lo + size
		if hi > count {
			hi = count
		}
		p.jobs[s-1] <- stepJob{lo: lo, hi: hi, run: step, done: &done}
	}
	for i := 0; i < size; i++ {
		step(i)
	}
	done.Wait()
}
