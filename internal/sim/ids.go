package sim

import (
	"math/bits"
	"math/rand"
)

// BitsFor returns the number of bits charged for transmitting the integer v
// in a CONGEST payload (at least 1).
func BitsFor(v int64) int {
	if v < 0 {
		v = -v
	}
	n := bits.Len64(uint64(v))
	if n == 0 {
		return 1
	}
	return n
}

// RandomIDs draws n distinct identifiers uniformly from [1, n^4], the
// adversarially-chosen polynomial ID space Z of the paper (|Z| = n^4).
func RandomIDs(n int, rng *rand.Rand) []int64 {
	space := int64(n) * int64(n) * int64(n) * int64(n)
	if space < int64(n) {
		space = int64(n) // overflow guard for absurd n
	}
	ids := make([]int64, 0, n)
	seen := make(map[int64]bool, n)
	for len(ids) < n {
		id := 1 + rng.Int63n(space)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids
}

// PermutationIDs assigns the identifiers 1..n in random order. Useful for
// the Theorem 4.1 algorithm, whose running time is exponential in the
// smallest ID value.
func PermutationIDs(n int, rng *rand.Rand) []int64 {
	ids := make([]int64, n)
	for i, p := range rng.Perm(n) {
		ids[i] = int64(p) + 1
	}
	return ids
}

// SequentialIDs assigns node u the identifier base+u — an adversarial
// sorted assignment.
func SequentialIDs(n int, base int64) []int64 {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = base + int64(i)
	}
	return ids
}

// SimultaneousWake returns a wake schedule where all nodes wake in round 1
// (the paper's lower-bound model). A nil Config.Wake means the same thing;
// this helper exists for explicitness in tests.
func SimultaneousWake(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// AdversarialWake returns a schedule where a random subset of nodes wakes
// spontaneously at random rounds in [1, spread] and everyone else wakes only
// on message arrival. At least one node wakes in round 1 (the model
// guarantee).
func AdversarialWake(n, spread int, rng *rand.Rand) []int {
	w := make([]int, n)
	for i := range w {
		if rng.Intn(2) == 0 {
			w[i] = 1 + rng.Intn(spread)
		} else {
			w[i] = WakeOnMessage
		}
	}
	w[rng.Intn(n)] = 1
	return w
}
