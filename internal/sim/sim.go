// Package sim implements the message-passing network models of the paper
// on one event-driven execution engine: a deterministic pending-event
// queue of message deliveries and timer wake-ups in which only the nodes
// an event touches are stepped (see event.go).
//
// Three execution modes mirror the paper's models (the PODC version is
// synchronous; the JACM version frames leader election for asynchronous
// networks too):
//
//   - CONGEST (synchronous): computation proceeds in rounds; each awake
//     node receives the messages its neighbors sent in the previous
//     round, computes locally (with private unbiased coins), and sends at
//     most one message per incident port. Every message is charged its
//     encoded size in bits and must fit the per-message bit budget
//     (Θ(log n) by default).
//   - LOCAL (synchronous): like CONGEST but with unrestricted message
//     size (used by the lower-bound experiments, which hold even here).
//   - ASYNC: the event-driven asynchronous model. Each message incurs a
//     per-message latency drawn from a deterministic DelaySchedule (the
//     schedule adversary), and a node computes only when a delivery or a
//     timer (Context.RequestWake) arrives. CONGEST accounting applies.
//
// Every mode is deterministic given (graph, protocol, seed): node coins
// are derived from the run seed with splitmix64, inboxes are delivered in
// port order, and asynchronous delays are pure functions of the seed and
// the message coordinates. A goroutine-parallel runner with identical
// observable behaviour is provided for multi-core experiment sweeps.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"ule/internal/graph"
)

// Status is the leader-election output state of a node, per the paper's
// definition (status_u ∈ {⊥, non-elected, elected}).
type Status int

// Election statuses. Undecided is the initial ⊥ state.
const (
	Undecided Status = iota
	Leader
	NonLeader
)

func (s Status) String() string {
	switch s {
	case Leader:
		return "elected"
	case NonLeader:
		return "non-elected"
	default:
		return "undecided"
	}
}

// Mode selects the communication and timing model.
type Mode int

// Execution models. CONGEST and LOCAL are the synchronous round-based
// models of the package comment; ASYNC is the event-driven asynchronous
// model, in which messages incur per-message delays drawn from a
// deterministic DelaySchedule and a node computes only when an event (a
// delivery or a timer) arrives. ASYNC uses CONGEST message accounting.
const (
	CONGEST Mode = iota + 1
	LOCAL
	ASYNC
)

func (m Mode) String() string {
	switch m {
	case CONGEST:
		return "congest"
	case LOCAL:
		return "local"
	case ASYNC:
		return "async"
	default:
		return "mode(0)"
	}
}

// Payload is the content of a message. Bits reports the encoded size used
// for CONGEST accounting; implementations should charge Θ(log n) bits per
// ID/rank/counter field.
type Payload interface {
	Bits() int
}

// Message is a payload delivered through a local port.
type Message struct {
	// Port is the receiving node's port through which the message arrived.
	Port int
	// Payload is the message content.
	Payload Payload
}

// Knowledge records which global parameters the nodes are given a priori,
// matching the "Knowledge" column of Table 1.
type Knowledge struct {
	N, M, D          int
	HasN, HasM, HasD bool
}

// NodeInfo is the static information available to a node at creation.
type NodeInfo struct {
	// ID is the node's unique identifier (0 and HasID=false when anonymous).
	ID int64
	// HasID reports whether the network is non-anonymous.
	HasID bool
	// Degree is the number of incident ports.
	Degree int
	// Know holds the a-priori known global parameters.
	Know Knowledge
}

// Process is a per-node state machine. The engine calls Start exactly once,
// in the node's wake-up round (before the Round call of that round), and
// Round every round while the node is awake and not halted.
type Process interface {
	Start(c *Context)
	Round(c *Context, inbox []Message)
}

// Protocol creates the per-node processes of a distributed algorithm.
type Protocol interface {
	// Name returns a short identifier for reporting.
	Name() string
	// New returns the process run by a node with the given static info.
	New(info NodeInfo) Process
}

// Context is the per-node handle through which a process observes and acts
// on the network. It is only valid during the Start/Round call that received
// it.
type Context struct {
	eng  *engine
	node int
	info NodeInfo
	rng  *rand.Rand

	rngReady    bool // rng has been (re)seeded for this run
	spontaneous bool
}

// ID returns the node's unique identifier (0 in anonymous networks).
func (c *Context) ID() int64 { return c.info.ID }

// HasID reports whether the network is non-anonymous.
func (c *Context) HasID() bool { return c.info.HasID }

// Degree returns the number of incident ports.
func (c *Context) Degree() int { return c.info.Degree }

// Know returns the a-priori knowledge configured for this run.
func (c *Context) Know() Knowledge { return c.info.Know }

// Round returns the current round number (1-based). In ASYNC mode it is
// the current virtual time tick.
func (c *Context) Round() int { return c.eng.round }

// RequestWake schedules a timer event for this node delta ticks in the
// future (delta < 1 is clamped to 1): the node's Round is then called at
// that tick even if no message arrives. Timers are how asynchronous
// protocols arrange to act after a silent period; in the synchronous
// modes every awake node is stepped each round anyway, so the call is a
// no-op there. Repeated calls keep the earliest requested tick.
func (c *Context) RequestWake(delta int) {
	if delta < 1 {
		delta = 1
	}
	c.eng.requestWake(c.node, c.eng.round+delta)
}

// Rand returns the node's private source of unbiased coins. It is
// deterministic given the run seed and the node index. The underlying
// generator is built and seeded on first use: initializing one costs more
// than an entire node-round, so nodes of coin-free protocols never pay
// for it, and a reused Runner reseeds (never reallocates) it — reseeding
// restores the exact state of a freshly constructed
// rand.New(rand.NewSource(seed)), so reuse is invisible to runs.
func (c *Context) Rand() *rand.Rand {
	if !c.rngReady {
		c.rngReady = true
		if c.rng == nil {
			c.rng = rand.New(rand.NewSource(NodeSeed(c.eng.cfg.Seed, c.node)))
			c.eng.rngs[c.node] = c.rng // keep for reuse across runs
		} else {
			c.rng.Seed(NodeSeed(c.eng.cfg.Seed, c.node))
		}
	}
	return c.rng
}

// SpontaneousWake reports whether the node woke by schedule (true) or by
// receiving a message (false). Only meaningful during Start.
func (c *Context) SpontaneousWake() bool { return c.spontaneous }

// Send transmits payload through the given port; it is delivered to the
// neighbor at the start of the next round. Sending twice through the same
// port in one round, or using an invalid port, aborts the run with an error
// (it would violate the model).
func (c *Context) Send(port int, p Payload) {
	c.eng.send(c.node, port, p)
}

// Broadcast sends payload through every port.
func (c *Context) Broadcast(p Payload) {
	for port := 0; port < c.info.Degree; port++ {
		c.eng.send(c.node, port, p)
	}
}

// BroadcastExcept sends payload through every port except skip (pass a
// negative skip to send on all ports).
func (c *Context) BroadcastExcept(skip int, p Payload) {
	for port := 0; port < c.info.Degree; port++ {
		if port != skip {
			c.eng.send(c.node, port, p)
		}
	}
}

// Decide sets the node's election status.
func (c *Context) Decide(s Status) {
	c.eng.decide(c.node, s)
}

// Status returns the node's current election status.
func (c *Context) Status() Status { return c.eng.status[c.node] }

// Halt marks the node as finished: it receives no further Round calls and
// discards any messages that arrive later (they are still counted).
func (c *Context) Halt() {
	c.eng.halted[c.node] = true
}

// WakeOnMessage is the Config.Wake value for nodes that sleep until the
// first message arrives (the adversarial-wakeup model).
const WakeOnMessage = -1

// Config describes one run of a protocol on a graph.
type Config struct {
	Graph *graph.Graph
	// IDs assigns unique identifiers; nil means an anonymous network.
	IDs []int64
	// Know is the a-priori knowledge handed to every node.
	Know Knowledge
	// Seed drives all node coins; identical seeds reproduce runs exactly.
	Seed int64
	// Mode selects CONGEST (default) or LOCAL.
	Mode Mode
	// BitCap overrides the per-message bit budget in CONGEST mode
	// (default: 32·⌈log2(n+2)⌉ + 64, a generous Θ(log n)).
	BitCap int
	// MaxRounds bounds the execution (default 1 << 20).
	MaxRounds int
	// PortSendCap bounds the number of messages a node may send through
	// one port in one round (default 8 in CONGEST mode, unlimited in
	// LOCAL). A constant number of Θ(log n)-bit messages per edge per
	// round is the usual constant-factor relaxation of CONGEST; every
	// message still counts individually toward the message complexity.
	PortSendCap int
	// Wake gives each node's wake-up round (1-based), or WakeOnMessage.
	// nil means simultaneous wake-up at round 1.
	Wake []int
	// StopWhenQuiet stops the run at the end of the first round with no
	// messages in flight and every node decided. Protocols that wait in
	// silence (e.g. counting D rounds) must leave this false and halt
	// explicitly.
	StopWhenQuiet bool
	// WatchEdges lists edges whose first crossing round is recorded
	// (the "bridge crossing" instrument of Lemma 3.5).
	WatchEdges [][2]int
	// CountPerEdge enables per-edge message counting.
	CountPerEdge bool
	// Parallel runs node steps on a worker pool; observable behaviour is
	// identical to the sequential runner. Ignored when Shards > 1 (the
	// engine parallelizes across shards instead).
	Parallel bool
	// Shards partitions the nodes into that many contiguous index ranges,
	// each owning a private timing wheel, outbox flush, fault heap and
	// scratch state; shards step concurrently within a tick and exchange
	// cross-shard deliveries at tick barriers through per-(src,dst)
	// mailboxes merged in fixed shard order (see shard.go). Results are
	// byte-identical at every shard count. 0 and 1 select the single-shard
	// engine, negative values auto-size to GOMAXPROCS, and counts above
	// the node count are clamped. Requires the event-driven engine
	// (incompatible with DenseLoop when > 1).
	Shards int
	// Delay is the asynchronous adversary's message-delay schedule. Only
	// valid in ASYNC mode, where nil selects UnitDelay.
	Delay DelaySchedule
	// Faults is the fault adversary's schedule (crash-stop,
	// crash-recovery, link drops, churn — see ParseFaults); nil means
	// fault-free. Every injected fault is a pure function of Seed, so
	// faulty runs replay byte-identically at any worker count. Fault
	// injection needs the event-driven engine (incompatible with
	// DenseLoop) and works in every mode.
	Faults *FaultSchedule
	// DenseLoop selects the legacy dense per-round scanner instead of the
	// event-driven scheduler (synchronous modes only). The two engines
	// produce identical results; the dense loop is kept as the reference
	// for differential tests and engine benchmarks.
	DenseLoop bool
}

// Result summarizes a finished run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// LastActive is the last round in which any message was sent or any
	// status changed; for protocols that linger silently this is the
	// natural "time" measurement.
	LastActive int
	// Messages is the total number of messages sent.
	Messages int64
	// Bits is the total number of payload bits sent.
	Bits int64
	// MaxMsgBits is the largest single payload observed.
	MaxMsgBits int
	// Statuses holds each node's final election status.
	Statuses []Status
	// Leaders lists the nodes that ended in status elected.
	Leaders []int
	// Halted reports whether every node halted (clean termination).
	Halted bool
	// HitRoundCap reports whether the run stopped at MaxRounds.
	HitRoundCap bool
	// FirstCrossing maps each watched edge (normalized low,high) to the
	// first round a message crossed it in either direction (0 = never).
	FirstCrossing map[[2]int]int
	// MessagesBeforeCrossing counts messages sent strictly before the
	// first crossing of any watched edge (only tracked with WatchEdges).
	MessagesBeforeCrossing int64
	// PerEdge counts messages per normalized edge when CountPerEdge.
	PerEdge map[[2]int]int64
	// Crashed flags the nodes that were down when the run ended (nil for
	// fault-free runs). A node that crashed and recovered is not flagged.
	Crashed []bool
	// Crashes and Recoveries count the applied node-down and node-up
	// fault events (crash-stop crashes, churn leaves / recoveries, churn
	// rejoins). Scheduled events the run ended before never count.
	Crashes    int
	Recoveries int
	// Dropped counts messages lost to faults: link drops at send time
	// plus deliveries to crashed nodes. Dropped messages still count
	// toward Messages and Bits — the sender paid for them.
	Dropped int64
}

// LeaderCount returns the number of elected nodes.
func (r *Result) LeaderCount() int { return len(r.Leaders) }

// UniqueLeader reports whether exactly one node is elected and every other
// node is non-elected — the paper's success condition for leader election.
func (r *Result) UniqueLeader() bool {
	if len(r.Leaders) != 1 {
		return false
	}
	for _, s := range r.Statuses {
		if s == Undecided {
			return false
		}
	}
	return true
}

// UniqueLiveLeader reports the fault-tolerant success condition: exactly
// one node that is still up at the end of the run is elected, and every
// live node has decided. Crashed nodes are exempt — a dead leader or a
// dead undecided node does not invalidate the election among the
// survivors. For a fault-free run (no Crashed vector) it is UniqueLeader.
func (r *Result) UniqueLiveLeader() bool {
	if len(r.Crashed) != len(r.Statuses) {
		return r.UniqueLeader()
	}
	leaders := 0
	for u, s := range r.Statuses {
		if r.Crashed[u] {
			continue
		}
		switch s {
		case Leader:
			leaders++
		case Undecided:
			return false
		}
	}
	return leaders == 1
}

// engine holds the mutable run state.
type engine struct {
	cfg   Config
	g     *graph.Graph
	round int

	// Flat per-(node, port) tables, indexed by off[u]+p (see arena.go).
	// off and nbr are the graph's CSR arrays and portBack its reverse-port
	// table, borrowed via graph.CSR()/PortBacks() so the delivery fast
	// path resolves neighbors and return ports with single array loads —
	// no method call, no per-node slice header. sendCnt (engine-owned)
	// counts this round's sends through each port for the per-port cap.
	off      []int32
	nbr      []int32
	portBack []int32
	sendCnt  []int32

	// out[u] is u's outbox row: this round's sends in send order, with
	// Bits() cached (see arena.go).
	out [][]outMsg
	// inbox[u] holds the messages delivered to u this round.
	inbox [][]Message

	status  []Status
	halted  []bool
	awake   []bool
	changed []bool
	nodeErr []error
	procs   []Process
	ctxs    []Context
	rngs    []*rand.Rand // lazily-built per-node generators (Runner-owned)
	bitCap  int
	sendCap int
	watch   map[[2]int]bool
	perEdge map[[2]int]int64 // dense loop only; the event engine uses per-shard maps

	// Sharded event-engine state (event.go, shard.go); shards is empty
	// under the legacy dense loop. shardSize is ⌈n/len(shards)⌉, the
	// stride of the contiguous node partition (shardOf is one division).
	shards    []engineShard
	shardSize int
	delay     DelaySchedule
	async     bool
	// Flat per-node / per-(node,port) rows shared by the shards — each
	// shard writes only its own nodes' slots, so no synchronization is
	// needed. nil under the dense loop (which has no timers or links).
	linkSeq     []int32 // per-link message sequence numbers (ASYNC/drop)
	wakeAt      []int   // pending RequestWake target tick (0 = none)
	haltCounted []bool  // halt already merged into the counters
	// Fault adversary state (fault.go): the parsed schedule plus the
	// global membership vectors; the per-shard event heaps live in the
	// shards. All nil for a fault-free run, and every fault branch in the
	// engine is gated on those nil checks, so the fault-free path
	// executes exactly as it would without the subsystem.
	fsched       *FaultSchedule
	fAlive       []bool // fAlive[u]: node u is currently up
	fRejoined    []bool // fRejoined[u]: u Start()s this tick because it rejoined
	pendingUpAll int    // coordinator snapshot of summed pendingUp (pruning)
	// proto rebuilds a node's process on reset-state recovery.
	proto Protocol
	// Watched-edge crossing cut, folded at tick barriers (coordinator
	// only; see foldTick).
	crossed   bool
	msgsTotal int64
	maxTick   int // round cap; timers past it are never scheduled

	// pool is the per-run worker pool of the Parallel runner (nil when
	// sequential); shardPool drives whole-shard ticks when Shards > 1,
	// with tickFn/drainFn the fixed per-run closures handed to it so the
	// per-tick dispatch allocates nothing. curTick feeds the closures.
	pool      *stepPool
	shardPool *stepPool
	tickFn    func(int)
	drainFn   func(int)
	curTick   int

	res *Result
	err error
}

// Errors produced by model violations inside protocols.
var (
	ErrDoubleSend = errors.New("sim: per-port per-round send cap exceeded")
	ErrBadPort    = errors.New("sim: send on invalid port")
	ErrBitCap     = errors.New("sim: CONGEST message exceeds bit budget")
	ErrConfig     = errors.New("sim: invalid config")
)

// send and decide write only per-node slots (outbox row, send counters,
// status, scratch error/changed flags); the engine merges scratch state
// after each round. This keeps node steps race-free under the parallel
// runner. Bits() is evaluated here, once, and cached alongside the
// payload so the cap check and the delivery accounting never re-dispatch
// through the interface.
func (e *engine) send(u, port int, p Payload) {
	if e.nodeErr[u] != nil {
		return
	}
	deg := int(e.off[u+1] - e.off[u])
	if port < 0 || port >= deg {
		e.nodeErr[u] = fmt.Errorf("%w: node %d port %d (degree %d)", ErrBadPort, u, port, deg)
		return
	}
	if e.sendCap > 0 {
		slot := int(e.off[u]) + port
		if int(e.sendCnt[slot]) >= e.sendCap {
			e.nodeErr[u] = fmt.Errorf("%w: node %d port %d round %d cap %d", ErrDoubleSend, u, port, e.round, e.sendCap)
			return
		}
		e.sendCnt[slot]++
	}
	if p == nil {
		e.nodeErr[u] = fmt.Errorf("%w: nil payload from node %d", ErrConfig, u)
		return
	}
	bits := p.Bits()
	if e.cfg.Mode != LOCAL && bits > e.bitCap {
		e.nodeErr[u] = fmt.Errorf("%w: %d bits > cap %d (node %d round %d payload %T)",
			ErrBitCap, bits, e.bitCap, u, e.round, p)
		return
	}
	e.out[u] = append(e.out[u], outMsg{port: int32(port), bits: int32(bits), pl: p})
}

func (e *engine) decide(u int, s Status) {
	if e.status[u] != s {
		e.status[u] = s
		e.changed[u] = true
	}
}

// requestWake records a node's timer request in its private slot; the
// event loop's merge phase turns it into a queue event (race-free under
// the parallel runner, like send and decide).
func (e *engine) requestWake(u, at int) {
	if e.wakeAt == nil {
		return // dense loop: every awake node is stepped each round anyway
	}
	if w := e.wakeAt[u]; w == 0 || at < w {
		e.wakeAt[u] = at
	}
}

// splitmix64 provides high-quality seed derivation for per-node RNGs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NodeSeed derives the deterministic RNG seed of node u for run seed s.
func NodeSeed(s int64, u int) int64 {
	return int64(splitmix64(uint64(s) ^ splitmix64(uint64(u)+0x5bd1e995)))
}
