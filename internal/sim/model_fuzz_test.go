package sim

import (
	"strings"
	"testing"
)

// FuzzParseModel asserts the execution-model grammar is total: no input
// crashes the parser, and every accepted spec canonicalizes to a string
// that re-parses to the same canonical form (String/ParseModel are a
// closed pair).
func FuzzParseModel(f *testing.F) {
	for _, seed := range []string{
		"",
		"congest",
		"local",
		"async",
		"async+unit",
		"async+random:4",
		"async+fifo:8",
		"crash:0.2",
		"crash:0.2:16",
		"crash@3:0,5,7",
		"crashrec:0.1:32",
		"crashrec:0.1:32:keep",
		"drop:0.05",
		"churn:0.2:8",
		"async+fifo:8+crashrec:0.1:32+drop:0.05",
		"none",
		"local+crash:0.2",
		"congest+congest",
		"async+random:4+random:4",
		"local+random:4",
		"crash:nope",
		"crash:-1",
		"crash:2.5",
		"random:0",
		"fifo:-3",
		"churn:0.2",
		"+++",
		"crash:0.2+crash:0.3",
		"crash@:",
		"async+fifo:999999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseModel(spec)
		if err != nil {
			return
		}
		canon := m.String()
		m2, err := ParseModel(canon)
		if err != nil {
			t.Fatalf("canonical form of %q does not re-parse: %q: %v", spec, canon, err)
		}
		if got := m2.String(); got != canon {
			t.Fatalf("canonicalization of %q unstable: %q -> %q", spec, canon, got)
		}
		if m.Mode != m2.Mode {
			t.Fatalf("mode of %q changes across round-trip: %v -> %v", spec, m.Mode, m2.Mode)
		}
		if strings.Contains(canon, " ") {
			t.Fatalf("canonical spec %q contains whitespace", canon)
		}
	})
}
