package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// DelaySchedule is the asynchronous adversary: it assigns every message a
// deterministic delivery latency, measured in ticks of the event-driven
// engine. Schedules are pure functions of (run seed, sender, port, link
// sequence number), so a run is reproducible from its seed alone and the
// engine never needs shared mutable RNG state — delays can be computed
// from any goroutine in any order.
//
// The three built-in schedules cover the standard adversary classes:
//
//	unit      every message takes exactly one tick; with this schedule the
//	          asynchronous execution of an oblivious (message-driven)
//	          protocol collapses to its synchronous execution
//	random:B  each message independently takes 1..B ticks (links are not
//	          FIFO — messages on one link may overtake each other)
//	fifo:B    each directed link is assigned a fixed delay in 1..B; all of
//	          its messages take that long, so links are FIFO but the
//	          adversary stretches them heterogeneously
type DelaySchedule interface {
	// Name returns the canonical spec string ("unit", "random:4", ...).
	Name() string
	// Delay returns the latency in ticks (>= 1) of the seq-th message the
	// run with the given seed sends through port p of node u.
	Delay(seed int64, u, p, seq int) int
}

// UnitDelay returns the schedule in which every message takes one tick.
func UnitDelay() DelaySchedule { return unitDelay{} }

type unitDelay struct{}

func (unitDelay) Name() string                   { return "unit" }
func (unitDelay) Delay(int64, int, int, int) int { return 1 }

// RandomDelay returns the non-FIFO bounded-random schedule: every message
// independently takes a deterministic pseudo-random delay in [1, bound].
// Bounds below 1 are clamped to 1 (unit delays).
func RandomDelay(bound int) DelaySchedule { return randomDelay{clampBound(bound)} }

type randomDelay struct{ bound int }

func (d randomDelay) Name() string { return fmt.Sprintf("random:%d", d.bound) }

func (d randomDelay) Delay(seed int64, u, p, seq int) int {
	return 1 + int(delayHash(seed, u, p, seq)%uint64(d.bound))
}

// FIFODelay returns the FIFO-per-link worst-case schedule: each directed
// link gets a fixed deterministic pseudo-random delay in [1, bound] shared
// by all of its messages, so per-link ordering is preserved while the
// adversary makes some links much slower than others. Bounds below 1 are
// clamped to 1 (unit delays).
func FIFODelay(bound int) DelaySchedule { return fifoDelay{clampBound(bound)} }

func clampBound(b int) int {
	if b < 1 {
		return 1
	}
	return b
}

type fifoDelay struct{ bound int }

func (d fifoDelay) Name() string { return fmt.Sprintf("fifo:%d", d.bound) }

func (d fifoDelay) Delay(seed int64, u, p, _ int) int {
	return 1 + int(delayHash(seed, u, p, 0)%uint64(d.bound))
}

// delayHash mixes the run seed with the message coordinates through a
// splitmix64 chain; the chained finalizers keep adjacent (u, p, seq)
// triples statistically independent.
func delayHash(seed int64, u, p, seq int) uint64 {
	h := splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(u) + 0x632be59bd9b4e019)
	h = splitmix64(h ^ uint64(p) + 0x9e6c63d0876a9a47)
	return splitmix64(h ^ uint64(seq))
}

// ParseDelay resolves a delay-schedule spec string: "" or "unit",
// "random:B", "fifo:B" with B >= 1.
func ParseDelay(spec string) (DelaySchedule, error) {
	kind, arg, hasArg := strings.Cut(spec, ":")
	switch kind {
	case "", "unit":
		if hasArg {
			return nil, fmt.Errorf("sim: delay schedule %q takes no parameter", spec)
		}
		return UnitDelay(), nil
	case "random", "fifo":
		b, err := strconv.Atoi(arg)
		if err != nil || b < 1 {
			return nil, fmt.Errorf("sim: delay schedule %q needs a positive integer bound", spec)
		}
		if kind == "random" {
			return RandomDelay(b), nil
		}
		return FIFODelay(b), nil
	default:
		return nil, fmt.Errorf("sim: unknown delay schedule %q (want unit, random:B or fifo:B)", spec)
	}
}

// ParseMode resolves a communication/timing model name: "congest" (or ""),
// "local", "async".
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "congest":
		return CONGEST, nil
	case "local":
		return LOCAL, nil
	case "async":
		return ASYNC, nil
	default:
		return 0, fmt.Errorf("sim: unknown mode %q (want congest, local or async)", s)
	}
}
