// Fault and churn injection: the seed-deterministic fault adversary.
//
// A FaultSchedule is the parsed form of a fault-model spec string (see
// ParseFaults). Like the delay schedules in schedule.go, every fault a
// schedule injects is a pure function of (run seed, node index) — crash
// times, downtime windows, churn phases and per-message link drops are
// all derived with splitmix64 chains from the run seed, so a faulty run
// replays byte-identically from its seed alone, at any worker count.
//
// The supported models, in the standard taxonomy (Aspnes' notes):
//
//	crash:P[:W]         crash-stop: each node independently fails with
//	                    probability P, at a seed-derived tick in [1, W]
//	                    (W defaults to 64). Failed nodes stop stepping
//	                    forever; in-flight deliveries to them are lost.
//	crash@T:u1,u2,...   adversarial crash-stop: exactly the listed nodes
//	                    fail at tick T (targeted experiments, e.g.
//	                    killing the eventual leader).
//	crashrec:P:D[:keep] crash-recovery: crash-stop plus a revival D ticks
//	                    after each crash. By default a node revives with
//	                    reset state — a fresh Process that Starts again,
//	                    the model of a process restarting from scratch.
//	                    With :keep it revives with its pre-crash state
//	                    intact (persistent-state recovery), resuming
//	                    where it stopped but having missed all traffic.
//	drop:P              lossy links: every message is independently lost
//	                    with probability P at send time. Lost messages
//	                    are charged to the sender (they count toward
//	                    Messages and Bits) but never delivered.
//	churn:P:K           join/leave churn: each node independently
//	                    participates with probability P; a churning node
//	                    alternates K ticks up, K ticks down, with a
//	                    seed-derived phase. Every rejoin is a fresh join
//	                    (reset state), so the live membership is dynamic
//	                    for the whole run.
//
// One node-fault term (crash/crashrec/churn) and one drop term may be
// composed with "+": "crashrec:0.2:32+drop:0.05". The engine applies
// fault events at the start of the tick they are due, before that
// tick's deliveries; events scheduled after the run has quiesced (and
// past MaxRounds) never fire. Pending recoveries keep a quiet run
// alive — a network that looks dead can be revived by a rejoining node.
package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// faultClass is the node-fault model of a FaultSchedule.
type faultClass uint8

const (
	faultNone     faultClass = iota
	faultCrash               // crash:P[:W]
	faultCrashAt             // crash@T:nodes
	faultCrashRec            // crashrec:P:D[:keep]
	faultChurn               // churn:P:K
)

// DefaultCrashWindow is the tick window [1, W] in which probabilistic
// crash models (crash:P, crashrec:P:D) place each node's failure when
// the spec does not name one.
const DefaultCrashWindow = 64

// FaultSchedule is a parsed, immutable fault-model description. The zero
// schedule is not meaningful; nil means fault-free. Build one with
// ParseFaults (or through ParseModel); a schedule is safe to share
// across runs and goroutines.
type FaultSchedule struct {
	class  faultClass
	p      float64 // node-fault participation probability
	window int     // crash-tick window for crash/crashrec
	down   int     // downtime ticks (crashrec) / half-period (churn)
	keep   bool    // crashrec: revive with persisted state
	at     int     // faultCrashAt tick
	nodes  []int   // faultCrashAt targets
	dropP  float64 // link-drop probability (0 = lossless)
}

// Name returns the canonical spec string (ParseFaults(s).Name() parses
// back to an equivalent schedule).
func (fs *FaultSchedule) Name() string {
	if fs == nil {
		return "none"
	}
	var terms []string
	switch fs.class {
	case faultCrash:
		if fs.window == DefaultCrashWindow {
			terms = append(terms, fmt.Sprintf("crash:%v", fs.p))
		} else {
			terms = append(terms, fmt.Sprintf("crash:%v:%d", fs.p, fs.window))
		}
	case faultCrashAt:
		strs := make([]string, len(fs.nodes))
		for i, u := range fs.nodes {
			strs[i] = strconv.Itoa(u)
		}
		terms = append(terms, fmt.Sprintf("crash@%d:%s", fs.at, strings.Join(strs, ",")))
	case faultCrashRec:
		t := fmt.Sprintf("crashrec:%v:%d", fs.p, fs.down)
		if fs.keep {
			t += ":keep"
		}
		terms = append(terms, t)
	case faultChurn:
		terms = append(terms, fmt.Sprintf("churn:%v:%d", fs.p, fs.down))
	}
	if fs.dropP > 0 {
		terms = append(terms, fmt.Sprintf("drop:%v", fs.dropP))
	}
	if len(terms) == 0 {
		return "none"
	}
	return strings.Join(terms, "+")
}

// ParseFaults resolves a fault-schedule spec string. "" and "none" mean
// fault-free and return nil. Terms are "+"-separated; at most one
// node-fault term (crash:P[:W], crash@T:nodes, crashrec:P:D[:keep],
// churn:P:K) and at most one drop:P term may be combined.
func ParseFaults(spec string) (*FaultSchedule, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	fs := &FaultSchedule{}
	for _, term := range strings.Split(spec, "+") {
		if err := fs.addTerm(term); err != nil {
			return nil, err
		}
	}
	if fs.class == faultNone && fs.dropP == 0 {
		return nil, fmt.Errorf("sim: empty fault schedule %q", spec)
	}
	return fs, nil
}

func (fs *FaultSchedule) addTerm(term string) error {
	kind, arg, _ := strings.Cut(term, ":")
	if at, list, ok := strings.Cut(kind, "@"); ok && at == "crash" {
		return fs.addCrashAt(term, list, arg)
	}
	switch kind {
	case "crash":
		if fs.class != faultNone {
			return fmt.Errorf("sim: fault schedule %q has two node-fault terms", term)
		}
		parts := strings.Split(arg, ":")
		if len(parts) < 1 || len(parts) > 2 {
			return fmt.Errorf("sim: fault term %q wants crash:P or crash:P:W", term)
		}
		p, err := parseProb(parts[0])
		if err != nil {
			return fmt.Errorf("sim: fault term %q: %w", term, err)
		}
		fs.class, fs.p, fs.window = faultCrash, p, DefaultCrashWindow
		if len(parts) == 2 {
			w, err := strconv.Atoi(parts[1])
			if err != nil || w < 1 {
				return fmt.Errorf("sim: fault term %q needs a positive integer window", term)
			}
			fs.window = w
		}
	case "crashrec":
		if fs.class != faultNone {
			return fmt.Errorf("sim: fault schedule %q has two node-fault terms", term)
		}
		parts := strings.Split(arg, ":")
		if len(parts) < 2 || len(parts) > 3 || (len(parts) == 3 && parts[2] != "keep") {
			return fmt.Errorf("sim: fault term %q wants crashrec:P:D or crashrec:P:D:keep", term)
		}
		p, err := parseProb(parts[0])
		if err != nil {
			return fmt.Errorf("sim: fault term %q: %w", term, err)
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil || d < 1 {
			return fmt.Errorf("sim: fault term %q needs a positive integer downtime", term)
		}
		fs.class, fs.p, fs.down, fs.window = faultCrashRec, p, d, DefaultCrashWindow
		fs.keep = len(parts) == 3
	case "churn":
		if fs.class != faultNone {
			return fmt.Errorf("sim: fault schedule %q has two node-fault terms", term)
		}
		parts := strings.Split(arg, ":")
		if len(parts) != 2 {
			return fmt.Errorf("sim: fault term %q wants churn:P:K", term)
		}
		p, err := parseProb(parts[0])
		if err != nil {
			return fmt.Errorf("sim: fault term %q: %w", term, err)
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k < 1 {
			return fmt.Errorf("sim: fault term %q needs a positive integer half-period", term)
		}
		fs.class, fs.p, fs.down = faultChurn, p, k
	case "drop":
		if fs.dropP > 0 {
			return fmt.Errorf("sim: fault schedule %q has two drop terms", term)
		}
		p, err := parseProb(arg)
		if err != nil || p == 0 {
			return fmt.Errorf("sim: fault term %q needs a drop probability in (0, 1]", term)
		}
		fs.dropP = p
	default:
		return fmt.Errorf("sim: unknown fault term %q (want crash, crash@, crashrec, drop or churn)", term)
	}
	return nil
}

func (fs *FaultSchedule) addCrashAt(term, tickStr, nodeList string) error {
	if fs.class != faultNone {
		return fmt.Errorf("sim: fault schedule %q has two node-fault terms", term)
	}
	at, err := strconv.Atoi(tickStr)
	if err != nil || at < 1 {
		return fmt.Errorf("sim: fault term %q needs a positive crash tick", term)
	}
	if nodeList == "" {
		return fmt.Errorf("sim: fault term %q needs a node list (crash@T:u1,u2,...)", term)
	}
	var nodes []int
	for _, s := range strings.Split(nodeList, ",") {
		u, err := strconv.Atoi(s)
		if err != nil || u < 0 {
			return fmt.Errorf("sim: fault term %q has invalid node %q", term, s)
		}
		nodes = append(nodes, u)
	}
	fs.class, fs.at, fs.nodes = faultCrashAt, at, nodes
	return nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q not in [0, 1]", s)
	}
	return p, nil
}

// Fault-derivation salts: distinct splitmix64 stream offsets so crash
// participation, crash times, churn phases and link drops are mutually
// independent and independent of the node-coin and delay streams.
const (
	faultSaltPart  = 0x7f4a7c15ca11ab1e
	faultSaltTick  = 0x51ab2de7c0ffee11
	faultSaltPhase = 0x2545f4914f6cdd1d
	faultSaltDrop  = 0x9e3779b97f4a7c15
)

// faultHash derives one 64-bit fault coordinate from the run seed, a
// node (or port) index and a stream salt.
func faultHash(seed int64, u int, salt uint64) uint64 {
	h := splitmix64(uint64(seed) ^ salt)
	return splitmix64(h ^ uint64(u)*0x9e3779b97f4a7c15)
}

// hitsProb reports whether the 53-bit fraction of h falls below p.
func hitsProb(h uint64, p float64) bool {
	return float64(h>>11)/(1<<53) < p
}

// dropMsg is the per-message link-drop predicate: deterministic in (run
// seed, sender, port, per-link sequence number), exactly the coordinate
// system of the delay schedules.
func (fs *FaultSchedule) dropMsg(seed int64, u, p, seq int) bool {
	if fs.dropP == 0 {
		return false
	}
	h := splitmix64(faultHash(seed, u, faultSaltDrop) ^ splitmix64(uint64(p)<<32|uint64(uint32(seq))))
	return hitsProb(h, fs.dropP)
}

// Fault event kinds. Within one tick, events apply in (tick, node, kind)
// order; a node's crash precedes its recovery at equal ticks by
// construction (downtimes are >= 1).
const (
	fvCrash   = uint8(0) // node goes down (crash / churn leave)
	fvRecover = uint8(1) // node comes back (recovery / churn join)
)

// faultEvent is one scheduled membership change.
type faultEvent struct {
	tick int
	node int32
	kind uint8
}

func faultEventLess(a, b faultEvent) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.kind < b.kind
}

// faultState is one shard's slice of the fault adversary, owned by its
// engineShard and recycled across runs (its slices are allocated once
// and reset). It holds the fault-event heap and pending-recovery counter
// for the shard's node range [lo, hi); the global membership vectors
// (alive/rejoined) live on the engine, shared by all shards but written
// only by each node's owner. A shard's faultState is only attached when
// the run's Config carries a schedule, so the fault-free path never
// touches it.
type faultState struct {
	fs   *FaultSchedule
	seed int64

	lo, hi  int   // owned node range
	revived []int // keep-state revivals to splice back into the step sets

	heap      []faultEvent // min-heap by (tick, node, kind)
	pendingUp int          // queued fvRecover events (they can revive a quiet run)

	maxTick int
}

// reset re-arms the state for one run and seeds the initial event heap
// from the schedule, restricted to the shard's node range. The per-node
// fault coordinates depend only on (seed, u), so the heap a shard seeds
// is exactly the [lo, hi) slice of the single-shard heap.
func (fst *faultState) reset(fs *FaultSchedule, seed int64, lo, hi, maxTick int) {
	fst.fs = fs
	fst.seed = seed
	fst.lo, fst.hi = lo, hi
	fst.maxTick = maxTick
	fst.heap = fst.heap[:0]
	fst.revived = fst.revived[:0]
	fst.pendingUp = 0
	switch fs.class {
	case faultCrashAt:
		for _, u := range fs.nodes {
			if u >= lo && u < hi && fs.at <= maxTick {
				fst.push(faultEvent{tick: fs.at, node: int32(u), kind: fvCrash})
			}
		}
	case faultCrash, faultCrashRec:
		for u := lo; u < hi; u++ {
			if !hitsProb(faultHash(seed, u, faultSaltPart), fs.p) {
				continue
			}
			t := 1 + int(faultHash(seed, u, faultSaltTick)%uint64(fs.window))
			if t > maxTick {
				continue
			}
			fst.push(faultEvent{tick: t, node: int32(u), kind: fvCrash})
			if fs.class == faultCrashRec {
				fst.pushRecover(t+fs.down, int32(u))
			}
		}
	case faultChurn:
		for u := lo; u < hi; u++ {
			if !hitsProb(faultHash(seed, u, faultSaltPart), fs.p) {
				continue
			}
			t := 1 + int(faultHash(seed, u, faultSaltPhase)%uint64(fs.down))
			if t <= maxTick {
				fst.push(faultEvent{tick: t, node: int32(u), kind: fvCrash})
			}
		}
	}
}

// nextRevive returns the earliest queued recovery tick, or 0 when no
// recovery is pending. Only recoveries can create new activity in a
// quiet network; pending crashes never pull virtual time forward.
func (fst *faultState) nextRevive() int {
	if fst.pendingUp == 0 {
		return 0
	}
	// The heap minimum is not necessarily a recovery; scan is O(heap) but
	// only runs when the network is otherwise idle.
	best := 0
	for _, ev := range fst.heap {
		if ev.kind == fvRecover && (best == 0 || ev.tick < best) {
			best = ev.tick
		}
	}
	return best
}

func (fst *faultState) pushRecover(t int, u int32) {
	if t > fst.maxTick {
		return // the node stays down past the run's horizon
	}
	fst.pendingUp++
	fst.push(faultEvent{tick: t, node: u, kind: fvRecover})
}

// push / pop: a manual binary min-heap over faultEventLess (no
// container/heap interface boxing on the run path).
func (fst *faultState) push(ev faultEvent) {
	h := append(fst.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !faultEventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	fst.heap = h
}

func (fst *faultState) pop() faultEvent {
	h := fst.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && faultEventLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && faultEventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	fst.heap = h
	return top
}

// applyFaults pops and applies every fault event of one shard due at or
// before tick t. Crashes silence a node (it stops stepping; later
// deliveries to it are dropped); recoveries bring it back — reset-state
// recoveries and churn joins install a fresh Process and Start it this
// tick, keep-state recoveries resume the surviving Process. Every write
// targets the shard's own nodes or its own counters, so shards apply
// their heaps concurrently; within a shard, events apply in the global
// (tick, node, kind) order, and events of different shards touch
// disjoint state, so the shard layout cannot change the outcome.
func (e *engine) applyFaults(sh *engineShard, t int) {
	fst := sh.faults
	for len(fst.heap) > 0 && fst.heap[0].tick <= t {
		ev := fst.pop()
		u := int(ev.node)
		switch ev.kind {
		case fvCrash:
			if !e.fAlive[u] {
				continue
			}
			e.fAlive[u] = false
			sh.crashes++
			if e.awake[u] && !e.halted[u] {
				sh.numRunning--
			}
			if !e.haltCounted[u] {
				e.haltCounted[u] = true
				sh.numHalted++
			}
			e.inbox[u] = e.inbox[u][:0]
			e.wakeAt[u] = 0
			if fst.fs.class == faultChurn {
				fst.pushRecover(t+fst.fs.down, ev.node)
			}
		case fvRecover:
			fst.pendingUp--
			if e.fAlive[u] {
				continue
			}
			e.fAlive[u] = true
			sh.recoveries++
			if fst.fs.class == faultChurn {
				if next := t + fst.fs.down; next <= fst.maxTick {
					fst.push(faultEvent{tick: next, node: ev.node, kind: fvCrash})
				}
			}
			if fst.fs.keep {
				// Persistent-state recovery: the node resumes as it was.
				if e.halted[u] {
					continue // it had stopped for good before the crash
				}
				e.haltCounted[u] = false
				sh.numHalted--
				if e.awake[u] {
					sh.numRunning++
					fst.revived = append(fst.revived, u)
				} else if wr := e.wakeRound(u); wr > 0 && wr <= t {
					// Its spontaneous wake round passed while it was down.
					sh.wake = append(sh.wake, u)
				}
				continue
			}
			// Reset-state recovery / churn join: a fresh process appears and
			// Starts this tick as a spontaneous waker.
			e.procs[u] = e.proto.New(e.ctxs[u].info)
			e.status[u] = Undecided
			e.halted[u] = false
			e.awake[u] = false
			e.changed[u] = false
			e.ctxs[u].rngReady = false
			e.haltCounted[u] = false
			sh.numHalted--
			e.fRejoined[u] = true
			sh.wake = append(sh.wake, u)
		}
	}
}
