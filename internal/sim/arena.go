// Message arena: the zero-allocation containers of the engine's hot path.
//
// Outboxes are flat per-node rows of outMsg values in send order, backed
// by arrays that the Runner owns and recycles — after warm-up a round of
// traffic performs no allocation. Payload.Bits() is evaluated exactly once,
// at send time, and cached in the outMsg / delivery records, so neither the
// CONGEST cap check nor the delivery accounting re-dispatches through the
// Payload interface. Per-port bookkeeping (send caps, reverse ports, async
// link sequence numbers) lives in flat arrays indexed by off[u]+port.
//
// The inbox ordering contract — ascending receiving port, per-link send
// order preserved within a port — is enforced by a stable insertion sort
// over the row instead of sort.SliceStable: inbox rows are short and
// nearly sorted, and the reflect-based sorts allocate on every call, which
// previously dominated the per-round allocation profile.
package sim

import "slices"

// outMsg is one queued send. The receiving-side coordinates are resolved
// when the row is flushed into delivery events.
type outMsg struct {
	port int32 // sending port
	bits int32 // cached Payload.Bits() from send time
	pl   Payload
}

// sortInboxByPort stably sorts an inbox row by ascending receiving port.
// Typical rows are short and nearly sorted (synchronous senders flush in
// ascending node order), where insertion sort wins; long rows — a
// high-degree receiver in ASYNC mode collecting deliveries in delay
// order — fall back to a stable O(k log k) sort. Both paths allocate
// nothing.
func sortInboxByPort(in []Message) {
	if len(in) > 32 {
		slices.SortStableFunc(in, func(a, b Message) int { return a.Port - b.Port })
		return
	}
	for i := 1; i < len(in); i++ {
		m := in[i]
		j := i - 1
		for j >= 0 && in[j].Port > m.Port {
			in[j+1] = in[j]
			j--
		}
		in[j+1] = m
	}
}
