// Timing wheel: the pending-event index of the event-driven engine.
//
// Nearly every schedule the engine performs lands within a few ticks of
// the current one — synchronous deliveries at t+1, bounded asynchronous
// delays, short RequestWake timers — so events are kept in a power-of-two
// ring of per-tick buckets addressed by tick&mask, with a word-level
// occupancy bitmap for O(1) amortized "next scheduled tick" queries. The
// rare far-future event (a distant spontaneous-wake round, a long timer)
// overflows into a tick-keyed min-heap and migrates into the ring as
// virtual time advances. Compared to the previous map[int]*tickBucket plus
// heap, the wheel does no hashing and no allocation on the hot path: ring
// buckets live inline in the wheel and their slices are recycled in place.
package sim

import "math/bits"

// wheelSlots is the ring size. A schedule at most wheelSlots ticks ahead
// of the current tick hits the ring directly; anything farther goes to
// the overflow heap. Must be a power of two.
const wheelSlots = 256

const wheelMask = wheelSlots - 1

// timingWheel indexes every pending tickBucket. Ticks currently
// representable in the ring are exactly the open window
// (cur, cur+wheelSlots), which maps injectively onto the slots while
// leaving slot cur&mask free — the bucket of the tick being processed
// occupies it until takeCurrent runs, so a window tick must never share
// it. All other pending ticks live in far.
type timingWheel struct {
	slots [wheelSlots]tickBucket
	occ   [wheelSlots / 64]uint64 // occupancy bitmap over slots
	cur   int                     // latest processed tick
	live  int                     // occupied ring slots

	// Overflow state for ticks beyond the ring window. far is keyed by
	// tick; farHeap is a min-heap of its keys; free recycles buckets.
	far     map[int]*tickBucket
	farHeap []int
	free    []*tickBucket
}

func newTimingWheel() *timingWheel {
	return &timingWheel{far: make(map[int]*tickBucket)}
}

// reset clears all pending events for Runner reuse. Slice capacity inside
// ring and freed buckets is retained.
func (w *timingWheel) reset() {
	if w.live > 0 {
		for s := range w.slots {
			if w.occ[s>>6]&(1<<(s&63)) != 0 {
				w.slots[s].clear()
			}
		}
	}
	w.occ = [wheelSlots / 64]uint64{}
	w.live = 0
	w.cur = 0
	for t, b := range w.far {
		b.clear()
		w.free = append(w.free, b)
		delete(w.far, t)
	}
	w.farHeap = w.farHeap[:0]
}

// empty reports whether no tick has a pending bucket.
func (w *timingWheel) empty() bool { return w.live == 0 && len(w.farHeap) == 0 }

// at returns (creating if needed) the bucket of tick t. t must be in the
// future (t > cur).
func (w *timingWheel) at(t int) *tickBucket {
	if t-w.cur < wheelSlots {
		s := t & wheelMask
		if w.occ[s>>6]&(1<<(s&63)) == 0 {
			w.occ[s>>6] |= 1 << (s & 63)
			w.live++
		}
		return &w.slots[s]
	}
	if b, ok := w.far[t]; ok {
		return b
	}
	var b *tickBucket
	if k := len(w.free); k > 0 {
		b, w.free = w.free[k-1], w.free[:k-1]
	} else {
		b = &tickBucket{}
	}
	w.far[t] = b
	w.farPush(t)
	return b
}

// advance marks tick t as the one being processed and migrates overflow
// buckets that now fall inside the ring window. By the time the engine
// advances to t, every bucket below t has been taken or pruned, so the
// window invariant — pending ring ticks ∈ (cur, cur+wheelSlots) — holds
// and each migrating tick's slot is free: tick t's own (possibly still
// pending, takeCurrent runs after advance) slot t&mask is excluded
// because the window is open at cur+wheelSlots.
func (w *timingWheel) advance(t int) {
	w.cur = t
	for len(w.farHeap) > 0 && w.farHeap[0]-t < wheelSlots {
		ft := w.farHeap[0]
		w.farPopMin()
		fb := w.far[ft]
		delete(w.far, ft)
		s := ft & wheelMask
		// Swap contents so both the (empty — see the window invariant
		// above) slot and the recycled far bucket keep their slice
		// capacity.
		w.slots[s], *fb = *fb, w.slots[s]
		w.occ[s>>6] |= 1 << (s & 63)
		w.live++
		w.free = append(w.free, fb)
	}
}

// takeCurrent removes and returns the bucket of tick t, which must be the
// tick advance was just called with (so it is ring-resident if present).
// The returned bucket stays owned by its slot; the caller clears it after
// processing.
func (w *timingWheel) takeCurrent(t int) *tickBucket {
	s := t & wheelMask
	if w.occ[s>>6]&(1<<(s&63)) == 0 {
		return nil
	}
	w.occ[s>>6] &^= 1 << (s & 63)
	w.live--
	return &w.slots[s]
}

// minTick returns the earliest pending tick. The wheel must not be empty.
// Ring ticks always precede overflow ticks, so the ring bitmap is scanned
// first, circularly from cur+1.
func (w *timingWheel) minTick() int {
	if w.live > 0 {
		start := (w.cur + 1) & wheelMask
		wi := start >> 6
		word := w.occ[wi] &^ (1<<(start&63) - 1)
		for i := 0; i <= len(w.occ); i++ {
			if word != 0 {
				bit := wi<<6 + bits.TrailingZeros64(word)
				return w.cur + 1 + ((bit - start) & wheelMask)
			}
			wi = (wi + 1) & (len(w.occ) - 1)
			word = w.occ[wi]
		}
	}
	return w.farHeap[0]
}

// peek returns tick t's bucket without removing it (nil if none).
func (w *timingWheel) peek(t int) *tickBucket {
	if t-w.cur < wheelSlots {
		s := t & wheelMask
		if w.occ[s>>6]&(1<<(s&63)) == 0 {
			return nil
		}
		return &w.slots[s]
	}
	return w.far[t]
}

// drop discards tick t's bucket (used by dead-event pruning; t is always
// the minimum pending tick there, so an overflow drop is a heap pop-min).
func (w *timingWheel) drop(t int) {
	if t-w.cur < wheelSlots {
		s := t & wheelMask
		if w.occ[s>>6]&(1<<(s&63)) != 0 {
			w.occ[s>>6] &^= 1 << (s & 63)
			w.live--
			w.slots[s].clear()
		}
		return
	}
	if b, ok := w.far[t]; ok {
		delete(w.far, t)
		w.farPopMin()
		b.clear()
		w.free = append(w.free, b)
	}
}

func (w *timingWheel) farPush(t int) {
	h := append(w.farHeap, t)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	w.farHeap = h
}

func (w *timingWheel) farPopMin() {
	h := w.farHeap
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h[l] < h[small] {
			small = l
		}
		if r < last && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	w.farHeap = h
}
