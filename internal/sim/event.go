// Event-driven scheduler: the default execution engine for all modes.
//
// Instead of scanning every node in every round (the legacy dense loop,
// kept in run.go behind Config.DenseLoop), the engine keeps a pending-event
// queue of message deliveries and timer wake-ups, bucketed by virtual-time
// tick on a timing wheel (wheel.go), and steps only the nodes an event
// touches. Sleeping and halted nodes cost zero work per tick, which is
// what makes sparse-activity workloads (adversarial wake-up, late quiet
// phases) cheap; quiescence detection is O(1) per tick via counters
// instead of O(n) scans.
//
// The queue is partitioned into Config.Shards contiguous node shards
// (shard.go), each owning a private wheel, scratch lists and fault heap;
// within a tick the shards step concurrently and exchange cross-shard
// deliveries at the barrier. Every function in this file that takes an
// *engineShard runs shard-local — it touches only the shard's own nodes'
// rows — while loopEvent and the fold/selection helpers run on the
// coordinator between barriers.
//
// In the synchronous modes (CONGEST/LOCAL) every awake node carries an
// implicit per-round timer — protocols may count rounds while silent — so
// the observable behaviour is identical to the dense loop; the savings
// come from never touching sleeping or halted nodes and from skipping
// empty rounds outright. In ASYNC mode there are no implicit timers:
// computation is driven purely by deliveries, schedule wake-ups and
// explicit Context.RequestWake timers, and each delivery's latency is
// drawn from the run's deterministic DelaySchedule.
package sim

import "sort"

// delivery is one scheduled message arrival. bits caches the payload's
// send-time Bits() so delivery accounting never touches the interface.
type delivery struct {
	to   int32 // receiving node
	port int32 // receiving port
	bits int32 // cached payload size
	pl   Payload
}

// tickBucket holds every event scheduled for one tick: message arrivals,
// spontaneous wake-ups from the wake schedule, and RequestWake timers
// (kept apart because a scheduled wake-up for a node that was meanwhile
// woken by a message is dead, while a timer steps its — awake — node in
// ASYNC mode). wakeAll is the common "everyone wakes in round 1"
// schedule, kept implicit to avoid materializing an n-element slice per
// run (each shard's wheel interprets it over its own node range).
type tickBucket struct {
	deliveries []delivery
	wakes      []int
	timers     []int
	wakeAll    bool
}

func (b *tickBucket) clear() {
	b.deliveries = b.deliveries[:0]
	b.wakes = b.wakes[:0]
	b.timers = b.timers[:0]
	b.wakeAll = false
}

// wakeRound returns node u's configured spontaneous wake round (1 when no
// schedule is set, <= 0 for wake-on-message).
func (e *engine) wakeRound(u int) int {
	if e.cfg.Wake == nil {
		return 1
	}
	return e.cfg.Wake[u]
}

// live reports whether node u is up. Fault-free runs have no membership
// vector and every node is up forever.
func (e *engine) live(u int) bool {
	return e.fAlive == nil || e.fAlive[u]
}

// loopEvent is the event-driven main loop (the coordinator). It selects
// the next virtual-time tick from the shards' queues, runs the tick
// (concurrently across shards), and tests quiescence on summed counters.
func (e *engine) loopEvent(maxRounds int) {
	n := e.g.N()
	e.crossed = len(e.watch) == 0

	// Spontaneous wake-ups become timer events in their owner's wheel.
	// Wakes past the round cap can never fire (the dense loop never
	// reaches them either).
	for i := range e.shards {
		sh := &e.shards[i]
		if e.cfg.Wake == nil {
			sh.wheel.at(1).wakeAll = true
			continue
		}
		for u := sh.lo; u < sh.hi; u++ {
			if wr := e.cfg.Wake[u]; wr > 0 && wr <= maxRounds {
				b := sh.wheel.at(wr)
				b.wakes = append(b.wakes, u)
			}
		}
	}

	t := 0
	for {
		running := 0
		for i := range e.shards {
			running += e.shards[i].numRunning
		}
		if e.async || running == 0 {
			// The queues decide the next tick, so discard buckets whose
			// events have all gone stale first — a leftover scheduled
			// wake-up for a node that a message woke earlier must not
			// keep the run alive or inflate Rounds.
			e.pendingUpAll = e.pendingUp()
			e.pruneDeadEvents()
		}
		var next int
		switch {
		case !e.async && running > 0:
			// Synchronous semantics: awake nodes are stepped every round,
			// so virtual time cannot skip ahead (pending fault events due
			// by t+1 are applied at the start of tick t+1).
			next = t + 1
		default:
			wm, ok := e.minPendingTick()
			switch {
			case ok:
				next = wm
				// Fault events are applied at the tick they are due, so a
				// membership change cannot be skipped over.
				if fm, have := e.minFaultTick(); have && fm < next {
					next = fm
				}
			case e.pendingUp() > 0:
				// Quiet network, but a crashed node is scheduled to come
				// back: a rejoining node can revive the run, so jump to the
				// earliest recovery (crash events due before it apply the
				// same tick).
				next = e.nextRevive()
			default:
				// Nothing in flight, nothing scheduled, nobody running: the
				// network is dead. Fault events without a pending recovery
				// cannot revive it — crashes scheduled past this point never
				// fire. A network dead on arrival still "runs" its first
				// round, matching the dense loop's accounting.
				if t == 0 {
					t = 1
				}
				e.res.Rounds = t
				return
			}
		}
		if next > maxRounds {
			e.res.Rounds = maxRounds
			e.res.HitRoundCap = true
			return
		}
		t = next
		e.runTick(t)
		if e.err != nil {
			return
		}
		pendingMsgs := 0
		for i := range e.shards {
			pendingMsgs += e.shards[i].pendingMsgs
		}
		if pendingMsgs == 0 && e.pendingUp() == 0 {
			// With a recovery pending the run is never over: the rejoining
			// node re-enters (with reset state it even re-Starts), so every
			// quiescence test below would be premature.
			halted, runningNow, wheelsEmpty := 0, 0, true
			for i := range e.shards {
				sh := &e.shards[i]
				halted += sh.numHalted
				runningNow += sh.numRunning
				if !sh.wheel.empty() {
					wheelsEmpty = false
				}
			}
			if halted == n {
				e.res.Rounds = t
				return
			}
			if runningNow == 0 && wheelsEmpty {
				// Only never-woken sleepers remain and no event is queued.
				e.res.Rounds = t
				return
			}
			if e.cfg.StopWhenQuiet && e.allDecided() {
				e.res.Rounds = t
				return
			}
		}
	}
}

// pruneDeadEvents drops minimum-tick buckets that no longer hold any live
// event. A delivery is always live (even one bound for a crashed node —
// it must still be drained and accounted as dropped); a scheduled wake-up
// is live while its node still sleeps; a timer is live for a non-halted
// node in ASYNC mode (in the synchronous modes timers are no-ops — awake
// nodes step every round anyway). Wakes and timers of a crashed node are
// dead, unless a recovery is pending anywhere: the node might be back up
// by the bucket's tick, so pruning stays conservative then. Liveness only
// ever decays, so a discarded bucket could never have done anything.
//
// The scan runs over the globally earliest pending bucket each
// iteration — exactly the order a single queue would present — and stops
// at the first live one, so the shard layout cannot change which buckets
// are dropped before a given tick is selected.
func (e *engine) pruneDeadEvents() {
	for {
		var sh *engineShard
		best := 0
		for i := range e.shards {
			s := &e.shards[i]
			if s.wheel.empty() {
				continue
			}
			if mt := s.wheel.minTick(); sh == nil || mt < best {
				sh, best = s, mt
			}
		}
		if sh == nil {
			return
		}
		b := sh.wheel.peek(best)
		if len(b.deliveries) > 0 || b.wakeAll {
			return
		}
		for _, u := range b.wakes {
			if !e.awake[u] && (e.live(u) || e.pendingUpAll > 0) {
				return
			}
		}
		if e.async {
			for _, u := range b.timers {
				if !e.halted[u] && (e.live(u) || e.pendingUpAll > 0) {
					return
				}
			}
		}
		sh.wheel.drop(best)
	}
}

// allDecided ignores crashed nodes: a dead undecided node cannot block
// StopWhenQuiet (the pendingUp gate in loopEvent already keeps the run
// alive while any of them is scheduled to recover).
func (e *engine) allDecided() bool {
	for u, s := range e.status {
		if s == Undecided && e.live(u) {
			return false
		}
	}
	return true
}

// tickShard processes every event scheduled for tick t in one shard and
// steps the nodes those events (plus, in synchronous modes, the implicit
// per-round timers) touch. Shard-local: every row it writes belongs to
// one of the shard's own nodes, so shards run this concurrently.
func (e *engine) tickShard(sh *engineShard, t int) {
	sh.recv = sh.recv[:0]
	sh.wake = sh.wake[:0]
	if e.async {
		sh.stepSet = sh.stepSet[:0]
	}
	if e.watch != nil {
		sh.deliveredTick, sh.sendDropTick, sh.crossedTick = 0, 0, false
	}
	sh.errStarted, sh.errStep = nil, nil

	// Membership changes first: a node crashed at t misses t's deliveries
	// and wake-ups, a node recovered at t takes part in them.
	if sh.faults != nil {
		sh.faults.revived = sh.faults.revived[:0]
		e.applyFaults(sh, t)
	}

	sh.wheel.advance(t)
	b := sh.wheel.takeCurrent(t)
	if b != nil {
		e.deliver(sh, b.deliveries, t)
		// Scheduled wake-ups rouse (live) sleepers; a wake for a node
		// that a message woke earlier is dead.
		if b.wakeAll {
			for u := sh.lo; u < sh.hi; u++ {
				if !e.awake[u] && e.live(u) {
					sh.wake = append(sh.wake, u)
				}
			}
		} else {
			for _, u := range b.wakes {
				if !e.awake[u] && e.live(u) {
					sh.wake = append(sh.wake, u)
				}
			}
		}
		// RequestWake timers step their (awake, live) node in ASYNC mode;
		// in the synchronous modes awake nodes are stepped regardless.
		if e.async {
			for _, u := range b.timers {
				if e.awake[u] && !e.halted[u] && e.live(u) {
					sh.stepSet = append(sh.stepSet, u)
				}
			}
		}
		b.clear()
	}
	// Deliveries wake sleeping receivers.
	for _, v := range sh.recv {
		if !e.awake[v] {
			sh.wake = append(sh.wake, v)
		}
	}

	// Start phase: newly-woken nodes, in ascending node order (matching
	// the dense loop's phase 2). sh.wake may hold duplicates; the awake
	// check deduplicates. started keeps the nodes actually woken.
	sort.Ints(sh.wake)
	started := sh.wake[:0]
	for _, u := range sh.wake {
		if e.awake[u] {
			continue
		}
		e.awake[u] = true
		sh.numRunning++
		wr := e.wakeRound(u)
		spont := wr > 0 && t >= wr && len(e.inbox[u]) == 0
		if e.fRejoined != nil && e.fRejoined[u] {
			// A reset-state rejoin is a spontaneous (re)start regardless
			// of the wake schedule — unless a message arrived this tick.
			e.fRejoined[u] = false
			spont = len(e.inbox[u]) == 0
		}
		e.ctxs[u].spontaneous = spont
		e.procs[u].Start(&e.ctxs[u])
		started = append(started, u)
	}

	// Build the step set.
	var step []int
	if !e.async {
		// Synchronous: every awake non-halted live node, i.e. the active
		// list with this tick's wake-ups (and keep-state revivals) merged
		// in and halted or crashed nodes compacted out (nodes may have
		// halted during Start just above).
		if len(started) > 0 {
			sh.active = mergeSorted(sh.active, started, &sh.mergeBuf)
		}
		if sh.faults != nil && len(sh.faults.revived) > 0 {
			rv := sh.faults.revived[:0]
			for _, u := range sh.faults.revived {
				// Guard against a node that was never compacted out (its
				// crash and revival applied at one processed tick).
				if i := sort.SearchInts(sh.active, u); i == len(sh.active) || sh.active[i] != u {
					rv = append(rv, u)
				}
			}
			if len(rv) > 0 {
				sort.Ints(rv)
				sh.active = mergeSorted(sh.active, rv, &sh.mergeBuf)
			}
		}
		w := 0
		for _, u := range sh.active {
			if !e.halted[u] && e.live(u) {
				sh.active[w] = u
				w++
			}
		}
		sh.active = sh.active[:w]
		step = sh.active
	} else {
		// ASYNC: exactly the nodes an event touched — receivers, fired
		// timers, and fresh wake-ups.
		cand := append(sh.stepSet, started...)
		cand = append(cand, sh.recv...)
		sort.Ints(cand)
		w, prev := 0, -1
		for _, u := range cand {
			if u == prev || e.halted[u] {
				continue
			}
			prev = u
			cand[w] = u
			w++
		}
		sh.stepSet = cand[:w]
		step = sh.stepSet
	}

	// Step phase.
	if e.pool != nil {
		e.stepListParallel(step)
	} else {
		for _, u := range step {
			e.procs[u].Round(&e.ctxs[u], e.inbox[u])
		}
	}

	// Merge phase: fold each touched node's private scratch (errors,
	// status changes, halts, timer requests) into the shard, and flush
	// its outbox into future delivery events. started ⊆ step except for
	// nodes that halted inside Start, so visiting both lists covers every
	// touched node; all merges are idempotent across the overlap.
	e.mergeAndFlush(sh, started, t, true)
	e.mergeAndFlush(sh, step, t, false)

	// Consumed inboxes are reset for the next delivery.
	for _, v := range sh.recv {
		e.inbox[v] = e.inbox[v][:0]
	}
}

// deliver applies one tick's message arrivals to one shard's nodes:
// inbox building, sorting, and the full accounting (totals, per-edge
// counts, watched crossings) at delivery time, exactly like the dense
// loop's phase 1. Payload sizes come from the send-time cache in the
// delivery records.
func (e *engine) deliver(sh *engineShard, ds []delivery, t int) {
	for _, d := range ds {
		v := int(d.to)
		if e.live(v) {
			if len(e.inbox[v]) == 0 {
				sh.recv = append(sh.recv, v)
			}
			e.inbox[v] = append(e.inbox[v], Message{Port: int(d.port), Payload: d.pl})
		} else {
			// The receiver is down: the message is lost, but the sender
			// already paid for it, so the full accounting below applies.
			sh.dropped++
		}
		bits := int(d.bits)
		sh.bits += int64(bits)
		if bits > sh.maxMsgBits {
			sh.maxMsgBits = bits
		}
		if sh.pe != nil || e.watch != nil {
			key := normPair(v, int(e.nbr[int(e.off[v])+int(d.port)]))
			if sh.pe != nil {
				sh.pe[key]++
			}
			if e.watch != nil && e.watch[key] {
				if cur, ok := sh.fc[key]; !ok || t < cur {
					sh.fc[key] = t
				}
				sh.crossedTick = true
			}
		}
	}
	sh.pendingMsgs -= len(ds)
	sh.msgs += int64(len(ds))
	if e.watch != nil {
		sh.deliveredTick += int64(len(ds))
	}
	if len(ds) > 0 {
		sh.lastActive = t
	}
	// Deterministic inbox order: ascending receiving port, preserving
	// per-link send order within a port.
	for _, v := range sh.recv {
		sortInboxByPort(e.inbox[v])
	}
}

// mergeAndFlush folds the private scratch of each node in list into its
// shard and schedules the node's outgoing messages (through the wheel or
// the cross-shard mailboxes). Safe to call on overlapping lists: every
// merge is guarded or self-clearing. startPhase tags which merge phase a
// model-violation error surfaced in, so the coordinator's fold can pick
// the same error the single-shard merge order would.
func (e *engine) mergeAndFlush(sh *engineShard, list []int, t int, startPhase bool) {
	for _, u := range list {
		if e.nodeErr[u] != nil {
			if startPhase {
				if sh.errStarted == nil {
					sh.errStarted = e.nodeErr[u]
				}
			} else if sh.errStep == nil {
				sh.errStep = e.nodeErr[u]
			}
		}
		if e.changed[u] {
			e.changed[u] = false
			sh.lastActive = t
		}
		if e.halted[u] && !e.haltCounted[u] {
			e.haltCounted[u] = true
			sh.numHalted++
			sh.numRunning--
		}
		if at := e.wakeAt[u]; at != 0 {
			e.wakeAt[u] = 0
			if at <= t {
				at = t + 1
			}
			if at <= e.maxTick {
				bw := sh.wheel.at(at)
				bw.timers = append(bw.timers, u)
			}
		}
		ob := e.out[u]
		if len(ob) == 0 {
			continue
		}
		base := int(e.off[u])
		dropActive := e.fsched != nil && e.fsched.dropP > 0
		if e.async || dropActive {
			// Per-message path: each send consumes its link's sequence
			// number (the shared coordinate of the drop predicate and the
			// delay schedule), may be lost on the link, and otherwise
			// lands in its own delivery bucket. With drops active in a
			// synchronous mode the delay is the fixed one round.
			for _, m := range ob {
				p := int(m.port)
				seq := e.linkSeq[base+p]
				e.linkSeq[base+p] = seq + 1
				if dropActive && e.fsched.dropMsg(e.cfg.Seed, u, p, int(seq)) {
					// Lost on the link: charged to the sender at drop
					// time (delivery-time accounting never sees it), but
					// it neither crosses the edge nor counts as activity.
					sh.dropped++
					sh.msgs++
					sh.bits += int64(m.bits)
					if int(m.bits) > sh.maxMsgBits {
						sh.maxMsgBits = int(m.bits)
					}
					if e.watch != nil {
						sh.sendDropTick++
					}
					continue
				}
				d := 1
				if e.async {
					d = e.delay.Delay(e.cfg.Seed, u, p, int(seq))
					if d < 1 {
						d = 1 // a custom schedule must not move time backwards
					}
				}
				e.route(sh, t+d, delivery{
					to: e.nbr[base+p], port: e.portBack[base+p], bits: m.bits, pl: m.pl,
				})
			}
		} else if len(e.shards) == 1 {
			// Single shard, synchronous, lossless: batch straight into the
			// next tick's bucket without per-message routing.
			db := sh.wheel.at(t + 1)
			for _, m := range ob {
				p := int(m.port)
				db.deliveries = append(db.deliveries, delivery{
					to: e.nbr[base+p], port: e.portBack[base+p], bits: m.bits, pl: m.pl,
				})
			}
			sh.pendingMsgs += len(ob)
		} else {
			for _, m := range ob {
				p := int(m.port)
				e.route(sh, t+1, delivery{
					to: e.nbr[base+p], port: e.portBack[base+p], bits: m.bits, pl: m.pl,
				})
			}
		}
		if e.sendCap > 0 {
			for _, m := range ob {
				e.sendCnt[base+int(m.port)] = 0
			}
		}
		e.out[u] = ob[:0]
	}
}

// mergeSorted merges two ascending int slices into dst (reusing *buf as
// scratch), returning the merged slice.
func mergeSorted(a, b []int, buf *[]int) []int {
	out := (*buf)[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	// Swap backing arrays so both the result and the scratch stay reusable.
	*buf = a[:0]
	return out
}

// stepListParallel runs one tick's node steps on the run's worker pool
// (single-shard Config.Parallel runs only; multi-shard runs parallelize
// across shards instead). Each node's step touches only its own state, so
// this is race-free and produces exactly the sequential results.
func (e *engine) stepListParallel(list []int) {
	e.pool.run(len(list), func(i int) {
		u := list[i]
		e.procs[u].Round(&e.ctxs[u], e.inbox[u])
	})
}
