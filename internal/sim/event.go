// Event-driven scheduler: the default execution engine for all modes.
//
// Instead of scanning every node in every round (the legacy dense loop,
// kept in run.go behind Config.DenseLoop), the engine keeps a pending-event
// queue of message deliveries and timer wake-ups, bucketed by virtual-time
// tick on a timing wheel (wheel.go), and steps only the nodes an event
// touches. Sleeping and halted nodes cost zero work per tick, which is
// what makes sparse-activity workloads (adversarial wake-up, late quiet
// phases) cheap; quiescence detection is O(1) per tick via counters
// instead of O(n) scans.
//
// In the synchronous modes (CONGEST/LOCAL) every awake node carries an
// implicit per-round timer — protocols may count rounds while silent — so
// the observable behaviour is identical to the dense loop; the savings
// come from never touching sleeping or halted nodes and from skipping
// empty rounds outright. In ASYNC mode there are no implicit timers:
// computation is driven purely by deliveries, schedule wake-ups and
// explicit Context.RequestWake timers, and each delivery's latency is
// drawn from the run's deterministic DelaySchedule.
package sim

import "sort"

// delivery is one scheduled message arrival. bits caches the payload's
// send-time Bits() so delivery accounting never touches the interface.
type delivery struct {
	to   int32 // receiving node
	port int32 // receiving port
	bits int32 // cached payload size
	pl   Payload
}

// tickBucket holds every event scheduled for one tick: message arrivals,
// spontaneous wake-ups from the wake schedule, and RequestWake timers
// (kept apart because a scheduled wake-up for a node that was meanwhile
// woken by a message is dead, while a timer steps its — awake — node in
// ASYNC mode). wakeAll is the common "everyone wakes in round 1"
// schedule, kept implicit to avoid materializing an n-element slice per
// run.
type tickBucket struct {
	deliveries []delivery
	wakes      []int
	timers     []int
	wakeAll    bool
}

func (b *tickBucket) clear() {
	b.deliveries = b.deliveries[:0]
	b.wakes = b.wakes[:0]
	b.timers = b.timers[:0]
	b.wakeAll = false
}

// evScratch is the reusable event-engine state owned by a Runner.
type evScratch struct {
	wheel *timingWheel

	active   []int // sorted awake node ids (synchronous modes)
	stepSet  []int
	recv     []int // nodes that received a delivery this tick
	wake     []int // wake candidates this tick
	mergeBuf []int

	linkSeq     []int32 // flat per (node, port) message sequence numbers (ASYNC)
	wakeAt      []int   // per-node pending RequestWake target tick (0 = none)
	haltCounted []bool  // per-node: halt already merged into the counters
}

func newEvScratch(n, ports int) *evScratch {
	return &evScratch{
		wheel:       newTimingWheel(),
		linkSeq:     make([]int32, ports),
		wakeAt:      make([]int, n),
		haltCounted: make([]bool, n),
	}
}

// reset clears every per-run field. The flat per-port and per-node rows
// (linkSeq, wakeAt, haltCounted) are cleared by the Runner's reset.
func (sc *evScratch) reset() {
	sc.wheel.reset()
	sc.active = sc.active[:0]
	sc.stepSet = sc.stepSet[:0]
	sc.recv = sc.recv[:0]
	sc.wake = sc.wake[:0]
}

// wakeRound returns node u's configured spontaneous wake round (1 when no
// schedule is set, <= 0 for wake-on-message).
func (e *engine) wakeRound(u int) int {
	if e.cfg.Wake == nil {
		return 1
	}
	return e.cfg.Wake[u]
}

// live reports whether node u is up. Fault-free runs have no fault state
// and every node is up forever.
func (e *engine) live(u int) bool {
	return e.faults == nil || e.faults.alive[u]
}

// loopEvent is the event-driven main loop.
func (e *engine) loopEvent(maxRounds int) {
	n := e.g.N()
	w := e.ev.wheel
	e.crossed = len(e.watch) == 0

	// Spontaneous wake-ups become timer events. Wakes past the round cap
	// can never fire (the dense loop never reaches them either).
	if e.cfg.Wake == nil {
		w.at(1).wakeAll = true
	} else {
		for u := 0; u < n; u++ {
			if wr := e.cfg.Wake[u]; wr > 0 && wr <= maxRounds {
				b := w.at(wr)
				b.wakes = append(b.wakes, u)
			}
		}
	}

	t := 0
	for {
		var next int
		if e.async || e.numRunning == 0 {
			// The queue decides the next tick, so discard buckets whose
			// events have all gone stale first — a leftover scheduled
			// wake-up for a node that a message woke earlier must not
			// keep the run alive or inflate Rounds.
			e.pruneDeadEvents()
		}
		switch {
		case !e.async && e.numRunning > 0:
			// Synchronous semantics: awake nodes are stepped every round,
			// so virtual time cannot skip ahead (pending fault events due
			// by t+1 are applied at the start of tick t+1).
			next = t + 1
		case !w.empty():
			next = w.minTick()
			// Fault events are applied at the tick they are due, so a
			// membership change cannot be skipped over.
			if e.faults != nil && len(e.faults.heap) > 0 && e.faults.heap[0].tick < next {
				next = e.faults.heap[0].tick
			}
		case e.faults != nil && e.faults.pendingUp > 0:
			// Quiet network, but a crashed node is scheduled to come back:
			// a rejoining node can revive the run, so jump to the earliest
			// recovery (crash events due before it apply the same tick).
			next = e.faults.nextRevive()
		default:
			// Nothing in flight, nothing scheduled, nobody running: the
			// network is dead. Fault events without a pending recovery
			// cannot revive it — crashes scheduled past this point never
			// fire. A network dead on arrival still "runs" its first
			// round, matching the dense loop's accounting.
			if t == 0 {
				t = 1
			}
			e.res.Rounds = t
			return
		}
		if next > maxRounds {
			e.res.Rounds = maxRounds
			e.res.HitRoundCap = true
			return
		}
		t = next
		e.tick(t)
		if e.err != nil {
			return
		}
		if e.pendingMsgs == 0 && (e.faults == nil || e.faults.pendingUp == 0) {
			// With a recovery pending the run is never over: the rejoining
			// node re-enters (with reset state it even re-Starts), so every
			// quiescence test below would be premature.
			if e.numHalted == n {
				e.res.Rounds = t
				return
			}
			if e.numRunning == 0 && w.empty() {
				// Only never-woken sleepers remain and no event is queued.
				e.res.Rounds = t
				return
			}
			if e.cfg.StopWhenQuiet && e.allDecided() {
				e.res.Rounds = t
				return
			}
		}
	}
}

// pruneDeadEvents drops minimum-tick buckets that no longer hold any live
// event. A delivery is always live (even one bound for a crashed node —
// it must still be drained and accounted as dropped); a scheduled wake-up
// is live while its node still sleeps; a timer is live for a non-halted
// node in ASYNC mode (in the synchronous modes timers are no-ops — awake
// nodes step every round anyway). Wakes and timers of a crashed node are
// dead, unless a recovery is pending anywhere: the node might be back up
// by the bucket's tick, so pruning stays conservative then. Liveness only
// ever decays, so a discarded bucket could never have done anything.
func (e *engine) pruneDeadEvents() {
	w := e.ev.wheel
	for !w.empty() {
		t := w.minTick()
		b := w.peek(t)
		if len(b.deliveries) > 0 || b.wakeAll {
			return
		}
		for _, u := range b.wakes {
			if !e.awake[u] && (e.live(u) || e.faults.pendingUp > 0) {
				return
			}
		}
		if e.async {
			for _, u := range b.timers {
				if !e.halted[u] && (e.live(u) || e.faults.pendingUp > 0) {
					return
				}
			}
		}
		w.drop(t)
	}
}

// allDecided ignores crashed nodes: a dead undecided node cannot block
// StopWhenQuiet (the pendingUp gate in loopEvent already keeps the run
// alive while any of them is scheduled to recover).
func (e *engine) allDecided() bool {
	for u, s := range e.status {
		if s == Undecided && e.live(u) {
			return false
		}
	}
	return true
}

// tick processes every event scheduled for tick t and steps the nodes
// those events (plus, in synchronous modes, the implicit per-round
// timers) touch.
func (e *engine) tick(t int) {
	sc := e.ev
	e.round = t
	sc.recv = sc.recv[:0]
	sc.wake = sc.wake[:0]
	if e.async {
		sc.stepSet = sc.stepSet[:0]
	}
	// Membership changes first: a node crashed at t misses t's deliveries
	// and wake-ups, a node recovered at t takes part in them.
	if e.faults != nil {
		e.faults.revived = e.faults.revived[:0]
		e.applyFaults(t)
	}

	sc.wheel.advance(t)
	b := sc.wheel.takeCurrent(t)
	if b != nil {
		e.deliver(b.deliveries, t)
		// Scheduled wake-ups rouse (live) sleepers; a wake for a node
		// that a message woke earlier is dead.
		if b.wakeAll {
			for u := 0; u < e.g.N(); u++ {
				if !e.awake[u] && e.live(u) {
					sc.wake = append(sc.wake, u)
				}
			}
		} else {
			for _, u := range b.wakes {
				if !e.awake[u] && e.live(u) {
					sc.wake = append(sc.wake, u)
				}
			}
		}
		// RequestWake timers step their (awake, live) node in ASYNC mode;
		// in the synchronous modes awake nodes are stepped regardless.
		if e.async {
			for _, u := range b.timers {
				if e.awake[u] && !e.halted[u] && e.live(u) {
					sc.stepSet = append(sc.stepSet, u)
				}
			}
		}
		b.clear()
	}
	// Deliveries wake sleeping receivers.
	for _, v := range sc.recv {
		if !e.awake[v] {
			sc.wake = append(sc.wake, v)
		}
	}

	// Start phase: newly-woken nodes, in ascending node order (matching
	// the dense loop's phase 2). sc.wake may hold duplicates; the awake
	// check deduplicates. started keeps the nodes actually woken.
	sort.Ints(sc.wake)
	started := sc.wake[:0]
	for _, u := range sc.wake {
		if e.awake[u] {
			continue
		}
		e.awake[u] = true
		e.numRunning++
		wr := e.wakeRound(u)
		spont := wr > 0 && t >= wr && len(e.inbox[u]) == 0
		if e.faults != nil && e.faults.rejoined[u] {
			// A reset-state rejoin is a spontaneous (re)start regardless
			// of the wake schedule — unless a message arrived this tick.
			e.faults.rejoined[u] = false
			spont = len(e.inbox[u]) == 0
		}
		e.ctxs[u].spontaneous = spont
		e.procs[u].Start(&e.ctxs[u])
		started = append(started, u)
	}

	// Build the step set.
	var step []int
	if !e.async {
		// Synchronous: every awake non-halted live node, i.e. the active
		// list with this tick's wake-ups (and keep-state revivals) merged
		// in and halted or crashed nodes compacted out (nodes may have
		// halted during Start just above).
		if len(started) > 0 {
			sc.active = mergeSorted(sc.active, started, &sc.mergeBuf)
		}
		if e.faults != nil && len(e.faults.revived) > 0 {
			rv := e.faults.revived[:0]
			for _, u := range e.faults.revived {
				// Guard against a node that was never compacted out (its
				// crash and revival applied at one processed tick).
				if i := sort.SearchInts(sc.active, u); i == len(sc.active) || sc.active[i] != u {
					rv = append(rv, u)
				}
			}
			if len(rv) > 0 {
				sort.Ints(rv)
				sc.active = mergeSorted(sc.active, rv, &sc.mergeBuf)
			}
		}
		w := 0
		for _, u := range sc.active {
			if !e.halted[u] && e.live(u) {
				sc.active[w] = u
				w++
			}
		}
		sc.active = sc.active[:w]
		step = sc.active
	} else {
		// ASYNC: exactly the nodes an event touched — receivers, fired
		// timers, and fresh wake-ups.
		cand := append(sc.stepSet, started...)
		cand = append(cand, sc.recv...)
		sort.Ints(cand)
		w, prev := 0, -1
		for _, u := range cand {
			if u == prev || e.halted[u] {
				continue
			}
			prev = u
			cand[w] = u
			w++
		}
		sc.stepSet = cand[:w]
		step = sc.stepSet
	}

	// Step phase.
	if e.pool != nil {
		e.stepListParallel(step)
	} else {
		for _, u := range step {
			e.procs[u].Round(&e.ctxs[u], e.inbox[u])
		}
	}

	// Merge phase: fold each touched node's private scratch (errors,
	// status changes, halts, timer requests) into the engine, and flush
	// its outbox into future delivery events. started ⊆ step except for
	// nodes that halted inside Start, so visiting both lists covers every
	// touched node; all merges are idempotent across the overlap.
	e.mergeAndFlush(started, t)
	e.mergeAndFlush(step, t)

	// Consumed inboxes are reset for the next delivery.
	for _, v := range sc.recv {
		e.inbox[v] = e.inbox[v][:0]
	}
}

// deliver applies one tick's message arrivals: inbox building, sorting,
// and the full accounting (totals, per-edge counts, watched crossings) at
// delivery time, exactly like the dense loop's phase 1. Payload sizes
// come from the send-time cache in the delivery records.
func (e *engine) deliver(ds []delivery, t int) {
	sc := e.ev
	for _, d := range ds {
		v := int(d.to)
		if e.live(v) {
			if len(e.inbox[v]) == 0 {
				sc.recv = append(sc.recv, v)
			}
			e.inbox[v] = append(e.inbox[v], Message{Port: int(d.port), Payload: d.pl})
		} else {
			// The receiver is down: the message is lost, but the sender
			// already paid for it, so the full accounting below applies.
			e.res.Dropped++
		}
		bits := int(d.bits)
		e.res.Bits += int64(bits)
		if bits > e.res.MaxMsgBits {
			e.res.MaxMsgBits = bits
		}
		if e.perEdge != nil || e.watch != nil {
			key := normPair(v, int(e.nbr[int(e.off[v])+int(d.port)]))
			if e.perEdge != nil {
				e.perEdge[key]++
			}
			if e.watch != nil && e.watch[key] {
				if e.res.FirstCrossing[key] == 0 {
					e.res.FirstCrossing[key] = t
				}
				e.crossed = true
			}
		}
	}
	e.pendingMsgs -= len(ds)
	e.res.Messages += int64(len(ds))
	if len(ds) > 0 {
		e.res.LastActive = t
	}
	if !e.crossed {
		e.res.MessagesBeforeCrossing = e.res.Messages
	}
	// Deterministic inbox order: ascending receiving port, preserving
	// per-link send order within a port.
	for _, v := range sc.recv {
		sortInboxByPort(e.inbox[v])
	}
}

// mergeAndFlush folds the private scratch of each node in list into the
// engine state and schedules its outgoing messages. Safe to call on
// overlapping lists: every merge is guarded or self-clearing.
func (e *engine) mergeAndFlush(list []int, t int) {
	sc := e.ev
	w := sc.wheel
	for _, u := range list {
		if e.nodeErr[u] != nil && e.err == nil {
			e.err = e.nodeErr[u]
		}
		if e.changed[u] {
			e.changed[u] = false
			e.res.LastActive = t
		}
		if e.halted[u] && !sc.haltCounted[u] {
			sc.haltCounted[u] = true
			e.numHalted++
			e.numRunning--
		}
		if at := sc.wakeAt[u]; at != 0 {
			sc.wakeAt[u] = 0
			if at <= t {
				at = t + 1
			}
			if at <= e.maxTick {
				bw := w.at(at)
				bw.timers = append(bw.timers, u)
			}
		}
		ob := e.out[u]
		if len(ob) == 0 {
			continue
		}
		base := int(e.off[u])
		dropActive := e.faults != nil && e.faults.fs.dropP > 0
		if e.async || dropActive {
			// Per-message path: each send consumes its link's sequence
			// number (the shared coordinate of the drop predicate and the
			// delay schedule), may be lost on the link, and otherwise
			// lands in its own delivery bucket. With drops active in a
			// synchronous mode the delay is the fixed one round.
			scheduled := 0
			for _, m := range ob {
				p := int(m.port)
				seq := sc.linkSeq[base+p]
				sc.linkSeq[base+p] = seq + 1
				if dropActive && e.faults.fs.dropMsg(e.cfg.Seed, u, p, int(seq)) {
					// Lost on the link: charged to the sender at drop
					// time (delivery-time accounting never sees it), but
					// it neither crosses the edge nor counts as activity.
					e.res.Dropped++
					e.res.Messages++
					e.res.Bits += int64(m.bits)
					if int(m.bits) > e.res.MaxMsgBits {
						e.res.MaxMsgBits = int(m.bits)
					}
					continue
				}
				d := 1
				if e.async {
					d = e.delay.Delay(e.cfg.Seed, u, p, int(seq))
					if d < 1 {
						d = 1 // a custom schedule must not move time backwards
					}
				}
				db := w.at(t + d)
				db.deliveries = append(db.deliveries, delivery{
					to: e.nbr[base+p], port: e.portBack[base+p], bits: m.bits, pl: m.pl,
				})
				scheduled++
			}
			e.pendingMsgs += scheduled
		} else {
			db := w.at(t + 1)
			for _, m := range ob {
				p := int(m.port)
				db.deliveries = append(db.deliveries, delivery{
					to: e.nbr[base+p], port: e.portBack[base+p], bits: m.bits, pl: m.pl,
				})
			}
			e.pendingMsgs += len(ob)
		}
		if e.sendCap > 0 {
			for _, m := range ob {
				e.sendCnt[base+int(m.port)] = 0
			}
		}
		e.out[u] = ob[:0]
	}
}

// mergeSorted merges two ascending int slices into dst (reusing *buf as
// scratch), returning the merged slice.
func mergeSorted(a, b []int, buf *[]int) []int {
	out := (*buf)[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	// Swap backing arrays so both the result and the scratch stay reusable.
	*buf = a[:0]
	return out
}

// stepListParallel runs one tick's node steps on the run's worker pool.
// Each node's step touches only its own state, so this is race-free and
// produces exactly the sequential results.
func (e *engine) stepListParallel(list []int) {
	e.pool.run(len(list), func(i int) {
		u := list[i]
		e.procs[u].Round(&e.ctxs[u], e.inbox[u])
	})
}
