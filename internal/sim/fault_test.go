package sim

import (
	"errors"
	"reflect"
	"testing"

	"ule/internal/graph"
)

func TestParseFaults(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical Name round-trip ("" means parse error)
	}{
		{"", "none"},
		{"none", "none"},
		{"crash:0.2", "crash:0.2"},
		{"crash:0.2:32", "crash:0.2:32"},
		{"crash:0.2:64", "crash:0.2"}, // explicit default window
		{"crash@5:1,2,3", "crash@5:1,2,3"},
		{"crashrec:0.5:16", "crashrec:0.5:16"},
		{"crashrec:0.5:16:keep", "crashrec:0.5:16:keep"},
		{"churn:0.3:8", "churn:0.3:8"},
		{"drop:0.1", "drop:0.1"},
		{"crash:0.2+drop:0.1", "crash:0.2+drop:0.1"},
		{"crashrec:1:4:keep+drop:0.5", "crashrec:1:4:keep+drop:0.5"},
		{"crash:1.5", ""},
		{"crash:-0.1", ""},
		{"crash:0.2:0", ""},
		{"crash@0:1", ""},
		{"crash@5:", ""},
		{"crash@5:1,x", ""},
		{"crashrec:0.5", ""},
		{"crashrec:0.5:0", ""},
		{"crashrec:0.5:4:retain", ""},
		{"churn:0.3", ""},
		{"drop:0", ""},
		{"drop:0.1+drop:0.2", ""},
		{"crash:0.1+churn:0.1:4", ""},
		{"lightning:0.5", ""},
	}
	for _, c := range cases {
		fs, err := ParseFaults(c.spec)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseFaults(%q): want error, got %q", c.spec, fs.Name())
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFaults(%q): %v", c.spec, err)
			continue
		}
		if got := fs.Name(); got != c.want {
			t.Errorf("ParseFaults(%q).Name() = %q, want %q", c.spec, got, c.want)
		}
		if c.want == "none" {
			continue
		}
		// Canonical names parse back to an equivalent schedule.
		fs2, err := ParseFaults(fs.Name())
		if err != nil {
			t.Errorf("re-parse %q: %v", fs.Name(), err)
		} else if !reflect.DeepEqual(fs, fs2) {
			t.Errorf("round-trip of %q changed the schedule", c.spec)
		}
	}
}

func TestFaultsRequireEventEngine(t *testing.T) {
	fs, err := ParseFaults("crash:0.5")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(4)
	_, err = Run(Config{Graph: g, Seed: 1, DenseLoop: true, Faults: fs}, floodOnceProto{})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("dense loop with faults: err = %v, want ErrConfig", err)
	}
}

// TestCrashAtTargets pins the full observable outcome of an adversarial
// crash on a deterministic workload: node 4 of an 8-ring dies at tick 2,
// before the flood wave (started by node 0 at tick 1) reaches it. Every
// live node still floods (14 messages); the two wave fronts die at node
// 4's inbox (2 dropped deliveries); node 4 ends undecided and crashed.
func TestCrashAtTargets(t *testing.T) {
	fs, err := ParseFaults("crash@2:4")
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	wake := make([]int, n)
	for i := range wake {
		wake[i] = WakeOnMessage
	}
	wake[0] = 1
	res, err := Run(Config{
		Graph: graph.Ring(n), IDs: SequentialIDs(n, 1), Wake: wake, Seed: 1, Faults: fs,
	}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Recoveries != 0 {
		t.Errorf("crashes/recoveries = %d/%d, want 1/0", res.Crashes, res.Recoveries)
	}
	if len(res.Crashed) != n || !res.Crashed[4] {
		t.Fatalf("Crashed = %v, want node 4 down", res.Crashed)
	}
	if res.Messages != 14 || res.Dropped != 2 {
		t.Errorf("messages/dropped = %d/%d, want 14/2", res.Messages, res.Dropped)
	}
	for u, s := range res.Statuses {
		want := NonLeader
		if u == 4 {
			want = Undecided
		}
		if s != want {
			t.Errorf("node %d status = %v, want %v", u, s, want)
		}
	}
	if res.Halted {
		t.Error("Halted = true, but the crashed node never halted")
	}
}

// TestCrashRecoveryReset checks that a reset-state revival re-Starts the
// node as a fresh process: the whole ring floods and halts, then the
// recovered node rejoins, floods again into its halted neighborhood and
// idles undecided until the round cap.
func TestCrashRecoveryReset(t *testing.T) {
	fs, err := ParseFaults("crashrec:1:8")
	if err != nil {
		t.Fatal(err)
	}
	n := 6
	res, err := Run(Config{
		Graph: graph.Ring(n), IDs: SequentialIDs(n, 1), Seed: 3, Faults: fs, MaxRounds: 64,
	}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.Recoveries == 0 {
		t.Fatalf("crashes/recoveries = %d/%d, want both > 0", res.Crashes, res.Recoveries)
	}
	if res.Crashes != res.Recoveries {
		t.Errorf("crashes = %d, recoveries = %d, want equal (downtime 8 < 64)", res.Crashes, res.Recoveries)
	}
	for _, down := range res.Crashed {
		if down {
			t.Fatalf("Crashed = %v, want everyone back up", res.Crashed)
		}
	}
	// Rejoined nodes flood again (fresh state), so the message count
	// exceeds the fault-free 2n; then they halt again and the run ends
	// cleanly once the last revival has played out.
	if res.Messages <= int64(2*n) {
		t.Errorf("messages = %d, want > %d (rejoined nodes re-flood)", res.Messages, 2*n)
	}
	if res.HitRoundCap {
		t.Error("HitRoundCap = true, want clean termination after the revivals")
	}
}

// TestCrashRecoveryKeep checks persisted-state revival: a node that had
// already decided and halted before its crash stays halted after it, so
// the run ends cleanly and no second flood happens.
func TestCrashRecoveryKeep(t *testing.T) {
	fs, err := ParseFaults("crashrec:1:8:keep")
	if err != nil {
		t.Fatal(err)
	}
	n := 6
	res, err := Run(Config{
		Graph: graph.Ring(n), IDs: SequentialIDs(n, 1), Seed: 3, Faults: fs, MaxRounds: 64,
	}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.Recoveries == 0 {
		t.Fatalf("crashes/recoveries = %d/%d, want both > 0", res.Crashes, res.Recoveries)
	}
	// With everyone starting at round 1 the flood finishes within the
	// crash window; nodes keep their halted state through the crash, so
	// the extra traffic of the reset model must not appear. Messages can
	// only be lost (in-flight to a crashed node), never added.
	if res.Messages > int64(2*n) {
		t.Errorf("messages = %d, want <= %d (no re-flood with kept state)", res.Messages, 2*n)
	}
	if res.HitRoundCap {
		t.Error("HitRoundCap = true, want clean termination with kept state")
	}
}

// TestDropAllIsolates checks the lossy-link extreme: with drop:1 every
// message is lost at send time, charged to the sender, and nobody else
// ever wakes.
func TestDropAllIsolates(t *testing.T) {
	fs, err := ParseFaults("drop:1")
	if err != nil {
		t.Fatal(err)
	}
	n := 6
	wake := make([]int, n)
	for i := range wake {
		wake[i] = WakeOnMessage
	}
	wake[0] = 1
	res, err := Run(Config{
		Graph: graph.Ring(n), IDs: SequentialIDs(n, 1), Wake: wake, Seed: 1, Faults: fs,
	}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || res.Dropped != 2 {
		t.Errorf("messages/dropped = %d/%d, want 2/2", res.Messages, res.Dropped)
	}
	if res.Bits == 0 {
		t.Error("dropped messages must still be charged bits")
	}
	for u, s := range res.Statuses {
		if u == 0 && s != NonLeader {
			t.Errorf("node 0 status = %v, want non-elected", s)
		}
		if u != 0 && s != Undecided {
			t.Errorf("node %d status = %v, want undecided (isolated)", u, s)
		}
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (network dead after the lost flood)", res.Rounds)
	}
}

// TestChurnDeterministic runs a full-churn workload twice and demands
// identical results, including the fault counters.
func TestChurnDeterministic(t *testing.T) {
	fs, err := ParseFaults("churn:1:4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: graph.Ring(8), IDs: SequentialIDs(8, 1), Seed: 7, Faults: fs, MaxRounds: 48,
	}
	a, err := Run(cfg, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashes == 0 || a.Recoveries == 0 {
		t.Fatalf("crashes/recoveries = %d/%d, want churn activity", a.Crashes, a.Recoveries)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("churn run not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestFaultDeterminismParallel demands byte-identical results from the
// sequential and the goroutine-parallel runner under every fault model —
// fault events are applied on the single-threaded engine loop, so the
// worker pool must not be observable.
func TestFaultDeterminismParallel(t *testing.T) {
	n := 64 // >= 2*minShard, so the pool actually engages
	for _, spec := range []string{
		"crash:0.3", "crash@3:5,20,40", "crashrec:0.3:8", "crashrec:0.3:8:keep",
		"drop:0.2", "churn:0.4:6", "crashrec:0.2:16+drop:0.1",
	} {
		fs, err := ParseFaults(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{CONGEST, ASYNC} {
			cfg := Config{
				Graph: graph.Ring(n), IDs: SequentialIDs(n, 1), Seed: 11,
				Mode: mode, Faults: fs, MaxRounds: 256,
			}
			seq, err := Run(cfg, floodOnceProto{})
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, mode, err)
			}
			cfg.Parallel = true
			par, err := Run(cfg, floodOnceProto{})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", spec, mode, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s/%s: parallel result differs\nseq: %+v\npar: %+v", spec, mode, seq, par)
			}
		}
	}
}

// TestRunnerFaultReuse interleaves faulty and fault-free runs on one
// Runner: fault state must not leak into later runs (Crashed stays nil,
// results match a fresh Runner's).
func TestRunnerFaultReuse(t *testing.T) {
	fs, err := ParseFaults("crashrec:0.5:8")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Ring(12)
	clean := Config{Graph: g, IDs: SequentialIDs(12, 1), Seed: 5, MaxRounds: 64}
	faulty := clean
	faulty.Faults = fs

	want, err := Run(clean, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Run(faulty, floodOnceProto{}); err != nil {
			t.Fatal(err)
		}
		got, err := r.Run(clean, floodOnceProto{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Crashed != nil {
			t.Fatalf("fault-free run has Crashed = %v", got.Crashed)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("fault-free run after faulty run diverged:\nwant %+v\ngot  %+v", want, got)
		}
	}
}

func TestUniqueLiveLeaderPredicate(t *testing.T) {
	r := &Result{
		Statuses: []Status{NonLeader, Leader, Undecided, NonLeader},
		Leaders:  []int{1},
		Crashed:  []bool{false, false, true, false},
	}
	if !r.UniqueLiveLeader() {
		t.Error("dead undecided node must not invalidate the election")
	}
	if r.UniqueLeader() {
		t.Error("UniqueLeader must still see the undecided node")
	}
	r.Crashed[1] = true // the only leader died
	if r.UniqueLiveLeader() {
		t.Error("a dead leader is not a live leader")
	}
	r.Crashed = nil // fault-free: falls back to UniqueLeader
	if r.UniqueLiveLeader() {
		t.Error("fault-free fallback must match UniqueLeader")
	}
}
