package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ule/internal/graph"
)

// DefaultMaxRounds bounds runs whose protocols fail to terminate.
const DefaultMaxRounds = 1 << 20

// DefaultBitCap returns the default CONGEST per-message budget for an
// n-node network: 32·⌈log2(n+2)⌉ + 64 bits, a generous Θ(log n).
func DefaultBitCap(n int) int {
	return 32*bits.Len(uint(n+2)) + 64
}

// Run executes protocol p on the configured network and returns the run
// summary. It returns an error for invalid configurations and for model
// violations committed by the protocol (double sends, oversized CONGEST
// messages).
//
// Run builds fresh engine state per call; batch drivers running many
// trials on one graph should allocate a Runner once and reuse it.
func Run(cfg Config, p Protocol) (*Result, error) {
	r, err := NewRunner(cfg.Graph)
	if err != nil {
		return nil, err
	}
	return r.Run(cfg, p)
}

// Runner executes runs on one fixed graph, reusing the engine state that
// depends only on the topology (reverse-port tables) and the per-node
// scratch buffers (outboxes, inboxes, status vectors, RNGs) across runs.
// For sweep workloads this removes almost all per-trial allocation; a
// Runner is NOT safe for concurrent use — give each worker its own.
type Runner struct {
	g *graph.Graph

	// portBack[u][p] is the port at Neighbor(u,p) leading back to u.
	// Purely topological, computed once.
	portBack [][]int

	// Reusable per-node scratch, reset at the start of every run.
	outbox  [][][]Payload
	inbox   [][]Message
	status  []Status
	halted  []bool
	awake   []bool
	changed []bool
	nodeErr []error
	procs   []Process
	ctxs    []Context
	rngs    []*rand.Rand

	// Reusable event-engine state (queue buckets, heap, active lists).
	ev *evScratch
}

// NewRunner validates the graph and precomputes the reusable engine state.
func NewRunner(g *graph.Graph) (*Runner, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrConfig)
	}
	n := g.N()
	r := &Runner{
		g:        g,
		portBack: make([][]int, n),
		outbox:   make([][][]Payload, n),
		inbox:    make([][]Message, n),
		status:   make([]Status, n),
		halted:   make([]bool, n),
		awake:    make([]bool, n),
		changed:  make([]bool, n),
		nodeErr:  make([]error, n),
		procs:    make([]Process, n),
		ctxs:     make([]Context, n),
		rngs:     make([]*rand.Rand, n),
	}
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		r.portBack[u] = make([]int, deg)
		for p := 0; p < deg; p++ {
			v := g.Neighbor(u, p)
			back := g.PortTo(v, u)
			if back < 0 {
				return nil, fmt.Errorf("%w: asymmetric adjacency at (%d,%d)", ErrConfig, u, v)
			}
			r.portBack[u][p] = back
		}
		r.outbox[u] = make([][]Payload, deg)
		r.rngs[u] = rand.New(rand.NewSource(0))
	}
	r.ev = newEvScratch(n, g.Degree)
	return r, nil
}

// Run executes one protocol run. cfg.Graph must be nil or the Runner's own
// graph. The returned Result does not alias the Runner's reusable state.
func (r *Runner) Run(cfg Config, p Protocol) (*Result, error) {
	g := r.g
	if cfg.Graph != nil && cfg.Graph != g {
		return nil, fmt.Errorf("%w: Runner bound to a different graph", ErrConfig)
	}
	cfg.Graph = g
	n := g.N()
	if cfg.IDs != nil {
		if len(cfg.IDs) != n {
			return nil, fmt.Errorf("%w: len(IDs)=%d want %d", ErrConfig, len(cfg.IDs), n)
		}
		seen := make(map[int64]bool, n)
		for _, id := range cfg.IDs {
			if seen[id] {
				return nil, fmt.Errorf("%w: duplicate ID %d", ErrConfig, id)
			}
			seen[id] = true
		}
	}
	if cfg.Wake != nil && len(cfg.Wake) != n {
		return nil, fmt.Errorf("%w: len(Wake)=%d want %d", ErrConfig, len(cfg.Wake), n)
	}
	if cfg.Mode == 0 {
		cfg.Mode = CONGEST
	}
	if cfg.Delay != nil && cfg.Mode != ASYNC {
		return nil, fmt.Errorf("%w: delay schedules require ASYNC mode", ErrConfig)
	}
	if cfg.DenseLoop && cfg.Mode == ASYNC {
		return nil, fmt.Errorf("%w: the dense loop cannot run the ASYNC model", ErrConfig)
	}
	if cfg.Mode == ASYNC && cfg.Delay == nil {
		cfg.Delay = UnitDelay()
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	bitCap := cfg.BitCap
	if bitCap <= 0 {
		bitCap = DefaultBitCap(n)
	}
	sendCap := cfg.PortSendCap
	if sendCap <= 0 {
		if cfg.Mode == LOCAL {
			sendCap = 0 // unlimited
		} else {
			sendCap = 8
		}
	}

	// Reset the reusable scratch and wire it into a fresh engine shell.
	e := &engine{
		cfg: cfg, g: g, bitCap: bitCap, sendCap: sendCap,
		portBack: r.portBack,
		outbox:   r.outbox,
		inbox:    r.inbox,
		status:   r.status,
		halted:   r.halted,
		awake:    r.awake,
		changed:  r.changed,
		nodeErr:  r.nodeErr,
		procs:    r.procs,
		ctxs:     r.ctxs,
	}
	if !cfg.DenseLoop {
		r.ev.reset()
		e.ev = r.ev
		e.async = cfg.Mode == ASYNC
		e.delay = cfg.Delay
	}
	for u := 0; u < n; u++ {
		for pt := range e.outbox[u] {
			e.outbox[u][pt] = e.outbox[u][pt][:0]
		}
		e.inbox[u] = e.inbox[u][:0]
		if e.ev != nil {
			for pt := range e.ev.linkSeq[u] {
				e.ev.linkSeq[u][pt] = 0
			}
			e.ev.wakeAt[u] = 0
			e.ev.haltCounted[u] = false
		}
		e.status[u] = Undecided
		e.halted[u] = false
		e.awake[u] = false
		e.changed[u] = false
		e.nodeErr[u] = nil
		var id int64
		hasID := false
		if cfg.IDs != nil {
			id = cfg.IDs[u]
			hasID = true
		}
		info := NodeInfo{ID: id, HasID: hasID, Degree: g.Degree(u), Know: cfg.Know}
		e.procs[u] = p.New(info)
		// Reseeding restores the exact state of a freshly constructed
		// rand.New(rand.NewSource(seed)), so reuse is invisible to runs.
		r.rngs[u].Seed(NodeSeed(cfg.Seed, u))
		e.ctxs[u] = Context{eng: e, node: u, info: info, rng: r.rngs[u]}
	}
	if len(cfg.WatchEdges) > 0 {
		e.watch = make(map[[2]int]bool, len(cfg.WatchEdges))
		e.res.FirstCrossing = make(map[[2]int]int, len(cfg.WatchEdges))
		for _, w := range cfg.WatchEdges {
			e.watch[normPair(w[0], w[1])] = true
		}
	}
	if cfg.CountPerEdge {
		e.perEdge = make(map[[2]int]int64)
		e.res.PerEdge = e.perEdge
	}

	if cfg.DenseLoop {
		e.loopDense(maxRounds)
	} else {
		e.maxTick = maxRounds
		e.loopEvent(maxRounds)
	}
	if e.err != nil {
		return nil, e.err
	}
	e.res.Statuses = append([]Status(nil), e.status...)
	for u, s := range e.status {
		if s == Leader {
			e.res.Leaders = append(e.res.Leaders, u)
		}
	}
	e.res.Halted = true
	for _, h := range e.halted {
		if !h {
			e.res.Halted = false
			break
		}
	}
	res := e.res
	return &res, nil
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// loopDense is the legacy synchronous engine: one pass over every node in
// every round. It is observably equivalent to loopEvent in CONGEST/LOCAL
// mode and is kept as the reference implementation for differential tests
// and the engine benchmarks.
func (e *engine) loopDense(maxRounds int) {
	n := e.g.N()
	crossed := len(e.watch) == 0 // true once any watched edge was crossed
	for e.round = 1; e.round <= maxRounds; e.round++ {
		// Phase 1: deliver last round's outboxes into inboxes and account.
		sentThisDelivery := int64(0)
		for u := 0; u < n; u++ {
			e.inbox[u] = e.inbox[u][:0]
		}
		for u := 0; u < n; u++ {
			for p, pls := range e.outbox[u] {
				if len(pls) == 0 {
					continue
				}
				v := e.g.Neighbor(u, p)
				back := e.portBack[u][p]
				key := normPair(u, v)
				for _, pl := range pls {
					e.inbox[v] = append(e.inbox[v], Message{Port: back, Payload: pl})
					sentThisDelivery++
					b := pl.Bits()
					e.res.Bits += int64(b)
					if b > e.res.MaxMsgBits {
						e.res.MaxMsgBits = b
					}
					if e.perEdge != nil {
						e.perEdge[key]++
					}
					if e.watch != nil && e.watch[key] {
						if e.res.FirstCrossing[key] == 0 {
							e.res.FirstCrossing[key] = e.round
						}
						crossed = true
					}
				}
				e.outbox[u][p] = e.outbox[u][p][:0]
			}
		}
		if sentThisDelivery > 0 {
			e.res.LastActive = e.round
		}
		e.res.Messages += sentThisDelivery
		if !crossed {
			// Snapshot after this round's deliveries: messages delivered in
			// rounds up to (and excluding) the first crossing round.
			e.res.MessagesBeforeCrossing = e.res.Messages
		}
		// Deterministic inbox order: ascending receiving port, preserving
		// the sender's send order within a port.
		for u := 0; u < n; u++ {
			in := e.inbox[u]
			sort.SliceStable(in, func(i, j int) bool { return in[i].Port < in[j].Port })
		}

		// Phase 2: wake-ups. A sleeper whose scheduled wake round is still
		// in the future is not dead — it must keep the run alive until it
		// fires (the event engine treats it as a queued timer event).
		anySleeping := false
		futureWake := false
		for u := 0; u < n; u++ {
			if e.awake[u] {
				continue
			}
			wakeRound := 1
			if e.cfg.Wake != nil {
				wakeRound = e.cfg.Wake[u]
			}
			spontaneous := wakeRound > 0 && e.round >= wakeRound
			byMessage := len(e.inbox[u]) > 0
			if spontaneous || byMessage {
				e.awake[u] = true
				e.ctxs[u].spontaneous = spontaneous && !byMessage
				e.procs[u].Start(&e.ctxs[u])
			} else {
				anySleeping = true
				if wakeRound > e.round && wakeRound <= maxRounds {
					futureWake = true
				}
			}
		}

		// Phase 3: run the round on all awake, non-halted nodes.
		if e.cfg.Parallel {
			e.stepParallel()
		} else {
			for u := 0; u < n; u++ {
				if e.awake[u] && !e.halted[u] {
					e.procs[u].Round(&e.ctxs[u], e.inbox[u])
				}
			}
		}
		// Merge per-node scratch state produced during Start/Round calls.
		for u := 0; u < n; u++ {
			if e.changed[u] {
				e.changed[u] = false
				e.res.LastActive = e.round
			}
			if e.nodeErr[u] != nil && e.err == nil {
				e.err = e.nodeErr[u]
			}
		}
		if e.err != nil {
			return
		}

		// Phase 4: stopping conditions.
		pending := false
		for u := 0; u < n && !pending; u++ {
			for _, pls := range e.outbox[u] {
				if len(pls) > 0 {
					pending = true
					break
				}
			}
		}
		allHalted := true
		anyRunning := false
		for u := 0; u < n; u++ {
			if !e.halted[u] {
				allHalted = false
				if e.awake[u] {
					anyRunning = true
				}
			}
		}
		if allHalted && !pending {
			e.res.Rounds = e.round
			return
		}
		if !pending && !anyRunning && anySleeping && !futureWake {
			// Deadlock: only never-woken sleepers remain, none of them has
			// a scheduled wake still ahead, and nothing is in flight;
			// nothing can ever happen again.
			e.res.Rounds = e.round
			return
		}
		if e.cfg.StopWhenQuiet && !pending {
			allDecided := true
			for _, s := range e.status {
				if s == Undecided {
					allDecided = false
					break
				}
			}
			if allDecided {
				e.res.Rounds = e.round
				return
			}
		}
	}
	e.res.Rounds = maxRounds
	e.res.HitRoundCap = true
}

// stepParallel runs one dense round's node steps on a worker pool. Each
// node's step touches only its own state and its own outbox row, so this
// is race-free and produces exactly the sequential results.
func (e *engine) stepParallel() {
	runParallelSteps(e.g.N(), func(u int) {
		if e.awake[u] && !e.halted[u] {
			e.procs[u].Round(&e.ctxs[u], e.inbox[u])
		}
	})
}

// runParallelSteps calls step(i) for every i in [0, count) from a chunked
// worker pool (or inline when a pool is not worth spinning up).
func runParallelSteps(count int, step func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			step(i)
		}
		return
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	const chunk = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= count {
					return
				}
				hi := lo + chunk
				if hi > count {
					hi = count
				}
				for i := lo; i < hi; i++ {
					step(i)
				}
			}
		}()
	}
	wg.Wait()
}
