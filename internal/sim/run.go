package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"

	"ule/internal/graph"
)

// DefaultMaxRounds bounds runs whose protocols fail to terminate.
const DefaultMaxRounds = 1 << 20

// DefaultBitCap returns the default CONGEST per-message budget for an
// n-node network: 32·⌈log2(n+2)⌉ + 64 bits, a generous Θ(log n).
func DefaultBitCap(n int) int {
	return 32*bits.Len(uint(n+2)) + 64
}

// Run executes protocol p on the configured network and returns the run
// summary. It returns an error for invalid configurations and for model
// violations committed by the protocol (double sends, oversized CONGEST
// messages).
//
// Run builds fresh engine state per call; batch drivers running many
// trials on one graph should allocate a Runner once and reuse it.
func Run(cfg Config, p Protocol) (*Result, error) {
	r, err := NewRunner(cfg.Graph)
	if err != nil {
		return nil, err
	}
	return r.Run(cfg, p)
}

// Runner executes runs on one fixed graph, reusing the engine state that
// depends only on the topology (the graph's CSR and reverse-port arrays,
// borrowed rather than rebuilt) and the per-node scratch buffers (outbox
// arenas, inboxes, status vectors, RNGs) across runs. For sweep workloads
// this removes almost all per-trial allocation; a Runner is NOT safe for
// concurrent use — give each worker its own. The graph's port numbering
// must not change (no ShufflePorts) while the Runner is in use.
type Runner struct {
	g *graph.Graph

	// Flat per-(node, port) tables, indexed by off[u]+p. off/nbr/portBack
	// are the graph's own CSR arrays (graph.CSR, graph.PortBacks) — purely
	// topological, built once with the graph. sendCnt (Runner-owned)
	// carries the per-round per-port send counts.
	off      []int32
	nbr      []int32
	portBack []int32
	sendCnt  []int32

	// Reusable per-node scratch, reset at the start of every run.
	out     [][]outMsg
	inbox   [][]Message
	status  []Status
	halted  []bool
	awake   []bool
	changed []bool
	nodeErr []error
	procs   []Process
	ctxs    []Context
	rngs    []*rand.Rand

	// Reusable flat per-node / per-(node,port) rows of the event engine.
	linkSeq     []int32
	wakeAt      []int
	haltCounted []bool

	// Reusable shard state (timing wheels, scratch lists, fault heaps,
	// mailboxes); rebuilt only when the effective shard count changes.
	shards []engineShard

	// Reusable global fault-membership vectors, built on the first
	// faulty run.
	fAlive    []bool
	fRejoined []bool

	// Lazily-built validation/instrument scratch, recycled across runs.
	idSeen map[int64]struct{}
	watch  map[[2]int]bool

	// eng is the engine shell reused across runs (its pointers are re-wired
	// per run; no allocation).
	eng engine
}

// NewRunner validates the graph and precomputes the reusable engine state.
func NewRunner(g *graph.Graph) (*Runner, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrConfig)
	}
	n := g.N()
	off, nbr := g.CSR()
	r := &Runner{
		g:        g,
		off:      off,
		nbr:      nbr,
		portBack: g.PortBacks(),
		out:      make([][]outMsg, n),
		inbox:    make([][]Message, n),
		status:   make([]Status, n),
		halted:   make([]bool, n),
		awake:    make([]bool, n),
		changed:  make([]bool, n),
		nodeErr:  make([]error, n),
		procs:    make([]Process, n),
		ctxs:     make([]Context, n),
		rngs:     make([]*rand.Rand, n),
	}
	// The graph maintains its reverse-port table through construction and
	// ShufflePorts, so the old O(Σ deg²) PortTo validation scan is gone —
	// NewRunner is O(n) for any density.
	r.sendCnt = make([]int32, len(nbr))
	r.linkSeq = make([]int32, len(nbr))
	r.wakeAt = make([]int, n)
	r.haltCounted = make([]bool, n)
	return r, nil
}

// ensureShards (re)builds the Runner's shard array for an effective
// shard count of S, partitioning the nodes into contiguous ranges of
// ⌈n/S⌉. Rebuilt only when S changes between runs; each shard's wheels
// and scratch persist across runs of the same count.
func (r *Runner) ensureShards(S int) {
	if len(r.shards) == S {
		return
	}
	n := r.g.N()
	size := (n + S - 1) / S
	r.shards = make([]engineShard, S)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.id = i
		sh.lo = i * size
		sh.hi = sh.lo + size
		if sh.hi > n {
			sh.hi = n
		}
		sh.wheel = newTimingWheel()
		sh.mail = make([][]shardMsg, S)
	}
}

// Run executes one protocol run. cfg.Graph must be nil or the Runner's own
// graph. The returned Result does not alias the Runner's reusable state.
func (r *Runner) Run(cfg Config, p Protocol) (*Result, error) {
	res := new(Result)
	if err := r.RunInto(cfg, p, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto executes one protocol run like Run, writing the summary into
// *out and recycling out's slices and maps — a sweep driver that reuses
// one Result across trials keeps steady-state allocation at zero. On
// error *out holds unspecified intermediate state. The filled Result is
// owned by the caller (it does not alias Runner state), but is
// overwritten by the next RunInto with the same out.
func (r *Runner) RunInto(cfg Config, p Protocol, out *Result) error {
	g := r.g
	if cfg.Graph != nil && cfg.Graph != g {
		return fmt.Errorf("%w: Runner bound to a different graph", ErrConfig)
	}
	cfg.Graph = g
	n := g.N()
	if cfg.IDs != nil {
		if len(cfg.IDs) != n {
			return fmt.Errorf("%w: len(IDs)=%d want %d", ErrConfig, len(cfg.IDs), n)
		}
		if r.idSeen == nil {
			r.idSeen = make(map[int64]struct{}, n)
		} else {
			clear(r.idSeen)
		}
		for _, id := range cfg.IDs {
			if _, dup := r.idSeen[id]; dup {
				return fmt.Errorf("%w: duplicate ID %d", ErrConfig, id)
			}
			r.idSeen[id] = struct{}{}
		}
	}
	if cfg.Wake != nil && len(cfg.Wake) != n {
		return fmt.Errorf("%w: len(Wake)=%d want %d", ErrConfig, len(cfg.Wake), n)
	}
	if cfg.Mode == 0 {
		cfg.Mode = CONGEST
	}
	if cfg.Delay != nil && cfg.Mode != ASYNC {
		return fmt.Errorf("%w: delay schedules require ASYNC mode", ErrConfig)
	}
	if cfg.DenseLoop && cfg.Mode == ASYNC {
		return fmt.Errorf("%w: the dense loop cannot run the ASYNC model", ErrConfig)
	}
	if cfg.DenseLoop && cfg.Faults != nil {
		return fmt.Errorf("%w: fault injection requires the event-driven engine", ErrConfig)
	}
	if cfg.DenseLoop && cfg.Shards > 1 {
		return fmt.Errorf("%w: sharded execution requires the event-driven engine", ErrConfig)
	}
	if cfg.Mode == ASYNC && cfg.Delay == nil {
		cfg.Delay = UnitDelay()
	}
	// Resolve the effective shard count: 0/1 and the dense loop mean one
	// shard, negative auto-sizes to the core count, and a shard needs at
	// least one node. The count never changes results, only the layout.
	shardCount := cfg.Shards
	if shardCount < 0 {
		shardCount = runtime.GOMAXPROCS(0)
	}
	if shardCount < 1 || cfg.DenseLoop {
		shardCount = 1
	}
	if shardCount > n {
		shardCount = n
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	bitCap := cfg.BitCap
	if bitCap <= 0 {
		bitCap = DefaultBitCap(n)
	}
	sendCap := cfg.PortSendCap
	if sendCap <= 0 {
		if cfg.Mode == LOCAL {
			sendCap = 0 // unlimited
		} else {
			sendCap = 8
		}
	}

	// Reset the result shell, recycling its slices and maps. Crashed is
	// reset to nil — the fault-free contract — with its capacity parked
	// aside for faulty runs to reuse.
	crashedScratch := out.Crashed[:0]
	*out = Result{
		Statuses:      out.Statuses[:0],
		Leaders:       out.Leaders[:0],
		FirstCrossing: out.FirstCrossing,
		PerEdge:       out.PerEdge,
	}

	// Reset the reusable scratch and wire it into the engine shell.
	e := &r.eng
	*e = engine{
		cfg: cfg, g: g, bitCap: bitCap, sendCap: sendCap,
		off:      r.off,
		nbr:      r.nbr,
		portBack: r.portBack,
		sendCnt:  r.sendCnt,
		out:      r.out,
		inbox:    r.inbox,
		status:   r.status,
		halted:   r.halted,
		awake:    r.awake,
		changed:  r.changed,
		nodeErr:  r.nodeErr,
		procs:    r.procs,
		ctxs:     r.ctxs,
		rngs:     r.rngs,
		res:      out,
	}
	if !cfg.DenseLoop {
		e.async = cfg.Mode == ASYNC
		e.delay = cfg.Delay
		e.linkSeq = r.linkSeq
		e.wakeAt = r.wakeAt
		e.haltCounted = r.haltCounted
		for i := range r.linkSeq {
			r.linkSeq[i] = 0
		}
		for i := range r.wakeAt {
			r.wakeAt[i] = 0
		}
		for i := range r.haltCounted {
			r.haltCounted[i] = false
		}
		r.ensureShards(shardCount)
		e.shards = r.shards
		e.shardSize = (n + shardCount - 1) / shardCount
		for i := range r.shards {
			r.shards[i].resetRun()
		}
		if cfg.Faults != nil {
			e.fsched = cfg.Faults
			e.proto = p
			if r.fAlive == nil {
				r.fAlive = make([]bool, n)
				r.fRejoined = make([]bool, n)
			}
			e.fAlive, e.fRejoined = r.fAlive, r.fRejoined
			for u := 0; u < n; u++ {
				r.fAlive[u] = true
				r.fRejoined[u] = false
			}
			for i := range r.shards {
				sh := &r.shards[i]
				if sh.faultScratch == nil {
					sh.faultScratch = new(faultState)
				}
				sh.faultScratch.reset(cfg.Faults, cfg.Seed, sh.lo, sh.hi, maxRounds)
				sh.faults = sh.faultScratch
			}
		}
	}
	for i := range r.sendCnt {
		r.sendCnt[i] = 0
	}
	for u := 0; u < n; u++ {
		e.out[u] = e.out[u][:0]
		e.inbox[u] = e.inbox[u][:0]
		e.status[u] = Undecided
		e.halted[u] = false
		e.awake[u] = false
		e.changed[u] = false
		e.nodeErr[u] = nil
		var id int64
		hasID := false
		if cfg.IDs != nil {
			id = cfg.IDs[u]
			hasID = true
		}
		info := NodeInfo{ID: id, HasID: hasID, Degree: g.Degree(u), Know: cfg.Know}
		e.procs[u] = p.New(info)
		// The RNG is built and seeded lazily on the node's first Rand()
		// call (see Context.Rand); r.rngs[u] is nil until then.
		e.ctxs[u] = Context{eng: e, node: u, info: info, rng: r.rngs[u]}
	}
	if len(cfg.WatchEdges) > 0 {
		if r.watch == nil {
			r.watch = make(map[[2]int]bool, len(cfg.WatchEdges))
		} else {
			clear(r.watch)
		}
		e.watch = r.watch
		if out.FirstCrossing == nil {
			out.FirstCrossing = make(map[[2]int]int, len(cfg.WatchEdges))
		} else {
			clear(out.FirstCrossing)
		}
		for _, w := range cfg.WatchEdges {
			e.watch[normPair(w[0], w[1])] = true
		}
	} else {
		out.FirstCrossing = nil
	}
	if cfg.CountPerEdge {
		if out.PerEdge == nil {
			out.PerEdge = make(map[[2]int]int64)
		} else {
			clear(out.PerEdge)
		}
		if cfg.DenseLoop {
			e.perEdge = out.PerEdge
		}
	} else {
		out.PerEdge = nil
	}
	// Wire the event engine's instrument maps: a single shard writes the
	// Result's maps directly; multiple shards fill per-shard scratch maps
	// (merged after the run — crossing ticks by minimum, per-edge counts
	// by sum, both independent of the shard layout).
	if !cfg.DenseLoop && (e.watch != nil || cfg.CountPerEdge) {
		single := len(e.shards) == 1
		for i := range e.shards {
			sh := &e.shards[i]
			if e.watch != nil {
				if single {
					sh.fc = out.FirstCrossing
				} else {
					if sh.fcScratch == nil {
						sh.fcScratch = make(map[[2]int]int)
					} else {
						clear(sh.fcScratch)
					}
					sh.fc = sh.fcScratch
				}
			}
			if cfg.CountPerEdge {
				if single {
					sh.pe = out.PerEdge
				} else {
					if sh.peScratch == nil {
						sh.peScratch = make(map[[2]int]int64)
					} else {
						clear(sh.peScratch)
					}
					sh.pe = sh.peScratch
				}
			}
		}
	}

	// Parallel dispatch. With multiple shards one persistent pool drives
	// whole-shard ticks through fixed per-run closures (no per-tick
	// allocation); on a single-CPU host the shards run inline instead —
	// the results are identical either way. A single-shard Parallel run
	// keeps the node-step pool, which only ever pays off for step sets of
	// >= 2*minShard nodes, so tiny graphs skip pool creation entirely.
	if len(e.shards) > 1 {
		if runtime.GOMAXPROCS(0) > 1 {
			e.shardPool = newStepPool()
			e.tickFn = func(i int) { e.tickShard(&e.shards[i], e.curTick) }
			e.drainFn = func(i int) { e.drainMail(&e.shards[i]) }
			defer func() {
				e.shardPool.close()
				e.shardPool, e.tickFn, e.drainFn = nil, nil, nil
			}()
		}
	} else if cfg.Parallel && n >= 2*minShard {
		e.pool = newStepPool()
		defer func() {
			e.pool.close()
			e.pool = nil
		}()
	}

	if cfg.DenseLoop {
		e.loopDense(maxRounds)
	} else {
		e.maxTick = maxRounds
		e.loopEvent(maxRounds)
	}
	if e.err != nil {
		return e.err
	}
	// Fold the per-shard accounting into the Result. Sums, maxes and map
	// merges are all independent of shard order; single-shard runs alias
	// the instrument maps directly, so only the scalars fold. (The dense
	// loop has no shards and wrote the Result as it went.)
	singleShard := len(e.shards) == 1
	for i := range e.shards {
		sh := &e.shards[i]
		out.Messages += sh.msgs
		out.Bits += sh.bits
		out.Dropped += sh.dropped
		out.Crashes += sh.crashes
		out.Recoveries += sh.recoveries
		if sh.maxMsgBits > out.MaxMsgBits {
			out.MaxMsgBits = sh.maxMsgBits
		}
		if sh.lastActive > out.LastActive {
			out.LastActive = sh.lastActive
		}
		if !singleShard {
			for k, v := range sh.fc {
				if cur, ok := out.FirstCrossing[k]; !ok || v < cur {
					out.FirstCrossing[k] = v
				}
			}
			for k, v := range sh.pe {
				out.PerEdge[k] += v
			}
		}
	}
	out.Statuses = append(out.Statuses[:0], e.status...)
	for u, s := range e.status {
		if s == Leader {
			out.Leaders = append(out.Leaders, u)
		}
	}
	out.Halted = true
	for _, h := range e.halted {
		if !h {
			out.Halted = false
			break
		}
	}
	if e.fAlive != nil {
		out.Crashed = crashedScratch
		for _, a := range e.fAlive {
			out.Crashed = append(out.Crashed, !a)
		}
	}
	return nil
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// loopDense is the legacy synchronous engine: one pass over every node in
// every round. It is observably equivalent to loopEvent in CONGEST/LOCAL
// mode and is kept as the reference implementation for differential tests
// and the engine benchmarks.
func (e *engine) loopDense(maxRounds int) {
	n := e.g.N()
	crossed := len(e.watch) == 0 // true once any watched edge was crossed
	for e.round = 1; e.round <= maxRounds; e.round++ {
		// Phase 1: deliver last round's outboxes into inboxes and account.
		sentThisDelivery := int64(0)
		for u := 0; u < n; u++ {
			e.inbox[u] = e.inbox[u][:0]
		}
		for u := 0; u < n; u++ {
			ob := e.out[u]
			if len(ob) == 0 {
				continue
			}
			base := int(e.off[u])
			for _, m := range ob {
				p := int(m.port)
				v := int(e.nbr[base+p])
				e.inbox[v] = append(e.inbox[v], Message{Port: int(e.portBack[base+p]), Payload: m.pl})
				sentThisDelivery++
				b := int(m.bits)
				e.res.Bits += int64(b)
				if b > e.res.MaxMsgBits {
					e.res.MaxMsgBits = b
				}
				if e.perEdge != nil || e.watch != nil {
					key := normPair(u, v)
					if e.perEdge != nil {
						e.perEdge[key]++
					}
					if e.watch != nil && e.watch[key] {
						if e.res.FirstCrossing[key] == 0 {
							e.res.FirstCrossing[key] = e.round
						}
						crossed = true
					}
				}
			}
			if e.sendCap > 0 {
				for _, m := range ob {
					e.sendCnt[base+int(m.port)] = 0
				}
			}
			e.out[u] = ob[:0]
		}
		if sentThisDelivery > 0 {
			e.res.LastActive = e.round
		}
		e.res.Messages += sentThisDelivery
		if !crossed {
			// Snapshot after this round's deliveries: messages delivered in
			// rounds up to (and excluding) the first crossing round.
			e.res.MessagesBeforeCrossing = e.res.Messages
		}
		// Deterministic inbox order: ascending receiving port, preserving
		// the sender's send order within a port.
		for u := 0; u < n; u++ {
			sortInboxByPort(e.inbox[u])
		}

		// Phase 2: wake-ups. A sleeper whose scheduled wake round is still
		// in the future is not dead — it must keep the run alive until it
		// fires (the event engine treats it as a queued timer event).
		anySleeping := false
		futureWake := false
		for u := 0; u < n; u++ {
			if e.awake[u] {
				continue
			}
			wakeRound := 1
			if e.cfg.Wake != nil {
				wakeRound = e.cfg.Wake[u]
			}
			spontaneous := wakeRound > 0 && e.round >= wakeRound
			byMessage := len(e.inbox[u]) > 0
			if spontaneous || byMessage {
				e.awake[u] = true
				e.ctxs[u].spontaneous = spontaneous && !byMessage
				e.procs[u].Start(&e.ctxs[u])
			} else {
				anySleeping = true
				if wakeRound > e.round && wakeRound <= maxRounds {
					futureWake = true
				}
			}
		}

		// Phase 3: run the round on all awake, non-halted nodes.
		if e.pool != nil {
			e.stepParallel()
		} else {
			for u := 0; u < n; u++ {
				if e.awake[u] && !e.halted[u] {
					e.procs[u].Round(&e.ctxs[u], e.inbox[u])
				}
			}
		}
		// Merge per-node scratch state produced during Start/Round calls.
		for u := 0; u < n; u++ {
			if e.changed[u] {
				e.changed[u] = false
				e.res.LastActive = e.round
			}
			if e.nodeErr[u] != nil && e.err == nil {
				e.err = e.nodeErr[u]
			}
		}
		if e.err != nil {
			return
		}

		// Phase 4: stopping conditions.
		pending := false
		for u := 0; u < n; u++ {
			if len(e.out[u]) > 0 {
				pending = true
				break
			}
		}
		allHalted := true
		anyRunning := false
		for u := 0; u < n; u++ {
			if !e.halted[u] {
				allHalted = false
				if e.awake[u] {
					anyRunning = true
				}
			}
		}
		if allHalted && !pending {
			e.res.Rounds = e.round
			return
		}
		if !pending && !anyRunning && anySleeping && !futureWake {
			// Deadlock: only never-woken sleepers remain, none of them has
			// a scheduled wake still ahead, and nothing is in flight;
			// nothing can ever happen again.
			e.res.Rounds = e.round
			return
		}
		if e.cfg.StopWhenQuiet && !pending {
			allDecided := true
			for _, s := range e.status {
				if s == Undecided {
					allDecided = false
					break
				}
			}
			if allDecided {
				e.res.Rounds = e.round
				return
			}
		}
	}
	e.res.Rounds = maxRounds
	e.res.HitRoundCap = true
}

// stepParallel runs one dense round's node steps on the run's worker
// pool. Each node's step touches only its own state and its own outbox
// row, so this is race-free and produces exactly the sequential results.
func (e *engine) stepParallel() {
	e.pool.run(e.g.N(), func(u int) {
		if e.awake[u] && !e.halted[u] {
			e.procs[u].Round(&e.ctxs[u], e.inbox[u])
		}
	})
}
