package sim

import (
	"fmt"
	"testing"

	"ule/internal/graph"
)

// TestTimingWheelBasics drives the wheel directly through near-window,
// far-overflow, migration and reset transitions.
func TestTimingWheelBasics(t *testing.T) {
	w := newTimingWheel()
	if !w.empty() {
		t.Fatal("new wheel not empty")
	}
	// Near events land in the ring; cur+wheelSlots is the first tick
	// OUTSIDE the (open) ring window — it shares a slot with the pending
	// current tick — so it and everything beyond go to the overflow heap.
	w.at(3).wakes = append(w.at(3).wakes, 30)
	w.at(wheelSlots).wakes = append(w.at(wheelSlots).wakes, 31)
	w.at(wheelSlots + 700).wakes = append(w.at(wheelSlots+700).wakes, 32)
	w.at(5000).wakes = append(w.at(5000).wakes, 33)
	if got := w.minTick(); got != 3 {
		t.Fatalf("minTick = %d, want 3", got)
	}
	if len(w.farHeap) != 3 {
		t.Fatalf("overflow heap holds %d ticks, want 3", len(w.farHeap))
	}
	// Repeated at() must return the same bucket, not a fresh one.
	if len(w.at(3).wakes) != 1 || w.at(3).wakes[0] != 30 {
		t.Fatal("at(3) did not return the existing bucket")
	}

	// Process tick 3, then jump: advancing must migrate newly-in-window
	// overflow ticks into the ring.
	w.advance(3)
	b := w.takeCurrent(3)
	if b == nil || b.wakes[0] != 30 {
		t.Fatal("takeCurrent(3) lost the bucket")
	}
	b.clear()
	if got := w.minTick(); got != wheelSlots {
		t.Fatalf("minTick = %d, want %d", got, wheelSlots)
	}
	w.advance(wheelSlots)
	eb := w.takeCurrent(wheelSlots)
	if eb == nil {
		t.Fatal("tick wheelSlots lost")
	}
	eb.clear()
	if w.takeCurrent(wheelSlots) != nil {
		t.Fatal("takeCurrent returned an already-taken bucket")
	}
	w.advance(wheelSlots + 700)
	mb := w.takeCurrent(wheelSlots + 700)
	if mb == nil || len(mb.wakes) != 1 || mb.wakes[0] != 32 {
		t.Fatal("overflow bucket did not migrate into the ring")
	}
	mb.clear()
	if got := w.minTick(); got != 5000 {
		t.Fatalf("minTick = %d, want 5000", got)
	}
	w.drop(5000)
	if !w.empty() {
		t.Fatal("wheel not empty after drop")
	}

	// Reset with pending state must clear both tiers.
	w.at(7).wakeAll = true
	w.at(9000).wakes = append(w.at(9000).wakes, 1)
	w.reset()
	if !w.empty() || w.cur != 0 || len(w.far) != 0 {
		t.Fatal("reset left pending state")
	}
}

// TestTimingWheelNoCurrentSlotCollision is the regression test for the
// migration window: a far tick at exactly cur+wheelSlots shares a slot
// with the current tick, whose bucket is still pending when advance runs
// (takeCurrent comes after), so it must NOT migrate yet.
func TestTimingWheelNoCurrentSlotCollision(t *testing.T) {
	w := newTimingWheel()
	w.at(1).wakes = append(w.at(1).wakes, 10)
	w.at(1 + wheelSlots).wakes = append(w.at(1+wheelSlots).wakes, 20)
	if len(w.farHeap) != 1 {
		t.Fatalf("tick 1+wheelSlots should be in overflow, heap=%v", w.farHeap)
	}
	w.advance(1)
	b := w.takeCurrent(1)
	if b == nil || len(b.wakes) != 1 || b.wakes[0] != 10 {
		t.Fatalf("tick 1's bucket clobbered by migration: %+v", b)
	}
	b.clear()
	if got := w.minTick(); got != 1+wheelSlots {
		t.Fatalf("minTick = %d, want %d", got, 1+wheelSlots)
	}
	// One tick later the colliding slot is free and migration must land.
	w.advance(2)
	if len(w.farHeap) != 0 {
		t.Fatal("tick 1+wheelSlots did not migrate once its slot freed")
	}
	w.advance(1 + wheelSlots)
	mb := w.takeCurrent(1 + wheelSlots)
	if mb == nil || len(mb.wakes) != 1 || mb.wakes[0] != 20 {
		t.Fatalf("migrated bucket lost: %+v", mb)
	}
}

// busyProto keeps the network saturated — every awake node sends one
// message per round until stop — so every tick has a pending bucket.
// Nodes decide Leader only on a spontaneous wake in round >= 2, which
// makes a wake delivered at the wrong tick (or dropped) visible in the
// statuses.
type busyProto struct{ stop int }

func (busyProto) Name() string                { return "busy" }
func (b busyProto) New(info NodeInfo) Process { return &busyProc{stop: b.stop} }

type busyProc struct{ stop int }

func (p *busyProc) Start(c *Context) {
	if c.SpontaneousWake() && c.Round() >= 2 {
		c.Decide(Leader)
	} else {
		c.Decide(NonLeader)
	}
	c.Send(0, farWakeMsg{})
}

func (p *busyProc) Round(c *Context, inbox []Message) {
	if c.Round() >= p.stop {
		c.Halt()
		return
	}
	c.Send(0, farWakeMsg{})
}

// TestBusyNetworkFarWakeMatchesDense is the engine-level regression for
// the migration-window bug: with traffic on every tick, the slot of the
// current tick is always occupied when advance runs, and a wake
// scheduled exactly wheelSlots+k ticks ahead used to migrate onto it —
// destroying that tick's deliveries and waking the sleeper early.
func TestBusyNetworkFarWakeMatchesDense(t *testing.T) {
	g := graph.Ring(8)
	for _, wakeRound := range []int{wheelSlots + 44, wheelSlots + 45, 2*wheelSlots + 44} {
		wake := make([]int, g.N())
		for i := range wake {
			wake[i] = WakeOnMessage
		}
		wake[0] = 1
		wake[4] = wakeRound
		t.Run(fmt.Sprint(wakeRound), func(t *testing.T) {
			run := func(dense bool) *Result {
				res, err := Run(Config{
					Graph: g, Seed: 2, Wake: wake, MaxRounds: 1 << 12, DenseLoop: dense,
				}, busyProto{stop: wakeRound + 60})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			d, e := run(true), run(false)
			if d.Rounds != e.Rounds || d.Messages != e.Messages || d.LastActive != e.LastActive ||
				fmt.Sprint(d.Statuses) != fmt.Sprint(e.Statuses) {
				t.Errorf("engines diverge (wake %d):\ndense: rounds=%d msgs=%d statuses=%v\nevent: rounds=%d msgs=%d statuses=%v",
					wakeRound, d.Rounds, d.Messages, d.Statuses, e.Rounds, e.Messages, e.Statuses)
			}
		})
	}
}

// farWakeProto broadcasts once on wake-up and halts after forwarding,
// like the benchmark wave, but is driven by far-future wake schedules.
type farWakeProto struct{}

type farWakeMsg struct{}

func (farWakeMsg) Bits() int { return 1 }

func (farWakeProto) Name() string              { return "farwake" }
func (farWakeProto) New(info NodeInfo) Process { return &farWakeProc{} }

type farWakeProc struct{ sent bool }

func (p *farWakeProc) Start(c *Context) {
	if c.SpontaneousWake() {
		p.sent = true
		c.Broadcast(farWakeMsg{})
		c.Decide(NonLeader)
		c.Halt()
	}
}

func (p *farWakeProc) Round(c *Context, inbox []Message) {
	if !p.sent {
		p.sent = true
		c.BroadcastExcept(inbox[0].Port, farWakeMsg{})
		c.Decide(NonLeader)
	}
	c.Halt()
}

// TestFarFutureWakeMatchesDense schedules spontaneous wake-ups far beyond
// the wheel window (forcing the overflow heap and its migration path) and
// requires the event engine to match the dense loop exactly.
func TestFarFutureWakeMatchesDense(t *testing.T) {
	g := graph.Ring(24)
	for _, wakes := range [][]int{
		{0: 1, 5: wheelSlots + 50, 11: 3 * wheelSlots, 17: 5000},
		{0: 2000},
	} {
		wake := make([]int, g.N())
		for i := range wake {
			wake[i] = WakeOnMessage
		}
		for u, wr := range wakes {
			if wr != 0 {
				wake[u] = wr
			}
		}
		for u := range wake {
			if wake[u] == 0 {
				wake[u] = WakeOnMessage
			}
		}
		t.Run(fmt.Sprint(wakes), func(t *testing.T) {
			run := func(dense bool) *Result {
				res, err := Run(Config{
					Graph: g, Seed: 9, Wake: wake, MaxRounds: 1 << 14, DenseLoop: dense,
				}, farWakeProto{})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			d, e := run(true), run(false)
			if d.Rounds != e.Rounds || d.Messages != e.Messages || d.LastActive != e.LastActive ||
				d.Halted != e.Halted || d.HitRoundCap != e.HitRoundCap {
				t.Errorf("engines diverge under far-future wakes:\ndense: %+v\nevent: %+v", d, e)
			}
		})
	}
}

// bigDelay is a schedule adversary whose latencies straddle the wheel
// window, exercising the overflow path for message deliveries in ASYNC.
type bigDelay struct{}

func (bigDelay) Name() string { return "big" }
func (bigDelay) Delay(seed int64, u, p, seq int) int {
	return 1 + int(delayHash(seed, u, p, seq)%(3*wheelSlots))
}

// TestAsyncBigDelaysDeterministic: far-overflow deliveries must be
// reproducible and must actually deliver (the run terminates cleanly).
func TestAsyncBigDelaysDeterministic(t *testing.T) {
	g := graph.Ring(16)
	run := func() *Result {
		res, err := Run(Config{
			Graph: g, Seed: 4, Mode: ASYNC, Delay: bigDelay{}, MaxRounds: 1 << 15,
		}, farWakeProto{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.LastActive != b.LastActive {
		t.Fatalf("async big-delay run not reproducible: %+v vs %+v", a, b)
	}
	// Simultaneous wake: every node broadcasts once on Start (degree 2).
	if a.Messages != int64(2*g.N()) || !a.Halted {
		t.Fatalf("wave incomplete under big delays: %+v", a)
	}
}
