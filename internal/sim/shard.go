// Sharded execution: the multi-core layout of the event-driven engine.
//
// The node index space is partitioned into Config.Shards contiguous
// ranges. Each shard owns the full event machinery for its nodes — a
// timing wheel, the tick loop's scratch lists, a fault-event heap — and
// every per-node row of the flat engine state (outbox arenas, inboxes,
// status vectors, linkSeq/wakeAt slots) is written only by its owner, so
// shards step one tick concurrently without locks. The one cross-shard
// interaction is message routing: a sender whose neighbor lives in
// another shard parks the scheduled delivery in a per-(src,dst) mailbox
// row instead of its own wheel, and at the tick barrier every shard
// drains the rows addressed to it, in ascending source-shard order, into
// its own wheel.
//
// Determinism does not depend on the shard count. The only event order
// the simulation can observe is the per-link order of same-tick arrivals:
// the inbox is stably sorted by receiving port before any node sees it,
// and one port is one directed link, so only same-link messages have an
// observable relative order. A link has exactly one sender, a sender
// lives in exactly one shard, and both the sender's flush and the mailbox
// drain preserve its send order — so every interleaving the sharding
// changes is invisible. Everything else the engine accumulates (message,
// bit and drop totals, per-edge counts, crossing instruments, halt/run
// counters, model-violation errors) is either order-independent (sums,
// maxes, per-tick minima) or folded at the barrier in ascending shard
// order, which reproduces the single-shard engine's ascending-node merge
// order exactly. Same seed, same transcript, any shard count.
package sim

// shardMsg is one cross-shard delivery in flight: the delivery record
// plus its target tick, parked in a mailbox row until the barrier.
type shardMsg struct {
	at int
	d  delivery
}

// engineShard owns the event-engine state of the contiguous node range
// [lo, hi). A single-shard run (Shards <= 1) uses exactly one of these
// covering every node — that is the sequential engine.
type engineShard struct {
	id     int
	lo, hi int

	// wheel is the shard's private pending-event queue. Every event in it
	// targets the shard's own nodes.
	wheel *timingWheel

	// Tick-loop scratch (see event.go), all over own nodes only.
	active   []int // sorted awake node ids (synchronous modes)
	stepSet  []int
	recv     []int // own nodes that received a delivery this tick
	wake     []int // own wake candidates this tick
	mergeBuf []int

	// faults is the shard's slice of the fault adversary: the event heap
	// and pending-recovery counter for its own node range (fault.go). nil
	// on fault-free runs; faultScratch is the persistent backing store.
	faults       *faultState
	faultScratch *faultState

	// mail[d] is the outbound mailbox toward shard d: deliveries for
	// shard d's nodes scheduled by this shard's senders during the
	// current tick, in send order. Shard d drains it at the barrier.
	mail [][]shardMsg

	// Quiescence counters over own nodes; the coordinator sums them.
	pendingMsgs int // undelivered messages queued in this shard's wheel
	numRunning  int // awake && !halted && alive
	numHalted   int

	// Cumulative accounting, folded into the Result when the run ends.
	msgs       int64
	bits       int64
	dropped    int64
	maxMsgBits int
	lastActive int
	crashes    int
	recoveries int

	// Per-tick scratch for the watched-edge crossing cut, folded at the
	// barrier (only maintained when edges are watched).
	deliveredTick int64
	sendDropTick  int64
	crossedTick   bool

	// First model-violation error of the tick, per merge phase; the fold
	// takes the globally first one in (phase, shard) order — the same
	// error the single-shard engine's ascending-node merge would pick.
	errStarted error
	errStep    error

	// Instrument maps. A single-shard run aliases the Result's maps
	// directly; multi-shard runs fill per-shard scratch maps (fcScratch,
	// peScratch, recycled across runs) merged when the run ends.
	fc        map[[2]int]int
	pe        map[[2]int]int64
	fcScratch map[[2]int]int
	peScratch map[[2]int]int64
}

// resetRun re-arms the shard for one run, keeping every allocation.
func (sh *engineShard) resetRun() {
	sh.wheel.reset()
	sh.active = sh.active[:0]
	sh.stepSet = sh.stepSet[:0]
	sh.recv = sh.recv[:0]
	sh.wake = sh.wake[:0]
	for d := range sh.mail {
		sh.mail[d] = sh.mail[d][:0]
	}
	sh.faults = nil
	sh.pendingMsgs, sh.numRunning, sh.numHalted = 0, 0, 0
	sh.msgs, sh.bits, sh.dropped = 0, 0, 0
	sh.maxMsgBits, sh.lastActive = 0, 0
	sh.crashes, sh.recoveries = 0, 0
	sh.deliveredTick, sh.sendDropTick, sh.crossedTick = 0, 0, false
	sh.errStarted, sh.errStep = nil, nil
	sh.fc, sh.pe = nil, nil
}

// shardOf returns the owner shard index of node v.
func (e *engine) shardOf(v int32) int {
	return int(v) / e.shardSize
}

// route schedules delivery d for tick at: into the sending shard's own
// wheel when the receiver is local, into the mailbox row toward the
// receiver's shard otherwise. The receiving shard's pendingMsgs is
// charged at drain time.
func (e *engine) route(sh *engineShard, at int, d delivery) {
	if ds := e.shardOf(d.to); ds != sh.id {
		sh.mail[ds] = append(sh.mail[ds], shardMsg{at: at, d: d})
		return
	}
	b := sh.wheel.at(at)
	b.deliveries = append(b.deliveries, d)
	sh.pendingMsgs++
}

// runTick executes one virtual-time tick: every shard steps its own
// events concurrently, a barrier, every shard drains the mailboxes
// addressed to it (ascending source-shard order), a barrier, then the
// coordinator folds the per-shard tick scratch. With one shard, or
// without a shard pool, the phases run inline in shard order — the
// results are identical either way.
func (e *engine) runTick(t int) {
	e.round = t
	e.curTick = t
	if e.shardPool != nil {
		e.shardPool.runEach(len(e.shards), e.tickFn)
	} else {
		for i := range e.shards {
			e.tickShard(&e.shards[i], t)
		}
	}
	if len(e.shards) > 1 {
		if e.shardPool != nil {
			e.shardPool.runEach(len(e.shards), e.drainFn)
		} else {
			for i := range e.shards {
				e.drainMail(&e.shards[i])
			}
		}
	}
	e.foldTick(t)
}

// drainMail moves every delivery parked for dst into dst's wheel. Rows
// are visited in ascending source-shard order and each row in send
// order, so the per-link arrival order in dst's buckets is exactly the
// senders' flush order — the order the single-shard engine would have
// appended in. Runs concurrently per destination: dst writes only its
// own wheel and counters, and resets only rows addressed to it.
func (e *engine) drainMail(dst *engineShard) {
	for si := range e.shards {
		src := &e.shards[si]
		row := src.mail[dst.id]
		if len(row) == 0 {
			continue
		}
		for i := range row {
			b := dst.wheel.at(row[i].at)
			b.deliveries = append(b.deliveries, row[i].d)
		}
		dst.pendingMsgs += len(row)
		src.mail[dst.id] = row[:0]
	}
}

// foldTick resolves the per-shard tick scratch on the coordinator: the
// first model-violation error (Start-phase errors across all shards
// precede Round-phase ones, matching the single-shard merge order), and
// the watched-edge crossing cut, which must be computed against the
// whole tick's deliveries, not any one shard's.
func (e *engine) foldTick(t int) {
	if e.err == nil {
		for i := range e.shards {
			if err := e.shards[i].errStarted; err != nil {
				e.err = err
				break
			}
		}
	}
	if e.err == nil {
		for i := range e.shards {
			if err := e.shards[i].errStep; err != nil {
				e.err = err
				break
			}
		}
	}
	if e.watch == nil {
		return
	}
	var delivered, dropSend int64
	crossedNow := e.crossed
	for i := range e.shards {
		sh := &e.shards[i]
		delivered += sh.deliveredTick
		dropSend += sh.sendDropTick
		crossedNow = crossedNow || sh.crossedTick
	}
	// Mirror the single-shard accounting order: deliveries land before
	// the crossing check, send-time drops after it.
	post := e.msgsTotal + delivered
	if !crossedNow {
		e.res.MessagesBeforeCrossing = post
	}
	e.crossed = crossedNow
	e.msgsTotal = post + dropSend
}

// pendingUp sums the shards' pending-recovery counters.
func (e *engine) pendingUp() int {
	up := 0
	for i := range e.shards {
		if f := e.shards[i].faults; f != nil {
			up += f.pendingUp
		}
	}
	return up
}

// minPendingTick returns the earliest tick with a pending bucket in any
// shard's wheel (ok=false when every wheel is empty).
func (e *engine) minPendingTick() (int, bool) {
	best, ok := 0, false
	for i := range e.shards {
		w := e.shards[i].wheel
		if w.empty() {
			continue
		}
		if mt := w.minTick(); !ok || mt < best {
			best, ok = mt, true
		}
	}
	return best, ok
}

// minFaultTick returns the earliest queued fault event across the
// shards' heaps (ok=false when none is queued).
func (e *engine) minFaultTick() (int, bool) {
	best, ok := 0, false
	for i := range e.shards {
		f := e.shards[i].faults
		if f == nil || len(f.heap) == 0 {
			continue
		}
		if ft := f.heap[0].tick; !ok || ft < best {
			best, ok = ft, true
		}
	}
	return best, ok
}

// nextRevive returns the earliest queued recovery tick across all
// shards (0 when none is pending).
func (e *engine) nextRevive() int {
	best := 0
	for i := range e.shards {
		f := e.shards[i].faults
		if f == nil {
			continue
		}
		if nr := f.nextRevive(); nr > 0 && (best == 0 || nr < best) {
			best = nr
		}
	}
	return best
}
