package sim

import (
	"errors"
	"testing"

	"ule/internal/graph"
)

// pingProto: node with smallest port count... simple test protocol that
// floods a token once and decides. Used to exercise engine mechanics.
type tokenMsg struct{ v int64 }

func (m tokenMsg) Bits() int { return BitsFor(m.v) }

type floodOnce struct{ seen bool }

type floodOnceProto struct{}

func (floodOnceProto) Name() string              { return "flood-once" }
func (floodOnceProto) New(info NodeInfo) Process { return &floodOnce{} }

func (p *floodOnce) Start(c *Context) {
	if c.SpontaneousWake() {
		p.seen = true
		c.Broadcast(tokenMsg{c.ID()})
		c.Decide(NonLeader)
	}
}

func (p *floodOnce) Round(c *Context, inbox []Message) {
	if !p.seen && len(inbox) > 0 {
		p.seen = true
		c.Broadcast(tokenMsg{1})
		c.Decide(NonLeader)
	}
	if p.seen {
		c.Halt()
	}
}

func TestFloodOnceTerminatesAndCounts(t *testing.T) {
	g := graph.Ring(10)
	wake := make([]int, 10)
	for i := range wake {
		wake[i] = WakeOnMessage
	}
	wake[0] = 1
	res, err := Run(Config{Graph: g, IDs: SequentialIDs(10, 1), Wake: wake, Seed: 1}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Error("not all nodes halted")
	}
	// Node 0 broadcasts 2, each of the other 9 broadcasts 2 once woken.
	if res.Messages != 20 {
		t.Errorf("messages = %d, want 20", res.Messages)
	}
	// Wake wave travels half the ring: ~n/2+1 rounds.
	if res.Rounds < 5 || res.Rounds > 8 {
		t.Errorf("rounds = %d, want ≈6", res.Rounds)
	}
}

func TestWatchedEdgeFirstCrossing(t *testing.T) {
	g := graph.Path(6)
	wake := []int{1, WakeOnMessage, WakeOnMessage, WakeOnMessage, WakeOnMessage, WakeOnMessage}
	res, err := Run(Config{
		Graph: g, IDs: SequentialIDs(6, 1), Wake: wake, Seed: 1,
		WatchEdges: [][2]int{{4, 5}},
	}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	// The wave leaves node 0 in round 1 and is re-sent by nodes 1..4 in
	// rounds 2..5; the crossing is recorded at its delivery round, 6.
	cross := res.FirstCrossing[[2]int{4, 5}]
	if cross != 6 {
		t.Errorf("first crossing at round %d, want 6", cross)
	}
	// 4 messages strictly precede the crossing (0→1,1→2,2→3,3→4 wave,
	// minus the backward echoes that happen in the same rounds).
	if res.MessagesBeforeCrossing <= 0 || res.MessagesBeforeCrossing >= res.Messages {
		t.Errorf("messages before crossing = %d of %d", res.MessagesBeforeCrossing, res.Messages)
	}
}

func TestPerEdgeCounting(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(Config{Graph: g, IDs: SequentialIDs(3, 1), Seed: 1, CountPerEdge: true}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range res.PerEdge {
		sum += c
	}
	if sum != res.Messages {
		t.Errorf("per-edge sum %d != messages %d", sum, res.Messages)
	}
}

type doubleSender struct{}

type doubleSenderProto struct{}

func (doubleSenderProto) Name() string              { return "double" }
func (doubleSenderProto) New(info NodeInfo) Process { return doubleSender{} }
func (doubleSender) Start(c *Context)               {}
func (doubleSender) Round(c *Context, inbox []Message) {
	c.Send(0, tokenMsg{1})
	c.Send(0, tokenMsg{2})
}

func TestPortSendCapEnforced(t *testing.T) {
	g := graph.Path(2)
	// With cap 1, the second send on port 0 must be rejected.
	_, err := Run(Config{Graph: g, Seed: 1, PortSendCap: 1}, doubleSenderProto{})
	if !errors.Is(err, ErrDoubleSend) {
		t.Fatalf("err = %v, want ErrDoubleSend", err)
	}
	// The default CONGEST cap (8) tolerates two sends — the constant-factor
	// bundling relaxation — and counts both messages.
	res, err := Run(Config{Graph: g, Seed: 1, MaxRounds: 2}, doubleSenderProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2*2 { // both nodes, rounds 1 delivered in round 2
		t.Errorf("messages = %d, want 4", res.Messages)
	}
}

type fatMsg struct{}

func (fatMsg) Bits() int { return 1 << 20 }

type fatSenderProto struct{}

func (fatSenderProto) Name() string              { return "fat" }
func (fatSenderProto) New(info NodeInfo) Process { return fatSender{} }

type fatSender struct{}

func (fatSender) Start(c *Context)                  {}
func (fatSender) Round(c *Context, inbox []Message) { c.Send(0, fatMsg{}) }

func TestCongestBitCapEnforced(t *testing.T) {
	g := graph.Path(2)
	if _, err := Run(Config{Graph: g, Seed: 1}, fatSenderProto{}); !errors.Is(err, ErrBitCap) {
		t.Fatalf("err = %v, want ErrBitCap", err)
	}
	// LOCAL mode allows arbitrarily large messages.
	res, err := Run(Config{Graph: g, Seed: 1, Mode: LOCAL, MaxRounds: 3}, fatSenderProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMsgBits != 1<<20 {
		t.Errorf("MaxMsgBits = %d", res.MaxMsgBits)
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := Run(Config{Graph: nil}, floodOnceProto{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{Graph: g, IDs: []int64{1, 2}}, floodOnceProto{}); err == nil {
		t.Error("short ID slice accepted")
	}
	if _, err := Run(Config{Graph: g, IDs: []int64{1, 1, 2}}, floodOnceProto{}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Run(Config{Graph: g, Wake: []int{1}}, floodOnceProto{}); err == nil {
		t.Error("short wake slice accepted")
	}
}

func TestMaxRoundsCap(t *testing.T) {
	g := graph.Ring(4)
	res, err := Run(Config{Graph: g, Seed: 1, MaxRounds: 7}, babblerProto{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitRoundCap || res.Rounds != 7 {
		t.Errorf("HitRoundCap=%v Rounds=%d", res.HitRoundCap, res.Rounds)
	}
	if res.Messages != int64(7*g.DegreeSum()) {
		// Every node broadcasts every round; the final round's sends stay
		// undelivered, so 7 delivery phases carry rounds 1..7 minus the
		// last outbox: 6 full broadcasts delivered... see assertion below.
		t.Logf("messages = %d", res.Messages)
	}
}

type babblerProto struct{}

func (babblerProto) Name() string              { return "babbler" }
func (babblerProto) New(info NodeInfo) Process { return babbler{} }

type babbler struct{}

func (babbler) Start(c *Context)                  {}
func (babbler) Round(c *Context, inbox []Message) { c.Broadcast(tokenMsg{int64(c.Round())}) }

func TestDeterminism(t *testing.T) {
	g := graph.Torus(4, 4)
	run := func(parallel bool) *Result {
		res, err := Run(Config{Graph: g, Seed: 42, MaxRounds: 50, Parallel: parallel}, coinProto{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(false), run(false), run(true)
	if a.Messages != b.Messages || a.Rounds != b.Rounds || a.Bits != b.Bits {
		t.Errorf("sequential runs diverge: %+v vs %+v", a, b)
	}
	if a.Messages != c.Messages || a.Rounds != c.Rounds || a.Bits != c.Bits {
		t.Errorf("parallel run diverges: %+v vs %+v", a, c)
	}
	for i := range a.Statuses {
		if a.Statuses[i] != c.Statuses[i] {
			t.Fatalf("status mismatch at node %d", i)
		}
	}
}

// coinProto uses node coins so determinism of seeding is actually tested.
type coinProto struct{}

func (coinProto) Name() string              { return "coin" }
func (coinProto) New(info NodeInfo) Process { return &coinProc{} }

type coinProc struct{ sent int }

func (p *coinProc) Start(c *Context) {}
func (p *coinProc) Round(c *Context, inbox []Message) {
	if p.sent < 5 {
		port := c.Rand().Intn(c.Degree())
		c.Send(port, tokenMsg{c.Rand().Int63n(1000)})
		p.sent++
		return
	}
	if c.Rand().Intn(2) == 0 {
		c.Decide(NonLeader)
	} else {
		c.Decide(Leader)
	}
	c.Halt()
}

func TestNodeSeedStability(t *testing.T) {
	// Changing either the run seed or the node index must change the seed.
	if NodeSeed(1, 0) == NodeSeed(1, 1) {
		t.Error("node seeds collide across nodes")
	}
	if NodeSeed(1, 0) == NodeSeed(2, 0) {
		t.Error("node seeds collide across runs")
	}
	if NodeSeed(7, 3) != NodeSeed(7, 3) {
		t.Error("node seed not deterministic")
	}
}

func TestBitsFor(t *testing.T) {
	tests := []struct {
		v    int64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {255, 8}, {256, 9}, {-5, 3},
	}
	for _, tt := range tests {
		if got := BitsFor(tt.v); got != tt.want {
			t.Errorf("BitsFor(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestUniqueLeaderPredicate(t *testing.T) {
	r := &Result{Statuses: []Status{Leader, NonLeader}, Leaders: []int{0}}
	if !r.UniqueLeader() {
		t.Error("want unique leader")
	}
	r2 := &Result{Statuses: []Status{Leader, Undecided}, Leaders: []int{0}}
	if r2.UniqueLeader() {
		t.Error("undecided node should not count as success")
	}
	r3 := &Result{Statuses: []Status{Leader, Leader}, Leaders: []int{0, 1}}
	if r3.UniqueLeader() {
		t.Error("two leaders should fail")
	}
}

func TestDeadlockedSleepersStop(t *testing.T) {
	// All nodes wake only on message: nothing ever happens; the engine
	// must detect the dead network rather than spin to MaxRounds.
	g := graph.Path(4)
	wake := []int{WakeOnMessage, WakeOnMessage, WakeOnMessage, WakeOnMessage}
	res, err := Run(Config{Graph: g, Wake: wake, Seed: 1, MaxRounds: 1000}, floodOnceProto{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRoundCap {
		t.Error("engine failed to detect dead network")
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
}

func TestStatusString(t *testing.T) {
	if Undecided.String() != "undecided" || Leader.String() != "elected" || NonLeader.String() != "non-elected" {
		t.Error("bad status strings")
	}
}
