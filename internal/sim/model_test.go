package sim

import "testing"

func TestParseModel(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical String round-trip ("" = parse error)
	}{
		{"", "congest"},
		{"congest", "congest"},
		{"local", "local"},
		{"async", "async"},
		{"none", "congest"},
		{"async+unit", "async"},
		{"async+random:4", "async+random:4"},
		{"async+fifo:8", "async+fifo:8"},
		{"random:4+async", "async+random:4"}, // term order is free
		{"crash:0.2", "congest+crash:0.2"},
		{"crash:0.2+local", "local+crash:0.2"},
		{"drop:0.1+async+random:4", "async+random:4+drop:0.1"},
		{"async+fifo:8+crashrec:0.1:32+drop:0.05", "async+fifo:8+crashrec:0.1:32+drop:0.05"},
		{"churn:0.3:8+none", "congest+churn:0.3:8"},
		{"random:4", ""},          // delay needs async
		{"local+fifo:2", ""},      // delay needs async
		{"congest+local", ""},     // two modes
		{"async+unit+fifo:2", ""}, // two delays
		{"async+random:x", ""},
		{"crash:2", ""},
		{"bogus", ""},
	}
	for _, c := range cases {
		m, err := ParseModel(c.spec)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseModel(%q): want error, got %q", c.spec, m.String())
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseModel(%q): %v", c.spec, err)
			continue
		}
		if got := m.String(); got != c.want {
			t.Errorf("ParseModel(%q).String() = %q, want %q", c.spec, got, c.want)
		}
		// The canonical form re-parses to the same model.
		m2, err := ParseModel(m.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", m.String(), err)
		} else if m2.String() != m.String() {
			t.Errorf("round-trip of %q changed the model to %q", m.String(), m2.String())
		}
	}
}

func TestModelSpecZero(t *testing.T) {
	var m ModelSpec
	if !m.IsZero() {
		t.Error("zero ModelSpec must report IsZero")
	}
	if m.String() != "congest" {
		t.Errorf("zero ModelSpec String = %q, want congest", m.String())
	}
	m.Mode = CONGEST
	if m.IsZero() {
		t.Error("explicit CONGEST is not the zero model")
	}
}
