// Allocation-budget regression tests for the zero-allocation messaging
// fast path (docs/PERFORMANCE.md): a warm Runner on the event engine must
// execute steady-state rounds with single-digit allocations per round.
// The budgets are deliberately loose multiples of the measured values so
// that the tests flag structural regressions (a reintroduced per-send
// boxing, a reflect sort, per-round map churn), not noise.
package ule

import (
	"math/rand"
	"testing"

	"ule/internal/core"
	"ule/internal/graph"
	"ule/internal/sim"
)

// allocsPerRound measures the average allocations per simulated round of
// one warm, deterministic run repeated via testing.AllocsPerRun.
func allocsPerRound(t *testing.T, warmup int, run func() int) float64 {
	t.Helper()
	rounds := run()
	if rounds <= 0 {
		t.Fatal("run executed no rounds")
	}
	for i := 1; i < warmup; i++ {
		if r := run(); r != rounds {
			t.Fatalf("warm-up run not deterministic: %d rounds, then %d", rounds, r)
		}
	}
	allocs := testing.AllocsPerRun(5, func() { run() })
	return allocs / float64(rounds)
}

// TestAllocBudgetWaveRing pins the engine-only budget: the wave protocol
// allocates nothing itself after Start, so everything measured here is
// engine overhead (per-run process construction amortized over the
// rounds, plus the steady-state cost of ticks, deliveries and merges).
func TestAllocBudgetWaveRing(t *testing.T) {
	g := graph.Ring(1024)
	wake := adversarialWake(g.N())
	r, err := sim.NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	var res sim.Result
	run := func() int {
		if err := r.RunInto(sim.Config{Seed: 7, Wake: wake}, waveProto{}, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Halted || res.Messages != int64(g.N()+1) {
			t.Fatalf("wave broken: halted=%v messages=%d", res.Halted, res.Messages)
		}
		return res.Rounds
	}
	if got := allocsPerRound(t, 2, run); got >= 10 {
		t.Errorf("wave on ring:1024: %.2f allocs/round, want single digits", got)
	}
}

// TestAllocBudgetLeastelRing pins the full-protocol budget: leastel keeps
// every node a candidate, so the measurement covers the flood machinery
// (pooled wire boxes, drip queues, slab-allocated adoption states) on top
// of the engine. Steady-state traffic allocates nothing; the measured
// ~15 allocs/round are per-run construction of the per-node protocol
// state (proc, flooder, ports, adoption map, first-use buffers — about 14
// objects per node, amortized over ~n rounds), which the sim.Process
// lifecycle rebuilds each run by design.
func TestAllocBudgetLeastelRing(t *testing.T) {
	g := graph.Ring(512)
	wake := adversarialWake(g.N())
	ids := sim.PermutationIDs(g.N(), rand.New(rand.NewSource(3)))
	prep, err := core.Prepare(g, "leastel")
	if err != nil {
		t.Fatal(err)
	}
	var res sim.Result
	run := func() int {
		err := prep.RunInto(core.RunOpts{Seed: 7, IDs: ids, Wake: wake, MaxRounds: 1 << 15}, &res)
		if err != nil {
			t.Fatal(err)
		}
		if !res.UniqueLeader() {
			t.Fatal("election failed")
		}
		return res.Rounds
	}
	if got := allocsPerRound(t, 2, run); got >= 20 {
		t.Errorf("leastel on ring:512: %.2f allocs/round, budget 20 (≈15 measured)", got)
	}
}

// TestAllocBudgetLeastelFaultyRing pins the fault-injected budget: the
// fault adversary rides the same zero-allocation discipline as the rest
// of the fast path — the Runner owns one reusable faultState, the crash
// heap and scratch slices are recycled across runs, and Result.Crashed
// parks its capacity between runs. The budget is a small constant above
// the fault-free leastel budget; a per-crash or per-drop allocation
// would blow it immediately.
func TestAllocBudgetLeastelFaultyRing(t *testing.T) {
	g := graph.Ring(512)
	wake := adversarialWake(g.N())
	ids := sim.PermutationIDs(g.N(), rand.New(rand.NewSource(3)))
	prep, err := core.Prepare(g, "leastel")
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.ParseModel("crash:0.1+drop:0.02")
	if err != nil {
		t.Fatal(err)
	}
	var res sim.Result
	run := func() int {
		err := prep.RunInto(core.RunOpts{
			Seed: 7, IDs: ids, Wake: wake, MaxRounds: 1 << 13, Model: m,
		}, &res)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashes == 0 || res.Dropped == 0 {
			t.Fatalf("fault adversary idle: crashes=%d dropped=%d", res.Crashes, res.Dropped)
		}
		return res.Rounds
	}
	if got := allocsPerRound(t, 2, run); got >= 25 {
		t.Errorf("faulty leastel on ring:512: %.2f allocs/round, budget 25", got)
	}
}

// TestAllocBudgetLeastelSharded pins the sharded warm path to the same
// per-round budget as the single-shard engine: shard scratch (wheels,
// mailboxes, fault heaps, instrument maps) lives on the Runner and is
// recycled across runs, and the tick/drain dispatch closures are built
// once per run — so splitting the adversarial leastel run across 4
// shards must not add a single steady-state allocation per round.
func TestAllocBudgetLeastelSharded(t *testing.T) {
	g := graph.Ring(512)
	wake := adversarialWake(g.N())
	ids := sim.PermutationIDs(g.N(), rand.New(rand.NewSource(3)))
	prep, err := core.Prepare(g, "leastel")
	if err != nil {
		t.Fatal(err)
	}
	var res sim.Result
	run := func() int {
		err := prep.RunInto(core.RunOpts{
			Seed: 7, IDs: ids, Wake: wake, MaxRounds: 1 << 15, Shards: 4,
		}, &res)
		if err != nil {
			t.Fatal(err)
		}
		if !res.UniqueLeader() {
			t.Fatal("election failed")
		}
		return res.Rounds
	}
	if got := allocsPerRound(t, 2, run); got >= 20 {
		t.Errorf("sharded leastel on ring:512: %.2f allocs/round, budget 20 (same as single-shard)", got)
	}
}

// TestAllocBudgetGraphConstruction pins the CSR builders' allocation
// budget: a family build performs O(1) allocations regardless of node
// count or density — the Graph shell, the three flat CSR arrays
// (off/nbr/back), one fill cursor, and the builder closures. The old
// edge-list path allocated per adjacency row plus a map entry per edge
// (36.9k allocations for Complete(2048)); a budget of 8 catches any
// reintroduced per-edge or per-node allocation.
func TestAllocBudgetGraphConstruction(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"ring:4096", func() *graph.Graph { return graph.Ring(4096) }},
		{"complete:512", func() *graph.Graph { return graph.Complete(512) }},
		{"torus:32x32", func() *graph.Graph { return graph.Torus(32, 32) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var g *graph.Graph
			allocs := testing.AllocsPerRun(10, func() { g = c.build() })
			if g.N() == 0 {
				t.Fatal("empty graph")
			}
			if allocs > 8 {
				t.Errorf("%s: %.0f allocs per build, want O(1) (<= 8)", c.name, allocs)
			}
		})
	}
}
